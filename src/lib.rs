//! # cuckoograph-repro
//!
//! Workspace façade for the CuckooGraph reproduction (ICDE 2025). It re-exports
//! the public surface of every crate so the runnable examples and the
//! cross-crate integration tests under `tests/` have a single import root:
//!
//! * [`cuckoograph`] — the paper's data structure (basic, weighted, multi-edge);
//! * [`graph_api`] — the shared `DynamicGraph` trait and primitives;
//! * [`graph_baselines`] — the competitor storage schemes;
//! * [`graph_analytics`] — BFS, SSSP, TC, CC, PageRank, BC, LCC;
//! * [`graph_datasets`] — Table IV synthetic dataset generators and loaders;
//! * [`graph_durability`] — the append-only op log, snapshots, and crash
//!   recovery;
//! * [`kvstore`] — the Redis-like substrate and the CuckooGraph module (§ V-F);
//! * [`graphdb`] — the Neo4j-like substrate and the CuckooGraph edge index (§ V-G).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record of every table and figure.

pub use cuckoograph;
pub use graph_analytics;
pub use graph_api;
pub use graph_baselines;
pub use graph_datasets;
pub use graph_durability;
pub use graphdb;
pub use kvstore;

/// Convenience prelude used by the examples.
pub mod prelude {
    pub use cuckoograph::{
        CuckooGraph, CuckooGraphConfig, MultiEdgeCuckooGraph, Sharded, ShardedCuckooGraph,
        ShardedWeightedCuckooGraph, WeightedCuckooGraph,
    };
    pub use graph_api::{
        DynamicGraph, Edge, EdgeExport, EdgeImport, EdgeRecord, MemoryFootprint, NodeId,
        ShardedGraph, WeightedDynamicGraph,
    };
    pub use graph_durability::{
        DurabilityConfig, DurableGraphStore, GraphOp, RecoveryMode, StdVfs, SyncPolicy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_the_core_types() {
        let mut g = CuckooGraph::new();
        assert!(g.insert_edge(1, 2));
        let mut w = WeightedCuckooGraph::new();
        assert_eq!(w.insert_weighted(1, 2, 3), 3);
        let mut m = MultiEdgeCuckooGraph::new();
        assert!(m.add_edge(1, 2, 7));
        assert!(CuckooGraphConfig::default().validate().is_ok());
    }
}
