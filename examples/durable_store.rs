//! Durable store: crash-safe graph persistence in two minutes.
//!
//! ```text
//! cargo run --release --example durable_store
//! ```
//!
//! Walks the full durability lifecycle on real files: append ops to the log,
//! snapshot, keep writing, "crash" (drop the store), and recover — then
//! compact the log with a rewrite.

use cuckoograph_repro::prelude::*;

fn main() {
    let dir = std::env::temp_dir()
        .join(format!("cuckoograph-durable-demo-{}", std::process::id()))
        .to_string_lossy()
        .into_owned();
    let cfg = || DurabilityConfig::new(&dir).with_sync_policy(SyncPolicy::EverySecond);

    // ------------------------------------------------------------------
    // Write-ahead life: every mutation hits the op log before the graph.
    // ------------------------------------------------------------------
    let (mut store, report) =
        DurableGraphStore::open(StdVfs, cfg(), WeightedCuckooGraph::new).expect("open");
    println!("first open            : {:?}", report.source);

    let ops: Vec<GraphOp> = (0..1000)
        .map(|i| GraphOp::Insert {
            u: i % 100,
            v: (i * 7 + 1) % 100,
            w: 1 + i % 3,
        })
        .collect();
    store.apply(&ops).expect("append + apply");
    println!("edges after ingest    : {}", store.graph().edge_count());
    println!("log offset            : {} bytes", store.aof_offset());

    // A point-in-time snapshot: recovery will replay only the suffix.
    let snap_bytes = store.save_snapshot().expect("snapshot");
    println!("snapshot written      : {snap_bytes} bytes");

    let suffix: Vec<GraphOp> = (0..200)
        .map(|i| GraphOp::Delete {
            u: i % 100,
            v: (i * 7 + 1) % 100,
            w: 0,
        })
        .collect();
    store.apply(&suffix).expect("append + apply");
    let live_edges = store.graph().edge_count();
    drop(store); // the "crash": no clean shutdown, no final sync

    // ------------------------------------------------------------------
    // Recovery: newest valid snapshot + log suffix replay.
    // ------------------------------------------------------------------
    let (mut store, report) =
        DurableGraphStore::open(StdVfs, cfg(), WeightedCuckooGraph::new).expect("recover");
    println!("recovered from        : {:?}", report.source);
    println!("frames replayed       : {}", report.frames_replayed);
    println!("ops replayed          : {}", report.ops_replayed);
    assert_eq!(store.graph().edge_count(), live_edges);
    println!("edges after recovery  : {}", store.graph().edge_count());

    // ------------------------------------------------------------------
    // Compaction: rewrite the log from live state (BGREWRITEAOF-style).
    // ------------------------------------------------------------------
    let before = store.aof_offset();
    let after = store.rewrite_aof().expect("rewrite");
    println!("log rewrite           : {before} -> {after} bytes");

    let _ = std::fs::remove_dir_all(&dir);
}
