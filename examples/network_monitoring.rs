//! Network security and monitoring — the third motivating application of § I,
//! and a tour of the Redis-like integration (§ V-F).
//!
//! IP flows arrive as a CAIDA-like stream of (source, destination) pairs with
//! heavy duplication. The stream is ingested through the key-value store's
//! CuckooGraph module commands, queried for suspicious fan-out (scanners), and
//! persisted/restored through the RDB snapshot path.
//!
//! ```text
//! cargo run --release --example network_monitoring
//! ```

use cuckoograph_repro::graph_datasets::{generate, DatasetKind};
use cuckoograph_repro::kvstore::{CuckooGraphModule, Reply, Server};

fn cmd(parts: &[String]) -> Vec<String> {
    parts.to_vec()
}

fn main() {
    // Boot the store and load the CuckooGraph module (--loadmodule moment).
    let mut server = Server::new();
    server.load_module(Box::new(CuckooGraphModule::new()));

    // A CAIDA-like trace at 1/500 of the published size.
    let trace = generate(DatasetKind::Caida, 0.002, 99);
    println!("flow records in trace : {}", trace.raw_edges.len());

    // Ingest every flow through the command path, exactly as a collector
    // pushing to Redis would.
    for &(src, dst) in &trace.raw_edges {
        let reply = server.execute(&cmd(&[
            "graph.insert".into(),
            "flows".into(),
            src.to_string(),
            dst.to_string(),
        ]));
        debug_assert!(matches!(reply, Reply::Integer(_)));
    }
    println!("distinct talker pairs  : {}", trace.distinct_edges().len());

    // Fan-out check: hosts contacting unusually many distinct destinations.
    let mut scanners = Vec::new();
    let mut seen_sources = std::collections::HashSet::new();
    for &(src, _) in &trace.raw_edges {
        if !seen_sources.insert(src) {
            continue;
        }
        let reply = server.execute(&cmd(&[
            "graph.getneighbors".into(),
            "flows".into(),
            src.to_string(),
        ]));
        if let Reply::Array(neighbors) = reply {
            if neighbors.len() > 100 {
                scanners.push((src, neighbors.len()));
            }
        }
    }
    scanners.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("\nhosts with > 100 distinct destinations (possible scanners):");
    for (host, fanout) in scanners.iter().take(5) {
        println!("  host {host:>10}  {fanout} destinations");
    }

    // Point queries: has A ever talked to B?
    if let Some(&(src, dst)) = trace.raw_edges.first() {
        let reply = server.execute(&cmd(&[
            "graph.query".into(),
            "flows".into(),
            src.to_string(),
            dst.to_string(),
        ]));
        println!("\nflow count {src} → {dst}: {reply:?}");
    }

    // Persistence: snapshot, restart, restore — the module's save_rdb /
    // load_rdb callbacks at work.
    let snapshot = server.save_rdb();
    println!("\nRDB snapshot size      : {} bytes", snapshot.len());
    let mut restarted = Server::new();
    restarted.load_module(Box::new(CuckooGraphModule::new()));
    restarted.load_rdb(&snapshot).expect("snapshot loads");
    if let Some(&(src, dst)) = trace.raw_edges.first() {
        let reply = restarted.execute(&cmd(&[
            "graph.query".into(),
            "flows".into(),
            src.to_string(),
            dst.to_string(),
        ]));
        println!("after restore, same query: {reply:?}");
    }

    // AOF rewrite folds the whole ingest history into the minimal command
    // sequence that rebuilds the graph.
    println!("\nAOF length before rewrite: {}", server.aof_len());
    server.aof_rewrite();
    println!("AOF length after rewrite : {}", server.aof_len());
}
