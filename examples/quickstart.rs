//! Quickstart: the CuckooGraph API in two minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cuckoograph_repro::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // Basic version: distinct directed edges (§ III-A).
    // ------------------------------------------------------------------
    let mut graph = CuckooGraph::new();
    graph.insert_edge(1, 2);
    graph.insert_edge(1, 3);
    graph.insert_edge(2, 3);
    graph.insert_edge(1, 2); // duplicate: ignored

    println!("edges stored          : {}", graph.edge_count());
    println!("nodes with out-edges  : {}", graph.node_count());
    println!("1 → 2 exists          : {}", graph.has_edge(1, 2));
    println!("successors of 1       : {:?}", {
        let mut s = graph.successors(1);
        s.sort_unstable();
        s
    });

    graph.delete_edge(1, 2);
    println!("after delete, 1 → 2   : {}", graph.has_edge(1, 2));

    // ------------------------------------------------------------------
    // The structure grows by TRANSFORMATION as degrees rise, and reports
    // its own shape and memory usage.
    // ------------------------------------------------------------------
    for v in 0..10_000u64 {
        graph.insert_edge(42, v);
    }
    let stats = graph.stats();
    println!("\nafter inserting a 10k-degree hub:");
    println!("  S-CHT tables          : {}", stats.scht_tables);
    println!("  L-CHT cells allocated : {}", stats.lcht_cells);
    println!("  expansions performed  : {}", stats.expansions);
    println!("  memory                : {:.2} MB", graph.memory_mb());

    // ------------------------------------------------------------------
    // Extended (weighted) version for streams with duplicate edges (§ III-B).
    // ------------------------------------------------------------------
    let mut weighted = WeightedCuckooGraph::new();
    for _ in 0..5 {
        weighted.insert_weighted(7, 8, 1);
    }
    println!("\nweighted edge 7 → 8 count: {}", weighted.weight(7, 8));
    weighted.delete_weighted(7, 8, 5);
    println!("after decrementing to 0  : {}", weighted.weight(7, 8));

    // ------------------------------------------------------------------
    // Custom configuration: the knobs studied in Figures 2–4.
    // ------------------------------------------------------------------
    let tuned = CuckooGraphConfig::default()
        .with_cells_per_bucket(8)
        .with_expand_threshold(0.9)
        .with_max_kicks(250);
    let custom = CuckooGraph::with_config(tuned);
    println!("\ncustom graph starts empty: {} edges", custom.edge_count());
}
