//! Social-network analysis — the first motivating application of § I
//! (user behaviour analysis in social/e-commerce networks).
//!
//! Builds a StackOverflow-like interaction stream (duplicate edges folded into
//! weights), then answers the questions an analyst would ask: who are the
//! hubs, how far does influence travel (BFS), and who ranks highest under
//! PageRank.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use cuckoograph_repro::graph_analytics as analytics;
use cuckoograph_repro::graph_datasets::{generate, DatasetKind};
use cuckoograph_repro::prelude::*;

fn main() {
    // A StackOverflow-like interaction stream at 1/1000 of the published size.
    let dataset = generate(DatasetKind::StackOverflow, 0.001, 7);
    println!("raw interactions : {}", dataset.raw_edges.len());

    // Duplicate interactions between the same pair are folded into weights by
    // the extended version of CuckooGraph.
    let mut graph = WeightedCuckooGraph::new();
    for &(u, v) in &dataset.raw_edges {
        graph.insert_weighted(u, v, 1);
    }
    println!("distinct follow edges : {}", graph.distinct_edge_count());
    println!("memory                : {:.2} MB", graph.memory_mb());

    // Hubs: the accounts with the largest total degree.
    let hubs = analytics::top_degree_nodes(&graph, 5);
    println!("\ntop-5 hubs by total degree:");
    for &hub in &hubs {
        println!("  user {hub:>8}  out-degree {}", graph.out_degree(hub));
    }

    // Influence reach: BFS from the biggest hub.
    let reach = analytics::bfs(&graph, hubs[0]);
    println!("\nBFS from user {} reaches {} users", hubs[0], reach.len());

    // Ranking: PageRank over the subgraph of the 200 most connected users.
    let community = analytics::top_degree_nodes(&graph, 200);
    let ranks = analytics::pagerank(&graph, &community, &analytics::PageRankConfig::default());
    let mut ranked: Vec<_> = ranks.into_iter().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop-5 users by PageRank within the hub community:");
    for (user, score) in ranked.into_iter().take(5) {
        println!("  user {user:>8}  score {score:.5}");
    }

    // How clustered is the community?
    let lcc = analytics::local_clustering_coefficients(&graph, &community);
    let avg: f64 = lcc.values().sum::<f64>() / lcc.len() as f64;
    println!("\naverage local clustering coefficient of the community: {avg:.4}");
}
