//! A miniature version of the paper's evaluation pipeline: build every storage
//! scheme, load the same dataset into each, and compare basic-task throughput
//! and one analytics task — the shape of Figures 6, 7 and 11 in one screen.
//!
//! ```text
//! cargo run --release --example analytics_pipeline
//! ```

use cuckoograph_repro::graph_analytics as analytics;
use cuckoograph_repro::graph_api::DynamicGraph;
use cuckoograph_repro::graph_baselines::{
    AdjacencyListGraph, LiveGraphStore, SortledtonGraph, SpruceGraph, WindBellIndex,
};
use cuckoograph_repro::graph_datasets::{generate, DatasetKind};
use cuckoograph_repro::prelude::*;
use std::time::Instant;

fn schemes() -> Vec<(&'static str, Box<dyn DynamicGraph>)> {
    vec![
        (
            "CuckooGraph",
            Box::new(CuckooGraph::new()) as Box<dyn DynamicGraph>,
        ),
        ("Spruce", Box::new(SpruceGraph::new())),
        ("Sortledton", Box::new(SortledtonGraph::new())),
        ("LiveGraph", Box::new(LiveGraphStore::new())),
        ("WBI", Box::new(WindBellIndex::new())),
        ("AdjList", Box::new(AdjacencyListGraph::new())),
    ]
}

fn main() {
    let dataset = generate(DatasetKind::NotreDame, 0.01, 11);
    let edges = dataset.distinct_edges();
    println!("dataset: NotreDame-like, {} distinct edges\n", edges.len());
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12}",
        "scheme", "insert (Mops)", "query (Mops)", "memory (MB)", "SSSP (ms)"
    );

    for (name, mut graph) in schemes() {
        let start = Instant::now();
        for &(u, v) in &edges {
            graph.insert_edge(u, v);
        }
        let insert_mops = edges.len() as f64 / start.elapsed().as_secs_f64() / 1e6;

        let start = Instant::now();
        let mut hits = 0usize;
        for &(u, v) in &edges {
            if graph.has_edge(u, v) {
                hits += 1;
            }
        }
        let query_mops = edges.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
        assert_eq!(hits, edges.len(), "{name} lost edges");

        let start = Instant::now();
        let reached: usize = analytics::sssp_from_top_degree(graph.as_ref(), 5)
            .iter()
            .sum();
        let sssp_ms = start.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:<12} {:>14.3} {:>14.3} {:>12.3} {:>12.2}",
            name,
            insert_mops,
            query_mops,
            graph.memory_mb(),
            sssp_ms
        );
        std::hint::black_box(reached);
    }

    println!(
        "\nExpected shape (paper, Figures 6/7/11): CuckooGraph leads insert & query throughput \
         with the smallest memory footprint; Spruce is the closest competitor; WBI trails on \
         traversal-heavy work."
    );
}
