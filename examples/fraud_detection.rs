//! Financial fraud detection — the second motivating application of § I
//! (fraud detection in transactional systems).
//!
//! Money-mule rings show up as short cycles and dense triangles in the
//! transaction graph, and they change constantly — which is why a dynamic
//! structure with fast edge queries matters. This example streams synthetic
//! transactions, flags accounts involved in suspicious triangles, and shows
//! how deletions (chargebacks) keep the structure tight.
//!
//! ```text
//! cargo run --release --example fraud_detection
//! ```

use cuckoograph_repro::graph_analytics as analytics;
use cuckoograph_repro::prelude::*;

fn main() {
    let mut transactions = CuckooGraph::new();

    // Normal traffic: customers pay merchants (a bipartite-ish pattern with
    // few cycles).
    for customer in 0..2_000u64 {
        for k in 0..5u64 {
            let merchant = 10_000 + (customer * 7 + k * 13) % 500;
            transactions.insert_edge(customer, merchant);
        }
    }

    // A fraud ring: a small set of accounts cycling money among themselves.
    let ring: Vec<u64> = (90_000..90_008u64).collect();
    for (i, &a) in ring.iter().enumerate() {
        for (j, &b) in ring.iter().enumerate() {
            if i != j {
                transactions.insert_edge(a, b);
            }
        }
    }
    println!("transactions stored : {}", transactions.edge_count());
    println!("accounts            : {}", transactions.node_count());
    println!("memory              : {:.2} MB", transactions.memory_mb());

    // Triangle counting around the most active accounts exposes the ring:
    // normal customers and merchants sit in ~0 triangles, ring members in
    // many. The candidate set covers the busiest accounts (merchants receive
    // ~20 payments each, so the list must be wide enough to reach the ring).
    let candidates = analytics::top_degree_nodes(&transactions, 600);
    let mut flagged: Vec<(u64, usize)> = candidates
        .iter()
        .map(|&account| {
            (
                account,
                analytics::triangles_containing(&transactions, account),
            )
        })
        .filter(|&(_, triangles)| triangles > 0)
        .collect();
    flagged.sort_by_key(|&(_, t)| std::cmp::Reverse(t));

    println!("\naccounts involved in transaction triangles:");
    for (account, triangles) in &flagged {
        println!("  account {account:>6}  triangles {triangles}");
    }
    assert!(
        flagged.iter().all(|(account, _)| ring.contains(account)),
        "only ring members should be flagged"
    );

    // The ring is confirmed: connected components over the flagged accounts
    // show one tight cluster.
    let flagged_ids: Vec<u64> = flagged.iter().map(|&(a, _)| a).collect();
    let components = analytics::connected_components(&transactions, &flagged_ids);
    println!(
        "\nflagged accounts form {} strongly connected component(s); largest has {} members",
        components.count,
        components.largest()
    );

    // Chargebacks: the ring's edges are removed, and the structure contracts.
    let before = transactions.memory_bytes();
    for &a in &ring {
        for &b in &ring {
            if a != b {
                transactions.delete_edge(a, b);
            }
        }
    }
    println!("\nafter removing the ring:");
    println!("  edges  : {}", transactions.edge_count());
    println!(
        "  memory : {} bytes (was {before})",
        transactions.memory_bytes()
    );
    println!(
        "  contractions performed: {}",
        transactions.stats().contractions
    );
}
