//! End-to-end tests of the two database integrations (§ V-F and § V-G):
//! the Redis-like store with the CuckooGraph module, and the Neo4j-like
//! property graph with the CuckooGraph edge index, driven by generated
//! datasets rather than hand-picked edges.

use cuckoograph_repro::graph_datasets::{generate, parse_snap_edge_list, DatasetKind};
use cuckoograph_repro::graphdb::PropertyGraph;
use cuckoograph_repro::kvstore::{CuckooGraphModule, Reply, RespValue, Server};
use std::collections::HashSet;

fn cmd(parts: &[&str]) -> Vec<String> {
    parts.iter().map(|s| s.to_string()).collect()
}

#[test]
fn kvstore_module_ingests_a_caida_like_trace_and_survives_persistence() {
    let trace = generate(DatasetKind::Caida, 0.0006, 31);
    let mut server = Server::new();
    server.load_module(Box::new(CuckooGraphModule::new()));

    for &(u, v) in &trace.raw_edges {
        let reply = server.execute(&cmd(&[
            "graph.insert",
            "flows",
            &u.to_string(),
            &v.to_string(),
        ]));
        assert!(matches!(reply, Reply::Integer(w) if w >= 1));
    }

    // Every distinct edge is queryable, with a weight equal to its
    // multiplicity in the raw stream.
    let mut multiplicity: std::collections::HashMap<(u64, u64), i64> =
        std::collections::HashMap::new();
    for &e in &trace.raw_edges {
        *multiplicity.entry(e).or_insert(0) += 1;
    }
    for (&(u, v), &count) in multiplicity.iter().take(500) {
        let reply = server.execute(&cmd(&[
            "graph.query",
            "flows",
            &u.to_string(),
            &v.to_string(),
        ]));
        assert_eq!(reply, Reply::Integer(count), "weight of ({u}, {v})");
    }

    // RDB round trip preserves weights.
    let snapshot = server.save_rdb();
    let mut restored = Server::new();
    restored.load_module(Box::new(CuckooGraphModule::new()));
    restored.load_rdb(&snapshot).expect("snapshot loads");
    for (&(u, v), &count) in multiplicity.iter().take(200) {
        let reply = restored.execute(&cmd(&[
            "graph.query",
            "flows",
            &u.to_string(),
            &v.to_string(),
        ]));
        assert_eq!(
            reply,
            Reply::Integer(count),
            "restored weight of ({u}, {v})"
        );
    }

    // AOF rewrite emits exactly one rebuild command per distinct edge.
    restored.aof_rewrite();
    assert_eq!(restored.aof_len(), multiplicity.len());
}

#[test]
fn kvstore_resp_wire_protocol_round_trips_module_commands() {
    let mut server = Server::new();
    server.load_module(Box::new(CuckooGraphModule::new()));
    let insert = RespValue::command(&["graph.insert", "g", "10", "20"]).encode();
    let reply = server.execute_resp(&insert);
    assert_eq!(&reply[..], b":1\r\n");
    let query = RespValue::command(&["graph.query", "g", "10", "20"]).encode();
    assert_eq!(&server.execute_resp(&query)[..], b":1\r\n");
    let neighbors = RespValue::command(&["graph.getneighbors", "g", "10"]).encode();
    assert_eq!(&server.execute_resp(&neighbors)[..], b"*1\r\n$2\r\n20\r\n");
}

#[test]
fn graphdb_index_and_scan_agree_on_a_generated_trace() {
    let trace = generate(DatasetKind::Caida, 0.0004, 32);
    let mut db = PropertyGraph::with_cuckoo_index();
    for &(u, v) in &trace.raw_edges {
        db.create_relationship(u, v, "FLOW");
    }
    assert_eq!(db.relationship_count(), trace.raw_edges.len());

    let distinct: HashSet<(u64, u64)> = trace.raw_edges.iter().copied().collect();
    for &(u, v) in distinct.iter().take(800) {
        let (via_index, _) = db.relationships_between(u, v);
        let (via_scan, cost) = db.relationships_between_scan(u, v);
        let a: HashSet<_> = via_index.iter().copied().collect();
        let b: HashSet<_> = via_scan.iter().copied().collect();
        assert_eq!(a, b, "index and scan disagree for ({u}, {v})");
        assert!(
            cost.relationships_scanned >= via_scan.len(),
            "scan cost must cover at least the matches"
        );
    }
}

#[test]
fn graphdb_relationship_deletion_keeps_index_and_chains_in_sync() {
    let trace = generate(DatasetKind::SparseGraph, 0.0002, 33);
    let mut db = PropertyGraph::with_cuckoo_index();
    let mut created = Vec::new();
    for &(u, v) in &trace.raw_edges {
        created.push((u, v, db.create_relationship(u, v, "LINK")));
    }
    // Delete half of the relationships.
    for &(_, _, rel) in created.iter().step_by(2) {
        assert!(db.delete_relationship(rel));
    }
    for (i, &(u, v, rel)) in created.iter().enumerate() {
        let (matches, _) = db.relationships_between(u, v);
        let should_exist = i % 2 == 1;
        assert_eq!(
            matches.contains(&rel),
            should_exist,
            "relationship {rel} existence mismatch"
        );
    }
}

#[test]
fn snap_loader_feeds_the_whole_pipeline() {
    // A small edge list in SNAP format goes through the loader, into
    // CuckooGraph, and out through the kvstore module — exercising the same
    // path a user with a real downloaded dataset would take.
    let text = "# toy web graph\n1 2\n2 3\n3 1\n3 4\n";
    let edges = parse_snap_edge_list(text.as_bytes()).unwrap();
    assert_eq!(edges.len(), 4);

    let mut server = Server::new();
    server.load_module(Box::new(CuckooGraphModule::new()));
    for &(u, v) in &edges {
        server.execute(&cmd(&[
            "graph.insert",
            "web",
            &u.to_string(),
            &v.to_string(),
        ]));
    }
    let reply = server.execute(&cmd(&["graph.getneighbors", "web", "3"]));
    assert_eq!(
        reply,
        Reply::Array(vec![Reply::Bulk("1".into()), Reply::Bulk("4".into())])
    );
}
