//! Property tests for the PR-6 memory layer: table pooling and the slot
//! arena.
//!
//! The table pool only changes where a fresh table's buffers *come from*
//! (recycled vs allocator), never what they contain — so a pool-on graph and
//! a pool-off graph driven through the same operation sequence must be
//! structurally identical: same edge set, same successor sets, same stats
//! (up to the pool's own counters). The tests pin that equivalence under
//! random insert/delete churn, serially and sharded, and additionally pin
//! the PR-6 satellite fixes: loading-rate aggregates must reflect live
//! tables only (recycled buffer capacity never leaks into `lcht_cells`),
//! and arena compaction must be a pure relayout (same graph before and
//! after, free list drained, remap applied to every cell including parked
//! L-DL cells).

use cuckoograph::{
    CuckooGraph, CuckooGraphConfig, MemoryFootprint, NodeId, ShardedCuckooGraph, StructureStats,
    WeightedCuckooGraph,
};
use graph_api::{DynamicGraph, WeightedDynamicGraph};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One operation of the randomised churn workload. Weighted towards inserts
/// so graphs grow through expansion thresholds, with enough deletes to drive
/// contractions and chain collapses (the paths that exercise the pool).
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64, u64),
    BatchInsert(u64),
    BatchRemove(u64),
}

fn op_strategy(nodes: u64, fanout: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..nodes, 0..fanout).prop_map(|(u, v)| Op::Insert(u, v)),
        3 => (0..nodes, 0..fanout).prop_map(|(u, v)| Op::Delete(u, v)),
        1 => (0..nodes).prop_map(Op::BatchInsert),
        1 => (0..nodes).prop_map(Op::BatchRemove),
    ]
}

/// Expands an op into the concrete edge list it acts on. Batch ops touch a
/// whole adjacency run so chains expand/contract in bulk — the heaviest
/// TRANSFORMATION traffic, hence the heaviest pool traffic.
fn edges_of(op: &Op, fanout: u64) -> (bool, Vec<(NodeId, NodeId)>) {
    match *op {
        Op::Insert(u, v) => (true, vec![(u, v)]),
        Op::Delete(u, v) => (false, vec![(u, v)]),
        Op::BatchInsert(u) => (true, (0..4 * fanout).map(|v| (u, v)).collect()),
        Op::BatchRemove(u) => (false, (0..4 * fanout).map(|v| (u, v)).collect()),
    }
}

/// Zeroes the counters that legitimately differ between a pool-on and a
/// pool-off run (hit/miss split and idle retained capacity); everything
/// else — including `pool_retired`, which counts the same TRANSFORMATION
/// events either way — must match exactly.
fn neutralize_pool(mut s: StructureStats) -> StructureStats {
    s.pool_hits = 0;
    s.pool_misses = 0;
    s.pool_retained_bytes = 0;
    s
}

fn sorted_edges(g: &CuckooGraph) -> Vec<(NodeId, NodeId)> {
    let mut e = g.edges();
    e.sort_unstable();
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pool-on and pool-off engines driven through the same churn sequence
    /// are indistinguishable from the outside: identical edge sets,
    /// successor sets (fast and scalar scan), degrees, and stats modulo the
    /// pool's own counters. Memory may differ only by what the pool
    /// honestly reports as retained.
    #[test]
    fn pooled_graph_matches_pool_off_oracle_under_churn(
        ops in prop::collection::vec(op_strategy(24, 40), 1..120),
        seed in 0u64..1_000
    ) {
        let config = CuckooGraphConfig::default()
            .with_lcht_base_len(4)
            .with_scht_base_len(4)
            .with_seed(seed);
        let mut pooled = CuckooGraph::with_config(config.clone().with_table_pool(true));
        let mut oracle = CuckooGraph::with_config(config.with_table_pool(false));

        for op in &ops {
            let (insert, edges) = edges_of(op, 40);
            if insert {
                prop_assert_eq!(pooled.insert_edges(&edges), oracle.insert_edges(&edges));
            } else {
                prop_assert_eq!(pooled.remove_edges(&edges), oracle.remove_edges(&edges));
            }
        }

        prop_assert_eq!(sorted_edges(&pooled), sorted_edges(&oracle));
        for u in 0..24u64 {
            let mut a = pooled.successors(u);
            let mut b = oracle.successors(u);
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(&a, &b, "successors of {} diverge", u);
            let mut scalar = Vec::new();
            pooled.for_each_successor_scalar(u, &mut |v| scalar.push(v));
            scalar.sort_unstable();
            prop_assert_eq!(&scalar, &a, "scalar scan of {} diverges", u);
            prop_assert_eq!(pooled.out_degree(u), oracle.out_degree(u));
        }

        let ps = pooled.stats();
        let os = oracle.stats();
        prop_assert_eq!(os.pool_hits, 0, "disabled pool served a hit");
        prop_assert_eq!(os.pool_retained_bytes, 0, "disabled pool retained bytes");
        prop_assert_eq!(neutralize_pool(ps.clone()), neutralize_pool(os));

        // Pooling may only add what it honestly reports as retained, plus the
        // ride-along capacity of live tables born from recycled buffers —
        // which `TablePool::acquire` caps at 4× each table's geometric size.
        let retained = ps.pool_retained_bytes;
        prop_assert!(
            pooled.memory_bytes() <= 4 * oracle.memory_bytes() + retained,
            "pooled memory exceeds capacity-capped bound: {} > 4 * {} + {}",
            pooled.memory_bytes(), oracle.memory_bytes(), retained
        );
    }

    /// The same equivalence holds across the sharded fan-out: each shard's
    /// pool is private, so N pooled shards must match N pool-off shards.
    #[test]
    fn sharded_pooled_matches_sharded_pool_off(
        ops in prop::collection::vec(op_strategy(48, 30), 1..60),
        shards in 1usize..5
    ) {
        let config = CuckooGraphConfig::default()
            .with_lcht_base_len(4)
            .with_scht_base_len(4);
        let mut pooled =
            ShardedCuckooGraph::with_config(shards, config.clone().with_table_pool(true));
        let mut oracle = ShardedCuckooGraph::with_config(shards, config.with_table_pool(false));

        for op in &ops {
            let (insert, edges) = edges_of(op, 30);
            if insert {
                prop_assert_eq!(pooled.insert_edges(&edges), oracle.insert_edges(&edges));
            } else {
                prop_assert_eq!(pooled.remove_edges(&edges), oracle.remove_edges(&edges));
            }
        }

        let a: BTreeSet<(NodeId, NodeId)> = pooled.par_edges().into_iter().collect();
        let b: BTreeSet<(NodeId, NodeId)> = oracle.par_edges().into_iter().collect();
        prop_assert_eq!(a, b);
        prop_assert_eq!(
            neutralize_pool(pooled.stats()),
            neutralize_pool(oracle.stats())
        );
    }

    /// Satellite 2 pin: capacity-derived aggregates count **live** tables
    /// only. Recycled buffers carry excess `Vec` capacity, and before PR 6's
    /// fix a capacity-based `lcht_cells` would have inflated under pooled
    /// reuse, deflating the loading rate. After arbitrary churn the pooled
    /// and pool-off shapes must report identical cell counts and a loading
    /// rate that is exactly nodes / cells.
    #[test]
    fn loading_rate_reflects_live_tables_after_pooled_churn(
        ops in prop::collection::vec(op_strategy(32, 24), 1..100)
    ) {
        let config = CuckooGraphConfig::default()
            .with_lcht_base_len(4)
            .with_scht_base_len(4);
        let mut pooled = CuckooGraph::with_config(config.clone().with_table_pool(true));
        let mut oracle = CuckooGraph::with_config(config.with_table_pool(false));
        for op in &ops {
            let (insert, edges) = edges_of(op, 24);
            if insert {
                pooled.insert_edges(&edges);
                oracle.insert_edges(&edges);
            } else {
                pooled.remove_edges(&edges);
                oracle.remove_edges(&edges);
            }
        }
        let ps = pooled.stats();
        let os = oracle.stats();
        prop_assert_eq!(ps.lcht_cells, os.lcht_cells, "pooled reuse inflated capacity");
        prop_assert_eq!(ps.scht_slots, os.scht_slots, "pooled reuse inflated slots");
        let rate = ps.lcht_loading_rate();
        if ps.nodes > 0 {
            prop_assert!(rate > 0.0 && rate <= 1.0, "loading rate out of range: {}", rate);
            prop_assert!(
                (rate - ps.nodes as f64 / ps.lcht_cells as f64).abs() < 1e-12,
                "loading rate not nodes/cells"
            );
        }
    }

    /// Arena compaction is a pure relayout: after random churn (which frees
    /// blocks through TRANSFORMATIONS and collapses), `compact_arena` must
    /// drain the free list, reclaim slab memory, and leave every query
    /// answer — including post-compaction mutations — unchanged.
    #[test]
    fn arena_compaction_round_trips_under_churn(
        ops in prop::collection::vec(op_strategy(32, 24), 1..100)
    ) {
        let config = CuckooGraphConfig::default()
            .with_lcht_base_len(4)
            .with_scht_base_len(4);
        let mut g = CuckooGraph::with_config(config);
        for op in &ops {
            let (insert, edges) = edges_of(op, 24);
            if insert {
                g.insert_edges(&edges);
            } else {
                g.remove_edges(&edges);
            }
        }

        let before_edges = sorted_edges(&g);
        let before = g.stats();
        let freed = g.compact_arena();
        prop_assert_eq!(freed, before.arena_free_blocks, "compaction miscounted");
        let after = g.stats();
        prop_assert_eq!(after.arena_free_blocks, 0, "free list survived compaction");
        prop_assert_eq!(
            after.arena_blocks,
            before.arena_blocks - before.arena_free_blocks
        );
        prop_assert_eq!(sorted_edges(&g), before_edges, "compaction changed the graph");

        // The compacted graph keeps working: mutate through every remapped
        // block and re-verify.
        for u in 0..32u64 {
            let mut s = g.successors(u);
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), g.out_degree(u), "degree diverges after compaction");
            g.insert_edge(u, 1_000_000);
            prop_assert!(g.has_edge(u, 1_000_000));
            g.delete_edge(u, 1_000_000);
            prop_assert!(!g.has_edge(u, 1_000_000));
        }
        prop_assert_eq!(sorted_edges(&g), before_edges);
    }
}

/// The weighted variant shares the engine, but its payloads carry state the
/// equivalence must also cover (weights survive pooled rebuilds bit-exactly).
#[test]
fn weighted_pooled_matches_pool_off_oracle() {
    let config = CuckooGraphConfig::default()
        .with_lcht_base_len(4)
        .with_scht_base_len(4);
    let mut pooled = WeightedCuckooGraph::with_config(config.clone().with_table_pool(true));
    let mut oracle = WeightedCuckooGraph::with_config(config.with_table_pool(false));
    let items: Vec<(NodeId, NodeId, u64)> = (0..6_000u64)
        .map(|i| (i % 40, (i * 7) % 90, i % 3 + 1))
        .collect();
    // Several grow/shrink cycles: tables retired by one round's contractions
    // must be reborn (from the pool) by the next round's expansions.
    for _ in 0..3 {
        pooled.insert_weighted_edges(&items);
        oracle.insert_weighted_edges(&items);
        for u in 0..40u64 {
            for v in 0..90u64 {
                if v % 2 == 0 {
                    assert_eq!(
                        pooled.delete_weighted(u, v, u64::MAX),
                        oracle.delete_weighted(u, v, u64::MAX)
                    );
                }
            }
        }
    }
    assert_eq!(pooled.total_weight(), oracle.total_weight());
    for u in 0..40u64 {
        let mut a = pooled.weighted_successors(u);
        let mut b = oracle.weighted_successors(u);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "weighted successors of {u} diverge");
    }
    let stats = pooled.stats();
    assert!(
        stats.pool_hits > 0,
        "churn this heavy must recycle tables: {stats:?}"
    );
    assert_eq!(neutralize_pool(stats), neutralize_pool(oracle.stats()));
}

/// Deterministic end-to-end pin of the pool's purpose: a grow/shrink cycle
/// repeated many times must serve most table births from the pool (hits
/// dominate misses) while retaining only the capped, honestly-reported
/// buffers.
#[test]
fn churn_cycles_are_served_from_the_pool() {
    let mut g = CuckooGraph::with_config(
        CuckooGraphConfig::default()
            .with_lcht_base_len(4)
            .with_scht_base_len(4),
    );
    let edges: Vec<(NodeId, NodeId)> = (0..8u64)
        .flat_map(|u| (0..200u64).map(move |v| (u, v)))
        .collect();
    for _ in 0..10 {
        g.insert_edges(&edges);
        g.remove_edges(&edges);
    }
    let s = g.stats();
    assert!(
        s.pool_hits > s.pool_misses,
        "pool hits ({}) should dominate misses ({}) under cyclic churn",
        s.pool_hits,
        s.pool_misses
    );
    assert!(s.pool_retired > 0);
    assert_eq!(g.edge_count(), 0);
}
