//! Property tests for the PR-7 concurrency layer: lock-free reads under
//! ingest.
//!
//! The seqlock/epoch protocol changes *when* a query runs relative to a
//! shard's writer (between mutation windows instead of after the whole
//! batch), never *what* either side computes — so three equivalences must
//! hold under randomized insert/delete/expand/contract interleavings:
//!
//! 1. **Safety under races**: readers running concurrently with a writer see
//!    only committed states — every never-deleted edge on every pass, no
//!    never-inserted edge ever, and successor sets drawn entirely from the
//!    values some batch actually wrote.
//! 2. **Result equivalence**: once the writer finishes, the concurrently
//!    mutated graph is identical to a serially driven oracle fed the same
//!    batches in the same order.
//! 3. **Oracle-path pinning**: `with_concurrent_reads(false)` — the
//!    exclusive writer-gate path — produces bit-identical results to the
//!    concurrent path and to the classic `&mut` surface, so the pre-PR-7
//!    behaviour remains live and comparable.
//!
//! Plus honest accounting: epoch advances equal the number of mutation
//! windows the batches mathematically must open, and reader pins equal the
//! reads issued.

use cuckoograph::{CuckooGraph, CuckooGraphConfig, NodeId, ShardedCuckooGraph};
use graph_api::DynamicGraph;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Churn batch sizes stay well past one ingest chunk (512) so every run
/// opens several mutation windows per batch.
#[cfg(debug_assertions)]
const CHURN_EDGES: u64 = 1_500;
#[cfg(not(debug_assertions))]
const CHURN_EDGES: u64 = 4_000;

#[cfg(debug_assertions)]
const CASES: u32 = 8;
#[cfg(not(debug_assertions))]
const CASES: u32 = 24;

/// Sources are split into three disjoint bands so reader assertions are
/// exact no matter where the writer is mid-batch: stable sources are never
/// mutated after setup, churn sources flap, phantom sources never exist.
const STABLE_BASE: u64 = 0;
const CHURN_BASE: u64 = 1_000_000;
const PHANTOM_BASE: u64 = 2_000_000;

fn stable_edges(seed: u64) -> Vec<(NodeId, NodeId)> {
    (0..CHURN_EDGES / 2)
        .map(|i| {
            (
                STABLE_BASE + (i.wrapping_mul(seed | 1)) % 61,
                (i.wrapping_mul(31)) % 500,
            )
        })
        .collect()
}

fn churn_edges(seed: u64) -> Vec<(NodeId, NodeId)> {
    (0..CHURN_EDGES)
        .map(|i| {
            (
                CHURN_BASE + (i.wrapping_mul(seed | 1)) % 37,
                (i.wrapping_mul(17)) % 800,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Readers racing a churning writer observe only committed states, and
    /// the final graph matches a serial oracle fed the same batches.
    #[test]
    fn concurrent_readers_agree_with_the_locked_oracle(
        seed in 1u64..500,
        shards in 1usize..5,
        waves in 2usize..5,
    ) {
        let g = ShardedCuckooGraph::with_config(
            shards,
            CuckooGraphConfig::default().with_seed(seed),
        );
        let stable = stable_edges(seed);
        let churn = churn_edges(seed);
        g.ingest_batch(&stable);

        let churn_targets: BTreeSet<NodeId> = churn.iter().map(|&(_, v)| v).collect();
        let writer_done = AtomicBool::new(false);
        let reads = AtomicU64::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for _ in 0..waves {
                    g.ingest_batch(&churn);
                    g.remove_batch(&churn);
                }
                g.ingest_batch(&churn);
                writer_done.store(true, Ordering::SeqCst);
            });
            scope.spawn(|| {
                let view = g.read_view();
                let mut first_pass = true;
                while first_pass || !writer_done.load(Ordering::SeqCst) {
                    first_pass = false;
                    // Stable edges are never deleted: visible on every pass.
                    for &(u, v) in stable.iter().step_by(97) {
                        assert!(view.has_edge(u, v), "lost committed edge ({u}, {v})");
                        reads.fetch_add(1, Ordering::Relaxed);
                    }
                    // Phantom sources are never inserted: invisible forever.
                    for p in 0..4u64 {
                        assert!(
                            !view.has_edge(PHANTOM_BASE + p, p),
                            "phantom edge materialised"
                        );
                        assert_eq!(view.out_degree(PHANTOM_BASE + p), 0);
                    }
                    // A churn source's successors may be any committed subset
                    // of its batch, but never values no batch ever wrote.
                    let u = CHURN_BASE + (seed % 37);
                    view.for_each_successor(u, &mut |v| {
                        assert!(
                            churn_targets.contains(&v),
                            "successor {v} of churn source {u} was never written"
                        );
                    });
                }
            });
        });
        prop_assert!(reads.load(Ordering::Relaxed) > 0);

        // Result equivalence: the same batches, driven serially through the
        // exclusive surface, give the identical graph.
        let mut oracle = ShardedCuckooGraph::with_config(
            shards,
            CuckooGraphConfig::default().with_seed(seed),
        );
        oracle.insert_edges(&stable);
        for _ in 0..waves {
            oracle.insert_edges(&churn);
            oracle.remove_edges(&churn);
        }
        oracle.insert_edges(&churn);
        prop_assert_eq!(g.edge_count(), oracle.edge_count());
        prop_assert_eq!(g.node_count(), oracle.node_count());
        let mut ours: Vec<(NodeId, NodeId)> = Vec::new();
        g.for_each_edge(|u, v| ours.push((u, v)));
        let mut theirs: Vec<(NodeId, NodeId)> = Vec::new();
        oracle.for_each_edge(|u, v| theirs.push((u, v)));
        ours.sort_unstable();
        theirs.sort_unstable();
        prop_assert_eq!(ours, theirs);
    }

    /// `with_concurrent_reads(false)` pins the pre-PR-7 exclusive path: the
    /// oracle mode, the concurrent mode, and the classic `&mut` surface all
    /// produce identical graphs and (modulo the read/epoch counter block)
    /// identical stats for the same operation sequence.
    #[test]
    fn oracle_mode_is_pinned_to_the_exclusive_path(
        seed in 1u64..500,
        shards in 1usize..5,
    ) {
        let config = CuckooGraphConfig::default().with_seed(seed);
        let stable = stable_edges(seed);
        let churn = churn_edges(seed);

        let concurrent = ShardedCuckooGraph::with_config(shards, config.clone());
        let oracle = ShardedCuckooGraph::with_config(
            shards,
            config.clone().with_concurrent_reads(false),
        );
        let mut exclusive = ShardedCuckooGraph::with_config(shards, config.clone());

        for g in [&concurrent, &oracle] {
            g.ingest_batch(&stable);
            g.ingest_batch(&churn);
            g.remove_batch(&churn);
        }
        exclusive.insert_edges(&stable);
        exclusive.insert_edges(&churn);
        exclusive.remove_edges(&churn);

        for (name, g) in [("concurrent", &concurrent), ("oracle", &oracle)] {
            prop_assert_eq!(g.edge_count(), exclusive.edge_count(), "{}", name);
            let mut ours: Vec<(NodeId, NodeId)> = Vec::new();
            g.for_each_edge(|u, v| ours.push((u, v)));
            let mut theirs: Vec<(NodeId, NodeId)> = Vec::new();
            exclusive.for_each_edge(|u, v| theirs.push((u, v)));
            ours.sort_unstable();
            theirs.sort_unstable();
            prop_assert_eq!(ours, theirs, "{} edge set diverged", name);
        }

        // Structural stats agree too, once the counters that legitimately
        // differ are neutralised: the read/epoch block, the deferral
        // routing, and the pool hit/miss split (a quarantined buffer is not
        // reusable until its window closes, so the concurrent path may miss
        // where the direct path hits — `pool_retired` still counts the same
        // TRANSFORMATION events either way).
        let mut a = concurrent.stats();
        let mut b = oracle.stats();
        let mut c = exclusive.stats();
        for s in [&mut a, &mut b, &mut c] {
            s.reader_retries = 0;
            s.read_pins = 0;
            s.epoch_advances = 0;
            s.pool_deferred = 0;
            s.pool_reclaimed = 0;
            s.pool_deferred_pending = 0;
            s.pool_hits = 0;
            s.pool_misses = 0;
            s.pool_retained_bytes = 0;
            // The scan arena's private pool quarantines under concurrent
            // writes too, so its retained bytes differ the same way; the
            // segment tombstone/compaction counters stay compared.
            s.segment_bytes = 0;
        }
        prop_assert_eq!(&a, &b, "concurrent vs oracle stats");
        prop_assert_eq!(&a, &c, "concurrent vs exclusive stats");

        // And the oracle mode never touched the concurrency machinery.
        let oracle_stats = oracle.stats();
        prop_assert_eq!(oracle_stats.read_pins, 0);
        prop_assert_eq!(oracle_stats.epoch_advances, 0);
        prop_assert_eq!(oracle_stats.pool_deferred, 0);
    }
}

/// Epoch and pin accounting is exact, not advisory: a single-shard graph
/// opens precisely `ceil(batch / 512)` mutation windows per shared-surface
/// batch, and every view read pins exactly once.
#[test]
fn epoch_and_pin_accounting_is_exact() {
    let g = ShardedCuckooGraph::new(1);
    let edges: Vec<(NodeId, NodeId)> = (0..1_300u64).map(|i| (i % 7, i)).collect();

    g.ingest_batch(&edges); // 1300 edges -> windows of 512/512/276 = 3
    assert_eq!(g.read_counters().epoch_advances, 3);
    g.remove_batch(&edges[..512]); // exactly one full window
    assert_eq!(g.read_counters().epoch_advances, 4);
    g.ingest_batch(&[]); // empty batch opens no window
    assert_eq!(g.read_counters().epoch_advances, 4);

    let before = g.read_counters().read_pins;
    let view = g.read_view();
    for i in 0..50u64 {
        view.has_edge(i % 7, i);
    }
    drop(view);
    assert_eq!(g.read_counters().read_pins, before + 50);
    assert_eq!(
        g.read_counters().reader_retries,
        0,
        "uncontended reads never retry"
    );
}

/// The serial engine is untouched by the protocol: its stats expose the new
/// counter block as zeros.
#[test]
fn serial_engine_reports_zero_concurrency_counters() {
    let mut g = CuckooGraph::new();
    g.insert_edges(&(0..2_000u64).map(|i| (i % 19, i)).collect::<Vec<_>>());
    let s = g.stats();
    assert_eq!(s.read_pins, 0);
    assert_eq!(s.reader_retries, 0);
    assert_eq!(s.epoch_advances, 0);
    assert_eq!(s.pool_deferred, 0);
    assert_eq!(s.pool_deferred_pending, 0);
}
