//! Property tests for the PR-4 probe path: the tagged, hash-memoized table
//! chain must behave exactly like a `BTreeMap` reference model under random
//! insert/update/delete/expand/contract interleavings, the cached aggregates
//! must never drift from the ground truth, and fingerprint collisions must
//! never compromise exactness.

use cuckoograph::chain::{ChainInsert, ChainParams, TableChain};
use cuckoograph::hash::KeyHash;
use cuckoograph::payload::{Payload, WeightedSlot};
use cuckoograph::rng::KickRng;
use cuckoograph::scht::CuckooTable;
use cuckoograph::RebuildScratch;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One operation of the randomised chain workload. `Expand`/`Contract` drive
/// the TRANSFORMATION machinery directly, on top of the organic expansions the
/// inserts trigger.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64),
    Query(u64),
    Expand,
    Contract,
}

fn op_strategy(keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..keys, 1u64..5).prop_map(|(v, w)| Op::Insert(v, w)),
        2 => (0..keys).prop_map(Op::Delete),
        2 => (0..keys).prop_map(Op::Query),
        // The vendored proptest shim has no `Just`; a trivial map stands in.
        1 => (0u64..1).prop_map(|_| Op::Expand),
        1 => (0u64..1).prop_map(|_| Op::Contract),
    ]
}

fn params() -> ChainParams {
    ChainParams {
        cells_per_bucket: 4,
        r: 3,
        expand_threshold: 0.9,
        contract_threshold: 0.5,
        max_kicks: 100,
        base_len: 4,
    }
}

/// Re-offers items displaced past the kick budget until they settle — the
/// role the denylists play inside the engine.
fn reinsert_all(
    chain: &mut TableChain<WeightedSlot>,
    homeless: Vec<WeightedSlot>,
    rng: &mut KickRng,
    p: &mut u64,
    s: &mut RebuildScratch<WeightedSlot>,
) {
    for item in homeless {
        chain.insert_forced(item, rng, p, s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tagged table chain agrees with a `BTreeMap<v, w>` model on every
    /// operation of a random interleaving, including explicit expansions and
    /// contractions, and its cached count/capacity/tag bytes stay consistent.
    #[test]
    fn tagged_chain_matches_btreemap_model(ops in prop::collection::vec(op_strategy(48), 1..600)) {
        let mut chain: TableChain<WeightedSlot> = TableChain::new(params(), 0xbeef);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut rng = KickRng::new(0x5eed);
        let mut p = 0u64;
        let mut s: RebuildScratch<WeightedSlot> = RebuildScratch::persistent();
        for op in ops {
            match op {
                Op::Insert(v, w) => {
                    let kh = KeyHash::new(v);
                    match model.entry(v) {
                        std::collections::btree_map::Entry::Occupied(mut e) => {
                            *e.get_mut() += w;
                            let slot = chain.get_mut(kh).expect("model has v, chain must too");
                            slot.w += w;
                        }
                        std::collections::btree_map::Entry::Vacant(e) => {
                            e.insert(w);
                            match chain.insert(WeightedSlot { v, w }, kh, &mut rng, &mut p, &mut s)
                            {
                                ChainInsert::Stored => {}
                                ChainInsert::Failed(item) => {
                                    // The engine would park this in a denylist;
                                    // here the forced path keeps the model exact.
                                    chain.insert_forced(item, &mut rng, &mut p, &mut s);
                                }
                            }
                        }
                    }
                }
                Op::Delete(v) => {
                    let removed = chain.remove(KeyHash::new(v));
                    let expected = model.remove(&v);
                    prop_assert_eq!(removed.map(|s| s.w), expected);
                }
                Op::Query(v) => {
                    let kh = KeyHash::new(v);
                    prop_assert_eq!(chain.get(kh).map(|s| s.w), model.get(&v).copied());
                    prop_assert_eq!(chain.contains(kh), model.contains_key(&v));
                    // The unmemoized reference probe is an oracle for the
                    // tagged path: they must never disagree.
                    prop_assert_eq!(chain.contains_unmemoized(v), model.contains_key(&v));
                }
                Op::Expand => {
                    let homeless = chain.expand(&mut rng, &mut p, &mut s);
                    reinsert_all(&mut chain, homeless, &mut rng, &mut p, &mut s);
                }
                Op::Contract => {
                    let homeless = chain.contract(&mut rng, &mut p, &mut s);
                    reinsert_all(&mut chain, homeless, &mut rng, &mut p, &mut s);
                }
            }
            prop_assert_eq!(chain.count(), model.len());
        }
        chain.assert_cached_consistent();
        for (&v, &w) in &model {
            prop_assert_eq!(chain.get(KeyHash::new(v)).map(|s| s.w), Some(w));
        }
    }

    /// Full-graph oracle: the memoized tagged query and the pre-change
    /// reference probe agree on hits and misses after arbitrary churn.
    #[test]
    fn unmemoized_reference_agrees_with_tagged_query(
        edges in prop::collection::hash_set((0u64..48, 0u64..48), 1..300),
        deleted in prop::collection::hash_set((0u64..48, 0u64..48), 0..100)
    ) {
        use cuckoograph::CuckooGraph;
        use graph_api::DynamicGraph;
        let mut g = CuckooGraph::new();
        for &(u, v) in &edges {
            g.insert_edge(u, v);
        }
        for &(u, v) in &deleted {
            g.delete_edge(u, v);
        }
        for u in 0..48u64 {
            for v in 0..48u64 {
                prop_assert_eq!(
                    g.has_edge(u, v),
                    g.has_edge_unmemoized(u, v),
                    "probe paths disagree on ({}, {})", u, v
                );
            }
        }
    }
}

/// Finds a key whose fingerprint matches `reference` but whose key differs —
/// with 7-bit fingerprints one appears within a few hundred candidates.
fn find_fingerprint_collision(reference: u64) -> u64 {
    let fp = KeyHash::new(reference).fingerprint();
    (reference + 1..)
        .find(|&k| KeyHash::new(k).fingerprint() == fp)
        .expect("7-bit fingerprint space collides quickly")
}

/// Directed tag-collision test: two different keys with the *same* 7-bit
/// fingerprint, stored in the *same* bucket (a length-1 table has exactly one
/// bucket per array, so every key is a bucket collision by construction).
/// The tag fast-path must fall through to the full key compare and stay exact.
#[test]
fn tag_collisions_never_compromise_exactness() {
    let k1 = 7u64;
    let k2 = find_fingerprint_collision(k1);
    assert_ne!(k1, k2);
    assert_eq!(
        KeyHash::new(k1).fingerprint(),
        KeyHash::new(k2).fingerprint()
    );

    // Length-1 table: both arrays have a single bucket, so k1 and k2 collide
    // on bucket *and* tag in both arrays — the worst case for a tagged probe.
    let mut t: CuckooTable<u64> = CuckooTable::new(1, 8, 0x7a65);
    let mut rng = KickRng::new(1);
    let mut p = 0u64;

    t.insert(k1, KeyHash::new(k1), &mut rng, 50, &mut p)
        .unwrap();
    // Same tag, same bucket, different key: must miss.
    assert!(
        !t.contains(KeyHash::new(k2)),
        "tag collision produced a false hit"
    );
    assert!(t.get(KeyHash::new(k2)).is_none());
    assert_eq!(
        t.remove(KeyHash::new(k2)),
        None,
        "tag collision removed the wrong key"
    );
    assert!(t.contains(KeyHash::new(k1)));

    // Both collide into the same bucket and coexist, each exactly findable.
    t.insert(k2, KeyHash::new(k2), &mut rng, 50, &mut p)
        .unwrap();
    assert_eq!(t.get(KeyHash::new(k1)), Some(&k1));
    assert_eq!(t.get(KeyHash::new(k2)), Some(&k2));

    // Removing one must not disturb its tag twin.
    assert_eq!(t.remove(KeyHash::new(k1)), Some(k1));
    assert!(!t.contains(KeyHash::new(k1)));
    assert_eq!(t.get(KeyHash::new(k2)), Some(&k2));
    t.assert_tags_consistent();
}

/// The same collision pair driven through a whole chain (which adds the
/// per-table multiply-shift on top): exactness must survive expansions that
/// redistribute the twins.
#[test]
fn tag_collisions_survive_chain_expansions() {
    let k1 = 3u64;
    let k2 = find_fingerprint_collision(k1);
    let mut chain: TableChain<u64> = TableChain::new(params(), 0x51ab);
    let mut rng = KickRng::new(2);
    let mut p = 0u64;
    let mut s: RebuildScratch<u64> = RebuildScratch::persistent();
    for k in [k1, k2] {
        chain.insert_forced(k, &mut rng, &mut p, &mut s);
    }
    // Grow through several shapes; the twins must stay distinct throughout.
    for fill in 1000..1200u64 {
        chain.insert_forced(fill, &mut rng, &mut p, &mut s);
        assert_eq!(chain.get(KeyHash::new(k1)), Some(&k1));
        assert_eq!(chain.get(KeyHash::new(k2)), Some(&k2));
    }
    assert_eq!(chain.remove(KeyHash::new(k2)), Some(k2));
    assert!(chain.contains(KeyHash::new(k1)));
    assert!(!chain.contains(KeyHash::new(k2)));
    chain.assert_cached_consistent();
}

/// `key_hash` on payloads is exactly `KeyHash::new(key())` — the contract the
/// kick-out walk relies on when re-hashing victims.
#[test]
fn payload_key_hash_contract() {
    let slot = WeightedSlot { v: 42, w: 7 };
    assert_eq!(slot.key_hash(), KeyHash::new(42));
}
