//! Property tests for the PR-5 SWAR scan path: every word-at-a-time tag scan
//! (fingerprint probe, first-empty search, occupancy iteration) must agree
//! bit-for-bit with the scalar byte loops it replaced — over arbitrary tag
//! patterns (including the `0x80` zero-fingerprint tag and every bucket width
//! `d` in `1..=8`), at the table level, and through chain shapes churned by
//! random expansions and contractions.

use cuckoograph::chain::{ChainInsert, ChainParams, TableChain};
use cuckoograph::hash::KeyHash;
use cuckoograph::rng::KickRng;
use cuckoograph::scht::CuckooTable;
use cuckoograph::swar;
use cuckoograph::{CuckooGraph, RebuildScratch, ShardedCuckooGraph};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn eq_positions(tags: &[u8], tag: u8) -> Vec<usize> {
    let mut out = Vec::new();
    swar::scan_eq(tags, tag, |i| {
        out.push(i);
        false
    });
    out
}

fn eq_positions_scalar(tags: &[u8], tag: u8) -> Vec<usize> {
    let mut out = Vec::new();
    swar::scan_eq_scalar(tags, tag, |i| {
        out.push(i);
        false
    });
    out
}

fn occupied_positions(tags: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    swar::scan_occupied(tags, |i| out.push(i));
    out
}

fn occupied_positions_scalar(tags: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    swar::scan_occupied_scalar(tags, |i| out.push(i));
    out
}

/// One operation of the randomised chain-iteration workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Delete(u64),
    Expand,
    Contract,
}

fn op_strategy(keys: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..keys).prop_map(Op::Insert),
        2 => (0..keys).prop_map(Op::Delete),
        // The vendored proptest shim has no `Just`; a trivial map stands in.
        1 => (0u64..1).prop_map(|_| Op::Expand),
        1 => (0u64..1).prop_map(|_| Op::Contract),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SWAR slice scans agree with the scalar loops on *arbitrary* byte
    /// patterns — not just well-formed tags — for every length (exact words
    /// plus tails) and every needle value.
    #[test]
    fn swar_slice_scans_match_scalar_on_arbitrary_bytes(
        tags in prop::collection::vec(0u8..255, 0..40),
        needle in 0u8..255
    ) {
        prop_assert_eq!(eq_positions(&tags, needle), eq_positions_scalar(&tags, needle));
        prop_assert_eq!(swar::find_eq(&tags, needle), swar::find_eq_scalar(&tags, needle));
        prop_assert_eq!(occupied_positions(&tags), occupied_positions_scalar(&tags));
        // The empty-tag search backs first-empty-slot placement: exercise it
        // explicitly on every pattern (padding lanes also read as zero, so
        // this pins the tail guard).
        prop_assert_eq!(eq_positions(&tags, 0), eq_positions_scalar(&tags, 0));
    }

    /// Well-formed tag patterns (`0` = empty, `0x80 | fp` = occupied),
    /// deliberately including `fp = 0` — the `0x80` tag whose low seven bits
    /// look like an empty slot to any scan that forgets the occupancy bit.
    #[test]
    fn realistic_tag_patterns_match_scalar(
        pattern in prop::collection::vec((0u8..2, 0u8..128), 0..33)
    ) {
        let tags: Vec<u8> = pattern
            .iter()
            .map(|&(occupied, fp)| if occupied == 1 { 0x80 | fp } else { 0 })
            .collect();
        for needle in [0u8, 0x80, 0x81, 0xff] {
            prop_assert_eq!(
                eq_positions(&tags, needle),
                eq_positions_scalar(&tags, needle),
                "needle {:#x}", needle
            );
            prop_assert_eq!(swar::find_eq(&tags, needle), swar::find_eq_scalar(&tags, needle));
        }
        for &(_, fp) in &pattern {
            let needle = 0x80 | fp;
            prop_assert_eq!(eq_positions(&tags, needle), eq_positions_scalar(&tags, needle));
        }
        prop_assert_eq!(occupied_positions(&tags), occupied_positions_scalar(&tags));
    }

    /// Table-level agreement for every bucket width `d` in `1..=8`: the SWAR
    /// probe and the scalar probe answer identically for stored and absent
    /// keys, and the word-skipping iteration visits exactly the stored items.
    #[test]
    fn table_probe_and_iteration_agree_for_all_d(
        d in 1usize..9,
        keys in prop::collection::hash_set(0u64..400, 1..100),
        probes in prop::collection::vec(0u64..400, 1..60)
    ) {
        let mut table: CuckooTable<u64> = CuckooTable::new(16, d, 0xd00d + d as u64);
        let mut rng = KickRng::new(42);
        let mut p = 0u64;
        let mut expected: BTreeSet<u64> = BTreeSet::new();
        for &k in &keys {
            match table.insert(k, KeyHash::new(k), &mut rng, 60, &mut p) {
                Ok(()) => {
                    expected.insert(k);
                }
                Err(homeless) => {
                    // The homeless item may be a kick-walk victim, not `k`.
                    expected.insert(k);
                    expected.remove(&homeless);
                }
            }
        }
        for &k in keys.iter().chain(probes.iter()) {
            let kh = KeyHash::new(k);
            prop_assert_eq!(
                table.get(kh),
                table.get_scalar(kh),
                "probe paths disagree on {} at d={}", k, d
            );
            prop_assert_eq!(table.get(kh).is_some(), expected.contains(&k));
        }
        let mut swar_seen = Vec::new();
        table.for_each(|&v| swar_seen.push(v));
        let mut scalar_seen = Vec::new();
        table.for_each_scalar(|&v| scalar_seen.push(v));
        prop_assert_eq!(&swar_seen, &scalar_seen, "iteration order diverged at d={}", d);
        let as_set: BTreeSet<u64> = swar_seen.iter().copied().collect();
        prop_assert_eq!(as_set.len(), swar_seen.len(), "duplicate visit");
        prop_assert_eq!(as_set, expected);
        table.assert_tags_consistent();
    }

    /// Chain-level iteration agreement under random expansion/contraction
    /// churn: after every op, the SWAR walk and the scalar walk must visit
    /// the same multiset of items across whatever table shapes the
    /// TRANSFORMATION machinery produced.
    #[test]
    fn chain_iteration_agrees_under_expand_contract(
        ops in prop::collection::vec(op_strategy(64), 1..250)
    ) {
        let params = ChainParams {
            cells_per_bucket: 4,
            r: 3,
            expand_threshold: 0.9,
            contract_threshold: 0.5,
            max_kicks: 80,
            base_len: 4,
        };
        let mut chain: TableChain<u64> = TableChain::new(params, 0xc0de);
        let mut model: BTreeSet<u64> = BTreeSet::new();
        let mut rng = KickRng::new(0x5eed);
        let mut p = 0u64;
        let mut s: RebuildScratch<u64> = RebuildScratch::persistent();
        for op in ops {
            match op {
                Op::Insert(k) => {
                    if model.insert(k) {
                        match chain.insert(k, KeyHash::new(k), &mut rng, &mut p, &mut s) {
                            ChainInsert::Stored => {}
                            ChainInsert::Failed(item) => {
                                chain.insert_forced(item, &mut rng, &mut p, &mut s);
                            }
                        }
                    }
                }
                Op::Delete(k) => {
                    prop_assert_eq!(chain.remove(KeyHash::new(k)).is_some(), model.remove(&k));
                }
                Op::Expand => {
                    for item in chain.expand(&mut rng, &mut p, &mut s) {
                        chain.insert_forced(item, &mut rng, &mut p, &mut s);
                    }
                }
                Op::Contract => {
                    for item in chain.contract(&mut rng, &mut p, &mut s) {
                        chain.insert_forced(item, &mut rng, &mut p, &mut s);
                    }
                }
            }
            let mut swar_seen = Vec::new();
            chain.for_each(|&v| swar_seen.push(v));
            let mut scalar_seen = Vec::new();
            chain.for_each_scalar(|&v| scalar_seen.push(v));
            prop_assert_eq!(&swar_seen, &scalar_seen, "chain walks diverged");
            let as_set: BTreeSet<u64> = swar_seen.iter().copied().collect();
            prop_assert_eq!(as_set.len(), swar_seen.len(), "duplicate visit");
            prop_assert_eq!(&as_set, &model);
            prop_assert!(s.is_empty(), "scratch left items behind");
        }
        chain.assert_cached_consistent();
    }

    /// Whole-graph oracle: the production successor visitor and the scalar
    /// reference visitor agree on every adjacency after arbitrary churn —
    /// on the serial graph and through the sharded fan-out. Compared as
    /// sorted lists: the scan-segment path (PR 8) visits in append order
    /// while the scalar walk visits in table order, so the visited multiset
    /// is the contract, not the order. No duplicate visits either way.
    #[test]
    fn graph_successor_scans_agree_with_scalar_reference(
        edges in prop::collection::hash_set((0u64..40, 0u64..120), 1..300),
        deleted in prop::collection::hash_set((0u64..40, 0u64..120), 0..80)
    ) {
        use graph_api::DynamicGraph;
        let mut serial = CuckooGraph::new();
        let mut sharded = ShardedCuckooGraph::new(3);
        for &(u, v) in &edges {
            serial.insert_edge(u, v);
            sharded.insert_edge(u, v);
        }
        for &(u, v) in &deleted {
            serial.delete_edge(u, v);
            sharded.delete_edge(u, v);
        }
        for u in 0..40u64 {
            let mut swar_seen = Vec::new();
            serial.for_each_successor(u, &mut |v| swar_seen.push(v));
            swar_seen.sort_unstable();
            let mut scalar_seen = Vec::new();
            serial.for_each_successor_scalar(u, &mut |v| scalar_seen.push(v));
            scalar_seen.sort_unstable();
            prop_assert_eq!(&swar_seen, &scalar_seen, "serial scans diverged at {}", u);

            let mut sharded_swar = Vec::new();
            sharded.for_each_successor(u, &mut |v| sharded_swar.push(v));
            sharded_swar.sort_unstable();
            let mut sharded_scalar = Vec::new();
            sharded.for_each_successor_scalar(u, &mut |v| sharded_scalar.push(v));
            sharded_scalar.sort_unstable();
            prop_assert_eq!(&sharded_swar, &sharded_scalar, "sharded scans diverged at {}", u);

            let a: BTreeSet<u64> = swar_seen.iter().copied().collect();
            prop_assert_eq!(a.len(), swar_seen.len(), "duplicate visit at {}", u);
            let b: BTreeSet<u64> = sharded_swar.into_iter().collect();
            prop_assert_eq!(a, b, "serial and sharded adjacency diverged at {}", u);
        }
    }
}

/// Deterministic pin of the documented tail-padding hazard: a partial word
/// whose real bytes are all occupied must not report a phantom empty slot in
/// the zero-padded lanes.
#[test]
fn tail_padding_never_reports_phantom_empty_slots() {
    for len in 1..8usize {
        let tags = vec![0x80u8; len];
        assert_eq!(swar::find_eq(&tags, 0), None, "phantom empty at len {len}");
        assert_eq!(occupied_positions(&tags).len(), len);
    }
}

/// Deterministic pin of the zero-fingerprint edge case at the table level:
/// keys whose 7-bit fingerprint is zero carry the tag `0x80`, one bit away
/// from an empty slot; probes and iteration must treat them as occupied.
#[test]
fn zero_fingerprint_keys_round_trip() {
    let mut zero_fp_keys: Vec<u64> = (0u64..50_000)
        .filter(|&k| KeyHash::new(k).fingerprint() == 0)
        .take(12)
        .collect();
    assert!(zero_fp_keys.len() >= 8, "need zero-fingerprint keys");
    let mut table: CuckooTable<u64> = CuckooTable::new(8, 8, 0xfeed);
    let mut rng = KickRng::new(7);
    let mut p = 0u64;
    for &k in &zero_fp_keys {
        table
            .insert(k, KeyHash::new(k), &mut rng, 100, &mut p)
            .unwrap();
    }
    for &k in &zero_fp_keys {
        assert_eq!(table.get(KeyHash::new(k)), Some(&k));
        assert_eq!(table.get_scalar(KeyHash::new(k)), Some(&k));
    }
    let mut seen = Vec::new();
    table.for_each(|&v| seen.push(v));
    seen.sort_unstable();
    zero_fp_keys.sort_unstable();
    assert_eq!(seen, zero_fp_keys);
    table.assert_tags_consistent();
}
