//! Property tests for the PR-8 contiguous scan segments.
//!
//! A scan segment is a pure acceleration structure: a dense, append-ordered
//! mirror of a transformed cell's successor ids, maintained incrementally
//! alongside the S-CHT chain. It must never change *what* a successor scan
//! returns — only the memory layout it reads. So the central property is
//! equivalence with the table-walk iterator that `with_scan_segments(false)`
//! keeps live as the oracle, under randomized insert/delete churn that
//! drives TRANSFORMATIONs, expansions, contractions, collapses, tombstone
//! punches, and threshold compactions:
//!
//! 1. **Serial equivalence**: a segment-on graph and a segment-off graph fed
//!    the identical operation sequence agree on every return value, every
//!    successor set, and every structural stat outside the segment block.
//! 2. **Sharded and weighted equivalence**: the same holds through the
//!    sharded fan-out and for the weighted graph's unweighted scan surface.
//! 3. **Compaction round-trip**: punching tombstones past the waste
//!    threshold compacts in place without losing survivors, and freed
//!    segments are recycled for re-insertions.
//! 4. **Safety under races**: readers pinned across a writer's segment
//!    compactions see no phantom successors and lose no committed edges.

use cuckoograph::{
    CuckooGraph, CuckooGraphConfig, NodeId, ShardedCuckooGraph, WeightedCuckooGraph,
};
use graph_api::{DynamicGraph, MemoryFootprint, WeightedDynamicGraph};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[cfg(debug_assertions)]
const CASES: u32 = 12;
#[cfg(not(debug_assertions))]
const CASES: u32 = 32;

/// Small source band + degree-sized target band: most sources cross the
/// TRANSFORMATION threshold (2R = 6), so the churn exercises segments, not
/// just inline slots.
const SOURCES: u64 = 10;
const TARGETS: u64 = 400;

/// One operation of the randomized churn workload, applied identically to
/// the segment-on graph and the table-walk oracle.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64, u64),
    /// Append a contiguous run of successors — forces TRANSFORMATION and
    /// S-CHT expansions (and segment growth) on one source.
    Flood(u64),
    /// Delete a stride of the target band — mass tombstones, contractions,
    /// and collapses back to inline slots (which release segments).
    Drain(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..SOURCES, 0..TARGETS).prop_map(|(u, v)| Op::Insert(u, v)),
        4 => (0..SOURCES, 0..TARGETS).prop_map(|(u, v)| Op::Delete(u, v)),
        1 => (0..SOURCES).prop_map(Op::Flood),
        1 => (0..SOURCES).prop_map(Op::Drain),
    ]
}

fn successors_sorted(g: &dyn DynamicGraph, u: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    g.for_each_successor(u, &mut |v| out.push(v));
    out.sort_unstable();
    out
}

fn apply(g: &mut dyn DynamicGraph, op: &Op) -> usize {
    match *op {
        Op::Insert(u, v) => g.insert_edge(u, v) as usize,
        Op::Delete(u, v) => g.delete_edge(u, v) as usize,
        Op::Flood(u) => {
            let batch: Vec<(NodeId, NodeId)> = (0..64).map(|i| (u, TARGETS + i)).collect();
            g.insert_edges(&batch)
        }
        Op::Drain(u) => {
            let batch: Vec<(NodeId, NodeId)> =
                (0..TARGETS + 64).step_by(2).map(|v| (u, v)).collect();
            g.remove_edges(&batch)
        }
    }
}

/// Asserts the two graphs are indistinguishable through the whole query
/// surface.
fn assert_equivalent(on: &dyn DynamicGraph, off: &dyn DynamicGraph) {
    assert_eq!(on.edge_count(), off.edge_count());
    assert_eq!(on.node_count(), off.node_count());
    for u in 0..SOURCES {
        assert_eq!(
            successors_sorted(on, u),
            successors_sorted(off, u),
            "successor sets diverged at {u}"
        );
        assert_eq!(
            on.out_degree(u),
            off.out_degree(u),
            "degree diverged at {u}"
        );
        for v in (0..TARGETS).step_by(41) {
            assert_eq!(on.has_edge(u, v), off.has_edge(u, v));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Serial graphs: segment-on ≡ segment-off through arbitrary churn, op
    /// by op — every insert/delete return value agrees, and the scan surface
    /// is checked at every step so a transiently corrupt segment (stale
    /// tombstone, lost append, bad compaction slide) cannot hide behind a
    /// later op that repairs the set.
    #[test]
    fn serial_segments_match_table_walk_oracle(
        seed in 1u64..500,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut on = CuckooGraph::with_config(CuckooGraphConfig::default().with_seed(seed));
        let mut off = CuckooGraph::with_config(
            CuckooGraphConfig::default().with_seed(seed).with_scan_segments(false),
        );
        for (i, op) in ops.iter().enumerate() {
            let a = apply(&mut on, op);
            let b = apply(&mut off, op);
            prop_assert_eq!(a, b, "op {} returned differently: {:?}", i, op);
            let (Op::Insert(u, _) | Op::Delete(u, _) | Op::Flood(u) | Op::Drain(u)) = *op;
            prop_assert_eq!(
                successors_sorted(&on, u),
                successors_sorted(&off, u),
                "scan diverged after op {} ({:?})",
                i, op
            );
        }
        assert_equivalent(&on, &off);

        // Same structure underneath: everything outside the segment block is
        // identical, and the oracle never touched the segment machinery.
        let mut sa = on.stats();
        let sb = off.stats();
        prop_assert_eq!(sb.segment_tombstones, 0, "oracle punched tombstones");
        prop_assert_eq!(sb.segment_compactions, 0, "oracle compacted segments");
        prop_assert_eq!(sb.segment_bytes, 0, "oracle allocated segments");
        sa.segment_tombstones = 0;
        sa.segment_compactions = 0;
        sa.segment_bytes = 0;
        prop_assert_eq!(&sa, &sb, "non-segment stats diverged");
    }

    /// The sharded fan-out preserves the equivalence: per-shard engines own
    /// independent scan arenas, and the shared ingest surface (mutation
    /// windows, epoch-stamped retirement through the scan arena's private
    /// pool) lands on the same graph as the oracle mode.
    #[test]
    fn sharded_segments_match_table_walk_oracle(
        seed in 1u64..500,
        shards in 1usize..5,
        ops in prop::collection::vec(op_strategy(), 1..80),
    ) {
        let config = CuckooGraphConfig::default().with_seed(seed);
        let mut on = ShardedCuckooGraph::with_config(shards, config.clone());
        let mut off = ShardedCuckooGraph::with_config(
            shards,
            config.with_scan_segments(false),
        );
        for op in &ops {
            prop_assert_eq!(apply(&mut on, op), apply(&mut off, op), "{:?}", op);
        }
        // Push one batch through the shared (epoch-windowed) surface too, so
        // segment retirement under a concurrent write section is exercised.
        let wave: Vec<(NodeId, NodeId)> = (0..900u64).map(|i| (i % SOURCES, i % TARGETS)).collect();
        on.ingest_batch(&wave);
        off.ingest_batch(&wave);
        on.remove_batch(&wave[..600]);
        off.remove_batch(&wave[..600]);
        assert_equivalent(&on, &off);

        let mut ours: Vec<(NodeId, NodeId)> = Vec::new();
        on.for_each_edge(|u, v| ours.push((u, v)));
        let mut theirs: Vec<(NodeId, NodeId)> = Vec::new();
        off.for_each_edge(|u, v| theirs.push((u, v)));
        ours.sort_unstable();
        theirs.sort_unstable();
        prop_assert_eq!(ours, theirs, "edge sets diverged");
        prop_assert_eq!(off.stats().segment_bytes, 0);
    }

    /// The weighted graph's unweighted scan surface rides the segments while
    /// the weighted scan keeps the table walk (weights live only in payload
    /// slots) — both must agree with the oracle, including after in-place
    /// weight mutations, which the id-only segments are immune to.
    #[test]
    fn weighted_segments_match_table_walk_oracle(
        seed in 1u64..500,
        ops in prop::collection::vec(
            (0..SOURCES, 0u64..80, 0u64..4, 1u64..4),
            1..200,
        ),
    ) {
        let config = CuckooGraphConfig::default().with_seed(seed);
        let mut on = WeightedCuckooGraph::with_config(config.clone());
        let mut off = WeightedCuckooGraph::with_config(config.with_scan_segments(false));
        for &(u, v, kind, delta) in &ops {
            if kind == 0 {
                prop_assert_eq!(
                    on.delete_weighted(u, v, delta),
                    off.delete_weighted(u, v, delta)
                );
            } else {
                prop_assert_eq!(
                    on.insert_weighted(u, v, delta),
                    off.insert_weighted(u, v, delta)
                );
            }
        }
        assert_equivalent(&on, &off);
        for u in 0..SOURCES {
            let mut a = Vec::new();
            on.for_each_weighted_successor(u, &mut |v, w| a.push((v, w)));
            a.sort_unstable();
            let mut b = Vec::new();
            off.for_each_weighted_successor(u, &mut |v, w| b.push((v, w)));
            b.sort_unstable();
            prop_assert_eq!(a, b, "weighted scan diverged at {}", u);
        }
        prop_assert_eq!(off.stats().segment_bytes, 0);
    }
}

/// Tombstone-compaction round-trip, pinned deterministically: punch waste
/// past the 1/4 threshold, verify the in-place slide kept exactly the
/// survivors (in append order — compaction is order-preserving), then refill
/// and check the segment serves the full set again.
#[test]
fn tombstone_compaction_round_trips() {
    let mut g = CuckooGraph::new();
    for v in 0..600u64 {
        g.insert_edge(7, v);
    }
    let grown = g.stats();
    assert!(grown.segment_bytes > 0, "no segment was built");
    assert_eq!(grown.segment_tombstones, 0);

    // Delete two of every three successors: far past the waste threshold,
    // so compactions must fire while deletions stream in.
    for v in 0..600u64 {
        if v % 3 != 0 {
            assert!(g.delete_edge(7, v));
        }
    }
    let punched = g.stats();
    assert_eq!(punched.segment_tombstones, 400);
    assert!(
        punched.segment_compactions > 0,
        "threshold compaction never fired"
    );

    let mut seen = Vec::new();
    g.for_each_successor(7, &mut |v| seen.push(v));
    let expected: BTreeSet<u64> = (0..600).filter(|v| v % 3 == 0).collect();
    assert_eq!(seen.len(), expected.len(), "compaction lost or duplicated");
    assert!(seen.iter().all(|v| expected.contains(v)));

    // Refill: the segment grows back and serves the full range again.
    for v in 0..600u64 {
        g.insert_edge(7, v);
    }
    let mut refilled = Vec::new();
    g.for_each_successor(7, &mut |v| refilled.push(v));
    refilled.sort_unstable();
    assert_eq!(refilled, (0..600u64).collect::<Vec<_>>());
    assert!(g.memory_bytes() > 0);
}

/// Collapsing a node back to inline slots releases its segment, and mass
/// deletion still shrinks overall memory with the scan arena in the sum.
#[test]
fn collapse_releases_segments_and_memory_shrinks() {
    let mut g = CuckooGraph::new();
    for u in 0..40u64 {
        for v in 0..200u64 {
            g.insert_edge(u, v);
        }
    }
    let peak_bytes = g.memory_bytes();
    let peak = g.stats();
    assert!(peak.segment_bytes > 0);

    // Delete everything except 3 successors per node: every cell collapses
    // to inline slots, releasing its segment back to the arena.
    for u in 0..40u64 {
        for v in 3..200u64 {
            assert!(g.delete_edge(u, v));
        }
    }
    let shrunk = g.stats();
    assert!(
        shrunk.segment_bytes < peak.segment_bytes,
        "segment bytes did not shrink: {} -> {}",
        peak.segment_bytes,
        shrunk.segment_bytes
    );
    assert!(g.memory_bytes() < peak_bytes);
    for u in 0..40u64 {
        assert_eq!(successors_sorted(&g, u), vec![0, 1, 2]);
    }
}

/// Readers pinned across a writer's segment compactions observe only
/// committed states: stable successors on every pass, no phantom values.
/// The churn waves delete-and-reinsert past the waste threshold, so the
/// writer compacts segments in place while readers are scanning.
#[test]
fn readers_race_segment_compactions_without_phantoms() {
    let g = ShardedCuckooGraph::new(2);
    let stable: Vec<(NodeId, NodeId)> = (0..50u64).flat_map(|v| [(1, v), (2, v)]).collect();
    let churn: Vec<(NodeId, NodeId)> = (0..900u64).map(|i| (1_000 + i % 3, i % 300)).collect();
    let churn_targets: BTreeSet<NodeId> = churn.iter().map(|&(_, v)| v).collect();
    g.ingest_batch(&stable);

    let writer_done = AtomicBool::new(false);
    let scans = AtomicU64::new(0);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for _ in 0..6 {
                g.ingest_batch(&churn);
                g.remove_batch(&churn);
            }
            g.ingest_batch(&churn);
            writer_done.store(true, Ordering::SeqCst);
        });
        scope.spawn(|| {
            let view = g.read_view();
            let mut first_pass = true;
            while first_pass || !writer_done.load(Ordering::SeqCst) {
                first_pass = false;
                for u in [1u64, 2] {
                    let mut seen = BTreeSet::new();
                    view.for_each_successor(u, &mut |v| {
                        assert!(v < 50, "phantom successor {v} of stable source {u}");
                        seen.insert(v);
                    });
                    assert_eq!(seen.len(), 50, "lost committed successors of {u}");
                }
                for u in 1_000..1_003u64 {
                    view.for_each_successor(u, &mut |v| {
                        assert!(
                            churn_targets.contains(&v),
                            "successor {v} of churn source {u} was never written"
                        );
                    });
                    scans.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    });
    assert!(scans.load(Ordering::Relaxed) > 0);
    let s = g.stats();
    assert!(
        s.segment_compactions > 0,
        "churn waves never compacted a segment"
    );
    assert!(s.segment_tombstones > 0);

    // Final state matches a serially driven oracle on the same batches.
    let mut oracle =
        ShardedCuckooGraph::with_config(2, CuckooGraphConfig::default().with_scan_segments(false));
    oracle.insert_edges(&stable);
    for _ in 0..6 {
        oracle.insert_edges(&churn);
        oracle.remove_edges(&churn);
    }
    oracle.insert_edges(&churn);
    assert_eq!(g.edge_count(), oracle.edge_count());
    let mut ours: Vec<(NodeId, NodeId)> = Vec::new();
    g.for_each_edge(|u, v| ours.push((u, v)));
    let mut theirs: Vec<(NodeId, NodeId)> = Vec::new();
    oracle.for_each_edge(|u, v| theirs.push((u, v)));
    ours.sort_unstable();
    theirs.sort_unstable();
    assert_eq!(ours, theirs);
}
