//! Workspace-level smoke test: every public graph type must be drivable
//! through the shared [`DynamicGraph`] trait, and all of them must agree with
//! a baseline scheme on the same workload. This is the cheapest end-to-end
//! proof that the crate wiring (façade re-exports, trait impls, baselines)
//! holds together.

use cuckoograph_repro::graph_api::GraphScheme;
use cuckoograph_repro::graph_baselines::AdjacencyListGraph;
use cuckoograph_repro::graph_datasets::{generate, DatasetKind};
use cuckoograph_repro::prelude::*;
use std::collections::BTreeSet;

/// Every graph type in the workspace that exposes the `DynamicGraph` surface,
/// paired with the adjacency-list baseline used as the behavioural reference.
fn all_schemes() -> Vec<(&'static str, Box<dyn DynamicGraph>)> {
    vec![
        ("CuckooGraph", Box::new(CuckooGraph::new())),
        ("WeightedCuckooGraph", Box::new(WeightedCuckooGraph::new())),
        (
            "MultiEdgeCuckooGraph",
            Box::new(MultiEdgeCuckooGraph::new()),
        ),
        (
            "AdjacencyList (baseline)",
            Box::new(AdjacencyListGraph::new()),
        ),
    ]
}

#[test]
fn every_graph_type_agrees_with_the_baseline_through_the_trait() {
    let edges = generate(DatasetKind::NotreDame, 0.001, 42).distinct_edges();
    assert!(edges.len() > 100, "workload too small to be meaningful");

    let mut reference: Option<(usize, BTreeSet<(u64, u64)>)> = None;
    for (name, mut graph) in all_schemes() {
        // Insert everything twice: the second pass must report "already there".
        for &(u, v) in &edges {
            assert!(
                graph.insert_edge(u, v),
                "{name}: first insert of ({u}, {v}) failed"
            );
        }
        for &(u, v) in &edges {
            assert!(
                !graph.insert_edge(u, v),
                "{name}: duplicate insert of ({u}, {v}) accepted"
            );
        }
        assert_eq!(graph.edge_count(), edges.len(), "{name}: edge count");
        assert!(graph.memory_bytes() > 0, "{name}: memory footprint missing");

        // Point queries and successor sets must reconstruct the edge list.
        let mut recovered = BTreeSet::new();
        for u in graph.nodes() {
            let successors = graph.successors(u);
            assert_eq!(
                successors.len(),
                graph.out_degree(u),
                "{name}: degree of {u}"
            );
            for v in successors {
                assert!(
                    graph.has_edge(u, v),
                    "{name}: successor ({u}, {v}) not queryable"
                );
                recovered.insert((u, v));
            }
        }

        // Delete a slice of the edges and verify they are really gone.
        let (gone, kept) = edges.split_at(edges.len() / 3);
        for &(u, v) in gone {
            assert!(
                graph.delete_edge(u, v),
                "{name}: delete of ({u}, {v}) failed"
            );
        }
        for &(u, v) in gone {
            assert!(
                !graph.has_edge(u, v),
                "{name}: deleted edge ({u}, {v}) still present"
            );
            assert!(
                !graph.delete_edge(u, v),
                "{name}: double delete of ({u}, {v}) succeeded"
            );
        }
        for &(u, v) in kept {
            assert!(
                graph.has_edge(u, v),
                "{name}: surviving edge ({u}, {v}) lost"
            );
        }
        assert_eq!(
            graph.edge_count(),
            kept.len(),
            "{name}: count after deletes"
        );

        // Cross-scheme parity: all schemes must agree exactly.
        match &reference {
            None => reference = Some((kept.len(), recovered)),
            Some((count, full_set)) => {
                assert_eq!(graph.edge_count(), *count, "{name}: diverges from baseline");
                assert_eq!(
                    &recovered, full_set,
                    "{name}: edge set diverges from baseline"
                );
            }
        }
    }
}

#[test]
fn variant_specific_surfaces_compose_with_the_trait_view() {
    // Weighted: duplicate stream folds into weights while the DynamicGraph
    // view still reports distinct edges.
    let mut weighted = WeightedCuckooGraph::new();
    for _ in 0..5 {
        weighted.insert_weighted(7, 9, 2);
    }
    assert_eq!(weighted.weight(7, 9), 10);
    assert_eq!(weighted.edge_count(), 1);
    assert!(weighted.has_edge(7, 9));

    // Multi-edge: caller-assigned parallel ids coexist with trait inserts.
    let mut multi = MultiEdgeCuckooGraph::new();
    assert!(multi.add_edge(1, 2, 100));
    assert!(multi.add_edge(1, 2, 101));
    assert!(
        !multi.insert_edge(1, 2),
        "pair exists, trait insert must refuse"
    );
    assert!(
        multi.insert_edge(1, 3),
        "new pair gets an auto id from the top of the id space"
    );
    let auto_ids: Vec<_> = multi.edges_between(1, 3).collect();
    assert_eq!(auto_ids.len(), 1);
    assert!(
        auto_ids[0] > 101,
        "auto id {} collides with caller ids",
        auto_ids[0]
    );
    assert_eq!(multi.edge_count(), 2);
    assert_eq!(multi.total_edge_count(), 3);
    assert!(
        multi.delete_edge(1, 2),
        "trait delete removes the whole pair"
    );
    assert_eq!(multi.total_edge_count(), 1);
    assert_eq!(multi.scheme(), GraphScheme::CuckooGraph);
}
