//! End-to-end SNAP loader exercise: parse the committed edge-list fixture,
//! bulk-load it through the batched `insert_edges` path into every graph
//! variant, and run the analytics kernels on the result — the full
//! file → store → analytics pipeline the real SNAP datasets go through.

use cuckoograph_repro::graph_analytics as analytics;
use cuckoograph_repro::graph_api::{DynamicGraph, NodeId, WeightedDynamicGraph};
use cuckoograph_repro::graph_baselines::SortledtonGraph;
use cuckoograph_repro::graph_datasets::{load_snap_edge_list, sample_edge_list_path};
use cuckoograph_repro::prelude::*;

fn fixture_edges() -> Vec<(NodeId, NodeId)> {
    load_snap_edge_list(sample_edge_list_path()).expect("committed fixture loads")
}

/// Every node of the fixture, including destination-only sinks that
/// source-keyed schemes do not list.
const FIXTURE_NODES: [NodeId; 9] = [0, 1, 2, 10, 11, 12, 13, 14, 15];

#[test]
fn loader_into_batched_insert_deduplicates() {
    let edges = fixture_edges();
    assert_eq!(edges.len(), 11);
    let mut g = CuckooGraph::new();
    let created = g.insert_edges(&edges);
    assert_eq!(created, 10, "one duplicate line must be folded");
    assert_eq!(g.edge_count(), 10);
    assert_eq!(g.out_degree(0), 5);
    let mut hub = g.successors(0);
    hub.sort_unstable();
    assert_eq!(hub, vec![1, 10, 11, 12, 13]);
}

#[test]
fn analytics_pipeline_runs_on_the_fixture() {
    let edges = fixture_edges();
    let mut g = CuckooGraph::new();
    g.insert_edges(&edges);

    // BFS from the hub reaches the whole graph.
    let order = analytics::bfs(&g, 0);
    assert_eq!(order.len(), FIXTURE_NODES.len());

    // The tail 0 → 13 → 14 → 15 gives distance 3.
    let dist = analytics::dijkstra(&g, 0);
    assert_eq!(dist.get(&15), Some(&3));

    // Two directed triangles close at node 0: 0→1→2→0 and 0→10→2→0.
    assert_eq!(analytics::triangles_containing(&g, 0), 2);

    // SCCs: {0, 1, 2, 10} plus five singletons.
    let comps = analytics::connected_components(&g, &FIXTURE_NODES);
    assert_eq!(comps.count, 6);
    assert_eq!(comps.largest(), 4);
    assert_eq!(comps.assignment[&0], comps.assignment[&10]);

    // PageRank stays a probability vector on the loaded graph.
    let pr = analytics::pagerank(&g, &FIXTURE_NODES, &analytics::PageRankConfig::default());
    assert!((pr.values().sum::<f64>() - 1.0).abs() < 1e-9);

    // The hub has the largest total degree.
    let top = analytics::top_degree_nodes(&g, 1);
    assert_eq!(top, vec![0]);
}

#[test]
fn every_scheme_loads_the_fixture_identically() {
    let edges = fixture_edges();
    let mut reference = CuckooGraph::new();
    reference.insert_edges(&edges);
    let mut other = SortledtonGraph::new();
    other.insert_edges(&edges);
    assert_eq!(reference.edge_count(), other.edge_count());
    for &u in &FIXTURE_NODES {
        let mut a = reference.successors(u);
        let mut b = other.successors(u);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "successors of {u} differ across schemes");
    }
}

#[test]
fn weighted_load_counts_duplicate_lines() {
    let edges = fixture_edges();
    let weighted: Vec<(NodeId, NodeId, u64)> = edges.iter().map(|&(u, v)| (u, v, 1)).collect();
    let mut g = WeightedCuckooGraph::new();
    let created = g.insert_weighted_edges(&weighted);
    assert_eq!(created, 10);
    assert_eq!(g.weight(0, 1), 2, "the duplicate line accumulates weight");
    assert_eq!(g.weight(1, 2), 1);
    assert_eq!(g.total_weight(), 11);
}
