//! Cross-scheme consistency: every storage scheme (CuckooGraph and all the
//! baselines) must agree with a reference model on realistic generated
//! workloads — the precondition for the benchmark comparisons to mean anything.

use cuckoograph_repro::graph_api::{DynamicGraph, NodeId};
use cuckoograph_repro::graph_baselines::{
    AdjacencyListGraph, LiveGraphStore, PcsrGraph, SortledtonGraph, SpruceGraph, WindBellIndex,
};
use cuckoograph_repro::graph_datasets::{generate, DatasetKind};
use cuckoograph_repro::prelude::*;
use std::collections::{BTreeSet, HashMap, HashSet};

fn all_schemes() -> Vec<(&'static str, Box<dyn DynamicGraph>)> {
    vec![
        (
            "CuckooGraph",
            Box::new(CuckooGraph::new()) as Box<dyn DynamicGraph>,
        ),
        ("LiveGraph", Box::new(LiveGraphStore::new())),
        ("Sortledton", Box::new(SortledtonGraph::new())),
        ("WBI", Box::new(WindBellIndex::new())),
        ("Spruce", Box::new(SpruceGraph::new())),
        ("AdjList", Box::new(AdjacencyListGraph::new())),
        ("PCSR", Box::new(PcsrGraph::new())),
    ]
}

fn reference(edges: &[(NodeId, NodeId)]) -> HashSet<(NodeId, NodeId)> {
    edges.iter().copied().collect()
}

#[test]
fn every_scheme_agrees_on_a_caida_like_workload() {
    let dataset = generate(DatasetKind::Caida, 0.0008, 3);
    let edges = &dataset.raw_edges;
    let model = reference(edges);
    for (name, mut graph) in all_schemes() {
        for &(u, v) in edges {
            graph.insert_edge(u, v);
        }
        assert_eq!(graph.edge_count(), model.len(), "{name}: edge count");
        for &(u, v) in model.iter().take(2_000) {
            assert!(graph.has_edge(u, v), "{name}: missing ({u}, {v})");
        }
        assert!(!graph.has_edge(u64::MAX, u64::MAX), "{name}: phantom edge");
    }
}

#[test]
fn successor_sets_match_across_schemes() {
    let dataset = generate(DatasetKind::NotreDame, 0.002, 5);
    let edges = dataset.distinct_edges();
    let mut expected: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
    for &(u, v) in &edges {
        expected.entry(u).or_default().insert(v);
    }
    for (name, mut graph) in all_schemes() {
        for &(u, v) in &edges {
            graph.insert_edge(u, v);
        }
        for (&u, neighbors) in expected.iter().take(300) {
            let got: BTreeSet<NodeId> = graph.successors(u).into_iter().collect();
            assert_eq!(&got, neighbors, "{name}: successors of {u} differ");
            assert_eq!(
                graph.out_degree(u),
                neighbors.len(),
                "{name}: degree of {u}"
            );
        }
    }
}

#[test]
fn deletions_agree_across_schemes() {
    let dataset = generate(DatasetKind::WikiTalk, 0.0005, 9);
    let edges = dataset.distinct_edges();
    let to_delete: Vec<(NodeId, NodeId)> = edges.iter().copied().step_by(3).collect();
    let surviving: HashSet<(NodeId, NodeId)> = {
        let deleted: HashSet<_> = to_delete.iter().copied().collect();
        edges
            .iter()
            .copied()
            .filter(|e| !deleted.contains(e))
            .collect()
    };
    for (name, mut graph) in all_schemes() {
        for &(u, v) in &edges {
            graph.insert_edge(u, v);
        }
        for &(u, v) in &to_delete {
            assert!(
                graph.delete_edge(u, v),
                "{name}: failed to delete ({u}, {v})"
            );
            assert!(
                !graph.delete_edge(u, v),
                "{name}: double delete of ({u}, {v})"
            );
        }
        assert_eq!(
            graph.edge_count(),
            surviving.len(),
            "{name}: surviving count"
        );
        for &(u, v) in surviving.iter().take(1_000) {
            assert!(graph.has_edge(u, v), "{name}: lost survivor ({u}, {v})");
        }
        for &(u, v) in to_delete.iter().take(1_000) {
            assert!(
                !graph.has_edge(u, v),
                "{name}: deleted edge still visible ({u}, {v})"
            );
        }
    }
}

#[test]
fn cuckoograph_memory_is_competitive_on_sparse_graphs() {
    // Figure 9's qualitative claim, checked as an invariant rather than a
    // benchmark: on a sparse power-law workload CuckooGraph must not use more
    // memory than the pointer-heavy adjacency-list and log-structured schemes.
    let dataset = generate(DatasetKind::SparseGraph, 0.002, 13);
    let edges = dataset.distinct_edges();

    let mut cuckoo = CuckooGraph::new();
    let mut livegraph = LiveGraphStore::new();
    for &(u, v) in &edges {
        cuckoo.insert_edge(u, v);
        livegraph.insert_edge(u, v);
    }
    use cuckoograph_repro::graph_api::MemoryFootprint;
    assert!(
        cuckoo.memory_bytes() <= livegraph.memory_bytes() * 2,
        "CuckooGraph {} bytes vs LiveGraph {} bytes",
        cuckoo.memory_bytes(),
        livegraph.memory_bytes()
    );
}
