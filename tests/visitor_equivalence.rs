//! Property tests for the zero-allocation trait surface: on every storage
//! scheme and for arbitrary operation sequences, the visitors must agree with
//! the collecting methods they replaced, and the batched insert must be
//! equivalent to the per-edge loop.

use cuckoograph_repro::graph_api::{DynamicGraph, NodeId};
use cuckoograph_repro::graph_baselines::{
    AdjacencyListGraph, LiveGraphStore, PcsrGraph, SortledtonGraph, SpruceGraph, WindBellIndex,
};
use cuckoograph_repro::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn all_schemes() -> Vec<(&'static str, Box<dyn DynamicGraph>)> {
    vec![
        (
            "CuckooGraph",
            Box::new(CuckooGraph::new()) as Box<dyn DynamicGraph>,
        ),
        ("Weighted", Box::new(WeightedCuckooGraph::new())),
        ("MultiEdge", Box::new(MultiEdgeCuckooGraph::new())),
        ("LiveGraph", Box::new(LiveGraphStore::new())),
        ("Sortledton", Box::new(SortledtonGraph::new())),
        ("WBI", Box::new(WindBellIndex::new())),
        ("Spruce", Box::new(SpruceGraph::new())),
        ("AdjList", Box::new(AdjacencyListGraph::new())),
        ("PCSR", Box::new(PcsrGraph::new())),
    ]
}

/// One operation of a randomised workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64, u64),
}

fn op_strategy(node_range: u64) -> impl Strategy<Value = Op> {
    let node = 0..node_range;
    prop_oneof![
        4 => (node.clone(), 0..node_range).prop_map(|(u, v)| Op::Insert(u, v)),
        1 => (node, 0..node_range).prop_map(|(u, v)| Op::Delete(u, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// After an arbitrary op sequence, on every scheme:
    /// `for_each_successor` reports exactly `successors()`,
    /// `out_degree` matches its length, and
    /// `for_each_node` reports exactly `nodes()`.
    #[test]
    fn visitors_agree_with_collectors(ops in prop::collection::vec(op_strategy(48), 1..400)) {
        for (name, mut graph) in all_schemes() {
            for op in &ops {
                match *op {
                    Op::Insert(u, v) => {
                        graph.insert_edge(u, v);
                    }
                    Op::Delete(u, v) => {
                        graph.delete_edge(u, v);
                    }
                }
            }
            let mut visited_nodes = Vec::new();
            graph.for_each_node(&mut |u| visited_nodes.push(u));
            let via_visitor: BTreeSet<NodeId> = visited_nodes.iter().copied().collect();
            let via_vec: BTreeSet<NodeId> = graph.nodes().into_iter().collect();
            prop_assert_eq!(
                visited_nodes.len(), via_visitor.len(),
                "{}: for_each_node reported a node twice", name
            );
            prop_assert_eq!(&via_visitor, &via_vec, "{}: node sets differ", name);

            for &u in &via_visitor {
                let mut visited = Vec::new();
                graph.for_each_successor(u, &mut |v| visited.push(v));
                let via_cb: BTreeSet<NodeId> = visited.iter().copied().collect();
                let via_vec: BTreeSet<NodeId> = graph.successors(u).into_iter().collect();
                prop_assert_eq!(
                    visited.len(), via_cb.len(),
                    "{}: for_each_successor({}) reported a duplicate", name, u
                );
                prop_assert_eq!(&via_cb, &via_vec, "{}: successors of {} differ", name, u);
                prop_assert_eq!(
                    graph.out_degree(u), via_cb.len(),
                    "{}: out_degree of {} differs", name, u
                );
            }
        }
    }

    /// `insert_edges` is equivalent to the per-edge `insert_edge` loop on
    /// every scheme: same created count, same edge set, same degrees.
    #[test]
    fn batched_insert_matches_per_edge_loop(
        edges in prop::collection::vec((0..32u64, 0..32u64), 1..300),
        sorted in proptest::bool::ANY,
    ) {
        let mut workload = edges;
        if sorted {
            // The bulk-load shape that exercises the run-grouped fast paths.
            workload.sort_unstable();
        }
        for ((name, mut batched), (_, mut looped)) in
            all_schemes().into_iter().zip(all_schemes())
        {
            let created = batched.insert_edges(&workload);
            let mut expected = 0usize;
            for &(u, v) in &workload {
                if looped.insert_edge(u, v) {
                    expected += 1;
                }
            }
            prop_assert_eq!(created, expected, "{}: created count differs", name);
            prop_assert_eq!(
                batched.edge_count(), looped.edge_count(),
                "{}: edge counts differ", name
            );
            prop_assert_eq!(
                batched.node_count(), looped.node_count(),
                "{}: node counts differ", name
            );
            for u in 0..32u64 {
                let a: BTreeSet<NodeId> = batched.successors(u).into_iter().collect();
                let b: BTreeSet<NodeId> = looped.successors(u).into_iter().collect();
                prop_assert_eq!(a, b, "{}: successors of {} differ", name, u);
            }
        }
    }
}

/// The weighted batch is equivalent to the per-edge weighted loop, including
/// weight accumulation across duplicate edges.
#[test]
fn weighted_batch_matches_per_edge_loop() {
    let items: Vec<(u64, u64, u64)> = (0..400u64).map(|i| (i % 9, i % 23, i % 4 + 1)).collect();
    let mut batched = WeightedCuckooGraph::new();
    let mut looped = WeightedCuckooGraph::new();
    let created = batched.insert_weighted_edges(&items);
    for &(u, v, w) in &items {
        looped.insert_weighted(u, v, w);
    }
    assert_eq!(created, looped.distinct_edge_count());
    assert_eq!(batched.distinct_edge_count(), looped.distinct_edge_count());
    assert_eq!(batched.total_weight(), looped.total_weight());
    for u in 0..9u64 {
        let mut a = batched.weighted_successors(u);
        let mut b = looped.weighted_successors(u);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "weighted successors of {u} differ");
    }
}
