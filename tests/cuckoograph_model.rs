//! Property-based model tests: CuckooGraph (all three variants) must behave
//! exactly like a simple reference model under arbitrary operation sequences.

use cuckoograph_repro::prelude::*;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// One operation of a randomised workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64, u64),
    Query(u64, u64),
}

fn op_strategy(node_range: u64) -> impl Strategy<Value = Op> {
    let node = 0..node_range;
    prop_oneof![
        3 => (node.clone(), 0..node_range).prop_map(|(u, v)| Op::Insert(u, v)),
        1 => (node.clone(), 0..node_range).prop_map(|(u, v)| Op::Delete(u, v)),
        1 => (node, 0..node_range).prop_map(|(u, v)| Op::Query(u, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The basic version agrees with a `HashSet<(u, v)>` model on every
    /// operation, for skewed workloads over a small id space (which maximises
    /// collisions, transformations, and reverse transformations).
    #[test]
    fn basic_version_matches_set_model(ops in prop::collection::vec(op_strategy(64), 1..800)) {
        let mut graph = CuckooGraph::new();
        let mut model: HashSet<(u64, u64)> = HashSet::new();
        for op in ops {
            match op {
                Op::Insert(u, v) => {
                    let inserted = graph.insert_edge(u, v);
                    prop_assert_eq!(inserted, model.insert((u, v)));
                }
                Op::Delete(u, v) => {
                    let deleted = graph.delete_edge(u, v);
                    prop_assert_eq!(deleted, model.remove(&(u, v)));
                }
                Op::Query(u, v) => {
                    prop_assert_eq!(graph.has_edge(u, v), model.contains(&(u, v)));
                }
            }
            prop_assert_eq!(graph.edge_count(), model.len());
        }
        // Final state: successor sets match exactly.
        let mut by_source: HashMap<u64, HashSet<u64>> = HashMap::new();
        for &(u, v) in &model {
            by_source.entry(u).or_default().insert(v);
        }
        for (u, expected) in by_source {
            let got: HashSet<u64> = graph.successors(u).into_iter().collect();
            prop_assert_eq!(got, expected);
        }
    }

    /// The weighted version agrees with a `HashMap<(u, v), u64>` model.
    #[test]
    fn weighted_version_matches_counter_model(
        ops in prop::collection::vec((0u64..32, 0u64..32, 1u64..4, prop::bool::ANY), 1..500)
    ) {
        let mut graph = WeightedCuckooGraph::new();
        let mut model: HashMap<(u64, u64), u64> = HashMap::new();
        for (u, v, delta, is_insert) in ops {
            if is_insert {
                let new_weight = graph.insert_weighted(u, v, delta);
                let entry = model.entry((u, v)).or_insert(0);
                *entry += delta;
                prop_assert_eq!(new_weight, *entry);
            } else {
                let remaining = graph.delete_weighted(u, v, delta);
                let current = model.get(&(u, v)).copied().unwrap_or(0);
                let expected = current.saturating_sub(delta);
                if expected == 0 {
                    model.remove(&(u, v));
                } else {
                    model.insert((u, v), expected);
                }
                prop_assert_eq!(remaining, expected);
            }
            prop_assert_eq!(graph.distinct_edge_count(), model.len());
        }
        for (&(u, v), &w) in &model {
            prop_assert_eq!(graph.weight(u, v), w);
        }
    }

    /// Non-default configurations (small d, small kick budget, no denylist,
    /// varying R) never lose or duplicate edges.
    #[test]
    fn stressed_configurations_store_everything(
        d in 2usize..6,
        r in 2usize..5,
        max_kicks in 1usize..20,
        use_denylist in prop::bool::ANY,
        edges in prop::collection::hash_set((0u64..48, 0u64..48), 1..400)
    ) {
        let config = CuckooGraphConfig::default()
            .with_cells_per_bucket(d)
            .with_r(r)
            .with_max_kicks(max_kicks)
            .with_denylist(use_denylist)
            .with_scht_base_len(2)
            .with_lcht_base_len(2);
        let mut graph = CuckooGraph::with_config(config);
        for &(u, v) in &edges {
            prop_assert!(graph.insert_edge(u, v));
        }
        prop_assert_eq!(graph.edge_count(), edges.len());
        for &(u, v) in &edges {
            prop_assert!(graph.has_edge(u, v), "lost edge ({}, {})", u, v);
        }
    }

    /// Inserting then deleting everything always returns to the empty state,
    /// and memory never grows without bound across churn cycles.
    #[test]
    fn churn_returns_to_empty(edges in prop::collection::hash_set((0u64..64, 0u64..64), 1..300)) {
        let mut graph = CuckooGraph::new();
        let mut peak = 0usize;
        for _round in 0..3 {
            for &(u, v) in &edges {
                graph.insert_edge(u, v);
            }
            peak = peak.max(graph.memory_bytes());
            for &(u, v) in &edges {
                prop_assert!(graph.delete_edge(u, v));
            }
            prop_assert_eq!(graph.edge_count(), 0);
            for &(u, v) in &edges {
                prop_assert!(!graph.has_edge(u, v));
            }
        }
        // Churn must not blow memory past a small multiple of the peak of one
        // full load (the reverse transformation keeps the structure tight).
        prop_assert!(graph.memory_bytes() <= peak * 2 + 4096);
    }
}

#[test]
fn multi_edge_variant_tracks_parallel_edges_exactly() {
    let mut graph = MultiEdgeCuckooGraph::new();
    let mut model: HashMap<(u64, u64), HashSet<u64>> = HashMap::new();
    let mut next_id = 0u64;
    for i in 0..2_000u64 {
        let (u, v) = (i % 37, (i * 11) % 29);
        graph.add_edge(u, v, next_id);
        model.entry((u, v)).or_default().insert(next_id);
        next_id += 1;
    }
    // Remove every third edge id.
    for id in (0..next_id).step_by(3) {
        let (u, v) = ((id % 37), ((id * 11) % 29));
        assert!(graph.remove_edge(u, v, id));
        model.get_mut(&(u, v)).unwrap().remove(&id);
    }
    for (&(u, v), ids) in &model {
        let got: HashSet<u64> = graph.edges_between(u, v).collect();
        assert_eq!(&got, ids, "mismatch for pair ({u}, {v})");
    }
    assert_eq!(
        graph.total_edge_count(),
        model.values().map(HashSet::len).sum::<usize>()
    );
}
