//! Kill-and-recover model tests for the durability layer.
//!
//! The contract under test: with `SyncPolicy::Always`, killing the process at
//! **any** byte of the log — every frame boundary and every mid-frame offset —
//! recovers exactly the acknowledged prefix of the op stream, bit-identical to
//! a serial oracle that applied the same prefix, with zero panics. Covered for
//! the serial basic engine, the weighted engine, and the sharded engine
//! (including recovery into a different shard count).

use cuckoograph_repro::graph_durability::SimVfs;
use cuckoograph_repro::prelude::*;
use proptest::prelude::*;

fn cfg(dir: &str) -> DurabilityConfig {
    DurabilityConfig::new(dir).with_sync_policy(SyncPolicy::Always)
}

fn sorted_records<G: EdgeExport>(g: &G) -> Vec<EdgeRecord> {
    let mut records = g.edge_records();
    records.sort_unstable_by_key(|r| (r.source, r.target));
    records
}

fn apply_oracle_unweighted(g: &mut CuckooGraph, op: &GraphOp) {
    match *op {
        GraphOp::Insert { u, v, .. } => {
            g.insert_edge(u, v);
        }
        GraphOp::Delete { u, v, .. } => {
            g.delete_edge(u, v);
        }
    }
}

fn apply_oracle_weighted(g: &mut WeightedCuckooGraph, op: &GraphOp) {
    match *op {
        GraphOp::Insert { u, v, w } => {
            g.insert_weighted(u, v, w.max(1));
        }
        GraphOp::Delete { u, v, w: 0 } => {
            g.delete_edge(u, v);
        }
        GraphOp::Delete { u, v, w } => {
            g.delete_weighted(u, v, w);
        }
    }
}

/// Runs `ops` one frame at a time against a store that dies once `cut` bytes
/// have been written past open, then revives and reopens. Returns the number
/// of acknowledged ops and the recovered graph.
fn crash_run(ops: &[GraphOp], cut: u64) -> (usize, CuckooGraph) {
    let vfs = SimVfs::new();
    let (mut store, _) =
        DurableGraphStore::open(vfs.clone(), cfg("db"), CuckooGraph::new).expect("fresh open");
    vfs.crash_after_bytes(cut);
    let mut acked = 0usize;
    for op in ops {
        match store.apply(std::slice::from_ref(op)) {
            Ok(_) => acked += 1,
            Err(_) => break,
        }
    }
    drop(store);
    vfs.revive();
    let (recovered, _) =
        DurableGraphStore::open(vfs, cfg("db"), CuckooGraph::new).expect("recovery never fails");
    (acked, recovered.into_graph())
}

/// A short deterministic op stream with inserts, duplicate inserts, and
/// deletes — every op lands in its own log frame.
fn deterministic_ops() -> Vec<GraphOp> {
    vec![
        GraphOp::Insert { u: 1, v: 2, w: 1 },
        GraphOp::Insert { u: 1, v: 3, w: 1 },
        GraphOp::Insert { u: 2, v: 3, w: 1 },
        GraphOp::Insert { u: 1, v: 2, w: 1 },
        GraphOp::Delete { u: 1, v: 3, w: 0 },
        GraphOp::Insert { u: 7, v: 9, w: 1 },
        GraphOp::Delete { u: 2, v: 3, w: 0 },
        GraphOp::Insert { u: 9, v: 7, w: 1 },
        GraphOp::Delete { u: 5, v: 5, w: 0 },
        GraphOp::Insert { u: 3, v: 1, w: 1 },
    ]
}

#[test]
fn every_cut_byte_recovers_the_acknowledged_prefix() {
    let ops = deterministic_ops();

    // Learn the total log size from an uncrashed run (also records that the
    // full stream fits): the cut sweep below covers every byte of it.
    let vfs = SimVfs::new();
    let (mut store, _) = DurableGraphStore::open(vfs, cfg("db"), CuckooGraph::new).unwrap();
    for op in &ops {
        store.apply(std::slice::from_ref(op)).unwrap();
    }
    let total = store.aof_offset() - 8;
    drop(store);

    for cut in 0..=total {
        let (acked, recovered) = crash_run(&ops, cut);
        if cut < total {
            assert!(acked < ops.len(), "cut {cut} of {total} must lose ops");
        }
        let mut oracle = CuckooGraph::new();
        for op in &ops[..acked] {
            apply_oracle_unweighted(&mut oracle, op);
        }
        assert_eq!(
            sorted_records(&recovered),
            sorted_records(&oracle),
            "cut at byte {cut}: recovered state must equal the {acked}-op oracle"
        );
    }
}

fn op_strategy(nodes: u64) -> impl Strategy<Value = GraphOp> {
    let node = 0..nodes;
    prop_oneof![
        4 => (node.clone(), 0..nodes, 1u64..4).prop_map(|(u, v, w)| GraphOp::Insert { u, v, w }),
        1 => (node.clone(), 0..nodes).prop_map(|(u, v)| GraphOp::Delete { u, v, w: 0 }),
        1 => (node, 0..nodes, 1u64..3).prop_map(|(u, v, w)| GraphOp::Delete { u, v, w }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial basic engine, random streams, random kill offsets (frame
    /// boundaries and mid-frame alike), random batch sizes.
    #[test]
    fn basic_engine_recovers_prefix_at_random_cuts(
        ops in prop::collection::vec(op_strategy(24), 1..150),
        cut in 0u64..4096,
        batch in 1usize..5,
    ) {
        let vfs = SimVfs::new();
        let (mut store, _) =
            DurableGraphStore::open(vfs.clone(), cfg("db"), CuckooGraph::new).unwrap();
        vfs.crash_after_bytes(cut);
        let mut acked = 0usize;
        for chunk in ops.chunks(batch) {
            match store.apply(chunk) {
                Ok(_) => acked += chunk.len(),
                Err(_) => break,
            }
        }
        drop(store);
        vfs.revive();
        let (recovered, _) =
            DurableGraphStore::open(vfs, cfg("db"), CuckooGraph::new).unwrap();

        let mut oracle = CuckooGraph::new();
        for op in &ops[..acked] {
            apply_oracle_unweighted(&mut oracle, op);
        }
        prop_assert_eq!(sorted_records(recovered.graph()), sorted_records(&oracle));
    }

    /// Weighted engine: deltas are not idempotent, so this doubles as a check
    /// that replay neither skips nor repeats any acknowledged frame — and a
    /// mid-stream snapshot attempt (which the crash may tear) must never
    /// change the recovered state.
    #[test]
    fn weighted_engine_recovers_exact_weights_at_random_cuts(
        ops in prop::collection::vec(op_strategy(16), 1..120),
        cut in 0u64..4096,
        snap_at in 0usize..120,
    ) {
        let vfs = SimVfs::new();
        let (mut store, _) =
            DurableGraphStore::open(vfs.clone(), cfg("db"), WeightedCuckooGraph::new).unwrap();
        vfs.crash_after_bytes(cut);
        let mut acked = 0usize;
        for (i, op) in ops.iter().enumerate() {
            if i == snap_at {
                // A snapshot mid-stream; the kill may land inside it.
                let _ = store.save_snapshot();
            }
            match store.apply(std::slice::from_ref(op)) {
                Ok(_) => acked += 1,
                Err(_) => break,
            }
        }
        drop(store);
        vfs.revive();
        let (recovered, _) =
            DurableGraphStore::open(vfs, cfg("db"), WeightedCuckooGraph::new).unwrap();

        let mut oracle = WeightedCuckooGraph::new();
        for op in &ops[..acked] {
            apply_oracle_weighted(&mut oracle, op);
        }
        prop_assert_eq!(sorted_records(recovered.graph()), sorted_records(&oracle));
    }

    /// Sharded engine, killed at a random byte, recovered into a *different*
    /// shard count (records re-route by source hash) and compared against the
    /// serial oracle.
    #[test]
    fn sharded_engine_recovers_prefix_across_shard_counts(
        ops in prop::collection::vec(op_strategy(24), 1..120),
        cut in 0u64..4096,
    ) {
        let vfs = SimVfs::new();
        let make4 = || Sharded::from_fn(4, |_| CuckooGraph::new());
        let (mut store, _) = DurableGraphStore::open(vfs.clone(), cfg("db"), make4).unwrap();
        vfs.crash_after_bytes(cut);
        let mut acked = 0usize;
        for op in &ops {
            match store.apply(std::slice::from_ref(op)) {
                Ok(_) => acked += 1,
                Err(_) => break,
            }
        }
        drop(store);
        vfs.revive();
        let make2 = || Sharded::from_fn(2, |_| CuckooGraph::new());
        let (recovered, _) = DurableGraphStore::open(vfs, cfg("db"), make2).unwrap();

        let mut oracle = CuckooGraph::new();
        for op in &ops[..acked] {
            apply_oracle_unweighted(&mut oracle, op);
        }
        prop_assert_eq!(sorted_records(recovered.graph()), sorted_records(&oracle));
    }
}
