//! Property tests for the sharded engine: under random insert/delete
//! interleavings — per-edge, batched, and mixed — a sharded CuckooGraph must
//! agree with the serial one on the edge set, the successor sets, and the
//! node visitation, for every shard count. Same harness shape as
//! `tests/visitor_equivalence.rs`.

use cuckoograph_repro::graph_api::{DynamicGraph, NodeId, ShardedGraph};
use cuckoograph_repro::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// One operation of a randomised workload.
#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Delete(u64, u64),
}

fn op_strategy(node_range: u64) -> impl Strategy<Value = Op> {
    let node = 0..node_range;
    prop_oneof![
        4 => (node.clone(), 0..node_range).prop_map(|(u, v)| Op::Insert(u, v)),
        1 => (node, 0..node_range).prop_map(|(u, v)| Op::Delete(u, v)),
    ]
}

/// Asserts that `sharded` and `serial` describe the same graph: counts, node
/// visitation (exactly once per node), successor sets, and out-degrees.
fn assert_same_graph(sharded: &ShardedCuckooGraph, serial: &CuckooGraph, label: &str) {
    assert_eq!(sharded.edge_count(), serial.edge_count(), "{label}: edges");
    assert_eq!(sharded.node_count(), serial.node_count(), "{label}: nodes");

    let mut visited = Vec::new();
    sharded.for_each_node(&mut |u| visited.push(u));
    let sharded_nodes: BTreeSet<NodeId> = visited.iter().copied().collect();
    assert_eq!(
        visited.len(),
        sharded_nodes.len(),
        "{label}: sharded for_each_node reported a node twice"
    );
    let serial_nodes: BTreeSet<NodeId> = serial.nodes().into_iter().collect();
    assert_eq!(sharded_nodes, serial_nodes, "{label}: node sets differ");

    let sharded_edges: BTreeSet<(NodeId, NodeId)> = sharded.par_edges().into_iter().collect();
    let serial_edges: BTreeSet<(NodeId, NodeId)> = serial.edges().into_iter().collect();
    assert_eq!(sharded_edges, serial_edges, "{label}: edge sets differ");

    for &u in &serial_nodes {
        let mut via_visitor = Vec::new();
        sharded.for_each_successor(u, &mut |v| via_visitor.push(v));
        let a: BTreeSet<NodeId> = via_visitor.into_iter().collect();
        let b: BTreeSet<NodeId> = serial.successors(u).into_iter().collect();
        assert_eq!(a, b, "{label}: successors of {u} differ");
        assert_eq!(
            sharded.out_degree(u),
            serial.out_degree(u),
            "{label}: out_degree of {u} differs"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Per-edge interleavings: every operation must return the same result on
    /// both graphs, and the final states must be identical.
    #[test]
    fn per_edge_interleavings_agree(
        ops in prop::collection::vec(op_strategy(48), 1..400),
        shards in 2..9usize,
    ) {
        let mut sharded = ShardedCuckooGraph::new(shards);
        let mut serial = CuckooGraph::new();
        for op in &ops {
            match *op {
                Op::Insert(u, v) => {
                    prop_assert_eq!(
                        sharded.insert_edge(u, v),
                        serial.insert_edge(u, v),
                        "insert({}, {}) diverged", u, v
                    );
                }
                Op::Delete(u, v) => {
                    prop_assert_eq!(
                        sharded.delete_edge(u, v),
                        serial.delete_edge(u, v),
                        "delete({}, {}) diverged", u, v
                    );
                }
            }
        }
        assert_same_graph(&sharded, &serial, &format!("{shards} shards"));
        for &(u, v) in &[(0u64, 0u64), (1, 7), (13, 31), (47, 2)] {
            prop_assert_eq!(sharded.has_edge(u, v), serial.has_edge(u, v));
        }
    }

    /// Batched interleavings: inserts go through the parallel `insert_edges`
    /// fan-out and deletes through `remove_edges`; created/removed counts and
    /// final states must match the serial graph.
    #[test]
    fn batched_interleavings_agree(
        batches in prop::collection::vec(
            prop::collection::vec((0..32u64, 0..32u64), 1..120),
            1..6,
        ),
        shards in 2..9usize,
        sorted in proptest::bool::ANY,
    ) {
        let mut sharded = ShardedCuckooGraph::new(shards);
        let mut serial = CuckooGraph::new();
        for (round, batch) in batches.iter().enumerate() {
            let mut batch = batch.clone();
            if sorted {
                // The bulk-load shape that exercises the run-grouped paths.
                batch.sort_unstable();
            }
            if round % 2 == 0 {
                prop_assert_eq!(
                    sharded.insert_edges(&batch),
                    serial.insert_edges(&batch),
                    "round {}: created counts differ", round
                );
            } else {
                prop_assert_eq!(
                    sharded.remove_edges(&batch),
                    serial.remove_edges(&batch),
                    "round {}: removed counts differ", round
                );
            }
        }
        assert_same_graph(&sharded, &serial, &format!("{shards} shards batched"));
    }

    /// The `ShardedGraph` views partition the node space: every node appears
    /// in exactly the shard `shard_of` names, and the views sum to the whole.
    #[test]
    fn shard_views_partition_the_graph(
        ops in prop::collection::vec(op_strategy(64), 1..300),
        shards in 1..9usize,
    ) {
        let mut sharded = ShardedCuckooGraph::new(shards);
        for op in &ops {
            match *op {
                Op::Insert(u, v) => { sharded.insert_edge(u, v); }
                Op::Delete(u, v) => { sharded.delete_edge(u, v); }
            }
        }
        prop_assert_eq!(sharded.shard_count(), shards.max(1));
        let mut total_nodes = 0usize;
        let mut total_edges = 0usize;
        for shard in 0..sharded.shard_count() {
            sharded.with_shard_view(shard, &mut |view| {
                view.for_each_node(&mut |u| {
                    assert_eq!(sharded.shard_of(u), shard, "node {u} outside its shard");
                });
                total_nodes += view.node_count();
                total_edges += view.edge_count();
            });
        }
        prop_assert_eq!(total_nodes, sharded.node_count());
        prop_assert_eq!(total_edges, sharded.edge_count());
    }
}

/// The weighted sharded variant accumulates weights exactly like the serial
/// weighted graph, through both the per-edge and the batched paths.
#[test]
fn weighted_sharded_matches_weighted_serial() {
    let items: Vec<(u64, u64, u64)> = (0..600u64).map(|i| (i % 11, i % 29, i % 3 + 1)).collect();
    for shards in [2usize, 5, 8] {
        let mut sharded = ShardedWeightedCuckooGraph::new(shards);
        let mut serial = WeightedCuckooGraph::new();
        let (head, tail) = items.split_at(items.len() / 2);
        assert_eq!(
            sharded.insert_weighted_edges(head),
            serial.insert_weighted_edges(head)
        );
        for &(u, v, w) in tail {
            assert_eq!(
                sharded.insert_weighted(u, v, w),
                serial.insert_weighted(u, v, w),
                "{shards} shards: weight of ({u}, {v}) diverged"
            );
        }
        for &(u, v, _) in items.iter().step_by(7) {
            assert_eq!(
                sharded.delete_weighted(u, v, 1),
                serial.delete_weighted(u, v, 1)
            );
        }
        assert_eq!(sharded.distinct_edge_count(), serial.distinct_edge_count());
        assert_eq!(sharded.total_weight(), serial.total_weight());
        for u in 0..11u64 {
            let mut a = sharded.weighted_successors(u);
            let mut b = serial.weighted_successors(u);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{shards} shards: weighted successors of {u}");
        }
    }
}

/// Parallel analytics passes over the sharded graph agree with their serial
/// counterparts run on the serial graph.
#[test]
fn parallel_analytics_match_serial_analytics() {
    use cuckoograph_repro::graph_analytics as analytics;

    let edges: Vec<(u64, u64)> = (0..3_000u64)
        .map(|i| (i % 83, (i * 13) % 191))
        .chain((0..50u64).map(|i| (200 + i, 201 + i)))
        .collect();
    let mut sharded = ShardedCuckooGraph::new(4);
    let mut serial = CuckooGraph::new();
    sharded.insert_edges(&edges);
    serial.insert_edges(&edges);

    assert_eq!(
        analytics::par_total_degrees(&sharded),
        analytics::total_degrees(&serial)
    );
    assert_eq!(
        analytics::par_top_degree_nodes(&sharded, 20),
        analytics::top_degree_nodes(&serial, 20)
    );
    assert_eq!(analytics::par_edge_count(&sharded), serial.edge_count());

    let mut nodes = serial.nodes();
    nodes.sort_unstable();
    let serial_cc = analytics::connected_components(&serial, &nodes);
    let parallel_cc = analytics::par_connected_components(&sharded);
    assert_eq!(parallel_cc.count, serial_cc.count);
    assert_eq!(parallel_cc.largest(), serial_cc.largest());
}
