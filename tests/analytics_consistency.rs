//! Analytics results must be identical no matter which storage scheme backs
//! the graph — the algorithms only see the `DynamicGraph` trait, so any
//! divergence would mean a storage scheme answers queries incorrectly.

use cuckoograph_repro::graph_analytics as analytics;
use cuckoograph_repro::graph_api::{DynamicGraph, NodeId};
use cuckoograph_repro::graph_baselines::{AdjacencyListGraph, SortledtonGraph, SpruceGraph};
use cuckoograph_repro::graph_datasets::{generate, DatasetKind};
use cuckoograph_repro::prelude::*;
use std::collections::BTreeMap;

/// Quantised per-node scores for PageRank, betweenness, and LCC.
type ScoreTriple = (
    BTreeMap<NodeId, i64>,
    BTreeMap<NodeId, i64>,
    BTreeMap<NodeId, i64>,
);

fn schemes() -> Vec<(&'static str, Box<dyn DynamicGraph>)> {
    vec![
        (
            "CuckooGraph",
            Box::new(CuckooGraph::new()) as Box<dyn DynamicGraph>,
        ),
        ("AdjList", Box::new(AdjacencyListGraph::new())),
        ("Sortledton", Box::new(SortledtonGraph::new())),
        ("Spruce", Box::new(SpruceGraph::new())),
    ]
}

fn populate(graph: &mut dyn DynamicGraph, edges: &[(NodeId, NodeId)]) {
    for &(u, v) in edges {
        graph.insert_edge(u, v);
    }
}

#[test]
fn bfs_and_sssp_reach_the_same_nodes() {
    let edges = generate(DatasetKind::NotreDame, 0.0015, 21).distinct_edges();
    let mut reference_reach: Option<Vec<usize>> = None;
    let mut reference_distances: Option<BTreeMap<NodeId, u64>> = None;
    for (name, mut graph) in schemes() {
        populate(graph.as_mut(), &edges);
        let sources = analytics::top_degree_nodes(graph.as_ref(), 5);
        let reach: Vec<usize> = sources
            .iter()
            .map(|&s| analytics::bfs(graph.as_ref(), s).len())
            .collect();
        let distances: BTreeMap<NodeId, u64> = analytics::dijkstra(graph.as_ref(), sources[0])
            .into_iter()
            .collect();
        match (&reference_reach, &reference_distances) {
            (None, None) => {
                reference_reach = Some(reach);
                reference_distances = Some(distances);
            }
            (Some(r), Some(d)) => {
                assert_eq!(&reach, r, "{name}: BFS reach differs");
                assert_eq!(&distances, d, "{name}: SSSP distances differ");
            }
            _ => unreachable!(),
        }
    }
}

#[test]
fn triangle_counts_and_components_agree() {
    let edges = generate(DatasetKind::WikiTalk, 0.0008, 22).distinct_edges();
    let mut reference: Option<(Vec<usize>, usize)> = None;
    for (name, mut graph) in schemes() {
        populate(graph.as_mut(), &edges);
        let nodes = analytics::top_degree_nodes(graph.as_ref(), 24);
        let triangles: Vec<usize> = nodes
            .iter()
            .map(|&n| analytics::triangles_containing(graph.as_ref(), n))
            .collect();
        let components = analytics::connected_components(graph.as_ref(), &nodes).count;
        match &reference {
            None => reference = Some((triangles, components)),
            Some((t, c)) => {
                assert_eq!(&triangles, t, "{name}: triangle counts differ");
                assert_eq!(components, *c, "{name}: component counts differ");
            }
        }
    }
}

#[test]
fn pagerank_betweenness_and_lcc_agree() {
    let edges = generate(DatasetKind::StackOverflow, 0.0004, 23).distinct_edges();
    let mut reference: Option<ScoreTriple> = None;
    for (name, mut graph) in schemes() {
        populate(graph.as_mut(), &edges);
        let nodes = analytics::top_degree_nodes(graph.as_ref(), 32);
        // Quantise the floating-point scores so tiny summation-order noise
        // cannot cause false mismatches.
        let quantise = |m: std::collections::HashMap<NodeId, f64>| -> BTreeMap<NodeId, i64> {
            m.into_iter()
                .map(|(k, v)| (k, (v * 1e9).round() as i64))
                .collect()
        };
        let pr = quantise(analytics::pagerank(
            graph.as_ref(),
            &nodes,
            &analytics::PageRankConfig::default(),
        ));
        let bc = quantise(analytics::betweenness_centrality(graph.as_ref(), &nodes));
        let lcc = quantise(analytics::local_clustering_coefficients(
            graph.as_ref(),
            &nodes,
        ));
        match &reference {
            None => reference = Some((pr, bc, lcc)),
            Some((rpr, rbc, rlcc)) => {
                assert_eq!(&pr, rpr, "{name}: PageRank differs");
                assert_eq!(&bc, rbc, "{name}: betweenness differs");
                assert_eq!(&lcc, rlcc, "{name}: LCC differs");
            }
        }
    }
}

#[test]
fn weighted_cuckoograph_runs_the_full_analytics_suite() {
    // The weighted variant exposes the same DynamicGraph view, so the whole
    // pipeline runs on a stream with duplicates without any preprocessing.
    let dataset = generate(DatasetKind::Caida, 0.0008, 24);
    let mut graph = WeightedCuckooGraph::new();
    for &(u, v) in &dataset.raw_edges {
        graph.insert_weighted(u, v, 1);
    }
    let nodes = analytics::top_degree_nodes(&graph, 20);
    assert!(!nodes.is_empty());
    let pr = analytics::pagerank(&graph, &nodes, &analytics::PageRankConfig::default());
    assert!((pr.values().sum::<f64>() - 1.0).abs() < 1e-6);
    let reach = analytics::bfs(&graph, nodes[0]);
    assert!(!reach.is_empty());
    let cc = analytics::connected_components(&graph, &nodes);
    assert!(cc.count >= 1);
}
