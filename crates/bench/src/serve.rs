//! Loopback load generator for the pipelined serving reactor.
//!
//! Drives real TCP connections against a [`Reactor`] (the kvstore's
//! non-blocking serving front end) with a configurable connections ×
//! pipeline-depth sweep, in both dispatch modes:
//!
//! * **pipelined** — the default reactor: graph reads answered inline on the
//!   workers from sharded read views, writes group-committed in batches by
//!   the single durable writer;
//! * **serial** — [`ServerConfig::with_concurrent_dispatch`]`(false)`: every
//!   command funnels through the writer one queue hop at a time — the
//!   serial-dispatch oracle the concurrent path is measured against.
//!
//! Each client thread sends bursts of `depth` commands in one write and reads
//! the `depth` replies back before the next burst, so a depth-1 sweep point
//! measures strict request/response ping-pong and deeper points measure true
//! pipelining. Latency percentiles are per *burst* round-trip.
//!
//! The durable layer runs on a [`SimVfs`] so the sweep measures the serving
//! path, not the host filesystem.

use crate::HARNESS_SEED;
use bytes::BytesMut;
use graph_durability::{DurabilityConfig, SimVfs, SyncPolicy};
use kvstore::graph_module::CuckooGraphModule;
use kvstore::reactor::{Reactor, ServerConfig};
use kvstore::{DurableServer, RespValue, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct ServePoint {
    /// `true` = pipelined concurrent dispatch, `false` = serial oracle.
    pub concurrent: bool,
    /// Client connections driving load concurrently.
    pub connections: usize,
    /// Commands per burst on each connection.
    pub depth: usize,
    /// Total commands acknowledged across all connections.
    pub ops: usize,
    /// Aggregate throughput in thousands of commands per second.
    pub kops: f64,
    /// Median burst round-trip in microseconds.
    pub p50_us: f64,
    /// 99th-percentile burst round-trip in microseconds.
    pub p99_us: f64,
}

/// Sweep shape. `ops_per_conn` is rounded down to whole bursts per depth.
#[derive(Debug, Clone)]
pub struct ServeSweep {
    /// Edges preloaded into the served graph before any client connects.
    pub preload_edges: usize,
    /// Commands each connection issues per sweep point.
    pub ops_per_conn: usize,
    /// Connection counts to sweep.
    pub connections: Vec<usize>,
    /// Pipeline depths to sweep.
    pub depths: Vec<usize>,
    /// Percentage of commands that are `GRAPH.ADDEDGE` (the rest are reads).
    pub write_pct: u64,
    /// Reactor worker threads.
    pub workers: usize,
}

impl ServeSweep {
    /// A sweep sized from the harness scale factor (the `reproduce` default).
    pub fn at_scale(scale: f64) -> Self {
        let ops = ((40_000.0 * (scale / 0.002)) as usize).clamp(2_000, 400_000);
        Self {
            preload_edges: (ops / 4).max(500),
            ops_per_conn: ops,
            connections: vec![1, 4],
            depths: vec![1, 8, 32],
            write_pct: 10,
            workers: 2,
        }
    }
}

struct Xorshift(u64);

impl Xorshift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The command mix: read-heavy graph traffic over a bounded node universe,
/// deterministic per (connection, op index).
fn command_wire(rng: &mut Xorshift, nodes: u64, write_pct: u64) -> Vec<u8> {
    let roll = rng.next() % 100;
    let u = (rng.next() % nodes).to_string();
    let v = (rng.next() % nodes).to_string();
    let parts: Vec<&str> = if roll < write_pct {
        vec!["GRAPH.ADDEDGE", &u, &v]
    } else if roll < write_pct + 30 {
        vec!["GRAPH.DEGREE", &u]
    } else if roll < write_pct + 60 {
        vec!["GRAPH.HASEDGE", &u, &v]
    } else {
        vec!["GRAPH.SUCCESSORS", &u]
    };
    RespValue::command(&parts).encode().to_vec()
}

fn spawn_loaded_reactor(sweep: &ServeSweep, concurrent: bool) -> Reactor {
    let cfg = DurabilityConfig::new("kv-serve").with_sync_policy(SyncPolicy::Never);
    let (durable, _) = DurableServer::open(SimVfs::new(), cfg, || {
        let mut s = Server::new();
        s.load_module(Box::new(CuckooGraphModule::new()));
        s
    })
    .expect("open durable server on SimVfs");
    let nodes = node_universe(sweep);
    let mut rng = Xorshift(HARNESS_SEED | 1);
    let preload: Vec<(u64, u64, u64)> = (0..sweep.preload_edges)
        .map(|_| (rng.next() % nodes, rng.next() % nodes, 1))
        .collect();
    durable.server().graph().ingest_weighted_batch(&preload);
    Reactor::spawn(
        durable,
        ServerConfig::new()
            .with_workers(sweep.workers)
            .with_concurrent_dispatch(concurrent),
    )
    .expect("spawn reactor")
}

fn node_universe(sweep: &ServeSweep) -> u64 {
    (sweep.preload_edges as u64 / 4).max(64)
}

/// Runs one sweep point: `connections` client threads, each issuing
/// `ops_per_conn` commands in bursts of `depth`, against a fresh reactor.
pub fn run_serve_point(
    sweep: &ServeSweep,
    concurrent: bool,
    connections: usize,
    depth: usize,
) -> ServePoint {
    let reactor = spawn_loaded_reactor(sweep, concurrent);
    let addr = reactor.addr();
    let nodes = node_universe(sweep);
    let bursts = (sweep.ops_per_conn / depth).max(1);
    let barrier = Arc::new(Barrier::new(connections + 1));

    let clients: Vec<_> = (0..connections)
        .map(|conn_idx| {
            let barrier = Arc::clone(&barrier);
            let write_pct = sweep.write_pct;
            // Connect on this thread: a spawned thread that dies before its
            // `barrier.wait()` would deadlock the whole point.
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("read timeout");
            std::thread::spawn(move || {
                let stripe = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(conn_idx as u64 + 1);
                // `| 1` keeps the xorshift state nonzero for every stripe.
                let mut rng = Xorshift((HARNESS_SEED ^ stripe) | 1);
                let mut latencies_us = Vec::with_capacity(bursts);
                let mut buf = BytesMut::new();
                let mut chunk = vec![0u8; 64 * 1024];
                barrier.wait();
                for _ in 0..bursts {
                    let mut wire = Vec::with_capacity(depth * 32);
                    for _ in 0..depth {
                        wire.extend_from_slice(&command_wire(&mut rng, nodes, write_pct));
                    }
                    let start = Instant::now();
                    stream.write_all(&wire).expect("burst write");
                    let mut replies = 0usize;
                    while replies < depth {
                        match RespValue::decode(&mut buf).expect("well-formed reply") {
                            Some(_) => replies += 1,
                            None => {
                                let n = stream.read(&mut chunk).expect("burst read");
                                assert!(n > 0, "server closed mid-burst");
                                buf.extend_from_slice(&chunk[..n]);
                            }
                        }
                    }
                    latencies_us.push(start.elapsed().as_secs_f64() * 1e6);
                }
                latencies_us
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    let mut latencies: Vec<f64> = Vec::with_capacity(connections * bursts);
    for client in clients {
        latencies.extend(client.join().expect("client thread"));
    }
    let secs = start.elapsed().as_secs_f64();
    reactor.shutdown();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let percentile = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let ops = connections * bursts * depth;
    ServePoint {
        concurrent,
        connections,
        depth,
        ops,
        kops: ops as f64 / secs / 1e3,
        p50_us: percentile(0.50),
        p99_us: percentile(0.99),
    }
}

/// The full connections × depth sweep in both dispatch modes. Each point
/// gets a fresh reactor, a fresh preloaded graph and a fresh simulated disk,
/// so no point warms up another.
pub fn run_serve_sweep(sweep: &ServeSweep) -> Vec<ServePoint> {
    let mut points = Vec::new();
    for &concurrent in &[true, false] {
        for &connections in &sweep.connections {
            for &depth in &sweep.depths {
                points.push(run_serve_point(sweep, concurrent, connections, depth));
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_point_acknowledges_every_command() {
        let sweep = ServeSweep {
            preload_edges: 200,
            ops_per_conn: 64,
            connections: vec![2],
            depths: vec![8],
            write_pct: 25,
            workers: 2,
        };
        let point = run_serve_point(&sweep, true, 2, 8);
        assert_eq!(point.ops, 2 * 8 * 8);
        assert!(point.kops > 0.0);
        assert!(point.p99_us >= point.p50_us);

        let oracle = run_serve_point(&sweep, false, 2, 8);
        assert_eq!(oracle.ops, point.ops);
        assert!(oracle.kops > 0.0);
    }
}
