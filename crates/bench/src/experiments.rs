//! One experiment per table and figure of the evaluation section.
//!
//! Every experiment returns an [`ExperimentReport`] containing one or more
//! printable tables whose rows mirror the series plotted in the paper, so
//! `cargo run -p graph-bench --release --bin reproduce -- all` regenerates the
//! whole evaluation in text form.

use crate::schemes::SchemeKind;
use crate::workload::{
    memory_curve, run_batched_inserts, run_churn_waves, run_deletes, run_inserts, run_queries,
    run_successor_scans, run_successor_scans_vec,
};
use crate::HARNESS_SEED;
use cuckoograph::chain::{ChainParams, TableChain};
use cuckoograph::{CuckooGraph, CuckooGraphConfig, ShardedCuckooGraph, WeightedCuckooGraph};
use graph_analytics as analytics;
use graph_api::{DynamicGraph, MemoryFootprint, NodeId, WeightedDynamicGraph};
use graph_datasets::{compute_stats, generate, DatasetKind};
use graph_durability::{DurabilityConfig, DurableGraphStore, GraphOp, StdVfs, SyncPolicy};
use graphdb::PropertyGraph;
use kvstore::{CuckooGraphModule, Reply, Server};
use std::time::Instant;

/// A printable table of results.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportTable {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl ReportTable {
    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// The result of running one experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Experiment id (e.g. `"fig6"`).
    pub id: String,
    /// Result tables.
    pub tables: Vec<ReportTable>,
    /// Free-form notes (expected shape vs the paper, caveats).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Renders the whole report.
    pub fn render(&self) -> String {
        let mut out = format!("=== {} ===\n", self.id);
        for table in &self.tables {
            out.push_str(&table.render());
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

/// Every table/figure of the evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table II: the S-CHT chain transformation rule.
    Table2,
    /// Table III: complexity comparison.
    Table3,
    /// Table IV: dataset statistics.
    Table4,
    /// § IV-A: average placements per inserted item (Theorem 1 validation).
    Theorem1,
    /// Figure 2: effect of `d`.
    Fig2,
    /// Figure 3: effect of `G`.
    Fig3,
    /// Figure 4: effect of `T`.
    Fig4,
    /// Figure 5: DENYLIST ablation.
    Fig5,
    /// Figure 6: insertion throughput.
    Fig6,
    /// Figure 7: query throughput.
    Fig7,
    /// Figure 8: deletion throughput.
    Fig8,
    /// Figure 9: memory usage curves.
    Fig9,
    /// Figure 10: BFS running time.
    Fig10,
    /// Figure 11: SSSP running time.
    Fig11,
    /// Figure 12: Triangle Counting running time.
    Fig12,
    /// Figure 13: Connected Components running time.
    Fig13,
    /// Figure 14: PageRank running time.
    Fig14,
    /// Figure 15: Betweenness Centrality running time.
    Fig15,
    /// Figure 16: Local Clustering Coefficient running time.
    Fig16,
    /// Figure 17: CuckooGraph on the Redis-like store.
    Fig17,
    /// Figure 18: Neo4j-like store with and without CuckooGraph.
    Fig18,
    /// Successor-scan throughput through the zero-allocation visitor (and the
    /// Vec-collecting path it replaced).
    SuccScan,
    /// Batched vs per-edge insertion throughput.
    BatchInsert,
    /// Sharded ingest scaling: batched insert/delete throughput per shard count.
    Shards,
    /// Expand/contract-heavy churn: interleaved bulk insert/delete waves per
    /// scheme, with the alloc-per-event resize reference as an extra series.
    Churn,
    /// Memory-vs-speed frontier: the pooled/arena engine against the
    /// pool-off oracle under churn, across a sweep of workload sizes.
    Frontier,
    /// Degree-skew sweep behind the contiguous scan segments: segment scan vs
    /// the `with_scan_segments(false)` table-walk oracle, with deletes
    /// punching tombstones into the live segments.
    ScanFrontier,
    /// Durability lifecycle: ingest under each AOF sync policy (plus the
    /// AOF-off baseline), then kill-free recovery time from log and snapshot.
    Recover,
    /// Pipelined concurrent serving: loopback connections × pipeline-depth
    /// sweep against the reactor, pipelined dispatch vs the serial oracle.
    Serve,
}

impl Experiment {
    /// Every experiment, in paper order.
    pub fn all() -> Vec<Experiment> {
        use Experiment::*;
        vec![
            Table2,
            Table3,
            Table4,
            Theorem1,
            Fig2,
            Fig3,
            Fig4,
            Fig5,
            Fig6,
            Fig7,
            Fig8,
            Fig9,
            Fig10,
            Fig11,
            Fig12,
            Fig13,
            Fig14,
            Fig15,
            Fig16,
            Fig17,
            Fig18,
            SuccScan,
            BatchInsert,
            Shards,
            Churn,
            Frontier,
            ScanFrontier,
            Recover,
            Serve,
        ]
    }

    /// Stable textual id used on the command line.
    pub fn id(self) -> &'static str {
        match self {
            Experiment::Table2 => "table2",
            Experiment::Table3 => "table3",
            Experiment::Table4 => "table4",
            Experiment::Theorem1 => "theorem1",
            Experiment::Fig2 => "fig2",
            Experiment::Fig3 => "fig3",
            Experiment::Fig4 => "fig4",
            Experiment::Fig5 => "fig5",
            Experiment::Fig6 => "fig6",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Fig9 => "fig9",
            Experiment::Fig10 => "fig10",
            Experiment::Fig11 => "fig11",
            Experiment::Fig12 => "fig12",
            Experiment::Fig13 => "fig13",
            Experiment::Fig14 => "fig14",
            Experiment::Fig15 => "fig15",
            Experiment::Fig16 => "fig16",
            Experiment::Fig17 => "fig17",
            Experiment::Fig18 => "fig18",
            Experiment::SuccScan => "scan",
            Experiment::BatchInsert => "batch",
            Experiment::Shards => "shards",
            Experiment::Churn => "churn",
            Experiment::Frontier => "frontier",
            Experiment::ScanFrontier => "scanfrontier",
            Experiment::Recover => "recover",
            Experiment::Serve => "serve",
        }
    }

    /// Finds an experiment by id.
    pub fn from_id(id: &str) -> Option<Experiment> {
        Experiment::all().into_iter().find(|e| e.id() == id)
    }

    /// One-line description used by `reproduce list`.
    pub fn description(self) -> &'static str {
        match self {
            Experiment::Table2 => "S-CHT chain transformation rule (lengths per expansion)",
            Experiment::Table3 => "complexity comparison across schemes",
            Experiment::Table4 => "dataset statistics (synthetic stand-ins vs published)",
            Experiment::Theorem1 => "average placements per inserted item (Theorem 1)",
            Experiment::Fig2 => "parameter study: cells per bucket d",
            Experiment::Fig3 => "parameter study: expansion threshold G",
            Experiment::Fig4 => "parameter study: kick budget T",
            Experiment::Fig5 => "DENYLIST ablation",
            Experiment::Fig6 => "insertion throughput across schemes and datasets",
            Experiment::Fig7 => "query throughput across schemes and datasets",
            Experiment::Fig8 => "deletion throughput across schemes and datasets",
            Experiment::Fig9 => "memory usage while inserting deduplicated edges",
            Experiment::Fig10 => "BFS running time",
            Experiment::Fig11 => "SSSP (Dijkstra) running time",
            Experiment::Fig12 => "Triangle Counting running time",
            Experiment::Fig13 => "Connected Components running time",
            Experiment::Fig14 => "PageRank running time",
            Experiment::Fig15 => "Betweenness Centrality running time",
            Experiment::Fig16 => "Local Clustering Coefficient running time",
            Experiment::Fig17 => "CuckooGraph behind the Redis-like command path",
            Experiment::Fig18 => "Neo4j-like store with vs without the CuckooGraph index",
            Experiment::SuccScan => "successor-scan throughput (visitor vs Vec-collecting path)",
            Experiment::BatchInsert => "batched vs per-edge insertion throughput",
            Experiment::Shards => "sharded ingest scaling across shard counts",
            Experiment::Churn => "expand/contract churn: bulk insert/delete waves per scheme",
            Experiment::Frontier => {
                "memory-vs-speed frontier: pooled/arena engine vs pool-off oracle under churn"
            }
            Experiment::ScanFrontier => {
                "degree-skew sweep: segment scan vs table-walk oracle under deletes"
            }
            Experiment::Recover => {
                "durability lifecycle: ingest per AOF sync policy, then recovery time"
            }
            Experiment::Serve => {
                "pipelined serving: connections x depth sweep, concurrent vs serial dispatch"
            }
        }
    }

    /// Runs the experiment at the given dataset scale.
    pub fn run(self, scale: f64) -> ExperimentReport {
        match self {
            Experiment::Table2 => table2(),
            Experiment::Table3 => table3(),
            Experiment::Table4 => table4(scale),
            Experiment::Theorem1 => theorem1(scale),
            Experiment::Fig2 => tuning_d(scale),
            Experiment::Fig3 => tuning_g(scale),
            Experiment::Fig4 => tuning_t(scale),
            Experiment::Fig5 => ablation_denylist(scale),
            Experiment::Fig6 => ops_throughput(scale, Operation::Insert),
            Experiment::Fig7 => ops_throughput(scale, Operation::Query),
            Experiment::Fig8 => ops_throughput(scale, Operation::Delete),
            Experiment::Fig9 => memory_usage(scale),
            Experiment::Fig10 => analytics_task(scale, Task::Bfs),
            Experiment::Fig11 => analytics_task(scale, Task::Sssp),
            Experiment::Fig12 => analytics_task(scale, Task::TriangleCounting),
            Experiment::Fig13 => analytics_task(scale, Task::ConnectedComponents),
            Experiment::Fig14 => analytics_task(scale, Task::PageRank),
            Experiment::Fig15 => analytics_task(scale, Task::Betweenness),
            Experiment::Fig16 => analytics_task(scale, Task::Lcc),
            Experiment::Fig17 => kvstore_throughput(scale),
            Experiment::Fig18 => graphdb_comparison(scale),
            Experiment::SuccScan => successor_scan(scale),
            Experiment::BatchInsert => batch_insert(scale),
            Experiment::Shards => shards_scaling(scale),
            Experiment::Churn => churn_waves(scale),
            Experiment::Frontier => frontier(scale),
            Experiment::ScanFrontier => scan_frontier(scale),
            Experiment::Recover => recover(scale),
            Experiment::Serve => serve(scale),
        }
    }
}

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

fn fmt(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.1}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

fn datasets_for_ops() -> [DatasetKind; 7] {
    DatasetKind::all()
}

/// A smaller dataset lineup for the quadratic-ish analytics tasks, so the
/// default scale finishes quickly; the full lineup is used when `REPRO_SCALE`
/// selects a larger run.
fn datasets_for_analytics() -> [DatasetKind; 7] {
    DatasetKind::all()
}

fn distinct_edges(kind: DatasetKind, scale: f64) -> Vec<(NodeId, NodeId)> {
    generate(kind, scale, HARNESS_SEED).distinct_edges()
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

fn table2() -> ExperimentReport {
    let params = ChainParams {
        cells_per_bucket: 8,
        r: 3,
        expand_threshold: 0.9,
        contract_threshold: 0.5,
        max_kicks: 250,
        base_len: 8,
    };
    let mut chain: TableChain<NodeId> = TableChain::new(params, HARNESS_SEED);
    let mut rng = cuckoograph::rng::KickRng::new(HARNESS_SEED);
    let mut placements = 0u64;
    let mut scratch = cuckoograph::RebuildScratch::persistent();
    let mut rows = Vec::new();
    let n = params.base_len;
    for step in 0..8 {
        let lengths = chain.table_lengths();
        let cell = |i: usize| {
            lengths
                .get(i)
                .map(|&l| match (l % n == 0, l / n) {
                    (true, 1) => "n".to_string(),
                    (true, multiple) => format!("{multiple}n"),
                    (false, _) => format!("n/{}", n / l),
                })
                .unwrap_or_else(|| "null".to_string())
        };
        rows.push(vec![step.to_string(), cell(0), cell(1), cell(2)]);
        chain.expand(&mut rng, &mut placements, &mut scratch);
    }
    ExperimentReport {
        id: "table2".into(),
        tables: vec![ReportTable {
            title: "Table II — transformation rule for R = 3 (lengths after each expansion)".into(),
            headers: vec![
                "# LR > G".into(),
                "1st S-CHT".into(),
                "2nd S-CHT".into(),
                "3rd S-CHT".into(),
            ],
            rows,
        }],
        notes: vec!["Matches Table II of the paper row by row.".into()],
    }
}

fn table3() -> ExperimentReport {
    let rows = vec![
        vec![
            "LiveGraph".into(),
            "O(1)".into(),
            "O(deg(v))".into(),
            "O(|E|)".into(),
        ],
        vec![
            "Spruce".into(),
            "O(|E|/|V|)".into(),
            "O(log(|E|/|V|))".into(),
            "O(|E|)".into(),
        ],
        vec![
            "Sortledton".into(),
            "O(log|E|)".into(),
            "O(log|E|)".into(),
            "O(|E|)".into(),
        ],
        vec![
            "WBI".into(),
            "O(1)".into(),
            "O(|E|/K^2)".into(),
            "O(K^2+|E|)".into(),
        ],
        vec![
            "CuckooGraph (Ours)".into(),
            "O(1)".into(),
            "O(1)".into(),
            "O(|E|)".into(),
        ],
    ];
    ExperimentReport {
        id: "table3".into(),
        tables: vec![ReportTable {
            title: "Table III — amortised time and space complexity".into(),
            headers: vec![
                "Algorithm".into(),
                "Insert edge".into(),
                "Query edge".into(),
                "Space".into(),
            ],
            rows,
        }],
        notes: vec![
            "Analytic table; the O(1) insert/query bound for CuckooGraph assumes Theorem 1 \
             holds and T is a constant."
                .into(),
        ],
    }
}

fn table4(scale: f64) -> ExperimentReport {
    let mut rows = Vec::new();
    for kind in DatasetKind::all() {
        let published = kind.profile();
        let ds = generate(kind, scale, HARNESS_SEED);
        let stats = compute_stats(&ds.raw_edges);
        rows.push(vec![
            published.name.to_string(),
            if published.weighted { "yes" } else { "no" }.to_string(),
            stats.nodes.to_string(),
            stats.raw_edges.to_string(),
            stats.distinct_edges.to_string(),
            fmt(stats.avg_degree),
            stats.max_degree.to_string(),
            format!("{:.2e}", stats.density),
            format!("{:.2e}", published.density),
        ]);
    }
    ExperimentReport {
        id: "table4".into(),
        tables: vec![ReportTable {
            title: format!("Table IV — synthetic dataset statistics at scale {scale}"),
            headers: vec![
                "Dataset".into(),
                "Weighted?".into(),
                "Nodes".into(),
                "Edges".into(),
                "Edges (dedup)".into(),
                "Avg deg".into(),
                "Max deg".into(),
                "Density".into(),
                "Published density".into(),
            ],
            rows,
        }],
        notes: vec![
            "Synthetic stand-ins: node/edge counts are the published values times the scale \
             factor; duplicate ratios, degree skew and density follow Table IV."
                .into(),
        ],
    }
}

fn theorem1(scale: f64) -> ExperimentReport {
    // The paper inserts NotreDame into a CuckooGraph grown from the minimum
    // size and reports ≈1.017 (L-CHT) and ≈1.006 (S-CHT) placements per item.
    let edges = distinct_edges(DatasetKind::NotreDame, (scale * 5.0).min(1.0));
    let mut graph = CuckooGraph::new();
    for &(u, v) in &edges {
        graph.insert_edge(u, v);
    }
    let stats = graph.stats();
    let table = ReportTable {
        title: "§ IV-A — average number of placements per inserted item (NotreDame-like)".into(),
        headers: vec![
            "Structure".into(),
            "Items".into(),
            "Placements".into(),
            "Avg/item".into(),
        ],
        rows: vec![
            vec![
                "L-CHT".into(),
                stats.lcht_items.to_string(),
                stats.lcht_placements.to_string(),
                fmt(stats.avg_lcht_placements_per_item()),
            ],
            vec![
                "S-CHT".into(),
                stats.scht_items.to_string(),
                stats.scht_placements.to_string(),
                fmt(stats.avg_scht_placements_per_item()),
            ],
        ],
    };
    ExperimentReport {
        id: "theorem1".into(),
        tables: vec![table],
        notes: vec![
            format!(
                "Paper reports ≈1.017 (L-CHT) and ≈1.006 (S-CHT) on the full 1.5M-edge \
                 NotreDame; this run used {} edges. Both averages must sit far below T = 250.",
                edges.len()
            ),
            format!(
                "insertion failures routed to denylists: {}",
                stats.insertion_failures
            ),
        ],
    }
}

// ---------------------------------------------------------------------------
// Parameter studies (Figures 2–4) and ablation (Figure 5)
// ---------------------------------------------------------------------------

fn tuning_run(config: CuckooGraphConfig, edges: &[(NodeId, NodeId)]) -> (f64, f64, f64) {
    let mut graph = CuckooGraph::with_config(config);
    let insert = run_inserts(&mut graph, edges);
    let (query, _) = run_queries(&graph, edges);
    (insert, query, graph.memory_mb())
}

fn tuning_table(
    title: String,
    parameter: &str,
    values: &[(String, CuckooGraphConfig)],
    scale: f64,
) -> ExperimentReport {
    let edges = distinct_edges(DatasetKind::Caida, scale);
    let mut rows = Vec::new();
    for (label, config) in values {
        let (insert, query, memory) = tuning_run(config.clone(), &edges);
        rows.push(vec![label.clone(), fmt(insert), fmt(query), fmt(memory)]);
    }
    ExperimentReport {
        id: String::new(),
        tables: vec![ReportTable {
            title,
            headers: vec![
                parameter.to_string(),
                "Insert (Mops)".into(),
                "Query (Mops)".into(),
                "Memory (MB)".into(),
            ],
            rows,
        }],
        notes: vec![format!(
            "CAIDA-like deduplicated stream, {} edges.",
            edges.len()
        )],
    }
}

fn tuning_d(scale: f64) -> ExperimentReport {
    let values: Vec<(String, CuckooGraphConfig)> = [4usize, 8, 16, 32]
        .iter()
        .map(|&d| {
            (
                format!("d={d}"),
                CuckooGraphConfig::default().with_cells_per_bucket(d),
            )
        })
        .collect();
    let mut report = tuning_table(
        "Figure 2 — effect of cells per bucket d".into(),
        "d",
        &values,
        scale,
    );
    report.id = "fig2".into();
    report
        .notes
        .push("Paper picks d = 8 (fastest insertion, near-least memory).".into());
    report
}

fn tuning_g(scale: f64) -> ExperimentReport {
    let values: Vec<(String, CuckooGraphConfig)> = [0.8f64, 0.85, 0.9, 0.95]
        .iter()
        .map(|&g| {
            (
                format!("G={g}"),
                CuckooGraphConfig::default().with_expand_threshold(g),
            )
        })
        .collect();
    let mut report = tuning_table(
        "Figure 3 — effect of expansion threshold G".into(),
        "G",
        &values,
        scale,
    );
    report.id = "fig3".into();
    report
        .notes
        .push("Paper picks G = 0.9 (larger G → less memory, similar speed).".into());
    report
}

fn tuning_t(scale: f64) -> ExperimentReport {
    let values: Vec<(String, CuckooGraphConfig)> = [50usize, 150, 250, 350]
        .iter()
        .map(|&t| {
            (
                format!("T={t}"),
                CuckooGraphConfig::default().with_max_kicks(t),
            )
        })
        .collect();
    let mut report = tuning_table(
        "Figure 4 — effect of kick budget T".into(),
        "T",
        &values,
        scale,
    );
    report.id = "fig4".into();
    report
        .notes
        .push("Paper picks T = 250; T barely affects memory and only mildly affects speed.".into());
    report
}

fn ablation_denylist(scale: f64) -> ExperimentReport {
    let edges = distinct_edges(DatasetKind::Caida, scale);
    let mut rows = Vec::new();
    for (label, use_dl) in [("Ours (DL)", true), ("Ours (DL-free)", false)] {
        let config = CuckooGraphConfig::default().with_denylist(use_dl);
        let mut graph = CuckooGraph::with_config(config);
        let insert = run_inserts(&mut graph, &edges);
        let (query, _) = run_queries(&graph, &edges);
        rows.push(vec![
            label.to_string(),
            fmt(insert),
            fmt(query),
            fmt(graph.memory_mb()),
            graph.stats().insertion_failures.to_string(),
        ]);
    }
    ExperimentReport {
        id: "fig5".into(),
        tables: vec![ReportTable {
            title: "Figure 5 — DENYLIST ablation (CAIDA-like)".into(),
            headers: vec![
                "Variant".into(),
                "Insert (Mops)".into(),
                "Query (Mops)".into(),
                "Memory (MB)".into(),
                "Kick failures".into(),
            ],
            rows,
        }],
        notes: vec![
            "Paper: DL gives ≈1.11× insertion and ≈1.12× query speedup for ≈4 KB extra memory \
             (DL-free expands on every failure instead)."
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Basic tasks (Figures 6–9)
// ---------------------------------------------------------------------------

/// Which basic operation a throughput experiment measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operation {
    Insert,
    Query,
    Delete,
}

fn ops_throughput(scale: f64, operation: Operation) -> ExperimentReport {
    let (id, title) = match operation {
        Operation::Insert => ("fig6", "Figure 6 — insertion throughput (Mops)"),
        Operation::Query => ("fig7", "Figure 7 — query throughput (Mops)"),
        Operation::Delete => ("fig8", "Figure 8 — deletion throughput (Mops)"),
    };
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(
        SchemeKind::paper_lineup()
            .iter()
            .map(|s| s.label().to_string()),
    );
    let mut rows = Vec::new();
    for kind in datasets_for_ops() {
        let dataset = generate(kind, scale, HARNESS_SEED);
        let raw = &dataset.raw_edges;
        let dedup = dataset.distinct_edges();
        let mut row = vec![kind.name().to_string()];
        for scheme in SchemeKind::paper_lineup() {
            let mut graph = scheme.build();
            let value = match operation {
                Operation::Insert => run_inserts(graph.as_mut(), raw),
                Operation::Query => {
                    run_inserts(graph.as_mut(), raw);
                    run_queries(graph.as_ref(), raw).0
                }
                Operation::Delete => {
                    run_inserts(graph.as_mut(), raw);
                    run_deletes(graph.as_mut(), &dedup)
                }
            };
            row.push(fmt(value));
        }
        rows.push(row);
    }
    ExperimentReport {
        id: id.into(),
        tables: vec![ReportTable {
            title: title.into(),
            headers,
            rows,
        }],
        notes: vec![
            "Expected shape (paper): Ours fastest on almost every dataset; Sortledton the \
             closest on insertion; Spruce competitive on some queries; WBI and LiveGraph \
             slowest overall."
                .into(),
        ],
    }
}

fn memory_usage(scale: f64) -> ExperimentReport {
    let mut tables = Vec::new();
    for kind in datasets_for_ops() {
        let dedup = distinct_edges(kind, scale);
        let mut headers = vec!["Scheme".to_string()];
        headers.extend(
            ["25%", "50%", "75%", "100%"]
                .iter()
                .map(|s| format!("{s} (MB)")),
        );
        let mut rows = Vec::new();
        for scheme in SchemeKind::paper_lineup() {
            let mut graph = scheme.build();
            let curve = memory_curve(graph.as_mut(), &dedup, 4);
            let mut row = vec![scheme.label().to_string()];
            for point in &curve {
                row.push(fmt(point.1));
            }
            while row.len() < headers.len() {
                row.push("-".into());
            }
            rows.push(row);
        }
        tables.push(ReportTable {
            title: format!(
                "Figure 9 — memory usage while inserting {} deduplicated edges ({})",
                dedup.len(),
                kind.name()
            ),
            headers,
            rows,
        });
    }
    ExperimentReport {
        id: "fig9".into(),
        tables,
        notes: vec![
            "Expected shape (paper): Ours uses the least memory on every dataset \
             (on average 1.47× less than Spruce, 5.92× less than LiveGraph)."
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Graph analytics tasks (Figures 10–16)
// ---------------------------------------------------------------------------

/// Which analytics task a running-time experiment measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    Bfs,
    Sssp,
    TriangleCounting,
    ConnectedComponents,
    PageRank,
    Betweenness,
    Lcc,
}

impl Task {
    fn id_title(self) -> (&'static str, &'static str) {
        match self {
            Task::Bfs => ("fig10", "Figure 10 — BFS running time (s)"),
            Task::Sssp => ("fig11", "Figure 11 — SSSP running time (s)"),
            Task::TriangleCounting => ("fig12", "Figure 12 — Triangle Counting running time (s)"),
            Task::ConnectedComponents => {
                ("fig13", "Figure 13 — Connected Components running time (s)")
            }
            Task::PageRank => ("fig14", "Figure 14 — PageRank running time (s)"),
            Task::Betweenness => (
                "fig15",
                "Figure 15 — Betweenness Centrality running time (s)",
            ),
            Task::Lcc => (
                "fig16",
                "Figure 16 — Local Clustering Coefficient running time (s)",
            ),
        }
    }

    /// Runs the task against one populated graph and returns the elapsed
    /// seconds, following the § V-E methodology for that task.
    fn run(self, graph: &dyn DynamicGraph) -> f64 {
        // Subgraph parameters: the paper selects "a specific number" of
        // top-total-degree nodes; the harness uses a fixed budget so every
        // scheme does identical algorithmic work.
        const SUBGRAPH_NODES: usize = 48;
        const BFS_SOURCES: usize = 8;
        const SSSP_SOURCES: usize = 10;
        const TC_NODES: usize = 16;
        let start = Instant::now();
        match self {
            Task::Bfs => {
                let reached = analytics::bfs_from_top_degree(graph, BFS_SOURCES);
                std::hint::black_box(reached);
            }
            Task::Sssp => {
                let counts = analytics::sssp_from_top_degree(graph, SSSP_SOURCES);
                std::hint::black_box(counts);
            }
            Task::TriangleCounting => {
                let nodes = analytics::top_degree_nodes(graph, TC_NODES);
                let total: usize = nodes
                    .iter()
                    .map(|&n| analytics::triangles_containing(graph, n))
                    .sum();
                std::hint::black_box(total);
            }
            Task::ConnectedComponents => {
                let nodes = analytics::top_degree_nodes(graph, SUBGRAPH_NODES);
                std::hint::black_box(analytics::connected_components(graph, &nodes).count);
            }
            Task::PageRank => {
                let nodes = analytics::top_degree_nodes(graph, SUBGRAPH_NODES);
                let pr = analytics::pagerank(graph, &nodes, &analytics::PageRankConfig::default());
                std::hint::black_box(pr.len());
            }
            Task::Betweenness => {
                let nodes = analytics::top_degree_nodes(graph, SUBGRAPH_NODES);
                std::hint::black_box(analytics::betweenness_centrality(graph, &nodes).len());
            }
            Task::Lcc => {
                let nodes = analytics::top_degree_nodes(graph, SUBGRAPH_NODES);
                std::hint::black_box(analytics::local_clustering_coefficients(graph, &nodes).len());
            }
        }
        start.elapsed().as_secs_f64()
    }
}

fn analytics_task(scale: f64, task: Task) -> ExperimentReport {
    let (id, title) = task.id_title();
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(
        SchemeKind::paper_lineup()
            .iter()
            .map(|s| s.label().to_string()),
    );
    let mut rows = Vec::new();
    for kind in datasets_for_analytics() {
        let dedup = distinct_edges(kind, scale);
        let mut row = vec![kind.name().to_string()];
        for scheme in SchemeKind::paper_lineup() {
            let mut graph = scheme.build();
            for &(u, v) in &dedup {
                graph.insert_edge(u, v);
            }
            row.push(format!("{:.5}", task.run(graph.as_ref())));
        }
        rows.push(row);
    }
    ExperimentReport {
        id: id.into(),
        tables: vec![ReportTable {
            title: title.into(),
            headers,
            rows,
        }],
        notes: vec![
            "Expected shape (paper): Ours fastest on SSSP/TC/BC/LCC, roughly tied with Spruce \
             on BFS/CC/PR; WBI slowest wherever successor queries dominate."
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Traversal and mutation surface (successor scans, batched inserts)
// ---------------------------------------------------------------------------

/// Number of scan rounds per measurement, so small datasets still produce a
/// timeable amount of work.
const SCAN_ROUNDS: usize = 4;

/// The source-node lineup of a populated graph, gathered through the
/// zero-allocation visitor (setup, not part of any timed loop).
fn scan_sources(graph: &dyn DynamicGraph) -> Vec<NodeId> {
    let mut sources = Vec::with_capacity(graph.node_count());
    graph.for_each_node(&mut |u| sources.push(u));
    sources.sort_unstable();
    sources
}

fn successor_scan(scale: f64) -> ExperimentReport {
    let mut headers = vec!["Dataset".to_string()];
    headers.extend(
        SchemeKind::paper_lineup()
            .iter()
            .map(|s| s.label().to_string()),
    );
    headers.push("Ours (Vec path)".into());
    let mut rows = Vec::new();
    for kind in datasets_for_ops() {
        let dedup = distinct_edges(kind, scale);
        let mut row = vec![kind.name().to_string()];
        let mut cuckoo_vec = String::new();
        for scheme in SchemeKind::paper_lineup() {
            let mut graph = scheme.build();
            graph.insert_edges(&dedup);
            let sources = scan_sources(graph.as_ref());
            let (mops, _) = run_successor_scans(graph.as_ref(), &sources, SCAN_ROUNDS);
            row.push(fmt(mops));
            if scheme == SchemeKind::CuckooGraph {
                let (vec_mops, _) = run_successor_scans_vec(graph.as_ref(), &sources, SCAN_ROUNDS);
                cuckoo_vec = fmt(vec_mops);
            }
        }
        row.push(cuckoo_vec);
        rows.push(row);
    }
    ExperimentReport {
        id: "scan".into(),
        tables: vec![ReportTable {
            title: "Successor-scan throughput (million visited edges per second)".into(),
            headers,
            rows,
        }],
        notes: vec![
            "Every scheme is scanned through `for_each_successor`; the last column repeats \
             CuckooGraph through the Vec-collecting `successors()` path the visitors replaced \
             (one heap allocation per vertex visit)."
                .into(),
        ],
    }
}

fn batch_insert(scale: f64) -> ExperimentReport {
    let mut headers = vec!["Dataset".to_string()];
    for scheme in SchemeKind::paper_lineup() {
        headers.push(format!("{} batch", scheme.label()));
        headers.push(format!("{} loop", scheme.label()));
    }
    let mut rows = Vec::new();
    for kind in datasets_for_ops() {
        // Sort by source so the run-grouped fast paths see whole adjacencies.
        let mut edges = distinct_edges(kind, scale);
        edges.sort_unstable();
        let mut row = vec![kind.name().to_string()];
        for scheme in SchemeKind::paper_lineup() {
            let mut batched = scheme.build();
            let batch_mops = run_batched_inserts(batched.as_mut(), &edges);
            let mut looped = scheme.build();
            let loop_mops = run_inserts(looped.as_mut(), &edges);
            assert_eq!(
                batched.edge_count(),
                looped.edge_count(),
                "{}: batched and per-edge inserts disagree",
                scheme.label()
            );
            row.push(fmt(batch_mops));
            row.push(fmt(loop_mops));
        }
        rows.push(row);
    }
    ExperimentReport {
        id: "batch".into(),
        tables: vec![ReportTable {
            title: "Insertion throughput, batched `insert_edges` vs per-edge loop (Mops)".into(),
            headers,
            rows,
        }],
        notes: vec![
            "Batches are sorted by source node, the bulk-load shape; the batched path hoists \
             node-cell resolution and config reads out of the per-edge loop."
                .into(),
        ],
    }
}

/// The shard counts the scaling experiment (and the `perf_smoke` thread
/// sweep) step through.
pub const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn shards_scaling(scale: f64) -> ExperimentReport {
    // The streaming-ingest shape: the raw, unsorted, duplicate-heavy stream
    // (CAIDA repeats each source ~30×), fed through the batched insert path.
    // The sharded fan-out groups the batch per shard before the per-shard
    // engines run, so multi-shard ingest wins twice: scoped threads on
    // multi-core machines, and shard-local working sets (each repeated source
    // probes a 1/N-sized table) even on one core.
    let dataset = generate(DatasetKind::Caida, scale, HARNESS_SEED);
    let raw = &dataset.raw_edges;
    let dedup = dataset.distinct_edges();
    let mut rows = Vec::new();
    let mut serial_insert = 0.0f64;
    for shards in SHARD_SWEEP {
        let mut graph = ShardedCuckooGraph::new(shards);
        let insert = run_batched_inserts(&mut graph, raw);
        assert_eq!(
            graph.edge_count(),
            dedup.len(),
            "{shards}-shard ingest dropped edges"
        );
        if shards == 1 {
            serial_insert = insert;
        }
        let start = Instant::now();
        let removed = graph.remove_edges(&dedup);
        let delete = dedup.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
        assert_eq!(removed, dedup.len(), "{shards}-shard delete missed edges");
        assert_eq!(graph.edge_count(), 0);
        rows.push(vec![
            shards.to_string(),
            fmt(insert),
            format!("{:.2}x", insert / serial_insert.max(f64::MIN_POSITIVE)),
            fmt(delete),
        ]);
    }
    ExperimentReport {
        id: "shards".into(),
        tables: vec![ReportTable {
            title: format!(
                "Sharded ingest scaling — CAIDA-like raw stream, {} items ({} distinct)",
                raw.len(),
                dedup.len()
            ),
            headers: vec![
                "Shards".into(),
                "Batched insert (Mops)".into(),
                "Speedup".into(),
                "Batched delete (Mops)".into(),
            ],
            rows,
        }],
        notes: vec![
            "One scoped thread per shard; the speedup column is relative to the 1-shard \
             (serial fast-path) row. Expect near-linear insert scaling up to the core count, \
             and a residual benefit beyond it from shard-local cache working sets."
                .into(),
        ],
    }
}

/// Insert/delete waves per churn measurement — enough rounds that the
/// expansion *and* contraction machinery dominates the timing.
pub const CHURN_WAVES: usize = 4;

fn churn_waves(scale: f64) -> ExperimentReport {
    // Source-sorted distinct edges: every wave bulk-loads whole adjacencies
    // (driving S-CHT chains up through their transformation thresholds) and
    // then bulk-deletes them (driving the chains back down to inline slots),
    // so the resize paths fire thousands of times per measurement.
    let mut edges = distinct_edges(DatasetKind::Caida, scale);
    edges.sort_unstable();
    let mut rows = Vec::new();
    for scheme in SchemeKind::paper_lineup() {
        let mut graph = scheme.build();
        let mops = run_churn_waves(graph.as_mut(), &edges, CHURN_WAVES);
        assert_eq!(
            graph.edge_count(),
            0,
            "{}: churn waves left edges behind",
            scheme.label()
        );
        rows.push(vec![scheme.label().to_string(), fmt(mops)]);
    }
    // The alloc-per-event resize reference: the same engine with the
    // persistent rebuild scratch disabled, i.e. the pre-PR-5 cost shape.
    let mut reference =
        CuckooGraph::with_config(CuckooGraphConfig::default().with_resize_scratch(false));
    let reference_mops = run_churn_waves(&mut reference, &edges, CHURN_WAVES);
    rows.push(vec![
        "Ours (alloc-per-event resize)".into(),
        fmt(reference_mops),
    ]);
    // The allocate-per-table reference: the same engine with the table pool
    // disabled, i.e. the pre-PR-6 cost shape (every TRANSFORMATION event pays
    // the allocator for its fresh tables).
    let mut pool_off =
        CuckooGraph::with_config(CuckooGraphConfig::default().with_table_pool(false));
    let pool_off_mops = run_churn_waves(&mut pool_off, &edges, CHURN_WAVES);
    rows.push(vec!["Ours (pool-off)".into(), fmt(pool_off_mops)]);
    ExperimentReport {
        id: "churn".into(),
        tables: vec![ReportTable {
            title: format!(
                "Expand/contract churn — {} bulk insert+delete waves over {} edges (Mops)",
                CHURN_WAVES,
                edges.len()
            ),
            headers: vec!["Scheme".into(), "Churn (Mops)".into()],
            rows,
        }],
        notes: vec![
            "Each wave bulk-inserts the whole deduplicated edge set and bulk-deletes it \
             again, so every hot node's S-CHT chain expands through its thresholds and \
             contracts back to inline slots. The last row re-runs Ours with the persistent \
             rebuild scratch disabled (fresh buffers per resize event) — the pre-change \
             reference the perf_smoke resize guard asserts against. The pool-off row \
             disables the PR-6 table pool instead (fresh table buffers per TRANSFORMATION \
             event) — the reference the perf_smoke pool guard asserts against."
                .into(),
        ],
    }
}

/// Workload multipliers the frontier sweep applies on top of the harness
/// scale, so one invocation shows how the pooled-vs-oracle gap moves as the
/// structure grows (`REPRO_SCALE` shifts the whole sweep up to the
/// multi-million-edge regime).
pub const FRONTIER_MULTIPLIERS: [f64; 3] = [1.0, 2.0, 4.0];

/// The memory-vs-speed frontier: at each workload size, the pooled/arena
/// engine and the pool-off oracle run the same churn waves, then reload and
/// report their memory footprint before and after arena compaction.
fn frontier(scale: f64) -> ExperimentReport {
    let mut rows = Vec::new();
    let mut sizes = Vec::new();
    for mult in FRONTIER_MULTIPLIERS {
        // The dense profile: every hot node's chain climbs through several
        // TRANSFORMATION rounds per wave, so table recycling dominates.
        let mut edges = distinct_edges(DatasetKind::DenseGraph, scale * mult);
        edges.sort_unstable();
        sizes.push(edges.len());
        for (label, pool) in [("Ours (pooled)", true), ("Ours (pool-off)", false)] {
            let config = CuckooGraphConfig::default().with_table_pool(pool);
            let mut graph = CuckooGraph::with_config(config);
            let churn = run_churn_waves(&mut graph, &edges, CHURN_WAVES);
            assert_eq!(graph.edge_count(), 0, "{label}: churn left edges behind");
            // Reload so the memory columns describe a populated structure
            // whose arena carries the churn history's fragmentation.
            let reload = run_batched_inserts(&mut graph, &edges);
            assert_eq!(
                graph.edge_count(),
                edges.len(),
                "{label}: reload dropped edges"
            );
            let stats = graph.stats();
            let loaded_bytes = graph.memory_bytes();
            let freed = graph.compact_arena();
            let compacted_bytes = graph.memory_bytes();
            assert!(
                compacted_bytes <= loaded_bytes,
                "{label}: arena compaction grew the footprint"
            );
            if pool {
                assert!(stats.pool_hits > 0, "pooled run never hit the pool");
            } else {
                assert_eq!(stats.pool_hits, 0, "oracle run must not recycle");
                assert_eq!(stats.pool_retained_bytes, 0, "oracle run retained buffers");
            }
            rows.push(vec![
                edges.len().to_string(),
                label.to_string(),
                fmt(churn),
                fmt(reload),
                loaded_bytes.to_string(),
                compacted_bytes.to_string(),
                freed.to_string(),
                stats.pool_hits.to_string(),
                stats.pool_retained_bytes.to_string(),
            ]);
        }
    }
    ExperimentReport {
        id: "frontier".into(),
        tables: vec![ReportTable {
            title: format!(
                "Memory-vs-speed frontier — {} churn waves per point, dense profile \
                 ({:?} edges at scale {scale})",
                CHURN_WAVES, sizes
            ),
            headers: vec![
                "Edges".into(),
                "Variant".into(),
                "Churn (Mops)".into(),
                "Reload (Mops)".into(),
                "Mem (B)".into(),
                "Mem compacted (B)".into(),
                "Blocks freed".into(),
                "Pool hits".into(),
                "Pool retained (B)".into(),
            ],
            rows,
        }],
        notes: vec![
            "Each point churns the whole edge set through bulk insert+delete waves, \
             reloads it, and compacts the slot arena. The pooled engine should match or \
             beat the pool-off oracle on churn throughput while its footprint (which \
             honestly counts retained pool buffers and arena slack) stays within a \
             constant factor — the memory-vs-speed trade the table pool is buying."
                .into(),
            "Scale the sweep with REPRO_SCALE to reach the multi-million-edge regime \
             (e.g. REPRO_SCALE=0.1 on the dense profile)."
                .into(),
        ],
    }
}

/// Per-source successor counts of the flat profiles in the scan-frontier
/// sweep: below the transformation threshold (inline slots, no segments),
/// just above it, and deep into segment territory. The skewed profile halves
/// a hub budget instead of fixing a degree.
pub const SCAN_FRONTIER_DEGREES: [usize; 3] = [4, 32, 256];

/// The scan-frontier sweep: at each degree profile the segment engine and the
/// `with_scan_segments(false)` table-walk oracle load the same adjacencies,
/// delete every third successor (punching tombstones into the live segments
/// and tripping the dead-quarter compaction), and then scan what is left.
fn scan_frontier(scale: f64) -> ExperimentReport {
    // Edge budget per profile, matched across rows so the columns compare
    // degree shape, not workload size.
    let budget = ((2_000_000.0 * scale) as usize).max(256);
    let mut profiles: Vec<(String, Vec<(NodeId, NodeId)>)> = Vec::new();
    for degree in SCAN_FRONTIER_DEGREES {
        let sources = (budget / degree).max(1);
        let mut edges = Vec::with_capacity(sources * degree);
        for s in 0..sources as NodeId {
            let u = s + 1;
            for j in 0..degree as NodeId {
                edges.push((u, (u << 24) + j + 1));
            }
        }
        profiles.push((format!("uniform d={degree}"), edges));
    }
    // Skewed profile: hub degrees halve source by source, so one scan mixes a
    // few segment-backed giants with an inline-slot tail.
    let mut edges = Vec::with_capacity(budget);
    let mut hub: NodeId = 1;
    let mut degree = budget / 2;
    while edges.len() < budget {
        for j in 0..degree.max(2) as NodeId {
            edges.push((hub, (hub << 24) + j + 1));
        }
        hub += 1;
        degree /= 2;
    }
    profiles.push(("power-law".into(), edges));

    let mut rows = Vec::new();
    for (label, edges) in &profiles {
        let mut pair = Vec::new();
        for segments in [true, false] {
            let config = CuckooGraphConfig::default().with_scan_segments(segments);
            let mut graph = CuckooGraph::with_config(config);
            graph.insert_edges(edges);
            for (k, &(u, v)) in edges.iter().enumerate() {
                if k % 3 == 0 {
                    graph.delete_edge(u, v);
                }
            }
            let sources = scan_sources(&graph);
            let (mops, visited) = run_successor_scans(&graph, &sources, SCAN_ROUNDS);
            pair.push((mops, visited, graph.stats()));
        }
        let (seg_mops, seg_visited, seg_stats) = &pair[0];
        let (walk_mops, walk_visited, _) = &pair[1];
        assert_eq!(
            seg_visited, walk_visited,
            "{label}: segment scan and table-walk oracle disagree"
        );
        rows.push(vec![
            label.clone(),
            fmt(*seg_mops),
            fmt(*walk_mops),
            format!("{:.2}x", seg_mops / walk_mops.max(f64::MIN_POSITIVE)),
            seg_stats.segment_bytes.to_string(),
            seg_stats.segment_tombstones.to_string(),
            seg_stats.segment_compactions.to_string(),
        ]);
    }
    ExperimentReport {
        id: "scanfrontier".into(),
        tables: vec![ReportTable {
            title: format!(
                "Scan frontier — segment scan vs table-walk oracle, {budget}-edge budget \
                 per profile, every third successor deleted"
            ),
            headers: vec![
                "Profile".into(),
                "Segments (Mops)".into(),
                "Table-walk (Mops)".into(),
                "Ratio".into(),
                "Segment bytes".into(),
                "Tombstones".into(),
                "Compactions".into(),
            ],
            rows,
        }],
        notes: vec![
            "Both variants visit identical successor sets (asserted per profile); the \
             ratio column is the contiguous-segment speedup over the chained-table walk. \
             Low uniform degrees stay in inline slots (no segments, ratio ≈ 1); the \
             tombstone and compaction columns show the delete wave exercising the \
             incremental segment maintenance instead of rebuilds."
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Durability (recover)
// ---------------------------------------------------------------------------

/// Ops per append batch in the recover experiment — one log frame per batch,
/// so `Always` pays one fsync per 1024 ops (group commit), not per op.
const RECOVER_BATCH: usize = 1024;

/// The durability lifecycle experiment: the same op stream is ingested into a
/// [`DurableGraphStore`] under each AOF sync policy (plus a no-durability
/// in-memory baseline), the store is dropped without a clean shutdown, and a
/// reopen measures recovery. A final row snapshots mid-stream so recovery
/// loads the snapshot and replays only the log suffix.
fn recover(scale: f64) -> ExperimentReport {
    let total = ((2_000_000.0 * scale) as usize).max(4 * RECOVER_BATCH);
    let nodes = (total / 8).max(64) as NodeId;
    let ops: Vec<GraphOp> = (0..total as NodeId)
        .map(|i| GraphOp::Insert {
            u: i % nodes,
            v: (i.wrapping_mul(2_654_435_761) + 1) % nodes,
            w: 1 + i % 4,
        })
        .collect();

    // In-memory baseline: the same stream with no log in the write path.
    let mut baseline = WeightedCuckooGraph::new();
    let start = Instant::now();
    for op in &ops {
        if let GraphOp::Insert { u, v, w } = *op {
            baseline.insert_weighted(u, v, w.max(1));
        }
    }
    let base_mops = total as f64 / start.elapsed().as_secs_f64() / 1e6;
    let live_edges = baseline.edge_count();

    let mut rows = vec![vec![
        "off (in-memory)".into(),
        fmt(base_mops),
        "1.00x".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]];

    let policies = [
        ("never", SyncPolicy::Never, false),
        ("everysec", SyncPolicy::EverySecond, false),
        ("always", SyncPolicy::Always, false),
        ("always + snapshot", SyncPolicy::Always, true),
    ];
    for (label, policy, snapshot) in policies {
        let dir = std::env::temp_dir()
            .join(format!(
                "cuckoograph-bench-recover-{}-{}",
                std::process::id(),
                label.replace([' ', '+'], "")
            ))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || DurabilityConfig::new(&dir).with_sync_policy(policy);

        let (mut store, _) =
            DurableGraphStore::open(StdVfs, cfg(), WeightedCuckooGraph::new).expect("fresh open");
        let start = Instant::now();
        for (k, chunk) in ops.chunks(RECOVER_BATCH).enumerate() {
            store.apply(chunk).expect("append + apply");
            // Mid-stream snapshot: recovery replays only the suffix after it.
            if snapshot && k == total / RECOVER_BATCH / 2 {
                store.save_snapshot().expect("snapshot");
            }
        }
        let mops = total as f64 / start.elapsed().as_secs_f64() / 1e6;
        let log_bytes = store.aof_offset();
        assert_eq!(
            store.graph().edge_count(),
            live_edges,
            "{label}: live state diverged"
        );
        drop(store); // no clean shutdown: recovery starts from whatever is on disk

        let start = Instant::now();
        let (recovered, report) =
            DurableGraphStore::open(StdVfs, cfg(), WeightedCuckooGraph::new).expect("recover");
        let recover_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            recovered.graph().edge_count(),
            live_edges,
            "{label}: recovered state diverged"
        );
        let _ = std::fs::remove_dir_all(&dir);

        rows.push(vec![
            label.into(),
            fmt(mops),
            format!("{:.2}x", mops / base_mops.max(f64::MIN_POSITIVE)),
            log_bytes.to_string(),
            format!("{:?}", report.source),
            report.ops_replayed.to_string(),
            format!("{recover_ms:.1}"),
        ]);
    }

    ExperimentReport {
        id: "recover".into(),
        tables: vec![ReportTable {
            title: format!(
                "Durability lifecycle — {total} weighted inserts in {RECOVER_BATCH}-op \
                 batches, kill (drop without shutdown), reopen"
            ),
            headers: vec![
                "Policy".into(),
                "Ingest (Mops)".into(),
                "vs off".into(),
                "Log bytes".into(),
                "Recovered from".into(),
                "Ops replayed".into(),
                "Recovery (ms)".into(),
            ],
            rows,
        }],
        notes: vec![
            "Every durable row recovers the exact live edge count (asserted). `Never` \
             leaves syncing to the OS, `EverySecond` bounds loss to ~1s, `Always` \
             fsyncs once per batch. The snapshot row recovers from the newest \
             snapshot and replays only the log suffix, so its ops-replayed column \
             drops to roughly half the stream."
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Integrations (Figures 17–18)
// ---------------------------------------------------------------------------

fn kvstore_throughput(scale: f64) -> ExperimentReport {
    let mut rows = Vec::new();
    for kind in [DatasetKind::Caida, DatasetKind::StackOverflow] {
        let dataset = generate(kind, scale, HARNESS_SEED);
        let raw = &dataset.raw_edges;
        let dedup = dataset.distinct_edges();

        let mut server = Server::new();
        server.load_module(Box::new(CuckooGraphModule::new()));
        let key = "g".to_string();

        // Insertion through the command path.
        let start = Instant::now();
        for &(u, v) in raw {
            let cmd = vec![
                "graph.insert".to_string(),
                key.clone(),
                u.to_string(),
                v.to_string(),
            ];
            server.execute(&cmd);
        }
        let insert = raw.len() as f64 / start.elapsed().as_secs_f64() / 1e6;

        // Query through the command path.
        let start = Instant::now();
        let mut hits = 0usize;
        for &(u, v) in &dedup {
            let cmd = vec![
                "graph.query".to_string(),
                key.clone(),
                u.to_string(),
                v.to_string(),
            ];
            if matches!(server.execute(&cmd), Reply::Integer(w) if w > 0) {
                hits += 1;
            }
        }
        let query = dedup.len() as f64 / start.elapsed().as_secs_f64() / 1e6;
        assert_eq!(
            hits,
            dedup.len(),
            "command-path queries must find every inserted edge"
        );

        // Deletion through the command path.
        let start = Instant::now();
        for &(u, v) in &dedup {
            let cmd = vec![
                "graph.del".to_string(),
                key.clone(),
                u.to_string(),
                v.to_string(),
            ];
            server.execute(&cmd);
        }
        let delete = dedup.len() as f64 / start.elapsed().as_secs_f64() / 1e6;

        // Native SET baseline ("Redis benchmark" reference point).
        let start = Instant::now();
        let probe = 10_000usize.min(raw.len());
        for i in 0..probe {
            server.execute(&["set".to_string(), format!("k{i}"), "v".to_string()]);
        }
        let native = probe as f64 / start.elapsed().as_secs_f64() / 1e6;

        rows.push(vec![
            kind.name().to_string(),
            fmt(insert),
            fmt(query),
            fmt(delete),
            fmt(native),
        ]);
    }
    ExperimentReport {
        id: "fig17".into(),
        tables: vec![ReportTable {
            title: "Figure 17 — CuckooGraph module throughput through the command path (Mops)"
                .into(),
            headers: vec![
                "Dataset".into(),
                "Insert".into(),
                "Query".into(),
                "Delete".into(),
                "Native SET (reference)".into(),
            ],
            rows,
        }],
        notes: vec![
            "Expected shape (paper): module throughput is an order of magnitude below the bare \
             data structure and sits near the store's native command throughput — dispatch \
             dominates, CuckooGraph itself adds little."
                .into(),
        ],
    }
}

fn graphdb_comparison(scale: f64) -> ExperimentReport {
    // The paper inserts the first 1M CAIDA edges; scale that budget down.
    let dataset = generate(DatasetKind::Caida, scale, HARNESS_SEED);
    let budget = dataset.raw_edges.len().min(1_000_000);
    let raw = &dataset.raw_edges[..budget];
    let dedup: Vec<(NodeId, NodeId)> = {
        let mut seen = std::collections::HashSet::new();
        raw.iter().copied().filter(|e| seen.insert(*e)).collect()
    };

    let mut rows = Vec::new();
    for (label, with_index) in [("Ours+Neo4j", true), ("Neo4j", false)] {
        let mut db = if with_index {
            PropertyGraph::with_cuckoo_index()
        } else {
            PropertyGraph::new()
        };
        let start = Instant::now();
        for &(u, v) in raw {
            db.create_relationship(u, v, "FLOW");
        }
        let insert_s = start.elapsed().as_secs_f64();

        let start = Instant::now();
        let mut found = 0usize;
        let mut scanned = 0usize;
        for &(u, v) in &dedup {
            let (matches, cost) = db.relationships_between(u, v);
            found += usize::from(!matches.is_empty());
            scanned += cost.relationships_scanned;
        }
        let query_s = start.elapsed().as_secs_f64();
        assert_eq!(found, dedup.len());
        rows.push(vec![
            label.to_string(),
            format!("{insert_s:.4}"),
            format!("{query_s:.4}"),
            scanned.to_string(),
        ]);
    }
    ExperimentReport {
        id: "fig18".into(),
        tables: vec![ReportTable {
            title: format!(
                "Figure 18 — property-graph store with vs without the CuckooGraph index \
                 ({} raw edges, {} distinct queries)",
                raw.len(),
                dedup.len()
            ),
            headers: vec![
                "Variant".into(),
                "Insertion time (s)".into(),
                "Query time (s)".into(),
                "Relationship records touched".into(),
            ],
            rows,
        }],
        notes: vec![
            "Expected shape (paper): insertion time is nearly identical (the index adds a \
             small constant per edge); query time with the index is orders of magnitude lower \
             because the adjacency-list scan touches every relationship of the source node."
                .into(),
        ],
    }
}

// ---------------------------------------------------------------------------
// Pipelined concurrent serving
// ---------------------------------------------------------------------------

fn serve(scale: f64) -> ExperimentReport {
    let sweep = crate::serve::ServeSweep::at_scale(scale);
    let points = crate::serve::run_serve_sweep(&sweep);
    let rows = points
        .iter()
        .map(|p| {
            vec![
                if p.concurrent { "pipelined" } else { "serial" }.to_string(),
                p.connections.to_string(),
                p.depth.to_string(),
                p.ops.to_string(),
                fmt(p.kops),
                format!("{:.1}", p.p50_us),
                format!("{:.1}", p.p99_us),
            ]
        })
        .collect();
    ExperimentReport {
        id: "serve".into(),
        tables: vec![ReportTable {
            title: format!(
                "Pipelined concurrent serving — {} preloaded edges, {} ops/conn, \
                 {}% writes, {} reactor workers, loopback TCP",
                sweep.preload_edges, sweep.ops_per_conn, sweep.write_pct, sweep.workers
            ),
            headers: vec![
                "Dispatch".into(),
                "Conns".into(),
                "Depth".into(),
                "Ops".into(),
                "kops/s".into(),
                "p50 burst (us)".into(),
                "p99 burst (us)".into(),
            ],
            rows,
        }],
        notes: vec![
            "`pipelined` answers graph reads inline on the workers from sharded read \
             views and group-commits writes in batches; `serial` funnels every command \
             through the single writer (the dispatch oracle). The pipelined win grows \
             with depth — at depth 1 both modes measure ping-pong RTT. Latency \
             percentiles are per burst of `depth` commands, so deeper points trade \
             per-burst latency for throughput. On single-core runners the spread \
             narrows: the reactor's workers, writer and the clients time-slice one CPU."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_SCALE: f64 = 0.0005;

    #[test]
    fn table2_reproduces_the_published_rows() {
        let report = table2();
        let rows = &report.tables[0].rows;
        assert_eq!(rows[0][1..], ["n", "null", "null"].map(String::from));
        assert_eq!(rows[1][1..], ["n", "n/2", "null"].map(String::from));
        assert_eq!(rows[3][1..], ["2n", "n", "null"].map(String::from));
        assert_eq!(rows[7][1..], ["8n", "4n", "null"].map(String::from));
    }

    #[test]
    fn table4_produces_a_row_per_dataset() {
        let report = table4(TEST_SCALE);
        assert_eq!(report.tables[0].rows.len(), 7);
        assert!(report.render().contains("CAIDA"));
    }

    #[test]
    fn theorem1_average_is_far_below_the_kick_budget() {
        let report = theorem1(TEST_SCALE);
        let avg: f64 = report.tables[0].rows[0][3].parse().unwrap();
        assert!((1.0..50.0).contains(&avg), "avg placements {avg}");
    }

    #[test]
    fn tuning_and_ablation_produce_expected_rows() {
        let fig2 = tuning_d(TEST_SCALE);
        assert_eq!(fig2.tables[0].rows.len(), 4);
        let fig5 = ablation_denylist(TEST_SCALE);
        assert_eq!(fig5.tables[0].rows.len(), 2);
        // Both variants store everything: memory within 2× of each other.
        let dl: f64 = fig5.tables[0].rows[0][3].parse().unwrap();
        let free: f64 = fig5.tables[0].rows[1][3].parse().unwrap();
        assert!(dl <= free * 2.0 && free <= dl * 2.0);
    }

    #[test]
    fn throughput_experiment_covers_every_scheme_and_dataset() {
        let report = ops_throughput(TEST_SCALE, Operation::Insert);
        assert_eq!(report.tables[0].rows.len(), 7);
        assert_eq!(report.tables[0].headers.len(), 6);
        for row in &report.tables[0].rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn graphdb_comparison_shows_the_index_win() {
        let report = graphdb_comparison(TEST_SCALE);
        let rows = &report.tables[0].rows;
        let indexed_touched: usize = rows[0][3].parse().unwrap();
        let scan_touched: usize = rows[1][3].parse().unwrap();
        assert!(
            scan_touched > indexed_touched,
            "scan path should touch more records ({scan_touched} vs {indexed_touched})"
        );
    }

    #[test]
    fn successor_scan_report_covers_every_scheme_plus_vec_column() {
        let report = successor_scan(TEST_SCALE);
        assert_eq!(report.tables[0].headers.len(), 7);
        assert_eq!(report.tables[0].rows.len(), 7);
        for row in &report.tables[0].rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0, "non-positive scan throughput: {row:?}");
            }
        }
    }

    #[test]
    fn batch_insert_report_pairs_batch_and_loop_columns() {
        let report = batch_insert(TEST_SCALE);
        assert_eq!(report.tables[0].headers.len(), 11);
        assert_eq!(report.tables[0].rows.len(), 7);
        for row in &report.tables[0].rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0, "non-positive insert throughput: {row:?}");
            }
        }
    }

    #[test]
    fn shards_report_covers_the_sweep_and_scales_sanely() {
        let report = shards_scaling(TEST_SCALE);
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), SHARD_SWEEP.len());
        for (row, shards) in rows.iter().zip(SHARD_SWEEP) {
            assert_eq!(row[0], shards.to_string());
            let insert: f64 = row[1].parse().unwrap();
            let delete: f64 = row[3].parse().unwrap();
            assert!(insert > 0.0 && delete > 0.0, "non-positive Mops: {row:?}");
            assert!(row[2].ends_with('x'));
        }
    }

    #[test]
    fn churn_report_covers_every_scheme_plus_reference_rows() {
        let report = churn_waves(TEST_SCALE);
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), SchemeKind::paper_lineup().len() + 2);
        for row in rows {
            let v: f64 = row[1].parse().unwrap();
            assert!(v > 0.0, "non-positive churn throughput: {row:?}");
        }
        assert!(rows[rows.len() - 2][0].contains("alloc-per-event"));
        assert!(rows.last().unwrap()[0].contains("pool-off"));
    }

    #[test]
    fn frontier_report_pairs_pooled_and_oracle_per_size() {
        let report = frontier(TEST_SCALE);
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), 2 * FRONTIER_MULTIPLIERS.len());
        for pair in rows.chunks(2) {
            assert_eq!(pair[0][1], "Ours (pooled)");
            assert_eq!(pair[1][1], "Ours (pool-off)");
            // Same workload size per pair.
            assert_eq!(pair[0][0], pair[1][0]);
            for row in pair {
                let churn: f64 = row[2].parse().unwrap();
                let mem: usize = row[4].parse().unwrap();
                let compacted: usize = row[5].parse().unwrap();
                assert!(churn > 0.0, "non-positive frontier churn: {row:?}");
                assert!(compacted <= mem, "compaction grew memory: {row:?}");
            }
            let pooled_hits: u64 = pair[0][7].parse().unwrap();
            let oracle_hits: u64 = pair[1][7].parse().unwrap();
            assert!(pooled_hits > 0, "pooled run never hit the pool");
            assert_eq!(oracle_hits, 0, "oracle run recycled tables");
        }
    }

    #[test]
    fn scanfrontier_report_spans_inline_and_segment_regimes() {
        let report = scan_frontier(TEST_SCALE);
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), SCAN_FRONTIER_DEGREES.len() + 1);
        for row in rows {
            let seg: f64 = row[1].parse().unwrap();
            let walk: f64 = row[2].parse().unwrap();
            assert!(seg > 0.0 && walk > 0.0, "non-positive scan Mops: {row:?}");
            assert!(row[3].ends_with('x'));
        }
        // d=4 stays in inline slots: no segments to carve or tombstone.
        assert_eq!(rows[0][4], "0", "inline-degree row grew segments: {rows:?}");
        assert_eq!(rows[0][5], "0");
        // d=256 lives in segments, and the delete wave punched tombstones.
        let last_uniform = &rows[SCAN_FRONTIER_DEGREES.len() - 1];
        let bytes: usize = last_uniform[4].parse().unwrap();
        let tombs: u64 = last_uniform[5].parse().unwrap();
        assert!(bytes > 0, "high-degree row carries no segments: {rows:?}");
        assert!(tombs > 0, "delete wave left no tombstones: {rows:?}");
    }

    #[test]
    fn recover_report_covers_every_policy_and_replays_the_log() {
        let report = recover(TEST_SCALE);
        let rows = &report.tables[0].rows;
        assert_eq!(rows.len(), 5, "baseline + 4 durable rows: {rows:?}");
        assert!(rows[0][0].starts_with("off"));
        for row in &rows[1..] {
            let mops: f64 = row[1].parse().unwrap();
            let bytes: u64 = row[3].parse().unwrap();
            let ms: f64 = row[6].parse().unwrap();
            assert!(mops > 0.0, "non-positive ingest Mops: {row:?}");
            assert!(bytes > 8, "empty log after ingest: {row:?}");
            assert!(ms >= 0.0, "negative recovery time: {row:?}");
        }
        // Log-only rows replay the full stream; the snapshot row replays a
        // strict suffix of it.
        let full: u64 = rows[1][5].parse().unwrap();
        let snap_row = rows.last().unwrap();
        assert!(
            snap_row[4].contains("Snapshot"),
            "snapshot row source: {snap_row:?}"
        );
        let suffix: u64 = snap_row[5].parse().unwrap();
        assert!(
            suffix < full,
            "snapshot row replayed the whole log: {rows:?}"
        );
    }

    #[test]
    fn experiment_ids_roundtrip() {
        for e in Experiment::all() {
            assert_eq!(Experiment::from_id(e.id()), Some(e));
            assert!(!e.description().is_empty());
        }
        assert_eq!(Experiment::from_id("nope"), None);
    }

    #[test]
    fn report_rendering_contains_headers_and_rows() {
        let table = ReportTable {
            title: "T".into(),
            headers: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "2".into()]],
        };
        let rendered = table.render();
        assert!(rendered.contains("## T"));
        assert!(rendered.contains('a'));
        assert!(rendered.contains('1'));
    }
}
