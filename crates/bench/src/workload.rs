//! Timing drivers for the basic-task experiments: batch insertion, batch
//! query, and batch deletion, reported as Million operations per second
//! (Mops), plus memory-usage sampling for Figure 9, the scalar-reference
//! successor scan (PR-5 scan-path guard baseline), and the expand/contract
//! churn driver behind the `resize_churn` measurements.

use cuckoograph::CuckooGraph;
use graph_api::{DynamicGraph, NodeId};
use std::time::Instant;

/// Throughput in million operations per second — the unit of Figures 6–8.
pub type Mops = f64;

/// Inserts every edge of `edges` into `graph` and returns the throughput.
pub fn run_inserts(graph: &mut dyn DynamicGraph, edges: &[(NodeId, NodeId)]) -> Mops {
    let start = Instant::now();
    for &(u, v) in edges {
        graph.insert_edge(u, v);
    }
    to_mops(edges.len(), start.elapsed().as_secs_f64())
}

/// Queries every edge of `edges` and returns the throughput. The number of
/// hits is folded into a black-box sum so the loop cannot be optimised away.
pub fn run_queries(graph: &dyn DynamicGraph, edges: &[(NodeId, NodeId)]) -> (Mops, usize) {
    let start = Instant::now();
    let mut hits = 0usize;
    for &(u, v) in edges {
        if graph.has_edge(u, v) {
            hits += 1;
        }
    }
    (to_mops(edges.len(), start.elapsed().as_secs_f64()), hits)
}

/// Deletes every edge of `edges` and returns the throughput.
pub fn run_deletes(graph: &mut dyn DynamicGraph, edges: &[(NodeId, NodeId)]) -> Mops {
    let start = Instant::now();
    for &(u, v) in edges {
        graph.delete_edge(u, v);
    }
    to_mops(edges.len(), start.elapsed().as_secs_f64())
}

/// Inserts every edge through the batched [`DynamicGraph::insert_edges`] path
/// and returns the throughput. Callers sort the batch by source so the
/// schemes' run-grouped fast paths apply (one node resolution per adjacency).
pub fn run_batched_inserts(graph: &mut dyn DynamicGraph, edges: &[(NodeId, NodeId)]) -> Mops {
    let start = Instant::now();
    let created = graph.insert_edges(edges);
    std::hint::black_box(created);
    to_mops(edges.len(), start.elapsed().as_secs_f64())
}

/// Scans the successor set of every node in `sources` through the
/// zero-allocation visitor. Returns the throughput in million *visited edges*
/// per second plus the number of visits (folded into a black-box sum so the
/// loop cannot be optimised away).
pub fn run_successor_scans(
    graph: &dyn DynamicGraph,
    sources: &[NodeId],
    rounds: usize,
) -> (Mops, u64) {
    let start = Instant::now();
    let mut visited = 0u64;
    let mut sum = 0u64;
    for _ in 0..rounds.max(1) {
        for &u in sources {
            graph.for_each_successor(u, &mut |v| {
                visited += 1;
                sum = sum.wrapping_add(v);
            });
        }
    }
    std::hint::black_box(sum);
    (
        to_mops(visited as usize, start.elapsed().as_secs_f64()),
        visited,
    )
}

/// The allocating counterpart of [`run_successor_scans`]: collects each
/// successor set into a fresh `Vec` before consuming it — the pre-refactor
/// hot path, kept as the comparison baseline the visitor must beat.
pub fn run_successor_scans_vec(
    graph: &dyn DynamicGraph,
    sources: &[NodeId],
    rounds: usize,
) -> (Mops, u64) {
    let start = Instant::now();
    let mut visited = 0u64;
    let mut sum = 0u64;
    for _ in 0..rounds.max(1) {
        for &u in sources {
            for v in graph.successors(u) {
                visited += 1;
                sum = sum.wrapping_add(v);
            }
        }
    }
    std::hint::black_box(sum);
    (
        to_mops(visited as usize, start.elapsed().as_secs_f64()),
        visited,
    )
}

/// The scalar-reference counterpart of [`run_successor_scans`] for
/// CuckooGraph: identical node resolution and closure work, but the neighbour
/// tables are walked slot by slot (`for_each_successor_scalar`) instead of
/// tag word by tag word — the live pre-PR-5 scan path the SWAR scan is
/// guarded against in `perf_smoke`.
pub fn run_successor_scans_scalar(
    graph: &CuckooGraph,
    sources: &[NodeId],
    rounds: usize,
) -> (Mops, u64) {
    let start = Instant::now();
    let mut visited = 0u64;
    let mut sum = 0u64;
    for _ in 0..rounds.max(1) {
        for &u in sources {
            graph.for_each_successor_scalar(u, &mut |v| {
                visited += 1;
                sum = sum.wrapping_add(v);
            });
        }
    }
    std::hint::black_box(sum);
    (
        to_mops(visited as usize, start.elapsed().as_secs_f64()),
        visited,
    )
}

/// Drives `waves` rounds of bulk insert + bulk delete of the whole edge set —
/// the expand/contract-heavy shape where resize cost dominates: every wave
/// grows each hot node's S-CHT chain through its transformation thresholds
/// and then shrinks it back to inline slots. Returns throughput over all
/// mutation operations (`2 × waves × edges`).
pub fn run_churn_waves(
    graph: &mut dyn DynamicGraph,
    edges: &[(NodeId, NodeId)],
    waves: usize,
) -> Mops {
    let start = Instant::now();
    let mut ops = 0usize;
    for _ in 0..waves.max(1) {
        let created = graph.insert_edges(edges);
        let removed = graph.remove_edges(edges);
        std::hint::black_box((created, removed));
        ops += 2 * edges.len();
    }
    to_mops(ops, start.elapsed().as_secs_f64())
}

/// Inserts the deduplicated `edges` one by one and samples the memory usage at
/// `samples` evenly spaced points — the Figure 9 curve.
pub fn memory_curve(
    graph: &mut dyn DynamicGraph,
    edges: &[(NodeId, NodeId)],
    samples: usize,
) -> Vec<(usize, f64)> {
    let step = (edges.len() / samples.max(1)).max(1);
    let mut curve = Vec::with_capacity(samples + 1);
    for (i, &(u, v)) in edges.iter().enumerate() {
        graph.insert_edge(u, v);
        if (i + 1) % step == 0 || i + 1 == edges.len() {
            curve.push((i + 1, graph.memory_mb()));
        }
    }
    curve
}

fn to_mops(operations: usize, seconds: f64) -> Mops {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    operations as f64 / seconds / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_baselines::AdjacencyListGraph;

    fn edges(n: u64) -> Vec<(NodeId, NodeId)> {
        (0..n).map(|i| (i % 50, i)).collect()
    }

    #[test]
    fn insert_query_delete_report_positive_throughput() {
        let workload = edges(5_000);
        let mut g = AdjacencyListGraph::new();
        let ins = run_inserts(&mut g, &workload);
        assert!(ins > 0.0);
        let (qry, hits) = run_queries(&g, &workload);
        assert!(qry > 0.0);
        assert_eq!(hits, workload.len());
        let del = run_deletes(&mut g, &workload);
        assert!(del > 0.0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn successor_scans_visit_every_edge_per_round() {
        let workload = edges(3_000);
        let mut g = AdjacencyListGraph::new();
        let inserted = g.insert_edges(&workload);
        let mut sources = Vec::new();
        g.for_each_node(&mut |u| sources.push(u));
        let (mops, visited) = run_successor_scans(&g, &sources, 2);
        assert!(mops > 0.0);
        assert_eq!(visited as usize, 2 * inserted);
        let (vec_mops, vec_visited) = run_successor_scans_vec(&g, &sources, 2);
        assert!(vec_mops > 0.0);
        assert_eq!(visited, vec_visited);
    }

    #[test]
    fn batched_inserts_build_the_same_graph() {
        let workload = edges(2_000);
        let mut batched = AdjacencyListGraph::new();
        let mut looped = AdjacencyListGraph::new();
        assert!(run_batched_inserts(&mut batched, &workload) > 0.0);
        run_inserts(&mut looped, &workload);
        assert_eq!(batched.edge_count(), looped.edge_count());
    }

    #[test]
    fn scalar_reference_scan_visits_the_same_edges() {
        let workload = edges(3_000);
        let mut g = CuckooGraph::new();
        let inserted = g.insert_edges(&workload);
        let mut sources = Vec::new();
        g.for_each_node(&mut |u| sources.push(u));
        let (swar_mops, swar_visited) = run_successor_scans(&g, &sources, 2);
        let (scalar_mops, scalar_visited) = run_successor_scans_scalar(&g, &sources, 2);
        assert!(swar_mops > 0.0 && scalar_mops > 0.0);
        assert_eq!(swar_visited, scalar_visited);
        assert_eq!(swar_visited as usize, 2 * inserted);
    }

    #[test]
    fn churn_waves_leave_the_graph_empty() {
        let workload = edges(1_500);
        let mut g = AdjacencyListGraph::new();
        let mops = run_churn_waves(&mut g, &workload, 3);
        assert!(mops > 0.0);
        assert_eq!(g.edge_count(), 0, "churn waves must drain the graph");
        let mut cuckoo = CuckooGraph::new();
        assert!(run_churn_waves(&mut cuckoo, &workload, 2) > 0.0);
        assert_eq!(cuckoo.edge_count(), 0);
        assert!(
            cuckoo.stats().contractions > 0,
            "churn never exercised the contraction path"
        );
    }

    #[test]
    fn memory_curve_is_monotone_and_sampled() {
        let workload = edges(2_000);
        let mut g = AdjacencyListGraph::new();
        let curve = memory_curve(&mut g, &workload, 10);
        assert!(curve.len() >= 10);
        assert_eq!(curve.last().unwrap().0, workload.len());
        assert!(curve.windows(2).all(|w| w[1].0 > w[0].0));
        assert!(curve.last().unwrap().1 > 0.0);
    }

    #[test]
    fn to_mops_handles_zero_elapsed() {
        assert!(to_mops(10, 0.0).is_infinite());
        assert!((to_mops(2_000_000, 1.0) - 2.0).abs() < 1e-12);
    }
}
