//! Timing drivers for the basic-task experiments: batch insertion, batch
//! query, and batch deletion, reported as Million operations per second
//! (Mops), plus memory-usage sampling for Figure 9, the scalar-reference
//! successor scan (PR-5 scan-path guard baseline), the expand/contract
//! churn driver behind the `resize_churn` measurements, and the PR-7
//! read-under-ingest driver (lock-free readers racing a churning writer).

use cuckoograph::{CuckooGraph, ShardedCuckooGraph};
use graph_api::{DynamicGraph, NodeId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Throughput in million operations per second — the unit of Figures 6–8.
pub type Mops = f64;

/// Inserts every edge of `edges` into `graph` and returns the throughput.
pub fn run_inserts(graph: &mut dyn DynamicGraph, edges: &[(NodeId, NodeId)]) -> Mops {
    let start = Instant::now();
    for &(u, v) in edges {
        graph.insert_edge(u, v);
    }
    to_mops(edges.len(), start.elapsed().as_secs_f64())
}

/// Queries every edge of `edges` and returns the throughput. The number of
/// hits is folded into a black-box sum so the loop cannot be optimised away.
pub fn run_queries(graph: &dyn DynamicGraph, edges: &[(NodeId, NodeId)]) -> (Mops, usize) {
    let start = Instant::now();
    let mut hits = 0usize;
    for &(u, v) in edges {
        if graph.has_edge(u, v) {
            hits += 1;
        }
    }
    (to_mops(edges.len(), start.elapsed().as_secs_f64()), hits)
}

/// Deletes every edge of `edges` and returns the throughput.
pub fn run_deletes(graph: &mut dyn DynamicGraph, edges: &[(NodeId, NodeId)]) -> Mops {
    let start = Instant::now();
    for &(u, v) in edges {
        graph.delete_edge(u, v);
    }
    to_mops(edges.len(), start.elapsed().as_secs_f64())
}

/// Inserts every edge through the batched [`DynamicGraph::insert_edges`] path
/// and returns the throughput. Callers sort the batch by source so the
/// schemes' run-grouped fast paths apply (one node resolution per adjacency).
pub fn run_batched_inserts(graph: &mut dyn DynamicGraph, edges: &[(NodeId, NodeId)]) -> Mops {
    let start = Instant::now();
    let created = graph.insert_edges(edges);
    std::hint::black_box(created);
    to_mops(edges.len(), start.elapsed().as_secs_f64())
}

/// Scans the successor set of every node in `sources` through the
/// zero-allocation visitor. Returns the throughput in million *visited edges*
/// per second plus the number of visits (folded into a black-box sum so the
/// loop cannot be optimised away).
pub fn run_successor_scans(
    graph: &dyn DynamicGraph,
    sources: &[NodeId],
    rounds: usize,
) -> (Mops, u64) {
    let start = Instant::now();
    let mut visited = 0u64;
    let mut sum = 0u64;
    for _ in 0..rounds.max(1) {
        for &u in sources {
            graph.for_each_successor(u, &mut |v| {
                visited += 1;
                sum = sum.wrapping_add(v);
            });
        }
    }
    std::hint::black_box(sum);
    (
        to_mops(visited as usize, start.elapsed().as_secs_f64()),
        visited,
    )
}

/// The allocating counterpart of [`run_successor_scans`]: collects each
/// successor set into a fresh `Vec` before consuming it — the pre-refactor
/// hot path, kept as the comparison baseline the visitor must beat.
pub fn run_successor_scans_vec(
    graph: &dyn DynamicGraph,
    sources: &[NodeId],
    rounds: usize,
) -> (Mops, u64) {
    let start = Instant::now();
    let mut visited = 0u64;
    let mut sum = 0u64;
    for _ in 0..rounds.max(1) {
        for &u in sources {
            for v in graph.successors(u) {
                visited += 1;
                sum = sum.wrapping_add(v);
            }
        }
    }
    std::hint::black_box(sum);
    (
        to_mops(visited as usize, start.elapsed().as_secs_f64()),
        visited,
    )
}

/// The scalar-reference counterpart of [`run_successor_scans`] for
/// CuckooGraph: identical node resolution and closure work, but the neighbour
/// tables are walked slot by slot (`for_each_successor_scalar`) instead of
/// tag word by tag word — the live pre-PR-5 scan path the SWAR scan is
/// guarded against in `perf_smoke`.
pub fn run_successor_scans_scalar(
    graph: &CuckooGraph,
    sources: &[NodeId],
    rounds: usize,
) -> (Mops, u64) {
    let start = Instant::now();
    let mut visited = 0u64;
    let mut sum = 0u64;
    for _ in 0..rounds.max(1) {
        for &u in sources {
            graph.for_each_successor_scalar(u, &mut |v| {
                visited += 1;
                sum = sum.wrapping_add(v);
            });
        }
    }
    std::hint::black_box(sum);
    (
        to_mops(visited as usize, start.elapsed().as_secs_f64()),
        visited,
    )
}

/// Drives `waves` rounds of bulk insert + bulk delete of the whole edge set —
/// the expand/contract-heavy shape where resize cost dominates: every wave
/// grows each hot node's S-CHT chain through its transformation thresholds
/// and then shrinks it back to inline slots. Returns throughput over all
/// mutation operations (`2 × waves × edges`).
pub fn run_churn_waves(
    graph: &mut dyn DynamicGraph,
    edges: &[(NodeId, NodeId)],
    waves: usize,
) -> Mops {
    let start = Instant::now();
    let mut ops = 0usize;
    for _ in 0..waves.max(1) {
        let created = graph.insert_edges(edges);
        let removed = graph.remove_edges(edges);
        std::hint::black_box((created, removed));
        ops += 2 * edges.len();
    }
    to_mops(ops, start.elapsed().as_secs_f64())
}

/// One measured point of the PR-7 read-under-ingest driver.
#[derive(Debug, Clone, Copy)]
pub struct ReadUnderIngestPoint {
    /// Reader threads that scanned concurrently with the writer.
    pub readers: usize,
    /// Aggregate successor-scan throughput across all readers, in million
    /// visited edges per second of wall time.
    pub aggregate_scan_mops: Mops,
    /// Full passes over `sources` completed across all readers.
    pub passes: u64,
    /// Total edges visited across all readers.
    pub visited: u64,
    /// Churn waves (ingest + remove of the whole churn batch) the writer
    /// completed while the readers ran.
    pub churn_waves: u64,
}

/// Runs `readers` scan threads against `graph` through [`read_view`] while a
/// writer thread drives ingest/remove churn waves over `churn` — the PR-7
/// mixed workload: lock-free seqlock-validated reads racing batched mutation
/// windows on the same shards.
///
/// `sources` must be disjoint from the churn batch's sources and never
/// mutated during the run, so every full pass visits exactly
/// `expected_visits_per_pass` edges; each pass asserts that, making the
/// measurement also a correctness check (a torn or dropped scan fails loudly
/// instead of inflating the number). Every reader completes at least one pass
/// and the writer at least one wave regardless of `read_for`, so the
/// throughput and the epoch counters are never trivially zero.
///
/// [`read_view`]: ShardedCuckooGraph::read_view
pub fn run_read_under_ingest(
    graph: &ShardedCuckooGraph,
    sources: &[NodeId],
    expected_visits_per_pass: u64,
    churn: &[(NodeId, NodeId)],
    readers: usize,
    read_for: Duration,
) -> ReadUnderIngestPoint {
    let readers = readers.max(1);
    let readers_done = AtomicBool::new(false);
    let mut visited = 0u64;
    let mut passes = 0u64;
    let mut churn_waves = 0u64;
    let start = Instant::now();
    let elapsed = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut waves = 0u64;
            let mut first_wave = true;
            while first_wave || !readers_done.load(Ordering::SeqCst) {
                first_wave = false;
                let created = graph.ingest_batch(churn);
                let removed = graph.remove_batch(churn);
                std::hint::black_box((created, removed));
                waves += 1;
            }
            waves
        });
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                scope.spawn(|| {
                    let deadline = Instant::now() + read_for;
                    let view = graph.read_view();
                    let mut visited = 0u64;
                    let mut passes = 0u64;
                    let mut sum = 0u64;
                    let mut first_pass = true;
                    while first_pass || Instant::now() < deadline {
                        first_pass = false;
                        let before = visited;
                        for &u in sources {
                            view.for_each_successor(u, &mut |v| {
                                visited += 1;
                                sum = sum.wrapping_add(v);
                            });
                        }
                        assert_eq!(
                            visited - before,
                            expected_visits_per_pass,
                            "a read-under-ingest pass saw a torn stable edge set"
                        );
                        passes += 1;
                    }
                    std::hint::black_box(sum);
                    (visited, passes)
                })
            })
            .collect();
        for handle in handles {
            let (v, p) = handle.join().expect("reader thread panicked");
            visited += v;
            passes += p;
        }
        let elapsed = start.elapsed().as_secs_f64();
        readers_done.store(true, Ordering::SeqCst);
        churn_waves = writer.join().expect("writer thread panicked");
        elapsed
    });
    ReadUnderIngestPoint {
        readers,
        aggregate_scan_mops: to_mops(visited as usize, elapsed),
        passes,
        visited,
        churn_waves,
    }
}

/// Inserts the deduplicated `edges` one by one and samples the memory usage at
/// `samples` evenly spaced points — the Figure 9 curve.
pub fn memory_curve(
    graph: &mut dyn DynamicGraph,
    edges: &[(NodeId, NodeId)],
    samples: usize,
) -> Vec<(usize, f64)> {
    let step = (edges.len() / samples.max(1)).max(1);
    let mut curve = Vec::with_capacity(samples + 1);
    for (i, &(u, v)) in edges.iter().enumerate() {
        graph.insert_edge(u, v);
        if (i + 1) % step == 0 || i + 1 == edges.len() {
            curve.push((i + 1, graph.memory_mb()));
        }
    }
    curve
}

fn to_mops(operations: usize, seconds: f64) -> Mops {
    if seconds <= 0.0 {
        return f64::INFINITY;
    }
    operations as f64 / seconds / 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_baselines::AdjacencyListGraph;

    fn edges(n: u64) -> Vec<(NodeId, NodeId)> {
        (0..n).map(|i| (i % 50, i)).collect()
    }

    #[test]
    fn insert_query_delete_report_positive_throughput() {
        let workload = edges(5_000);
        let mut g = AdjacencyListGraph::new();
        let ins = run_inserts(&mut g, &workload);
        assert!(ins > 0.0);
        let (qry, hits) = run_queries(&g, &workload);
        assert!(qry > 0.0);
        assert_eq!(hits, workload.len());
        let del = run_deletes(&mut g, &workload);
        assert!(del > 0.0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn successor_scans_visit_every_edge_per_round() {
        let workload = edges(3_000);
        let mut g = AdjacencyListGraph::new();
        let inserted = g.insert_edges(&workload);
        let mut sources = Vec::new();
        g.for_each_node(&mut |u| sources.push(u));
        let (mops, visited) = run_successor_scans(&g, &sources, 2);
        assert!(mops > 0.0);
        assert_eq!(visited as usize, 2 * inserted);
        let (vec_mops, vec_visited) = run_successor_scans_vec(&g, &sources, 2);
        assert!(vec_mops > 0.0);
        assert_eq!(visited, vec_visited);
    }

    #[test]
    fn batched_inserts_build_the_same_graph() {
        let workload = edges(2_000);
        let mut batched = AdjacencyListGraph::new();
        let mut looped = AdjacencyListGraph::new();
        assert!(run_batched_inserts(&mut batched, &workload) > 0.0);
        run_inserts(&mut looped, &workload);
        assert_eq!(batched.edge_count(), looped.edge_count());
    }

    #[test]
    fn scalar_reference_scan_visits_the_same_edges() {
        let workload = edges(3_000);
        let mut g = CuckooGraph::new();
        let inserted = g.insert_edges(&workload);
        let mut sources = Vec::new();
        g.for_each_node(&mut |u| sources.push(u));
        let (swar_mops, swar_visited) = run_successor_scans(&g, &sources, 2);
        let (scalar_mops, scalar_visited) = run_successor_scans_scalar(&g, &sources, 2);
        assert!(swar_mops > 0.0 && scalar_mops > 0.0);
        assert_eq!(swar_visited, scalar_visited);
        assert_eq!(swar_visited as usize, 2 * inserted);
    }

    #[test]
    fn churn_waves_leave_the_graph_empty() {
        let workload = edges(1_500);
        let mut g = AdjacencyListGraph::new();
        let mops = run_churn_waves(&mut g, &workload, 3);
        assert!(mops > 0.0);
        assert_eq!(g.edge_count(), 0, "churn waves must drain the graph");
        let mut cuckoo = CuckooGraph::new();
        assert!(run_churn_waves(&mut cuckoo, &workload, 2) > 0.0);
        assert_eq!(cuckoo.edge_count(), 0);
        assert!(
            cuckoo.stats().contractions > 0,
            "churn never exercised the contraction path"
        );
    }

    #[test]
    fn read_under_ingest_scans_while_the_writer_churns() {
        let stable: Vec<(NodeId, NodeId)> = (0..2_000u64).map(|i| (i % 23, i)).collect();
        let churn: Vec<(NodeId, NodeId)> = (0..1_200u64).map(|i| ((1 << 40) + i % 11, i)).collect();
        let g = ShardedCuckooGraph::new(2);
        let expected = g.ingest_batch(&stable) as u64;
        let mut sources: Vec<NodeId> = (0..23u64).collect();
        sources.sort_unstable();

        let point =
            run_read_under_ingest(&g, &sources, expected, &churn, 2, Duration::from_millis(30));
        assert_eq!(point.readers, 2);
        assert!(point.aggregate_scan_mops > 0.0);
        assert!(
            point.passes >= 2,
            "each reader must finish at least one pass"
        );
        assert_eq!(point.visited, point.passes * expected);
        assert!(point.churn_waves >= 1, "the writer must complete a wave");

        let counters = g.read_counters();
        assert!(
            counters.epoch_advances > 0,
            "churn opened no mutation window"
        );
        assert!(counters.read_pins > 0, "readers never pinned");
        // Churn sources are disjoint from the stable band and every wave
        // removes what it ingested, so only the stable edges survive.
        assert_eq!(g.edge_count(), expected as usize);
        for &(u, v) in stable.iter().step_by(191) {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn memory_curve_is_monotone_and_sampled() {
        let workload = edges(2_000);
        let mut g = AdjacencyListGraph::new();
        let curve = memory_curve(&mut g, &workload, 10);
        assert!(curve.len() >= 10);
        assert_eq!(curve.last().unwrap().0, workload.len());
        assert!(curve.windows(2).all(|w| w[1].0 > w[0].0));
        assert!(curve.last().unwrap().1 > 0.0);
    }

    #[test]
    fn to_mops_handles_zero_elapsed() {
        assert!(to_mops(10, 0.0).is_infinite());
        assert!((to_mops(2_000_000, 1.0) - 2.0).abs() < 1e-12);
    }
}
