//! `reproduce` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p graph-bench --release --bin reproduce -- list
//! cargo run -p graph-bench --release --bin reproduce -- fig6
//! cargo run -p graph-bench --release --bin reproduce -- all
//! REPRO_SCALE=0.02 cargo run -p graph-bench --release --bin reproduce -- fig9
//! ```
//!
//! The optional `REPRO_SCALE` environment variable sets the fraction of the
//! published dataset sizes to synthesise (default 0.002 so a full `all` run
//! finishes in minutes on a laptop).

use graph_bench::{default_scale, Experiment};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = default_scale();
    if args.is_empty() || args[0] == "help" || args[0] == "--help" {
        print_help();
        return;
    }
    match args[0].as_str() {
        "list" => {
            for e in Experiment::all() {
                println!("{:10}  {}", e.id(), e.description());
            }
        }
        "all" => {
            eprintln!("# running every experiment at scale {scale}");
            for e in Experiment::all() {
                eprintln!("# running {} ...", e.id());
                println!("{}", e.run(scale).render());
            }
        }
        id => match Experiment::from_id(id) {
            Some(e) => println!("{}", e.run(scale).render()),
            None => {
                eprintln!("unknown experiment '{id}'");
                print_help();
                std::process::exit(2);
            }
        },
    }
}

fn print_help() {
    println!("usage: reproduce <list|all|EXPERIMENT_ID>");
    println!("experiment ids:");
    for e in Experiment::all() {
        println!("  {:10}  {}", e.id(), e.description());
    }
    println!("\nenvironment: REPRO_SCALE=<fraction of published dataset sizes> (default 0.002)");
}
