//! `perf_smoke` — a deterministic, seconds-scale performance smoke test.
//!
//! Runs a small fixed-seed CAIDA-like workload through every storage scheme:
//! per-edge insert, batched insert, edge query, successor scan (both the
//! zero-allocation visitor and the Vec-collecting path it replaced), and
//! delete — then a 1/2/4/8-shard ingest thread-sweep over the sharded
//! CuckooGraph, the PR-4 probe-path guard, the PR-5 scan-path guard (SWAR
//! tag-word scan vs the scalar reference) and resize guard (scratch-backed
//! churn vs the alloc-per-event reference), the PR-6 pool guard
//! (pooled/arena churn vs the pool-off oracle, plus a memory regression
//! check against the committed snapshot), the PR-7 read-under-ingest
//! guard (1/2/4 lock-free reader threads scanning while a writer drives
//! batched churn on the same shards), and the PR-8 scan-segment guard
//! (contiguous-segment successor scan vs the table-walk oracle on a
//! churned dense graph, with compactions verified live), and the PR-10
//! serving guard (pipelined reactor dispatch vs the serial-dispatch oracle
//! over loopback TCP) — and writes `BENCH.json` (schema v9) with ops/sec and
//! memory bytes per scheme so the bench trajectory of the repository is
//! machine-readable and regressions fail loudly in CI. When a committed
//! `BENCH.json` already exists at the output path, the re-record prints the
//! delta of every Ours headline number against it, so prose quoting stale
//! figures is caught at re-record time.
//!
//! ```text
//! cargo run -p graph-bench --release --bin perf_smoke
//! PERF_SMOKE_SCALE=0.01 PERF_SMOKE_OUT=out.json cargo run -p graph-bench --release --bin perf_smoke
//! PERF_SMOKE_SWEEP_SCALE=0.1 PERF_SMOKE_CHURN_WAVES=2 cargo run -p graph-bench --release --bin perf_smoke
//! PERF_SMOKE_READERS=1,2 PERF_SMOKE_READ_SECS=0.1 cargo run -p graph-bench --release --bin perf_smoke
//! PERF_SMOKE_SERVE_OPS=1000 cargo run -p graph-bench --release --bin perf_smoke
//! ```
//!
//! The workload is seeded with [`graph_bench::HARNESS_SEED`], so the operation
//! stream is identical across runs and machines; only the measured
//! throughputs differ.

use cuckoograph::{CuckooGraph, CuckooGraphConfig, ShardedCuckooGraph, WeightedCuckooGraph};
use graph_api::{DynamicGraph, WeightedDynamicGraph};
use graph_bench::{
    run_batched_inserts, run_churn_waves, run_deletes, run_inserts, run_queries,
    run_read_under_ingest, run_serve_point, run_successor_scans, run_successor_scans_scalar,
    run_successor_scans_vec, ReadUnderIngestPoint, SchemeKind, ServeSweep, HARNESS_SEED,
    SHARD_SWEEP,
};
use graph_datasets::{generate, DatasetKind};
use graph_durability::{DurabilityConfig, DurableGraphStore, GraphOp, StdVfs, SyncPolicy};

/// Repetitions of each scan measurement (best one is reported) so a stray
/// scheduler hiccup does not dominate a seconds-scale run.
const MEASURE_ROUNDS: usize = 5;

/// Full-graph scan passes inside one timed measurement: keeps each timing
/// sample well above microsecond scale even at tiny CI workloads, so the
/// visitor-vs-Vec comparison is not decided by clock noise.
const SCAN_PASSES: usize = 8;

#[derive(Debug)]
struct SchemeResult {
    label: &'static str,
    insert_mops: f64,
    batch_insert_mops: f64,
    query_mops: f64,
    succ_scan_mops: f64,
    succ_scan_vec_mops: f64,
    delete_mops: f64,
    memory_bytes: usize,
    edges: usize,
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

/// One point of the shard thread-sweep (one scoped thread per shard).
#[derive(Debug)]
struct SweepPoint {
    shards: usize,
    insert_mops: f64,
}

/// Ingest rounds per sweep point; the best round is reported so a stray
/// scheduler hiccup does not decide the shard comparison.
const SWEEP_ROUNDS: usize = 3;

/// Throughputs of the PR-4 probe-path guard: the tagged/memoized path versus
/// the pre-change reference probe, measured live on the same workload.
#[derive(Debug)]
struct ProbeGuard {
    query_tagged_mops: f64,
    query_reference_mops: f64,
    insert_tagged_mops: f64,
    insert_reference_mops: f64,
}

/// Throughputs of the PR-5 scan-path guard: the SWAR tag-word successor scan
/// versus the scalar slot-walk reference, on the same loaded graph.
#[derive(Debug)]
struct ScanGuard {
    swar_scan_mops: f64,
    scalar_scan_mops: f64,
}

/// Throughputs of the PR-5 resize guard: expand/contract churn with the
/// persistent rebuild scratch versus the alloc-per-event reference engine.
#[derive(Debug)]
struct ResizeGuard {
    scratch_churn_mops: f64,
    alloc_churn_mops: f64,
    waves: usize,
    edges: usize,
}

/// Measures the PR-5 SWAR scan against the live scalar reference on a
/// CuckooGraph loaded from the raw stream (same graph, same sources, same
/// closure work — only the tag-array walk differs).
fn run_scan_guard(raw: &[(u64, u64)]) -> ScanGuard {
    let mut graph = CuckooGraph::new();
    for &(u, v) in raw {
        graph.insert_edge(u, v);
    }
    let mut sources = Vec::with_capacity(graph.node_count());
    graph.for_each_node(&mut |u| sources.push(u));
    sources.sort_unstable();
    let mut swar_scan_mops = 0.0f64;
    let mut scalar_scan_mops = 0.0f64;
    for _ in 0..MEASURE_ROUNDS {
        let (swar, swar_visited) = run_successor_scans(&graph, &sources, SCAN_PASSES);
        let (scalar, scalar_visited) = run_successor_scans_scalar(&graph, &sources, SCAN_PASSES);
        assert_eq!(
            swar_visited, scalar_visited,
            "SWAR and scalar scans visited different edge counts"
        );
        swar_scan_mops = swar_scan_mops.max(swar);
        scalar_scan_mops = scalar_scan_mops.max(scalar);
    }
    ScanGuard {
        swar_scan_mops,
        scalar_scan_mops,
    }
}

/// Throughputs and recycling counters of the PR-6 pool guard: expand/contract
/// churn on the pooled/arena engine versus the pool-off oracle (fresh table
/// buffers per TRANSFORMATION event — the pre-change cost shape).
#[derive(Debug)]
struct PoolGuard {
    pooled_churn_mops: f64,
    pool_off_churn_mops: f64,
    pool_hits: u64,
    pool_misses: u64,
    pool_retired: u64,
    pool_retained_bytes: usize,
    arena_blocks: usize,
    arena_free_blocks: usize,
}

/// Measures churn on the default (pooled) engine versus the pool-off oracle,
/// on the same dense workload the resize guard uses. Also snapshots the pool
/// and arena counters of the pooled engine so BENCH.json records how much
/// recycling the workload actually exercised.
fn run_pool_guard(sorted: &[(u64, u64)], waves: usize) -> PoolGuard {
    let mut pooled_churn_mops = 0.0f64;
    let mut pool_off_churn_mops = 0.0f64;
    let mut stats = cuckoograph::StructureStats::default();
    for _ in 0..MEASURE_ROUNDS {
        let mut pooled = CuckooGraph::new();
        pooled_churn_mops = pooled_churn_mops.max(run_churn_waves(&mut pooled, sorted, waves));
        assert_eq!(pooled.edge_count(), 0, "churn left edges (pooled)");
        stats = pooled.stats();

        let mut oracle =
            CuckooGraph::with_config(CuckooGraphConfig::default().with_table_pool(false));
        pool_off_churn_mops = pool_off_churn_mops.max(run_churn_waves(&mut oracle, sorted, waves));
        assert_eq!(oracle.edge_count(), 0, "churn left edges (pool-off)");
        let oracle_stats = oracle.stats();
        assert_eq!(
            oracle_stats.pool_hits, 0,
            "pool-off oracle recycled a table"
        );
        assert_eq!(
            oracle_stats.pool_retained_bytes, 0,
            "pool-off oracle retained buffers"
        );
    }
    assert!(
        stats.pool_hits > 0,
        "pool guard workload never hit the table pool"
    );
    PoolGuard {
        pooled_churn_mops,
        pool_off_churn_mops,
        pool_hits: stats.pool_hits,
        pool_misses: stats.pool_misses,
        pool_retired: stats.pool_retired,
        pool_retained_bytes: stats.pool_retained_bytes,
        arena_blocks: stats.arena_blocks,
        arena_free_blocks: stats.arena_free_blocks,
    }
}

/// Throughputs and segment counters of the PR-8 scan-segment guard: the
/// contiguous-segment successor scan versus the table-walk oracle
/// (`with_scan_segments(false)` — the pre-change scan shape), measured on
/// identically churned graphs.
#[derive(Debug)]
struct SegmentGuard {
    segment_scan_mops: f64,
    table_walk_scan_mops: f64,
    segment_compactions: u64,
    segment_tombstones: u64,
    segment_bytes: usize,
}

/// Measures the PR-8 segment scan against the live table-walk oracle on the
/// dense profile (where cells actually transform — the CAIDA smoke stream
/// averages degree ~2 and stays inline). Both graphs ingest the same edges,
/// then delete two of every three — punching tombstones well past the 1/4
/// waste threshold so in-place compactions demonstrably fire — before the
/// surviving adjacency is scanned.
fn run_segment_guard(sorted: &[(u64, u64)]) -> SegmentGuard {
    let mut seg = CuckooGraph::new();
    let mut walk = CuckooGraph::with_config(CuckooGraphConfig::default().with_scan_segments(false));
    for &(u, v) in sorted {
        seg.insert_edge(u, v);
        walk.insert_edge(u, v);
    }
    for (i, &(u, v)) in sorted.iter().enumerate() {
        if i % 3 != 0 {
            assert!(seg.delete_edge(u, v), "segment graph lost an edge");
            assert!(walk.delete_edge(u, v), "table-walk oracle lost an edge");
        }
    }
    let stats = seg.stats();
    assert!(
        stats.segment_compactions > 0,
        "churn never compacted a segment"
    );
    assert!(
        stats.segment_tombstones > 0,
        "deletions punched no tombstones"
    );
    assert_eq!(
        walk.stats().segment_bytes,
        0,
        "table-walk oracle allocated segments"
    );

    let mut sources = Vec::with_capacity(seg.node_count());
    seg.for_each_node(&mut |u| sources.push(u));
    sources.sort_unstable();
    let mut segment_scan_mops = 0.0f64;
    let mut table_walk_scan_mops = 0.0f64;
    for _ in 0..MEASURE_ROUNDS {
        let (segment, seg_visited) = run_successor_scans(&seg, &sources, SCAN_PASSES);
        let (table, walk_visited) = run_successor_scans(&walk, &sources, SCAN_PASSES);
        assert_eq!(
            seg_visited, walk_visited,
            "segment and table-walk scans visited different edge counts"
        );
        segment_scan_mops = segment_scan_mops.max(segment);
        table_walk_scan_mops = table_walk_scan_mops.max(table);
    }
    SegmentGuard {
        segment_scan_mops,
        table_walk_scan_mops,
        segment_compactions: stats.segment_compactions,
        segment_tombstones: stats.segment_tombstones,
        segment_bytes: stats.segment_bytes,
    }
}

/// Results of the PR-7 read-under-ingest guard: best-of-rounds aggregate
/// reader throughput per reader count, plus the coordinator counters the run
/// accumulated (so BENCH.json records how many mutation windows the readers
/// actually raced).
#[derive(Debug)]
struct ReadGuard {
    points: Vec<ReadUnderIngestPoint>,
    shards: usize,
    stable_edges: usize,
    churn_batch: usize,
    epoch_advances: u64,
    reader_retries: u64,
    read_pins: u64,
}

/// Shards in the read-under-ingest graph: enough that the churn writer's
/// fan-out and the readers touch more than one coordinator, small enough
/// that each shard still opens several mutation windows per wave.
const READ_GUARD_SHARDS: usize = 2;

/// Measures the PR-7 mixed workload: `reader_counts` points of lock-free
/// scan threads (through `read_view`) racing one writer that churns a batch
/// with sources disjoint from the stable scan set. Every pass inside the
/// driver asserts it visited exactly the stable edge count, so the
/// throughput numbers double as a safety check on the seqlock protocol.
fn run_read_guard(sorted: &[(u64, u64)], reader_counts: &[usize], read_secs: f64) -> ReadGuard {
    let g = ShardedCuckooGraph::new(READ_GUARD_SHARDS);
    let stable_edges = g.ingest_batch(sorted);
    assert_eq!(stable_edges, sorted.len(), "stable ingest dropped edges");
    let mut sources: Vec<u64> = sorted.iter().map(|&(u, _)| u).collect();
    sources.dedup();
    // Churn sources live in a band no dataset node reaches, so the stable
    // scan set never changes size while the writer flaps the churn edges.
    let churn: Vec<(u64, u64)> = sorted.iter().map(|&(u, v)| (u | 1 << 40, v)).collect();

    let mut points = Vec::with_capacity(reader_counts.len());
    for &readers in reader_counts {
        eprintln!("# perf_smoke: read-under-ingest {readers} reader(s) ...");
        let mut best: Option<ReadUnderIngestPoint> = None;
        for _ in 0..MEASURE_ROUNDS {
            let point = run_read_under_ingest(
                &g,
                &sources,
                stable_edges as u64,
                &churn,
                readers,
                std::time::Duration::from_secs_f64(read_secs),
            );
            assert!(
                point.aggregate_scan_mops > 0.0,
                "{readers} reader(s) made no progress under ingest"
            );
            assert!(point.churn_waves > 0, "the churn writer never ran");
            if best
                .as_ref()
                .is_none_or(|b| point.aggregate_scan_mops > b.aggregate_scan_mops)
            {
                best = Some(point);
            }
        }
        points.push(best.expect("at least one measured round"));
    }
    assert_eq!(
        g.edge_count(),
        stable_edges,
        "churn leaked into the stable edge set"
    );
    let stats = g.stats();
    ReadGuard {
        points,
        shards: READ_GUARD_SHARDS,
        stable_edges,
        churn_batch: churn.len(),
        epoch_advances: stats.epoch_advances,
        reader_retries: stats.reader_retries,
        read_pins: stats.read_pins,
    }
}

/// Measures expand/contract-heavy churn (bulk insert+delete waves) on the
/// scratch-backed engine versus the alloc-per-event reference configuration.
fn run_resize_guard(sorted: &[(u64, u64)], waves: usize) -> ResizeGuard {
    let mut scratch_churn_mops = 0.0f64;
    let mut alloc_churn_mops = 0.0f64;
    for _ in 0..MEASURE_ROUNDS {
        let mut scratch_graph = CuckooGraph::new();
        scratch_churn_mops =
            scratch_churn_mops.max(run_churn_waves(&mut scratch_graph, sorted, waves));
        assert_eq!(scratch_graph.edge_count(), 0, "churn left edges (scratch)");

        let mut alloc_graph =
            CuckooGraph::with_config(CuckooGraphConfig::default().with_resize_scratch(false));
        alloc_churn_mops = alloc_churn_mops.max(run_churn_waves(&mut alloc_graph, sorted, waves));
        assert_eq!(alloc_graph.edge_count(), 0, "churn left edges (alloc)");
    }
    ResizeGuard {
        scratch_churn_mops,
        alloc_churn_mops,
        waves,
        edges: sorted.len(),
    }
}

/// Outcome of reading the previously committed `BENCH.json` for the delta
/// report. Absence and parse failure are kept distinct: a missing file is a
/// legitimate first record, but an existing file the parser cannot read means
/// the hand-rolled format drifted — and the stale-prose guard must say so
/// loudly instead of silently reporting "first record".
enum CommittedSnapshot {
    Absent,
    Unparseable,
    Ours {
        metrics: Vec<(String, f64)>,
        /// Workload scale of the committed record: the memory regression
        /// guard only fires when the current run uses the same scale.
        scale: Option<f64>,
    },
}

/// Extracts the committed `Ours` headline numbers from an existing
/// `BENCH.json`, so a re-record can print the delta of every metric and
/// stale prose elsewhere in the repository is caught immediately.
fn committed_ours_metrics(path: &str, keys: &[&str]) -> CommittedSnapshot {
    let Ok(text) = std::fs::read_to_string(path) else {
        return CommittedSnapshot::Absent;
    };
    let parse = || -> Option<Vec<(String, f64)>> {
        let ours = text.lines().find(|l| l.contains("\"scheme\": \"Ours\""))?;
        let mut out = Vec::new();
        for &key in keys {
            let needle = format!("\"{key}\": ");
            // Headline metrics live on the Ours scheme line; guard-block
            // metrics (the segment counters) on their own block line. A key
            // absent everywhere is a metric newer than the committed schema
            // — skipped, so re-recording across a schema bump still diffs
            // the shared keys instead of failing as unparseable.
            let Some(line) = [ours]
                .into_iter()
                .chain(text.lines())
                .find(|l| l.contains(&needle))
            else {
                continue;
            };
            let at = line.find(&needle)? + needle.len();
            let rest = &line[at..];
            let end = rest
                .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
                .unwrap_or(rest.len());
            out.push((key.to_string(), rest[..end].parse().ok()?));
        }
        // Nothing parsed at all means the format itself drifted.
        (!out.is_empty()).then_some(out)
    };
    let scale = || -> Option<f64> {
        let line = text.lines().find(|l| l.contains("\"workload\""))?;
        let needle = "\"scale\": ";
        let at = line.find(needle)? + needle.len();
        let rest = &line[at..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    match parse() {
        Some(metrics) => CommittedSnapshot::Ours {
            metrics,
            scale: scale(),
        },
        None => CommittedSnapshot::Unparseable,
    }
}

/// Numbers of the PR-10 serving guard: the pipelined reactor (graph reads
/// answered inline on the workers, writes group-committed in batches) versus
/// the serial-dispatch oracle (every command through the single writer), on
/// the same loopback workload at the same connections × depth point.
#[derive(Debug)]
struct ServeGuard {
    connections: usize,
    depth: usize,
    ops_per_conn: usize,
    write_pct: u64,
    pipelined_kops: f64,
    serial_kops: f64,
    pipelined_p50_us: f64,
    pipelined_p99_us: f64,
    serial_p50_us: f64,
    serial_p99_us: f64,
}

/// Measures both dispatch modes over loopback TCP, best of a few rounds each
/// (fresh reactor + fresh simulated disk per round, like every other guard).
fn run_serve_guard(serve_ops: usize) -> ServeGuard {
    const SERVE_ROUNDS: usize = 3;
    let sweep = ServeSweep {
        preload_edges: (serve_ops / 4).max(500),
        ops_per_conn: serve_ops,
        connections: vec![2],
        depths: vec![8],
        write_pct: 10,
        workers: 2,
    };
    let (connections, depth) = (sweep.connections[0], sweep.depths[0]);
    let best = |concurrent: bool| {
        let mut kops = 0.0f64;
        let mut p50 = f64::INFINITY;
        let mut p99 = f64::INFINITY;
        for _ in 0..SERVE_ROUNDS {
            let point = run_serve_point(&sweep, concurrent, connections, depth);
            kops = kops.max(point.kops);
            p50 = p50.min(point.p50_us);
            p99 = p99.min(point.p99_us);
        }
        (kops, p50, p99)
    };
    let (pipelined_kops, pipelined_p50_us, pipelined_p99_us) = best(true);
    let (serial_kops, serial_p50_us, serial_p99_us) = best(false);
    ServeGuard {
        connections,
        depth,
        ops_per_conn: sweep.ops_per_conn,
        write_pct: sweep.write_pct,
        pipelined_kops,
        serial_kops,
        pipelined_p50_us,
        pipelined_p99_us,
        serial_p50_us,
        serial_p99_us,
    }
}

/// Throughputs and recovery numbers of the PR-9 durability guard: the same
/// weighted op stream ingested through a [`DurableGraphStore`] under each AOF
/// sync policy versus the in-memory AOF-off baseline, plus a kill-free reopen
/// that times log replay.
#[derive(Debug)]
struct DurabilityGuard {
    aof_off_ingest_mops: f64,
    aof_never_ingest_mops: f64,
    aof_everysec_ingest_mops: f64,
    aof_always_ingest_mops: f64,
    log_bytes: u64,
    recovered_ops: u64,
    recovery_secs: f64,
}

/// Ops per `apply` batch in the durability guard — one log frame (and, under
/// `Always`, one fsync) per batch: the group-commit shape a server would use.
const DURABILITY_BATCH: usize = 1024;

/// Measures the PR-9 durability layer on the distinct CAIDA edges: the AOF-off
/// baseline is the plain weighted engine (no log in the write path — the
/// number the regression guard below pins against the committed snapshot),
/// then the same stream runs through the durable store at every sync policy.
/// After the `Always` run the store is dropped without a clean shutdown and a
/// reopen measures full log replay, asserting the recovered edge count.
fn run_durability_guard(sorted: &[(u64, u64)]) -> DurabilityGuard {
    use std::time::Instant;
    let ops: Vec<GraphOp> = sorted
        .iter()
        .map(|&(u, v)| GraphOp::Insert { u, v, w: 1 })
        .collect();

    let mut aof_off_ingest_mops = 0.0f64;
    let mut live_edges = 0usize;
    for _ in 0..MEASURE_ROUNDS {
        let mut g = WeightedCuckooGraph::new();
        let start = Instant::now();
        for &(u, v) in sorted {
            g.insert_weighted(u, v, 1);
        }
        aof_off_ingest_mops =
            aof_off_ingest_mops.max(ops.len() as f64 / start.elapsed().as_secs_f64() / 1.0e6);
        live_edges = g.edge_count();
    }

    let dir_for = |label: &str| {
        std::env::temp_dir()
            .join(format!(
                "cuckoograph-perf-smoke-aof-{}-{label}",
                std::process::id()
            ))
            .to_string_lossy()
            .into_owned()
    };
    let measure = |label: &str, policy: SyncPolicy| -> (f64, u64, String) {
        let dir = dir_for(label);
        let mut best = 0.0f64;
        let mut log_bytes = 0u64;
        for _ in 0..MEASURE_ROUNDS {
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = DurabilityConfig::new(&dir).with_sync_policy(policy);
            let (mut store, _) =
                DurableGraphStore::open(StdVfs, cfg, WeightedCuckooGraph::new).expect("fresh open");
            let start = Instant::now();
            for chunk in ops.chunks(DURABILITY_BATCH) {
                store.apply(chunk).expect("append + apply");
            }
            best = best.max(ops.len() as f64 / start.elapsed().as_secs_f64() / 1.0e6);
            assert_eq!(
                store.graph().edge_count(),
                live_edges,
                "{label}: durable ingest diverged from the in-memory baseline"
            );
            assert_eq!(
                store.stats().aof_sync_failures,
                0,
                "{label}: the real filesystem failed an fsync"
            );
            log_bytes = store.aof_offset();
        }
        (best, log_bytes, dir)
    };

    let (aof_never_ingest_mops, _, never_dir) = measure("never", SyncPolicy::Never);
    let (aof_everysec_ingest_mops, _, everysec_dir) = measure("everysec", SyncPolicy::EverySecond);
    let (aof_always_ingest_mops, log_bytes, always_dir) = measure("always", SyncPolicy::Always);
    let _ = std::fs::remove_dir_all(&never_dir);
    let _ = std::fs::remove_dir_all(&everysec_dir);

    // Kill-free recovery: the last `Always` run's store was dropped without a
    // clean shutdown, so this reopen replays the whole log.
    let cfg = DurabilityConfig::new(&always_dir).with_sync_policy(SyncPolicy::Always);
    let start = Instant::now();
    let (recovered, report) =
        DurableGraphStore::open(StdVfs, cfg, WeightedCuckooGraph::new).expect("recover");
    let recovery_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        recovered.graph().edge_count(),
        live_edges,
        "recovery lost edges"
    );
    assert_eq!(
        report.ops_replayed,
        ops.len() as u64,
        "recovery skipped acknowledged ops"
    );
    let _ = std::fs::remove_dir_all(&always_dir);

    DurabilityGuard {
        aof_off_ingest_mops,
        aof_never_ingest_mops,
        aof_everysec_ingest_mops,
        aof_always_ingest_mops,
        log_bytes,
        recovered_ops: report.ops_replayed,
        recovery_secs,
    }
}

/// Measures the PR-4 probe path against its live pre-change baseline.
///
/// * **Query**: the same loaded CuckooGraph is point-queried through
///   `has_edge` (tag-byte scan, one Bob pass per op) and through
///   `has_edge_unmemoized` (the pre-change shape: a full Bob pass per table
///   and bucket array, payload key compares, no tags).
/// * **Insert**: a fresh graph ingests the raw stream through `insert_edge`
///   (memoized single-probe step 1), versus a driver that pays one pre-change
///   reference probe per operation before the same insert — a conservative
///   lower bound on the pre-change insert cost, since the old path also ran
///   its settle machinery on unmemoized hashes.
fn run_probe_guard(raw: &[(u64, u64)], sorted: &[(u64, u64)]) -> ProbeGuard {
    use std::time::Instant;
    let to_mops = |ops: usize, secs: f64| ops as f64 / secs / 1.0e6;

    let mut loaded = CuckooGraph::new();
    for &(u, v) in raw {
        loaded.insert_edge(u, v);
    }
    let mut query_tagged_mops = 0.0f64;
    let mut query_reference_mops = 0.0f64;
    for _ in 0..MEASURE_ROUNDS {
        let start = Instant::now();
        let mut hits = 0usize;
        for &(u, v) in sorted {
            if loaded.has_edge(u, v) {
                hits += 1;
            }
        }
        let tagged = to_mops(sorted.len(), start.elapsed().as_secs_f64());
        assert_eq!(hits, sorted.len(), "tagged probe missed stored edges");

        let start = Instant::now();
        let mut ref_hits = 0usize;
        for &(u, v) in sorted {
            if loaded.has_edge_unmemoized(u, v) {
                ref_hits += 1;
            }
        }
        let reference = to_mops(sorted.len(), start.elapsed().as_secs_f64());
        assert_eq!(
            ref_hits,
            sorted.len(),
            "reference probe missed stored edges"
        );
        query_tagged_mops = query_tagged_mops.max(tagged);
        query_reference_mops = query_reference_mops.max(reference);
    }

    let mut insert_tagged_mops = 0.0f64;
    let mut insert_reference_mops = 0.0f64;
    for _ in 0..MEASURE_ROUNDS {
        let mut g = CuckooGraph::new();
        let start = Instant::now();
        for &(u, v) in raw {
            g.insert_edge(u, v);
        }
        insert_tagged_mops =
            insert_tagged_mops.max(to_mops(raw.len(), start.elapsed().as_secs_f64()));

        let mut g = CuckooGraph::new();
        let start = Instant::now();
        for &(u, v) in raw {
            if !g.has_edge_unmemoized(u, v) {
                g.insert_edge(u, v);
            }
        }
        insert_reference_mops =
            insert_reference_mops.max(to_mops(raw.len(), start.elapsed().as_secs_f64()));
    }

    ProbeGuard {
        query_tagged_mops,
        query_reference_mops,
        insert_tagged_mops,
        insert_reference_mops,
    }
}

/// Runs the 1/2/4/8-shard ingest sweep over the raw (unsorted,
/// duplicate-heavy) stream — the streaming shape where the sharded fan-out
/// pays off: scoped-thread parallelism on multi-core machines plus
/// shard-local cache working sets (each source repeats ~30× in CAIDA, and
/// after grouping those repeats probe a 1/N-sized table).
fn run_thread_sweep(raw: &[(u64, u64)], distinct: usize) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(SHARD_SWEEP.len());
    for shards in SHARD_SWEEP {
        eprintln!("# perf_smoke: sweep {shards} shard(s) ...");
        let mut best = 0.0f64;
        for round in 0..SWEEP_ROUNDS {
            let mut graph = ShardedCuckooGraph::new(shards);
            best = best.max(run_batched_inserts(&mut graph, raw));
            assert_eq!(
                graph.edge_count(),
                distinct,
                "{shards}-shard ingest dropped edges"
            );
            if round == SWEEP_ROUNDS - 1 {
                // Batched deletion drains through the same fan-out.
                let dedup: Vec<(u64, u64)> = graph.par_edges();
                assert_eq!(graph.remove_edges(&dedup), distinct);
                assert_eq!(graph.edge_count(), 0, "{shards}-shard delete left edges");
            }
        }
        points.push(SweepPoint {
            shards,
            insert_mops: best,
        });
    }
    points
}

fn main() {
    let scale: f64 = std::env::var("PERF_SMOKE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002);
    // The sweep default is deliberately larger than the main-section scale:
    // the shard-locality effect only shows once the 1-shard node table
    // outgrows the private caches (CI overrides this down for speed).
    let sweep_scale: f64 = std::env::var("PERF_SMOKE_SWEEP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let out_path = std::env::var("PERF_SMOKE_OUT").unwrap_or_else(|_| "BENCH.json".to_string());
    let churn_waves: usize = std::env::var("PERF_SMOKE_CHURN_WAVES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    // Reader-thread counts of the read-under-ingest guard (comma-separated)
    // and the measurement window per point; CI trims both for speed.
    let reader_counts: Vec<usize> = std::env::var("PERF_SMOKE_READERS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&n: &usize| n > 0)
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4]);
    let read_secs: f64 = std::env::var("PERF_SMOKE_READ_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s: &f64| *s > 0.0)
        .unwrap_or(0.2);
    // Commands per connection of the serving guard; CI trims this for speed.
    let serve_ops: usize = std::env::var("PERF_SMOKE_SERVE_OPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|n: &usize| *n > 0)
        .unwrap_or(8_000);
    // Snapshot the committed headline numbers before overwriting, so the
    // delta report below can flag prose that quotes stale figures.
    const DELTA_KEYS: [&str; 11] = [
        "insert_mops",
        "batch_insert_mops",
        "query_mops",
        "succ_scan_mops",
        "delete_mops",
        "memory_bytes",
        "segment_compactions",
        "segment_tombstones",
        "segment_bytes",
        "aof_off_ingest_mops",
        "serve_pipelined_kops",
    ];
    let committed = committed_ours_metrics(&out_path, &DELTA_KEYS);

    let dataset = generate(DatasetKind::Caida, scale, HARNESS_SEED);
    let raw = &dataset.raw_edges;
    let mut sorted = dataset.distinct_edges();
    sorted.sort_unstable();
    // The same raw workload the per-edge loop runs, grouped by source so the
    // batched path's run detection applies — the bulk-load shape.
    let mut raw_by_source = raw.clone();
    raw_by_source.sort_by_key(|&(u, _)| u);

    let mut results: Vec<SchemeResult> = Vec::new();
    let all_schemes = [
        SchemeKind::CuckooGraph,
        SchemeKind::LiveGraph,
        SchemeKind::Spruce,
        SchemeKind::Sortledton,
        SchemeKind::Wbi,
        SchemeKind::AdjacencyList,
        SchemeKind::Pcsr,
    ];
    for scheme in all_schemes {
        eprintln!("# perf_smoke: {} ...", scheme.label());

        // Every timed section repeats MEASURE_ROUNDS times with the best
        // round reported — the same methodology the scan measurements always
        // used. Single-shot numbers at CI scale were dominated by cold-start
        // noise (the same binary produced ±25% on identical runs), which
        // drowned the effects BENCH.json exists to track.

        // Batched insert on fresh graphs (source-sorted bulk-load shape).
        let mut batch_insert_mops = 0.0f64;
        for _ in 0..MEASURE_ROUNDS {
            let mut batch_graph = scheme.build();
            batch_insert_mops =
                batch_insert_mops.max(run_batched_inserts(batch_graph.as_mut(), &raw_by_source));
            assert_eq!(
                batch_graph.edge_count(),
                sorted.len(),
                "{}: batched insert dropped edges",
                scheme.label()
            );
        }

        // Per-edge insert; the last round's graph is the one every other
        // measurement runs against.
        let mut graph = scheme.build();
        let mut insert_mops = run_inserts(graph.as_mut(), raw);
        for _ in 1..MEASURE_ROUNDS {
            let mut fresh = scheme.build();
            insert_mops = insert_mops.max(run_inserts(fresh.as_mut(), raw));
            graph = fresh;
        }
        let memory_bytes = graph.memory_bytes();
        let edges = graph.edge_count();

        let mut query_mops = 0.0f64;
        for _ in 0..MEASURE_ROUNDS {
            let (mops, hits) = run_queries(graph.as_ref(), &sorted);
            assert_eq!(hits, sorted.len(), "{}: missing edges", scheme.label());
            query_mops = query_mops.max(mops);
        }

        let mut sources = Vec::with_capacity(graph.node_count());
        graph.for_each_node(&mut |u| sources.push(u));
        sources.sort_unstable();
        let mut succ_scan_mops = 0.0f64;
        let mut succ_scan_vec_mops = 0.0f64;
        for _ in 0..MEASURE_ROUNDS {
            let (visitor, visited) = run_successor_scans(graph.as_ref(), &sources, SCAN_PASSES);
            let (vec_path, vec_visited) =
                run_successor_scans_vec(graph.as_ref(), &sources, SCAN_PASSES);
            assert_eq!(visited, vec_visited, "{}: scan mismatch", scheme.label());
            succ_scan_mops = succ_scan_mops.max(visitor);
            succ_scan_vec_mops = succ_scan_vec_mops.max(vec_path);
        }

        let mut delete_mops = 0.0f64;
        for round in 0..MEASURE_ROUNDS {
            if round > 0 {
                // Deletion empties the graph; refill through the batch path.
                graph.insert_edges(&raw_by_source);
            }
            delete_mops = delete_mops.max(run_deletes(graph.as_mut(), &sorted));
            assert_eq!(
                graph.edge_count(),
                0,
                "{}: deletes left edges",
                scheme.label()
            );
        }

        results.push(SchemeResult {
            label: scheme.label(),
            insert_mops,
            batch_insert_mops,
            query_mops,
            succ_scan_mops,
            succ_scan_vec_mops,
            delete_mops,
            memory_bytes,
            edges,
        });
    }

    // The 1/2/4/8-shard ingest thread-sweep runs on its own (larger) workload:
    // partition locality needs tables bigger than the private caches before it
    // shows, and the ingest-only sweep stays cheap even then.
    let sweep_dataset = generate(DatasetKind::Caida, sweep_scale, HARNESS_SEED);
    let sweep_distinct = sweep_dataset.distinct_edges().len();
    let sweep = run_thread_sweep(&sweep_dataset.raw_edges, sweep_distinct);
    let serial_mops = sweep[0].insert_mops;

    eprintln!("# perf_smoke: probe-path guard ...");
    let probe = run_probe_guard(raw, &sorted);

    eprintln!("# perf_smoke: scan-path guard ...");
    let scan = run_scan_guard(raw);

    // The resize guard churns the *dense* profile: with an average degree in
    // the hundreds every node's S-CHT chain climbs through several
    // transformation rounds per insert wave and contracts back per delete
    // wave, so the rebuild machinery — not the per-edge mutation path —
    // dominates what the guard times. (The CAIDA stream above averages
    // degree ~2 at smoke scale; its cells rarely transform at all.)
    eprintln!("# perf_smoke: resize guard ({churn_waves} churn waves, dense profile) ...");
    let mut churn_edges = generate(DatasetKind::DenseGraph, scale, HARNESS_SEED).distinct_edges();
    churn_edges.sort_unstable();
    let resize = run_resize_guard(&churn_edges, churn_waves);

    // The PR-6 pool guard churns the same dense workload: recycled-table
    // churn versus the pool-off oracle.
    eprintln!("# perf_smoke: pool guard ({churn_waves} churn waves, dense profile) ...");
    let pool = run_pool_guard(&churn_edges, churn_waves);

    // The PR-8 scan-segment guard: contiguous-segment scan versus the
    // table-walk oracle on the same churned dense graph (tombstones punched
    // past the waste threshold, compactions verified live).
    eprintln!("# perf_smoke: scan-segment guard (dense profile) ...");
    let segment = run_segment_guard(&churn_edges);

    // The PR-7 read-under-ingest guard: lock-free readers scanning the CAIDA
    // stable set while a writer churns a disjoint-source batch on the same
    // shards. Each pass asserts its visit count, so the throughput numbers
    // below are also a live safety check on the seqlock/epoch protocol.
    eprintln!("# perf_smoke: read-under-ingest guard ({read_secs}s per point) ...");
    let read_guard = run_read_guard(&sorted, &reader_counts, read_secs);

    // The PR-9 durability guard: the distinct CAIDA stream through the
    // durable store at every AOF sync policy, against the in-memory AOF-off
    // baseline, plus a kill-free reopen timing full log replay.
    eprintln!("# perf_smoke: durability guard ({DURABILITY_BATCH}-op batches) ...");
    let durability = run_durability_guard(&sorted);

    // The PR-10 serving guard: pipelined reactor dispatch versus the
    // serial-dispatch oracle on the same loopback workload.
    eprintln!("# perf_smoke: serving guard ({serve_ops} ops/conn over loopback TCP) ...");
    let serve = run_serve_guard(serve_ops);

    // Hand-rolled JSON (the workspace has no serde); one object per scheme,
    // throughput in ops/sec, memory in bytes. Schema v2 added shards/threads
    // metadata per entry plus the thread_sweep block, v3 the probe_path
    // block, v4 the scan_path and resize guard blocks, v5 the pool guard
    // block, v6 the read_under_ingest block, v7 the scan_segments block, v8
    // the durability block, v9 the serving block, so the perf trajectory
    // across PRs stays comparable.
    let mut json = String::from("{\n");
    json.push_str("  \"schema_version\": 9,\n");
    json.push_str(&format!(
        "  \"workload\": {{\"dataset\": \"CAIDA\", \"scale\": {scale}, \"seed\": {HARNESS_SEED}, \"raw_edges\": {}, \"distinct_edges\": {}}},\n",
        raw.len(),
        sorted.len()
    ));
    json.push_str("  \"schemes\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"shards\": 1, \"threads\": 1, \"edges\": {}, \"memory_bytes\": {}, \
             \"insert_mops\": {}, \"batch_insert_mops\": {}, \"query_mops\": {}, \
             \"succ_scan_mops\": {}, \"succ_scan_vec_mops\": {}, \"delete_mops\": {}}}{}\n",
            r.label,
            r.edges,
            r.memory_bytes,
            json_f(r.insert_mops),
            json_f(r.batch_insert_mops),
            json_f(r.query_mops),
            json_f(r.succ_scan_mops),
            json_f(r.succ_scan_vec_mops),
            json_f(r.delete_mops),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"probe_path\": {{\"query_tagged_mops\": {}, \"query_reference_mops\": {}, \
         \"insert_tagged_mops\": {}, \"insert_reference_mops\": {}}},\n",
        json_f(probe.query_tagged_mops),
        json_f(probe.query_reference_mops),
        json_f(probe.insert_tagged_mops),
        json_f(probe.insert_reference_mops),
    ));
    json.push_str(&format!(
        "  \"scan_path\": {{\"swar_scan_mops\": {}, \"scalar_scan_mops\": {}}},\n",
        json_f(scan.swar_scan_mops),
        json_f(scan.scalar_scan_mops),
    ));
    json.push_str(&format!(
        "  \"resize\": {{\"scratch_churn_mops\": {}, \"alloc_churn_mops\": {}, \
         \"waves\": {}, \"churn_edges\": {}}},\n",
        json_f(resize.scratch_churn_mops),
        json_f(resize.alloc_churn_mops),
        resize.waves,
        resize.edges,
    ));
    json.push_str(&format!(
        "  \"pool\": {{\"pooled_churn_mops\": {}, \"pool_off_churn_mops\": {}, \
         \"pool_hits\": {}, \"pool_misses\": {}, \"pool_retired\": {}, \
         \"pool_retained_bytes\": {}, \"arena_blocks\": {}, \"arena_free_blocks\": {}}},\n",
        json_f(pool.pooled_churn_mops),
        json_f(pool.pool_off_churn_mops),
        pool.pool_hits,
        pool.pool_misses,
        pool.pool_retired,
        pool.pool_retained_bytes,
        pool.arena_blocks,
        pool.arena_free_blocks,
    ));
    json.push_str(&format!(
        "  \"scan_segments\": {{\"segment_scan_mops\": {}, \"table_walk_scan_mops\": {}, \
         \"segment_compactions\": {}, \"segment_tombstones\": {}, \"segment_bytes\": {}}},\n",
        json_f(segment.segment_scan_mops),
        json_f(segment.table_walk_scan_mops),
        segment.segment_compactions,
        segment.segment_tombstones,
        segment.segment_bytes,
    ));
    json.push_str(&format!(
        "  \"durability\": {{\"aof_off_ingest_mops\": {}, \"aof_never_ingest_mops\": {}, \
         \"aof_everysec_ingest_mops\": {}, \"aof_always_ingest_mops\": {}, \
         \"batch_ops\": {DURABILITY_BATCH}, \"log_bytes\": {}, \"recovered_ops\": {}, \
         \"recovery_secs\": {}}},\n",
        json_f(durability.aof_off_ingest_mops),
        json_f(durability.aof_never_ingest_mops),
        json_f(durability.aof_everysec_ingest_mops),
        json_f(durability.aof_always_ingest_mops),
        durability.log_bytes,
        durability.recovered_ops,
        json_f(durability.recovery_secs),
    ));
    json.push_str(&format!(
        "  \"serving\": {{\"connections\": {}, \"depth\": {}, \"ops_per_conn\": {}, \
         \"write_pct\": {}, \"serve_pipelined_kops\": {}, \"serve_serial_kops\": {}, \
         \"pipelined_p50_us\": {}, \"pipelined_p99_us\": {}, \"serial_p50_us\": {}, \
         \"serial_p99_us\": {}}},\n",
        serve.connections,
        serve.depth,
        serve.ops_per_conn,
        serve.write_pct,
        json_f(serve.pipelined_kops),
        json_f(serve.serial_kops),
        json_f(serve.pipelined_p50_us),
        json_f(serve.pipelined_p99_us),
        json_f(serve.serial_p50_us),
        json_f(serve.serial_p99_us),
    ));
    json.push_str(&format!(
        "  \"read_under_ingest\": {{\"scheme\": \"ShardedCuckooGraph\", \"shards\": {}, \
         \"read_secs\": {read_secs}, \"stable_edges\": {}, \"churn_batch\": {}, \
         \"epoch_advances\": {}, \"reader_retries\": {}, \"read_pins\": {}, \"points\": [\n",
        read_guard.shards,
        read_guard.stable_edges,
        read_guard.churn_batch,
        read_guard.epoch_advances,
        read_guard.reader_retries,
        read_guard.read_pins,
    ));
    for (i, p) in read_guard.points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"readers\": {}, \"aggregate_scan_mops\": {}, \"passes\": {}, \
             \"churn_waves\": {}}}{}\n",
            p.readers,
            json_f(p.aggregate_scan_mops),
            p.passes,
            p.churn_waves,
            if i + 1 < read_guard.points.len() {
                ","
            } else {
                ""
            },
        ));
    }
    json.push_str("  ]},\n");
    json.push_str(&format!(
        "  \"thread_sweep\": {{\"scheme\": \"ShardedCuckooGraph\", \"dataset\": \"CAIDA\", \
         \"scale\": {sweep_scale}, \"seed\": {HARNESS_SEED}, \"raw_edges\": {}, \
         \"distinct_edges\": {sweep_distinct}, \"points\": [\n",
        sweep_dataset.raw_edges.len(),
    ));
    for (i, p) in sweep.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {}, \"threads\": {}, \"batch_insert_mops\": {}, \"speedup\": {}}}{}\n",
            p.shards,
            p.shards,
            json_f(p.insert_mops),
            json_f(p.insert_mops / serial_mops),
            if i + 1 < sweep.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]}\n}\n");

    // Delta report against the previously committed snapshot (printed before
    // the overwrite): any prose in ROADMAP/CHANGES/README quoting the old
    // numbers shows up here as a non-zero delta at re-record time.
    let ours = results
        .iter()
        .find(|r| r.label == "Ours")
        .expect("CuckooGraph result");
    match &committed {
        CommittedSnapshot::Ours { metrics: old, .. } => {
            // Same order as DELTA_KEYS; committed values are looked up by
            // key, so metrics newer than the committed schema print as new
            // instead of misaligning the report.
            let new_values = [
                ours.insert_mops,
                ours.batch_insert_mops,
                ours.query_mops,
                ours.succ_scan_mops,
                ours.delete_mops,
                ours.memory_bytes as f64,
                segment.segment_compactions as f64,
                segment.segment_tombstones as f64,
                segment.segment_bytes as f64,
                durability.aof_off_ingest_mops,
                serve.pipelined_kops,
            ];
            println!();
            println!("Ours vs committed {out_path}:");
            for (key, new_value) in DELTA_KEYS.iter().zip(new_values) {
                let unit = if key.ends_with("_mops") {
                    "Mops"
                } else if key.ends_with("_kops") {
                    "kops"
                } else if key.ends_with("_bytes") {
                    "B   "
                } else {
                    "    "
                };
                let Some((_, old_value)) = old.iter().find(|(k, _)| k == key) else {
                    println!("  {key:20} {new_value:10.3} {unit} (new metric)");
                    continue;
                };
                let delta = if *old_value > 0.0 {
                    (new_value - old_value) / old_value * 100.0
                } else {
                    f64::NAN
                };
                println!(
                    "  {key:20} {new_value:10.3} {unit} (committed {old_value:10.3}, {delta:+7.1}%)"
                );
            }
        }
        CommittedSnapshot::Absent => {
            println!("\nNo committed {out_path} to diff against (first record).");
        }
        CommittedSnapshot::Unparseable => {
            // Fail loudly: losing the delta report silently would defeat the
            // stale-prose guard it exists to provide.
            eprintln!(
                "perf_smoke FAILED: committed {out_path} exists but its Ours line could not \
                 be parsed for the delta report — the hand-rolled JSON format drifted; update \
                 committed_ours_metrics (or DELTA_KEYS) to match"
            );
            std::process::exit(1);
        }
    }

    std::fs::write(&out_path, &json).expect("write BENCH.json");

    println!(
        "{:12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "scheme", "ins Mops", "batch", "query", "scan", "scan(Vec)", "del", "mem bytes"
    );
    for r in &results {
        println!(
            "{:12} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>12}",
            r.label,
            r.insert_mops,
            r.batch_insert_mops,
            r.query_mops,
            r.succ_scan_mops,
            r.succ_scan_vec_mops,
            r.delete_mops,
            r.memory_bytes
        );
    }
    println!();
    println!(
        "{:>8} {:>8} {:>14} {:>10}",
        "shards", "threads", "ins Mops", "speedup"
    );
    for p in &sweep {
        println!(
            "{:>8} {:>8} {:>14.3} {:>9.2}x",
            p.shards,
            p.shards,
            p.insert_mops,
            p.insert_mops / serial_mops
        );
    }
    eprintln!("# perf_smoke: wrote {out_path}");

    // The sharding claim, checked on every run: the best multi-shard batched
    // ingest must not fall behind the 1-shard serial fast path. The margin is
    // deliberately wide — shared CI runners get noisy-neighbour stalls, and a
    // real fan-out regression (e.g. accidental serialization plus grouping
    // overhead) lands far below it on the multi-core runners; the committed
    // run records a genuine multi-shard win.
    let best_multi = sweep
        .iter()
        .filter(|p| p.shards > 1)
        .map(|p| p.insert_mops)
        .fold(0.0f64, f64::max);
    const SWEEP_NOISE_MARGIN: f64 = 0.8;
    if best_multi < serial_mops * SWEEP_NOISE_MARGIN {
        eprintln!(
            "perf_smoke FAILED: best multi-shard ingest {best_multi} Mops slower than \
             1-shard path {serial_mops} Mops"
        );
        std::process::exit(1);
    }

    // Per-point tolerance, tighter than the best-point gate above: the
    // committed sweep's weakest point (4 shards) records speedup 0.9723 —
    // parity within scheduler noise, not a win — and the best-point margin
    // alone would let a single point collapse to 0.8x behind a healthy peak.
    // Every multi-shard point must stay above this explicit noise floor; a
    // real per-point regression (one shard's coordinator serialising the
    // others) lands far below it.
    const SWEEP_POINT_NOISE_MARGIN: f64 = 0.93;
    println!(
        "sweep tolerance: best multi-shard >= {SWEEP_NOISE_MARGIN}x serial, \
         every multi-shard point >= {SWEEP_POINT_NOISE_MARGIN}x serial"
    );
    for p in sweep.iter().filter(|p| p.shards > 1) {
        let speedup = p.insert_mops / serial_mops;
        if speedup < SWEEP_POINT_NOISE_MARGIN {
            eprintln!(
                "perf_smoke FAILED: {}-shard ingest speedup {speedup:.4} below the per-point \
                 noise floor {SWEEP_POINT_NOISE_MARGIN} (serial {serial_mops} Mops, point {} Mops)",
                p.shards, p.insert_mops
            );
            std::process::exit(1);
        }
    }

    // The PR-4 probe-path claim, checked on every run with the visitor-scan
    // guard style: the tagged, hash-memoized probe must not regress against
    // the live pre-change reference path — on queries (pure probe comparison)
    // and on per-edge inserts (tagged insert vs the same insert burdened with
    // one pre-change probe per op). A real regression (e.g. the tag scan
    // degenerating to payload scans, or per-table re-hashing sneaking back
    // in) lands well below the noise margin.
    const PROBE_NOISE_MARGIN: f64 = 0.9;
    println!();
    println!(
        "probe path: query {:.3} Mops (reference {:.3}), insert {:.3} Mops (reference {:.3})",
        probe.query_tagged_mops,
        probe.query_reference_mops,
        probe.insert_tagged_mops,
        probe.insert_reference_mops
    );
    if probe.query_tagged_mops < probe.query_reference_mops * PROBE_NOISE_MARGIN {
        eprintln!(
            "perf_smoke FAILED: tagged query {} Mops slower than reference probe {} Mops",
            probe.query_tagged_mops, probe.query_reference_mops
        );
        std::process::exit(1);
    }
    if probe.insert_tagged_mops < probe.insert_reference_mops * PROBE_NOISE_MARGIN {
        eprintln!(
            "perf_smoke FAILED: tagged insert {} Mops slower than reference-probed insert {} Mops",
            probe.insert_tagged_mops, probe.insert_reference_mops
        );
        std::process::exit(1);
    }

    // The PR-2 refactor's claim, checked on every run: scanning CuckooGraph
    // through the visitor is at least as fast as collecting Vecs. The margin
    // absorbs scheduler noise on tiny CI workloads (a real regression — the
    // visitor forwarding to a Vec collection again — shows up as ~2x slower,
    // far outside it).
    const NOISE_MARGIN: f64 = 0.9;
    if ours.succ_scan_mops < ours.succ_scan_vec_mops * NOISE_MARGIN {
        eprintln!(
            "perf_smoke FAILED: visitor scan {} Mops slower than Vec path {} Mops",
            ours.succ_scan_mops, ours.succ_scan_vec_mops
        );
        std::process::exit(1);
    }

    // The PR-5 scan-path claim: the SWAR tag-word successor scan must not
    // regress against the live scalar slot-walk reference. A real regression
    // (the word scan degenerating to per-byte work, or the occupancy bitmap
    // walking payloads again) lands far below the noise margin.
    println!();
    println!(
        "scan path:  SWAR {:.3} Mops vs scalar reference {:.3} Mops",
        scan.swar_scan_mops, scan.scalar_scan_mops
    );
    if scan.swar_scan_mops < scan.scalar_scan_mops * NOISE_MARGIN {
        eprintln!(
            "perf_smoke FAILED: SWAR scan {} Mops slower than scalar reference {} Mops",
            scan.swar_scan_mops, scan.scalar_scan_mops
        );
        std::process::exit(1);
    }

    // The PR-5 resize claim: scratch-backed expand/contract churn must not
    // regress against the alloc-per-event reference engine. A real regression
    // (per-event allocations sneaking back into the rebuild pipeline) shows
    // up directly in this comparison.
    println!(
        "resize:     scratch churn {:.3} Mops vs alloc-per-event {:.3} Mops ({} waves)",
        resize.scratch_churn_mops, resize.alloc_churn_mops, resize.waves
    );
    if resize.scratch_churn_mops < resize.alloc_churn_mops * NOISE_MARGIN {
        eprintln!(
            "perf_smoke FAILED: scratch-backed churn {} Mops slower than alloc-per-event \
             reference {} Mops",
            resize.scratch_churn_mops, resize.alloc_churn_mops
        );
        std::process::exit(1);
    }

    // The PR-6 pool claim: churn on the pooled/arena engine must not regress
    // against the pool-off oracle (fresh table buffers per TRANSFORMATION
    // event). A real regression — the pool clear path degenerating to
    // re-allocation, or acquire/retire overhead outweighing the recycling —
    // shows up directly here.
    println!(
        "pool:       pooled churn {:.3} Mops vs pool-off oracle {:.3} Mops \
         ({} hits / {} misses, {} retired, {} B retained)",
        pool.pooled_churn_mops,
        pool.pool_off_churn_mops,
        pool.pool_hits,
        pool.pool_misses,
        pool.pool_retired,
        pool.pool_retained_bytes
    );
    if pool.pooled_churn_mops < pool.pool_off_churn_mops * NOISE_MARGIN {
        eprintln!(
            "perf_smoke FAILED: pooled churn {} Mops slower than pool-off oracle {} Mops",
            pool.pooled_churn_mops, pool.pool_off_churn_mops
        );
        std::process::exit(1);
    }

    // The PR-8 scan-segment claim: the contiguous-segment successor scan must
    // not regress against the live table-walk oracle on the transformed-cell
    // profile, and the churn that precedes the measurement must actually have
    // exercised the tombstone/compaction machinery (asserted inside the
    // guard). A real regression — the segment walk degenerating to per-slot
    // probing, or stale segments forcing table fallbacks — lands far below
    // the noise margin.
    println!(
        "segments:   segment scan {:.3} Mops vs table-walk oracle {:.3} Mops \
         ({} compactions, {} tombstones, {} B)",
        segment.segment_scan_mops,
        segment.table_walk_scan_mops,
        segment.segment_compactions,
        segment.segment_tombstones,
        segment.segment_bytes
    );
    if segment.segment_scan_mops < segment.table_walk_scan_mops * NOISE_MARGIN {
        eprintln!(
            "perf_smoke FAILED: segment scan {} Mops slower than table-walk oracle {} Mops",
            segment.segment_scan_mops, segment.table_walk_scan_mops
        );
        std::process::exit(1);
    }

    // The PR-9 durability claim: adding the AOF subsystem must leave the
    // AOF-off write path untouched — the baseline above runs the plain
    // weighted engine with no log anywhere near it, so a slowdown against the
    // committed snapshot means durability plumbing leaked into the hot path.
    // Cross-run throughput (unlike memory) is not deterministic, so the
    // margin is wide; a real leak — a branch, a buffer, or an Arc on every
    // insert — lands well below it. Scale-mismatched or pre-v8 snapshots skip
    // the gate loudly, like the memory guard.
    println!(
        "durability: AOF off {:.3} Mops | never {:.3} | everysec {:.3} | always {:.3}; \
         replayed {} ops in {:.1} ms ({} B log)",
        durability.aof_off_ingest_mops,
        durability.aof_never_ingest_mops,
        durability.aof_everysec_ingest_mops,
        durability.aof_always_ingest_mops,
        durability.recovered_ops,
        durability.recovery_secs * 1e3,
        durability.log_bytes
    );
    const AOF_OFF_NOISE_MARGIN: f64 = 0.75;
    if let CommittedSnapshot::Ours {
        metrics,
        scale: committed_scale,
    } = &committed
    {
        let committed_off = metrics
            .iter()
            .find(|(k, _)| k == "aof_off_ingest_mops")
            .map(|(_, v)| *v);
        match (committed_off, committed_scale) {
            (Some(old_off), Some(old_scale)) if *old_scale == scale => {
                if durability.aof_off_ingest_mops < old_off * AOF_OFF_NOISE_MARGIN {
                    eprintln!(
                        "perf_smoke FAILED: AOF-off ingest {} Mops fell below committed \
                         {} Mops (margin {AOF_OFF_NOISE_MARGIN}) — durability plumbing \
                         leaked into the non-durable write path",
                        durability.aof_off_ingest_mops, old_off
                    );
                    std::process::exit(1);
                }
            }
            (Some(_), Some(old_scale)) => {
                eprintln!(
                    "# perf_smoke: AOF-off guard skipped (run scale {scale} != committed \
                     scale {old_scale})"
                );
            }
            _ => {
                eprintln!(
                    "# perf_smoke: AOF-off guard skipped (committed snapshot predates the \
                     durability block)"
                );
            }
        }
    }

    // The PR-10 serving claim: at pipeline depth 8, reactor dispatch with the
    // concurrent read path must not fall behind the serial-dispatch oracle on
    // the same loopback workload. The concurrent path answers ~90% of the mix
    // inline on the workers while the oracle pays a worker→writer→worker
    // round-trip per burst; a real regression (inline reads silently rerouted
    // through the queue, or the flush path degenerating to per-reply writes)
    // collapses the gap well below the margin. The margin is wide because on
    // a single-core runner the workers, the writer and the client threads
    // time-slice one CPU and the structural win shrinks toward parity.
    println!();
    println!(
        "serving:    pipelined {:.1} kops vs serial oracle {:.1} kops \
         ({} conns, depth {}, {}% writes; p50 {:.0}/{:.0} us, p99 {:.0}/{:.0} us)",
        serve.pipelined_kops,
        serve.serial_kops,
        serve.connections,
        serve.depth,
        serve.write_pct,
        serve.pipelined_p50_us,
        serve.serial_p50_us,
        serve.pipelined_p99_us,
        serve.serial_p99_us,
    );
    const SERVE_NOISE_MARGIN: f64 = 0.85;
    if serve.pipelined_kops < serve.serial_kops * SERVE_NOISE_MARGIN {
        eprintln!(
            "perf_smoke FAILED: pipelined serving {} kops fell behind the serial-dispatch \
             oracle {} kops (margin {SERVE_NOISE_MARGIN})",
            serve.pipelined_kops, serve.serial_kops
        );
        std::process::exit(1);
    }

    // The PR-7 read-under-ingest claim: readers on the lock-free path make
    // sustained progress while a writer churns the same shards (the > 0
    // throughput asserts live inside the guard, as does the per-pass visit
    // count check), the churn actually opened mutation windows for the
    // readers to race, and on machines with cores to spare the aggregate
    // reader throughput scales with the reader count. The scaling gate is
    // skipped (loudly) below four cores: with the writer and two readers
    // time-slicing one or two CPUs, aggregate throughput measures the
    // scheduler, not the protocol.
    println!();
    println!(
        "read under ingest ({} shards, {} stable edges, {:.2}s per point):",
        read_guard.shards, read_guard.stable_edges, read_secs
    );
    for p in &read_guard.points {
        println!(
            "  {:>2} reader(s): {:>10.3} Mops aggregate ({} passes, {} churn waves)",
            p.readers, p.aggregate_scan_mops, p.passes, p.churn_waves
        );
    }
    println!(
        "  counters: {} epoch advances, {} reader retries, {} read pins",
        read_guard.epoch_advances, read_guard.reader_retries, read_guard.read_pins
    );
    if read_guard.epoch_advances == 0 {
        eprintln!(
            "perf_smoke FAILED: the read-under-ingest writer opened no mutation windows — \
             the readers never raced an ingest"
        );
        std::process::exit(1);
    }
    const READ_SCALING_FACTOR: f64 = 1.5;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let one = read_guard.points.iter().find(|p| p.readers == 1);
    let two = read_guard.points.iter().find(|p| p.readers == 2);
    match (one, two) {
        (Some(one), Some(two)) if cores >= 4 => {
            if two.aggregate_scan_mops < one.aggregate_scan_mops * READ_SCALING_FACTOR {
                eprintln!(
                    "perf_smoke FAILED: 2-reader aggregate {} Mops below {READ_SCALING_FACTOR}x \
                     the 1-reader throughput {} Mops — lock-free readers are serialising",
                    two.aggregate_scan_mops, one.aggregate_scan_mops
                );
                std::process::exit(1);
            }
        }
        (Some(_), Some(_)) => {
            eprintln!(
                "# perf_smoke: reader scaling gate skipped ({cores} core(s) — readers and the \
                 writer time-slice, so aggregate throughput measures the scheduler)"
            );
        }
        _ => {
            eprintln!("# perf_smoke: reader scaling gate skipped (PERF_SMOKE_READERS lacks 1,2)");
        }
    }

    // The PR-6 memory claim: the footprint of the loaded Ours graph must not
    // creep back up past the committed snapshot. Memory at a fixed seed and
    // scale is deterministic, so the margin only has to absorb allocator
    // rounding; the guard is skipped (loudly) when the run's scale differs
    // from the committed record, since the workloads are not comparable.
    //
    // One deliberate exception: the record that *introduces* the scan
    // segments (committed snapshot has no `segment_bytes` key yet) carries
    // the segment buffers as a new, intentional cost that the 1.05 rounding
    // margin cannot absorb. That single transition gets the documented 1.10
    // allowance of the PR-8 budget; as soon as a segment-bearing record is
    // committed the strict margin re-arms against it.
    const MEMORY_MARGIN: f64 = 1.05;
    const SEGMENT_INTRO_MARGIN: f64 = 1.10;
    if let CommittedSnapshot::Ours {
        metrics,
        scale: committed_scale,
    } = &committed
    {
        let committed_mem = metrics
            .iter()
            .find(|(k, _)| k == "memory_bytes")
            .map(|(_, v)| *v);
        let committed_has_segments = metrics.iter().any(|(k, _)| k == "segment_bytes");
        let margin = if committed_has_segments {
            MEMORY_MARGIN
        } else {
            eprintln!(
                "# perf_smoke: committed snapshot predates scan segments — memory guard \
                 widened once to {SEGMENT_INTRO_MARGIN} for the introducing record"
            );
            SEGMENT_INTRO_MARGIN
        };
        match (committed_mem, committed_scale) {
            (Some(old_mem), Some(old_scale)) if *old_scale == scale => {
                if (ours.memory_bytes as f64) > old_mem * margin {
                    eprintln!(
                        "perf_smoke FAILED: Ours memory {} B regressed past committed {} B \
                         (margin {margin})",
                        ours.memory_bytes, old_mem
                    );
                    std::process::exit(1);
                }
            }
            (Some(_), Some(old_scale)) => {
                eprintln!(
                    "# perf_smoke: memory guard skipped (run scale {scale} != committed \
                     scale {old_scale})"
                );
            }
            _ => {
                eprintln!("# perf_smoke: memory guard skipped (no committed memory/scale)");
            }
        }
    }
}
