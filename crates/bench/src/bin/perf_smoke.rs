//! `perf_smoke` — a deterministic, seconds-scale performance smoke test.
//!
//! Runs a small fixed-seed CAIDA-like workload through every storage scheme:
//! per-edge insert, batched insert, edge query, successor scan (both the
//! zero-allocation visitor and the Vec-collecting path it replaced), and
//! delete — then writes `BENCH.json` with ops/sec and memory bytes per scheme
//! so the bench trajectory of the repository is machine-readable and traversal
//! regressions fail loudly in CI.
//!
//! ```text
//! cargo run -p graph-bench --release --bin perf_smoke
//! PERF_SMOKE_SCALE=0.01 PERF_SMOKE_OUT=out.json cargo run -p graph-bench --release --bin perf_smoke
//! ```
//!
//! The workload is seeded with [`graph_bench::HARNESS_SEED`], so the operation
//! stream is identical across runs and machines; only the measured
//! throughputs differ.

use graph_bench::{
    run_batched_inserts, run_deletes, run_inserts, run_queries, run_successor_scans,
    run_successor_scans_vec, SchemeKind, HARNESS_SEED,
};
use graph_datasets::{generate, DatasetKind};

/// Repetitions of each scan measurement (best one is reported) so a stray
/// scheduler hiccup does not dominate a seconds-scale run.
const MEASURE_ROUNDS: usize = 5;

/// Full-graph scan passes inside one timed measurement: keeps each timing
/// sample well above microsecond scale even at tiny CI workloads, so the
/// visitor-vs-Vec comparison is not decided by clock noise.
const SCAN_PASSES: usize = 8;

#[derive(Debug)]
struct SchemeResult {
    label: &'static str,
    insert_mops: f64,
    batch_insert_mops: f64,
    query_mops: f64,
    succ_scan_mops: f64,
    succ_scan_vec_mops: f64,
    delete_mops: f64,
    memory_bytes: usize,
    edges: usize,
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

fn main() {
    let scale: f64 = std::env::var("PERF_SMOKE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002);
    let out_path = std::env::var("PERF_SMOKE_OUT").unwrap_or_else(|_| "BENCH.json".to_string());

    let dataset = generate(DatasetKind::Caida, scale, HARNESS_SEED);
    let raw = &dataset.raw_edges;
    let mut sorted = dataset.distinct_edges();
    sorted.sort_unstable();
    // The same raw workload the per-edge loop runs, grouped by source so the
    // batched path's run detection applies — the bulk-load shape.
    let mut raw_by_source = raw.clone();
    raw_by_source.sort_by_key(|&(u, _)| u);

    let mut results: Vec<SchemeResult> = Vec::new();
    let all_schemes = [
        SchemeKind::CuckooGraph,
        SchemeKind::LiveGraph,
        SchemeKind::Spruce,
        SchemeKind::Sortledton,
        SchemeKind::Wbi,
        SchemeKind::AdjacencyList,
        SchemeKind::Pcsr,
    ];
    for scheme in all_schemes {
        eprintln!("# perf_smoke: {} ...", scheme.label());

        // Batched insert on a fresh graph (source-sorted bulk-load shape).
        let mut batch_graph = scheme.build();
        let batch_insert_mops = run_batched_inserts(batch_graph.as_mut(), &raw_by_source);
        assert_eq!(
            batch_graph.edge_count(),
            sorted.len(),
            "{}: batched insert dropped edges",
            scheme.label()
        );
        drop(batch_graph);

        // Per-edge insert on the graph every other measurement runs against.
        let mut graph = scheme.build();
        let insert_mops = run_inserts(graph.as_mut(), raw);
        let memory_bytes = graph.memory_bytes();
        let edges = graph.edge_count();

        let (query_mops, hits) = run_queries(graph.as_ref(), &sorted);
        assert_eq!(hits, sorted.len(), "{}: missing edges", scheme.label());

        let mut sources = Vec::with_capacity(graph.node_count());
        graph.for_each_node(&mut |u| sources.push(u));
        sources.sort_unstable();
        let mut succ_scan_mops = 0.0f64;
        let mut succ_scan_vec_mops = 0.0f64;
        for _ in 0..MEASURE_ROUNDS {
            let (visitor, visited) = run_successor_scans(graph.as_ref(), &sources, SCAN_PASSES);
            let (vec_path, vec_visited) =
                run_successor_scans_vec(graph.as_ref(), &sources, SCAN_PASSES);
            assert_eq!(visited, vec_visited, "{}: scan mismatch", scheme.label());
            succ_scan_mops = succ_scan_mops.max(visitor);
            succ_scan_vec_mops = succ_scan_vec_mops.max(vec_path);
        }

        let delete_mops = run_deletes(graph.as_mut(), &sorted);
        assert_eq!(
            graph.edge_count(),
            0,
            "{}: deletes left edges",
            scheme.label()
        );

        results.push(SchemeResult {
            label: scheme.label(),
            insert_mops,
            batch_insert_mops,
            query_mops,
            succ_scan_mops,
            succ_scan_vec_mops,
            delete_mops,
            memory_bytes,
            edges,
        });
    }

    // Hand-rolled JSON (the workspace has no serde); one object per scheme,
    // throughput in ops/sec, memory in bytes.
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"dataset\": \"CAIDA\", \"scale\": {scale}, \"seed\": {HARNESS_SEED}, \"raw_edges\": {}, \"distinct_edges\": {}}},\n",
        raw.len(),
        sorted.len()
    ));
    json.push_str("  \"schemes\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"edges\": {}, \"memory_bytes\": {}, \
             \"insert_mops\": {}, \"batch_insert_mops\": {}, \"query_mops\": {}, \
             \"succ_scan_mops\": {}, \"succ_scan_vec_mops\": {}, \"delete_mops\": {}}}{}\n",
            r.label,
            r.edges,
            r.memory_bytes,
            json_f(r.insert_mops),
            json_f(r.batch_insert_mops),
            json_f(r.query_mops),
            json_f(r.succ_scan_mops),
            json_f(r.succ_scan_vec_mops),
            json_f(r.delete_mops),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH.json");

    println!(
        "{:12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "scheme", "ins Mops", "batch", "query", "scan", "scan(Vec)", "del", "mem bytes"
    );
    for r in &results {
        println!(
            "{:12} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>12}",
            r.label,
            r.insert_mops,
            r.batch_insert_mops,
            r.query_mops,
            r.succ_scan_mops,
            r.succ_scan_vec_mops,
            r.delete_mops,
            r.memory_bytes
        );
    }
    eprintln!("# perf_smoke: wrote {out_path}");

    // The refactor's core claim, checked on every run: scanning CuckooGraph
    // through the visitor is at least as fast as collecting Vecs. The margin
    // absorbs scheduler noise on tiny CI workloads (a real regression — the
    // visitor forwarding to a Vec collection again — shows up as ~2x slower,
    // far outside it).
    const NOISE_MARGIN: f64 = 0.9;
    let ours = results
        .iter()
        .find(|r| r.label == "Ours")
        .expect("CuckooGraph result");
    if ours.succ_scan_mops < ours.succ_scan_vec_mops * NOISE_MARGIN {
        eprintln!(
            "perf_smoke FAILED: visitor scan {} Mops slower than Vec path {} Mops",
            ours.succ_scan_mops, ours.succ_scan_vec_mops
        );
        std::process::exit(1);
    }
}
