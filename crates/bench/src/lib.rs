//! The benchmark harness: one experiment per table and figure of the paper's
//! evaluation section (§ V).
//!
//! The heavy lifting lives in this library so the same code backs both the
//! `reproduce` binary (which prints paper-style tables) and the Criterion
//! micro-benchmarks under `benches/`.
//!
//! Absolute numbers will not match the paper (different hardware, synthetic
//! stand-ins for the licensed datasets, Rust instead of C++), but the *shape*
//! of every comparison — which scheme wins, by roughly what factor, where the
//! crossovers are — is what these experiments regenerate. `EXPERIMENTS.md`
//! records the paper-vs-measured comparison for every experiment id.

pub mod experiments;
pub mod schemes;
pub mod serve;
pub mod workload;

pub use experiments::{
    Experiment, ExperimentReport, ReportTable, FRONTIER_MULTIPLIERS, SHARD_SWEEP,
};
pub use schemes::SchemeKind;
pub use serve::{run_serve_point, run_serve_sweep, ServePoint, ServeSweep};
pub use workload::{
    run_batched_inserts, run_churn_waves, run_deletes, run_inserts, run_queries,
    run_read_under_ingest, run_successor_scans, run_successor_scans_scalar,
    run_successor_scans_vec, Mops, ReadUnderIngestPoint,
};

/// The scale factor applied to the Table IV dataset profiles when the harness
/// synthesises its workloads. Override with the `REPRO_SCALE` environment
/// variable (e.g. `REPRO_SCALE=0.05 cargo run -p graph-bench --bin reproduce`).
pub fn default_scale() -> f64 {
    std::env::var("REPRO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002)
}

/// Seed used everywhere so runs are reproducible.
pub const HARNESS_SEED: u64 = 0x1CDE_2025;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_positive_and_small() {
        let s = default_scale();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn every_experiment_id_is_listed() {
        let all = Experiment::all();
        assert!(
            all.len() >= 21,
            "expected every table and figure, got {}",
            all.len()
        );
        assert!(all.iter().any(|e| e.id() == "table2"));
        assert!(all.iter().any(|e| e.id() == "fig18"));
    }
}
