//! Construction of every storage scheme the paper compares, behind the shared
//! [`DynamicGraph`] trait.

use cuckoograph::{CuckooGraph, CuckooGraphConfig};
use graph_api::DynamicGraph;
use graph_baselines::{
    AdjacencyListGraph, LiveGraphStore, PcsrGraph, SortledtonGraph, SpruceGraph, WindBellIndex,
};

/// The schemes that appear in Figures 6–16.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeKind {
    /// CuckooGraph with the paper's default parameters.
    CuckooGraph,
    /// LiveGraph-like baseline.
    LiveGraph,
    /// Spruce-like baseline (the closest competitor).
    Spruce,
    /// Sortledton-like baseline.
    Sortledton,
    /// Wind-Bell Index baseline.
    Wbi,
    /// Plain adjacency list (extra reference point, not in the paper).
    AdjacencyList,
    /// PCSR (PMA-backed CSR; related-work reference point).
    Pcsr,
}

impl SchemeKind {
    /// The five schemes of the paper's figures, in the order they are plotted.
    pub fn paper_lineup() -> [SchemeKind; 5] {
        [
            SchemeKind::LiveGraph,
            SchemeKind::Spruce,
            SchemeKind::Sortledton,
            SchemeKind::CuckooGraph,
            SchemeKind::Wbi,
        ]
    }

    /// Label used in the report tables (matches the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::CuckooGraph => "Ours",
            SchemeKind::LiveGraph => "LiveGraph",
            SchemeKind::Spruce => "Spruce",
            SchemeKind::Sortledton => "Sortledton",
            SchemeKind::Wbi => "WBI",
            SchemeKind::AdjacencyList => "AdjList",
            SchemeKind::Pcsr => "PCSR",
        }
    }

    /// Builds a fresh instance of the scheme.
    pub fn build(self) -> Box<dyn DynamicGraph> {
        match self {
            SchemeKind::CuckooGraph => Box::new(CuckooGraph::new()),
            SchemeKind::LiveGraph => Box::new(LiveGraphStore::new()),
            SchemeKind::Spruce => Box::new(SpruceGraph::new()),
            SchemeKind::Sortledton => Box::new(SortledtonGraph::new()),
            SchemeKind::Wbi => Box::new(WindBellIndex::new()),
            SchemeKind::AdjacencyList => Box::new(AdjacencyListGraph::new()),
            SchemeKind::Pcsr => Box::new(PcsrGraph::new()),
        }
    }

    /// Builds a CuckooGraph with a custom configuration (parameter studies).
    pub fn build_cuckoo_with(config: CuckooGraphConfig) -> Box<dyn DynamicGraph> {
        Box::new(CuckooGraph::with_config(config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_matches_the_paper() {
        let labels: Vec<_> = SchemeKind::paper_lineup()
            .iter()
            .map(|s| s.label())
            .collect();
        assert_eq!(
            labels,
            vec!["LiveGraph", "Spruce", "Sortledton", "Ours", "WBI"]
        );
    }

    #[test]
    fn every_scheme_builds_and_accepts_edges() {
        for kind in [
            SchemeKind::CuckooGraph,
            SchemeKind::LiveGraph,
            SchemeKind::Spruce,
            SchemeKind::Sortledton,
            SchemeKind::Wbi,
            SchemeKind::AdjacencyList,
            SchemeKind::Pcsr,
        ] {
            let mut g = kind.build();
            assert!(g.insert_edge(1, 2), "{}", kind.label());
            assert!(g.has_edge(1, 2), "{}", kind.label());
        }
    }
}
