//! Criterion micro-benchmarks for the parameter studies (Figures 2–4):
//! CuckooGraph insertion and query throughput as `d`, `G` and `T` vary, on a
//! CAIDA-like workload.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use cuckoograph::{CuckooGraph, CuckooGraphConfig};
use graph_api::DynamicGraph;
use graph_datasets::{generate, DatasetKind};

const SCALE: f64 = 0.0005;
const SEED: u64 = 0x1CDE_2025;

fn workload() -> Vec<(u64, u64)> {
    generate(DatasetKind::Caida, SCALE, SEED).distinct_edges()
}

fn insert_all(config: CuckooGraphConfig, edges: &[(u64, u64)]) -> CuckooGraph {
    let mut g = CuckooGraph::with_config(config);
    for &(u, v) in edges {
        g.insert_edge(u, v);
    }
    g
}

fn bench_tuning_d(c: &mut Criterion) {
    let edges = workload();
    let mut group = c.benchmark_group("fig2_tuning_d_insert");
    for d in [4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, &d| {
            let config = CuckooGraphConfig::default().with_cells_per_bucket(d);
            b.iter_batched(
                || config.clone(),
                |config| insert_all(config, &edges),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_tuning_g(c: &mut Criterion) {
    let edges = workload();
    let mut group = c.benchmark_group("fig3_tuning_g_insert");
    for g_value in [0.8f64, 0.85, 0.9, 0.95] {
        group.bench_with_input(
            BenchmarkId::from_parameter(g_value),
            &g_value,
            |b, &g_value| {
                let config = CuckooGraphConfig::default().with_expand_threshold(g_value);
                b.iter_batched(
                    || config.clone(),
                    |config| insert_all(config, &edges),
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_tuning_t_query(c: &mut Criterion) {
    let edges = workload();
    let mut group = c.benchmark_group("fig4_tuning_t_query");
    for t in [50usize, 150, 250, 350] {
        let config = CuckooGraphConfig::default().with_max_kicks(t);
        let graph = insert_all(config, &edges);
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in &edges {
                    if graph.has_edge(u, v) {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = tuning;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_tuning_d, bench_tuning_g, bench_tuning_t_query
}
criterion_main!(tuning);
