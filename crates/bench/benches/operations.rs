//! Criterion micro-benchmarks for the basic tasks (Figures 6–9): insertion,
//! query and deletion throughput of every scheme, plus a memory-per-edge
//! measurement, on CAIDA-like and NotreDame-like workloads.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use graph_bench::SchemeKind;
use graph_datasets::{generate, DatasetKind};

const SCALE: f64 = 0.0003;
const SEED: u64 = 0x1CDE_2025;

fn schemes() -> [SchemeKind; 5] {
    SchemeKind::paper_lineup()
}

fn bench_insert(c: &mut Criterion) {
    for kind in [DatasetKind::Caida, DatasetKind::NotreDame] {
        let edges = generate(kind, SCALE, SEED).distinct_edges();
        let mut group = c.benchmark_group(format!("fig6_insert_{}", kind.name()));
        group.throughput(criterion::Throughput::Elements(edges.len() as u64));
        for scheme in schemes() {
            group.bench_with_input(
                BenchmarkId::from_parameter(scheme.label()),
                &scheme,
                |b, &scheme| {
                    b.iter_batched(
                        || scheme.build(),
                        |mut graph| {
                            for &(u, v) in &edges {
                                graph.insert_edge(u, v);
                            }
                            graph
                        },
                        BatchSize::SmallInput,
                    );
                },
            );
        }
        group.finish();
    }
}

fn bench_query(c: &mut Criterion) {
    for kind in [DatasetKind::Caida, DatasetKind::NotreDame] {
        let edges = generate(kind, SCALE, SEED).distinct_edges();
        let mut group = c.benchmark_group(format!("fig7_query_{}", kind.name()));
        group.throughput(criterion::Throughput::Elements(edges.len() as u64));
        for scheme in schemes() {
            let mut graph = scheme.build();
            for &(u, v) in &edges {
                graph.insert_edge(u, v);
            }
            group.bench_with_input(
                BenchmarkId::from_parameter(scheme.label()),
                &scheme,
                |b, _| {
                    b.iter(|| {
                        let mut hits = 0usize;
                        for &(u, v) in &edges {
                            if graph.has_edge(u, v) {
                                hits += 1;
                            }
                        }
                        hits
                    });
                },
            );
        }
        group.finish();
    }
}

/// Point queries on the PR-4 tagged/memoized probe path: per scheme, a hit
/// series (stored edges) and a miss series (absent edges over the same
/// sources — the case the tag bytes win outright, no payload is ever
/// touched). CuckooGraph additionally runs the pre-change reference probe
/// (`has_edge_unmemoized`: full re-hash per table and array, payload key
/// compares) so the probe-path speedup stays visible in `cargo bench` output.
fn bench_point_query(c: &mut Criterion) {
    let edges = generate(DatasetKind::Caida, SCALE, SEED).distinct_edges();
    // Misses reuse real sources with destinations shifted out of the id space,
    // so the probe walks real, loaded buckets and fails only at the last step.
    let misses: Vec<(u64, u64)> = edges.iter().map(|&(u, v)| (u, v + (1 << 40))).collect();
    let mut group = c.benchmark_group("point_query_CAIDA");
    group.throughput(criterion::Throughput::Elements(edges.len() as u64));
    for scheme in schemes() {
        let mut graph = scheme.build();
        for &(u, v) in &edges {
            graph.insert_edge(u, v);
        }
        group.bench_with_input(BenchmarkId::new("hit", scheme.label()), &scheme, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in &edges {
                    if graph.has_edge(u, v) {
                        hits += 1;
                    }
                }
                hits
            });
        });
        group.bench_with_input(BenchmarkId::new("miss", scheme.label()), &scheme, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in &misses {
                    if graph.has_edge(u, v) {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    // The pre-change CuckooGraph probe, as a live baseline series.
    let mut ours = cuckoograph::CuckooGraph::new();
    for &(u, v) in &edges {
        use graph_api::DynamicGraph;
        ours.insert_edge(u, v);
    }
    group.bench_function(BenchmarkId::new("hit", "Ours (reference probe)"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &edges {
                if ours.has_edge_unmemoized(u, v) {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.bench_function(BenchmarkId::new("miss", "Ours (reference probe)"), |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &(u, v) in &misses {
                if ours.has_edge_unmemoized(u, v) {
                    hits += 1;
                }
            }
            hits
        });
    });
    group.finish();
}

fn bench_delete(c: &mut Criterion) {
    let edges = generate(DatasetKind::Caida, SCALE, SEED).distinct_edges();
    let mut group = c.benchmark_group("fig8_delete_CAIDA");
    group.throughput(criterion::Throughput::Elements(edges.len() as u64));
    for scheme in schemes() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter_batched(
                    || {
                        let mut graph = scheme.build();
                        for &(u, v) in &edges {
                            graph.insert_edge(u, v);
                        }
                        graph
                    },
                    |mut graph| {
                        for &(u, v) in &edges {
                            graph.delete_edge(u, v);
                        }
                        graph
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

/// Successor scans through the zero-allocation visitor, with the CuckooGraph
/// Vec-collecting path as an extra series so the refactor's win stays visible.
fn bench_successor_scan(c: &mut Criterion) {
    let edges = generate(DatasetKind::NotreDame, SCALE, SEED).distinct_edges();
    let mut group = c.benchmark_group("scan_successors_NotreDame");
    group.throughput(criterion::Throughput::Elements(edges.len() as u64));
    for scheme in schemes() {
        let mut graph = scheme.build();
        graph.insert_edges(&edges);
        let mut sources = Vec::new();
        graph.for_each_node(&mut |u| sources.push(u));
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, _| {
                b.iter(|| {
                    let mut sum = 0u64;
                    for &u in &sources {
                        graph.for_each_successor(u, &mut |v| sum = sum.wrapping_add(v));
                    }
                    sum
                });
            },
        );
        if scheme == SchemeKind::CuckooGraph {
            group.bench_with_input(
                BenchmarkId::from_parameter("Ours (Vec path)"),
                &scheme,
                |b, _| {
                    b.iter(|| {
                        let mut sum = 0u64;
                        for &u in &sources {
                            for v in graph.successors(u) {
                                sum = sum.wrapping_add(v);
                            }
                        }
                        sum
                    });
                },
            );
        }
    }
    // The pre-SWAR scalar scan as a live baseline series, so the tag-word
    // iteration win stays visible in `cargo bench` output.
    use graph_api::DynamicGraph;
    let mut ours = cuckoograph::CuckooGraph::new();
    ours.insert_edges(&edges);
    let mut sources = Vec::new();
    ours.for_each_node(&mut |u| sources.push(u));
    group.bench_function(BenchmarkId::from_parameter("Ours (scalar scan)"), |b| {
        b.iter(|| {
            let mut sum = 0u64;
            for &u in &sources {
                ours.for_each_successor_scalar(u, &mut |v| sum = sum.wrapping_add(v));
            }
            sum
        });
    });
    // The PR-8 pair: the contiguous-segment scan (the default, labelled
    // explicitly) against the chain table walk (`with_scan_segments(false)`,
    // the pre-change scan shape) on the same loaded graph.
    let configured = [
        (
            "Ours (segment)",
            cuckoograph::CuckooGraphConfig::default().with_scan_segments(true),
        ),
        (
            "Ours (table-walk)",
            cuckoograph::CuckooGraphConfig::default().with_scan_segments(false),
        ),
    ];
    for (label, config) in configured {
        let mut graph = cuckoograph::CuckooGraph::with_config(config);
        graph.insert_edges(&edges);
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let mut sum = 0u64;
                for &u in &sources {
                    graph.for_each_successor(u, &mut |v| sum = sum.wrapping_add(v));
                }
                sum
            });
        });
    }
    group.finish();
}

/// Batched `insert_edges` vs the per-edge loop on a source-sorted batch.
fn bench_batched_insert(c: &mut Criterion) {
    let mut edges = generate(DatasetKind::Caida, SCALE, SEED).distinct_edges();
    edges.sort_unstable();
    let mut group = c.benchmark_group("insert_batched_CAIDA");
    group.throughput(criterion::Throughput::Elements(edges.len() as u64));
    for scheme in schemes() {
        group.bench_with_input(
            BenchmarkId::new("batch", scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter_batched(
                    || scheme.build(),
                    |mut graph| {
                        graph.insert_edges(&edges);
                        graph
                    },
                    BatchSize::SmallInput,
                );
            },
        );
        group.bench_with_input(
            BenchmarkId::new("loop", scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter_batched(
                    || scheme.build(),
                    |mut graph| {
                        for &(u, v) in &edges {
                            graph.insert_edge(u, v);
                        }
                        graph
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

/// Expand/contract-heavy churn (PR 5): interleaved bulk insert/delete waves
/// drive every hot node's S-CHT chain up through its transformation
/// thresholds and back down to inline slots, so resize cost dominates. The
/// scratch-backed engine is measured against the same engine with the
/// persistent rebuild buffers disabled (fresh allocations per resize event —
/// the pre-change cost shape) and against the baseline schemes.
fn bench_resize_churn(c: &mut Criterion) {
    const WAVES: usize = 2;
    let mut edges = generate(DatasetKind::Caida, SCALE, SEED).distinct_edges();
    edges.sort_unstable();
    let mut group = c.benchmark_group("resize_churn_CAIDA");
    group.throughput(criterion::Throughput::Elements(
        (2 * WAVES * edges.len()) as u64,
    ));
    for scheme in schemes() {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter_batched(
                    || scheme.build(),
                    |mut graph| {
                        for _ in 0..WAVES {
                            graph.insert_edges(&edges);
                            graph.remove_edges(&edges);
                        }
                        graph
                    },
                    BatchSize::SmallInput,
                );
            },
        );
    }
    // The oracle-configured engine variants: the alloc-per-event resize
    // reference (PR-5 scratch disabled), the pool-off reference (PR-6 table
    // pool disabled), and the fully recycled default ("Ours (pooled)" — the
    // same configuration as the scheme row, labelled so the pooled-vs-oracle
    // comparison reads directly off the criterion output).
    let configured = [
        (
            "Ours (alloc-per-event resize)",
            cuckoograph::CuckooGraphConfig::default().with_resize_scratch(false),
        ),
        (
            "Ours (pool-off)",
            cuckoograph::CuckooGraphConfig::default().with_table_pool(false),
        ),
        (
            "Ours (pooled)",
            cuckoograph::CuckooGraphConfig::default().with_table_pool(true),
        ),
    ];
    for (label, config) in configured {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            use graph_api::DynamicGraph;
            b.iter_batched(
                || cuckoograph::CuckooGraph::with_config(config.clone()),
                |mut graph| {
                    for _ in 0..WAVES {
                        graph.insert_edges(&edges);
                        graph.remove_edges(&edges);
                    }
                    graph
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

/// Figure 9 companion: not a timing benchmark but a quick per-scheme memory
/// report printed once so `cargo bench` output carries the space comparison.
fn bench_memory_report(c: &mut Criterion) {
    let edges = generate(DatasetKind::Caida, SCALE, SEED).distinct_edges();
    let mut group = c.benchmark_group("fig9_memory_per_edge_bytes");
    for scheme in schemes() {
        let mut graph = scheme.build();
        for &(u, v) in &edges {
            graph.insert_edge(u, v);
        }
        let per_edge = graph.memory_bytes() as f64 / edges.len() as f64;
        println!(
            "fig9 memory: {:12} {:8.1} bytes/edge",
            scheme.label(),
            per_edge
        );
        // Keep Criterion happy with a trivial measured closure.
        group.bench_function(BenchmarkId::from_parameter(scheme.label()), |b| {
            b.iter(|| graph.memory_bytes())
        });
    }
    group.finish();
}

criterion_group! {
    name = operations;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_insert, bench_query, bench_point_query, bench_delete,
        bench_successor_scan, bench_batched_insert, bench_resize_churn,
        bench_memory_report
}
criterion_main!(operations);
