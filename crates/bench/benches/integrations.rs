//! Criterion micro-benchmarks for the database integrations:
//!
//! * Figure 17 — CuckooGraph behind the Redis-like command path, compared
//!   with the bare data structure, showing that command dispatch dominates;
//! * Figure 18 — the Neo4j-like property graph answering edge queries by
//!   adjacency-chain scanning vs through the CuckooGraph index.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use cuckoograph::WeightedCuckooGraph;
use graph_api::WeightedDynamicGraph;
use graph_datasets::{generate, DatasetKind};
use graphdb::PropertyGraph;
use kvstore::{CuckooGraphModule, Server};

const SCALE: f64 = 0.0003;
const SEED: u64 = 0x1CDE_2025;

fn bench_kvstore_paths(c: &mut Criterion) {
    let raw = generate(DatasetKind::Caida, SCALE, SEED).raw_edges;

    let mut group = c.benchmark_group("fig17_insert_path");
    group.throughput(criterion::Throughput::Elements(raw.len() as u64));
    group.bench_function(BenchmarkId::from_parameter("bare_cuckoograph"), |b| {
        b.iter_batched(
            WeightedCuckooGraph::new,
            |mut g| {
                for &(u, v) in &raw {
                    g.insert_weighted(u, v, 1);
                }
                g
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function(BenchmarkId::from_parameter("through_command_path"), |b| {
        b.iter_batched(
            || {
                let mut server = Server::new();
                server.load_module(Box::new(CuckooGraphModule::new()));
                server
            },
            |mut server| {
                for &(u, v) in &raw {
                    let cmd = vec![
                        "graph.insert".to_string(),
                        "g".to_string(),
                        u.to_string(),
                        v.to_string(),
                    ];
                    server.execute(&cmd);
                }
                server
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_graphdb_query_paths(c: &mut Criterion) {
    let raw = generate(DatasetKind::Caida, SCALE, SEED).raw_edges;
    let dedup: Vec<(u64, u64)> = {
        let mut seen = std::collections::HashSet::new();
        raw.iter().copied().filter(|e| seen.insert(*e)).collect()
    };

    let mut scan_db = PropertyGraph::new();
    let mut indexed_db = PropertyGraph::with_cuckoo_index();
    for &(u, v) in &raw {
        scan_db.create_relationship(u, v, "FLOW");
        indexed_db.create_relationship(u, v, "FLOW");
    }

    let mut group = c.benchmark_group("fig18_edge_query");
    group.throughput(criterion::Throughput::Elements(dedup.len() as u64));
    group.bench_function(BenchmarkId::from_parameter("neo4j_scan"), |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &(u, v) in &dedup {
                let (matches, _) = scan_db.relationships_between_scan(u, v);
                found += usize::from(!matches.is_empty());
            }
            found
        });
    });
    group.bench_function(BenchmarkId::from_parameter("cuckoograph_index"), |b| {
        b.iter(|| {
            let mut found = 0usize;
            for &(u, v) in &dedup {
                let (matches, _) = indexed_db.relationships_between(u, v);
                found += usize::from(!matches.is_empty());
            }
            found
        });
    });
    group.finish();
}

criterion_group! {
    name = integrations;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_kvstore_paths, bench_graphdb_query_paths
}
criterion_main!(integrations);
