//! Criterion micro-benchmarks for the graph analytics tasks (Figures 10–16):
//! each task runs over every scheme on a NotreDame-like subgraph, exercising
//! the successor-query and edge-query paths the paper's analysis attributes
//! the differences to.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_analytics as analytics;
use graph_api::DynamicGraph;
use graph_bench::SchemeKind;
use graph_datasets::{generate, DatasetKind};

const SCALE: f64 = 0.0005;
const SEED: u64 = 0x1CDE_2025;
const SUBGRAPH_NODES: usize = 32;

fn populated(scheme: SchemeKind, edges: &[(u64, u64)]) -> Box<dyn DynamicGraph> {
    let mut graph = scheme.build();
    for &(u, v) in edges {
        graph.insert_edge(u, v);
    }
    graph
}

fn bench_task(
    c: &mut Criterion,
    group_name: &str,
    run: impl Fn(&dyn DynamicGraph, &[u64]) -> usize,
) {
    let edges = generate(DatasetKind::NotreDame, SCALE, SEED).distinct_edges();
    let mut group = c.benchmark_group(group_name);
    for scheme in SchemeKind::paper_lineup() {
        let graph = populated(scheme, &edges);
        let nodes = analytics::top_degree_nodes(graph.as_ref(), SUBGRAPH_NODES);
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, _| {
                b.iter(|| run(graph.as_ref(), &nodes));
            },
        );
    }
    group.finish();
}

fn bench_bfs(c: &mut Criterion) {
    bench_task(c, "fig10_bfs", |g, nodes| {
        nodes
            .iter()
            .take(8)
            .map(|&n| analytics::bfs(g, n).len())
            .sum()
    });
}

fn bench_sssp(c: &mut Criterion) {
    bench_task(c, "fig11_sssp", |g, nodes| {
        nodes
            .iter()
            .take(8)
            .map(|&n| analytics::dijkstra(g, n).len())
            .sum()
    });
}

fn bench_triangle(c: &mut Criterion) {
    bench_task(c, "fig12_triangle_counting", |g, nodes| {
        nodes
            .iter()
            .take(8)
            .map(|&n| analytics::triangles_containing(g, n))
            .sum()
    });
}

fn bench_cc(c: &mut Criterion) {
    bench_task(c, "fig13_connected_components", |g, nodes| {
        analytics::connected_components(g, nodes).count
    });
}

fn bench_pagerank(c: &mut Criterion) {
    bench_task(c, "fig14_pagerank", |g, nodes| {
        analytics::pagerank(g, nodes, &analytics::PageRankConfig::default()).len()
    });
}

fn bench_betweenness(c: &mut Criterion) {
    bench_task(c, "fig15_betweenness", |g, nodes| {
        analytics::betweenness_centrality(g, nodes).len()
    });
}

fn bench_lcc(c: &mut Criterion) {
    bench_task(c, "fig16_lcc", |g, nodes| {
        analytics::local_clustering_coefficients(g, nodes).len()
    });
}

criterion_group! {
    name = analytics_benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_bfs, bench_sssp, bench_triangle, bench_cc, bench_pagerank,
              bench_betweenness, bench_lcc
}
criterion_main!(analytics_benches);
