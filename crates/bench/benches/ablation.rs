//! Criterion micro-benchmark for the DENYLIST ablation (Figure 5):
//! CuckooGraph with the denylists enabled vs the expand-on-every-failure
//! fallback, on a CAIDA-like workload.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use cuckoograph::{CuckooGraph, CuckooGraphConfig};
use graph_api::DynamicGraph;
use graph_datasets::{generate, DatasetKind};

const SCALE: f64 = 0.0005;
const SEED: u64 = 0x1CDE_2025;

fn bench_denylist_ablation(c: &mut Criterion) {
    let edges = generate(DatasetKind::Caida, SCALE, SEED).distinct_edges();

    let mut group = c.benchmark_group("fig5_denylist_ablation_insert");
    for (label, use_dl) in [("with_denylist", true), ("denylist_free", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &use_dl, |b, &use_dl| {
            let config = CuckooGraphConfig::default().with_denylist(use_dl);
            b.iter_batched(
                || config.clone(),
                |config| {
                    let mut g = CuckooGraph::with_config(config);
                    for &(u, v) in &edges {
                        g.insert_edge(u, v);
                    }
                    g
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig5_denylist_ablation_query");
    for (label, use_dl) in [("with_denylist", true), ("denylist_free", false)] {
        let mut graph =
            CuckooGraph::with_config(CuckooGraphConfig::default().with_denylist(use_dl));
        for &(u, v) in &edges {
            graph.insert_edge(u, v);
        }
        group.bench_with_input(BenchmarkId::from_parameter(label), &use_dl, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(u, v) in &edges {
                    if graph.has_edge(u, v) {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = ablation;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_denylist_ablation
}
criterion_main!(ablation);
