//! PageRank (Figure 14).
//!
//! The paper constructs the transition structure through successor queries and
//! iterates 100 times over the selected subgraph. We implement the standard
//! power iteration with damping and dangling-node redistribution.

use graph_api::{DynamicGraph, NodeId};
use std::collections::{HashMap, HashSet};

/// PageRank parameters. The defaults match the paper's setup (100 iterations)
/// and the conventional damping factor 0.85.
#[derive(Debug, Clone, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor `d`.
    pub damping: f64,
    /// Number of power iterations (the paper uses 100).
    pub iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            iterations: 100,
        }
    }
}

/// PageRank of every node in the subgraph induced by `nodes`. Scores sum to 1.
pub fn pagerank<G: DynamicGraph + ?Sized>(
    graph: &G,
    nodes: &[NodeId],
    config: &PageRankConfig,
) -> HashMap<NodeId, f64> {
    let selected: Vec<NodeId> = {
        let mut v = nodes.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    let n = selected.len();
    if n == 0 {
        return HashMap::new();
    }
    let index: HashMap<NodeId, usize> = selected.iter().enumerate().map(|(i, &u)| (u, i)).collect();
    let in_set: HashSet<NodeId> = selected.iter().copied().collect();

    // Build the out-neighbour lists (successor queries — the hot path the
    // paper measures) restricted to the subgraph.
    let adjacency: Vec<Vec<usize>> = selected
        .iter()
        .map(|&u| {
            let mut out = Vec::new();
            graph.for_each_successor(u, &mut |v| {
                if in_set.contains(&v) {
                    out.push(index[&v]);
                }
            });
            out
        })
        .collect();

    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..config.iterations {
        let base = (1.0 - config.damping) / n as f64;
        next.iter_mut().for_each(|x| *x = base);
        let mut dangling = 0.0;
        for (i, outs) in adjacency.iter().enumerate() {
            if outs.is_empty() {
                dangling += rank[i];
                continue;
            }
            let share = config.damping * rank[i] / outs.len() as f64;
            for &j in outs {
                next[j] += share;
            }
        }
        // Dangling mass is spread uniformly, keeping the distribution a
        // probability vector.
        let dangling_share = config.damping * dangling / n as f64;
        for x in next.iter_mut() {
            *x += dangling_share;
        }
        std::mem::swap(&mut rank, &mut next);
    }

    selected.into_iter().zip(rank).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_baselines::AdjacencyListGraph;

    #[test]
    fn ranks_sum_to_one_and_favour_popular_nodes() {
        let mut g = AdjacencyListGraph::new();
        // Everyone points at node 1; node 1 points at node 2.
        for u in 3..10u64 {
            g.insert_edge(u, 1);
        }
        g.insert_edge(1, 2);
        let nodes: Vec<u64> = (1..10).collect();
        let pr = pagerank(&g, &nodes, &PageRankConfig::default());
        let sum: f64 = pr.values().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum={sum}");
        assert!(pr[&1] > pr[&3]);
        assert!(pr[&2] > pr[&3], "node 2 inherits node 1's rank");
    }

    #[test]
    fn symmetric_cycle_gives_uniform_ranks() {
        let mut g = AdjacencyListGraph::new();
        for i in 0..5u64 {
            g.insert_edge(i, (i + 1) % 5);
        }
        let nodes: Vec<u64> = (0..5).collect();
        let pr = pagerank(&g, &nodes, &PageRankConfig::default());
        for &v in pr.values() {
            assert!((v - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2); // node 2 has no out-edges
        let pr = pagerank(&g, &[1, 2], &PageRankConfig::default());
        assert!((pr.values().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[&2] > pr[&1]);
    }

    #[test]
    fn empty_input_is_empty_output() {
        let g = AdjacencyListGraph::new();
        assert!(pagerank(&g, &[], &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn iterations_zero_returns_uniform_start() {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        let pr = pagerank(
            &g,
            &[1, 2],
            &PageRankConfig {
                damping: 0.85,
                iterations: 0,
            },
        );
        assert!((pr[&1] - 0.5).abs() < 1e-12);
        assert!((pr[&2] - 0.5).abs() < 1e-12);
    }
}
