//! Connected Components via Tarjan's algorithm (Figure 13).
//!
//! The paper runs "the Tarjan algorithm" [55] on subgraphs extracted from the
//! top-degree nodes and returns the components and their number. We implement
//! Tarjan's strongly-connected-components algorithm iteratively (no recursion,
//! so million-node subgraphs cannot overflow the stack) over whichever node
//! set the caller selected.

use graph_api::{DynamicGraph, NodeId};
use std::collections::{HashMap, HashSet};

/// The result of a connected-components run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentSummary {
    /// Component id assigned to every analysed node.
    pub assignment: HashMap<NodeId, usize>,
    /// Number of components found.
    pub count: usize,
    /// Size of each component, indexed by component id.
    pub sizes: Vec<usize>,
}

impl ComponentSummary {
    /// Size of the largest component (0 for an empty analysis).
    pub fn largest(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Tarjan SCC over the subgraph induced by `nodes`. Edges leading outside the
/// selected node set are ignored, matching the paper's subgraph methodology.
pub fn connected_components<G: DynamicGraph + ?Sized>(
    graph: &G,
    nodes: &[NodeId],
) -> ComponentSummary {
    let selected: HashSet<NodeId> = nodes.iter().copied().collect();

    #[derive(Default, Clone)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }

    let mut states: HashMap<NodeId, NodeState> = HashMap::with_capacity(nodes.len());
    let mut stack: Vec<NodeId> = Vec::new();
    let mut assignment: HashMap<NodeId, usize> = HashMap::with_capacity(nodes.len());
    let mut sizes: Vec<usize> = Vec::new();
    let mut next_index = 0usize;

    // Iterative Tarjan. Per-frame neighbour lists live in one shared arena:
    // a frame records its `(start, cursor)` into `arena`, pushes its
    // neighbours through `for_each_successor` on entry, and truncates the
    // arena back on exit — no per-node allocation, the hot successor queries
    // go straight through the scheme's probe path.
    let mut arena: Vec<NodeId> = Vec::new();
    // Frame layout: (node, arena start, cursor).
    let mut frames: Vec<(NodeId, usize, usize)> = Vec::new();
    let push_neighbours = |arena: &mut Vec<NodeId>, v: NodeId| {
        graph.for_each_successor(v, &mut |w| {
            if selected.contains(&w) {
                arena.push(w);
            }
        })
    };

    for &root in nodes {
        if states.get(&root).and_then(|s| s.index).is_some() {
            continue;
        }
        let start = arena.len();
        push_neighbours(&mut arena, root);
        {
            let st = states.entry(root).or_default();
            st.index = Some(next_index);
            st.lowlink = next_index;
            st.on_stack = true;
        }
        next_index += 1;
        stack.push(root);
        frames.push((root, start, start));

        while let Some(frame) = frames.last_mut() {
            let (u, start, cursor) = (frame.0, frame.1, &mut frame.2);
            if *cursor < arena.len() {
                let v = arena[*cursor];
                *cursor += 1;
                let v_state = states.entry(v).or_default();
                match v_state.index {
                    None => {
                        // Recurse into v.
                        v_state.index = Some(next_index);
                        v_state.lowlink = next_index;
                        v_state.on_stack = true;
                        next_index += 1;
                        stack.push(v);
                        let v_start = arena.len();
                        push_neighbours(&mut arena, v);
                        frames.push((v, v_start, v_start));
                    }
                    Some(v_index) if v_state.on_stack => {
                        let u_state = states.get_mut(&u).expect("u was visited");
                        u_state.lowlink = u_state.lowlink.min(v_index);
                    }
                    Some(_) => {}
                }
            } else {
                // All neighbours of u processed: maybe emit a component, then
                // propagate the lowlink to the parent frame.
                let u_state = states.get(&u).expect("u was visited").clone();
                if Some(u_state.lowlink) == u_state.index {
                    let id = sizes.len();
                    let mut size = 0usize;
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        states.get_mut(&w).expect("on stack").on_stack = false;
                        assignment.insert(w, id);
                        size += 1;
                        if w == u {
                            break;
                        }
                    }
                    sizes.push(size);
                }
                arena.truncate(start);
                frames.pop();
                if let Some(parent) = frames.last() {
                    let parent_node = parent.0;
                    let child_low = states[&u].lowlink;
                    let p = states.get_mut(&parent_node).expect("parent visited");
                    p.lowlink = p.lowlink.min(child_low);
                }
            }
        }
    }

    ComponentSummary {
        count: sizes.len(),
        assignment,
        sizes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_baselines::AdjacencyListGraph;

    #[test]
    fn cycle_forms_one_component() {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(2, 3);
        g.insert_edge(3, 1);
        let c = connected_components(&g, &[1, 2, 3]);
        assert_eq!(c.count, 1);
        assert_eq!(c.largest(), 3);
        assert_eq!(c.assignment[&1], c.assignment[&3]);
    }

    #[test]
    fn dag_nodes_are_singleton_components() {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(2, 3);
        let c = connected_components(&g, &[1, 2, 3]);
        assert_eq!(c.count, 3);
        assert_eq!(c.largest(), 1);
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        let mut g = AdjacencyListGraph::new();
        for (u, v) in [(1, 2), (2, 1), (3, 4), (4, 3), (2, 3)] {
            g.insert_edge(u, v);
        }
        let c = connected_components(&g, &[1, 2, 3, 4]);
        assert_eq!(c.count, 2);
        assert_eq!(c.assignment[&1], c.assignment[&2]);
        assert_eq!(c.assignment[&3], c.assignment[&4]);
        assert_ne!(c.assignment[&1], c.assignment[&3]);
    }

    #[test]
    fn edges_outside_the_selection_are_ignored() {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(2, 1);
        g.insert_edge(2, 99); // 99 is not selected
        let c = connected_components(&g, &[1, 2]);
        assert_eq!(c.count, 1);
        assert!(!c.assignment.contains_key(&99));
    }

    #[test]
    fn large_cycle_does_not_overflow_the_stack() {
        let mut g = AdjacencyListGraph::new();
        let n = 50_000u64;
        for i in 0..n {
            g.insert_edge(i, (i + 1) % n);
        }
        let nodes: Vec<u64> = (0..n).collect();
        let c = connected_components(&g, &nodes);
        assert_eq!(c.count, 1);
        assert_eq!(c.largest(), n as usize);
    }

    #[test]
    fn empty_selection_yields_no_components() {
        let g = AdjacencyListGraph::new();
        let c = connected_components(&g, &[]);
        assert_eq!(c.count, 0);
        assert_eq!(c.largest(), 0);
    }
}
