//! Graph analytics tasks from the paper's evaluation (§ V-E), implemented
//! generically over [`graph_api::DynamicGraph`] so each storage scheme is
//! exercised exactly through its own successor-query / edge-query functions —
//! which is what the paper measures.
//!
//! | Module | Task | Figure |
//! |--------|------|--------|
//! | [`bfs`] | Breadth-First Search from top-degree sources | Fig. 10 |
//! | [`sssp`] | Single-Source Shortest Paths (Dijkstra) | Fig. 11 |
//! | [`triangle`] | Triangle Counting around a node | Fig. 12 |
//! | [`cc`] | Connected Components (Tarjan SCC) | Fig. 13 |
//! | [`pagerank`] | PageRank, 100 iterations | Fig. 14 |
//! | [`betweenness`] | Betweenness Centrality (Brandes) | Fig. 15 |
//! | [`lcc`] | Local Clustering Coefficient | Fig. 16 |
//! | [`subgraph`] | top-degree node selection and subgraph extraction | § V-E methodology |
//! | [`parallel`] | per-shard parallel passes over [`graph_api::ShardedGraph`] | — |

pub mod betweenness;
pub mod bfs;
pub mod cc;
pub mod lcc;
pub mod pagerank;
pub mod parallel;
pub mod sssp;
pub mod subgraph;
pub mod triangle;

pub use betweenness::betweenness_centrality;
pub use bfs::{bfs, bfs_from_top_degree};
pub use cc::{connected_components, ComponentSummary};
pub use lcc::local_clustering_coefficients;
pub use pagerank::{pagerank, PageRankConfig};
pub use parallel::{
    par_connected_components, par_edge_count, par_nodes, par_top_degree_nodes, par_total_degrees,
};
pub use sssp::{dijkstra, sssp_from_top_degree};
pub use subgraph::{extract_subgraph, rank_by_degree, top_degree_nodes, total_degrees};
pub use triangle::triangles_containing;

#[cfg(test)]
mod tests {
    use super::*;
    use graph_api::DynamicGraph;

    /// A small deterministic graph reused by the cross-task smoke test:
    /// a 4-clique (0-3) plus a path 3 → 4 → 5.
    fn sample() -> cuckoograph::CuckooGraph {
        let mut g = cuckoograph::CuckooGraph::new();
        for u in 0..4u64 {
            for v in 0..4u64 {
                if u != v {
                    g.insert_edge(u, v);
                }
            }
        }
        g.insert_edge(3, 4);
        g.insert_edge(4, 5);
        g
    }

    #[test]
    fn all_tasks_run_on_the_same_graph() {
        let g = sample();
        let order = bfs(&g, 0);
        assert_eq!(order.len(), 6);

        let dist = dijkstra(&g, 0);
        assert_eq!(dist.get(&5), Some(&3));

        // In the bidirectional 4-clique there are 3·2 = 6 directed 2-hop paths
        // 0 → a → b (a, b ∈ {1,2,3}, a ≠ b) and every closing edge b → 0 exists.
        assert_eq!(triangles_containing(&g, 0), 6);

        // The storage schemes only list source nodes; node 5 is a sink, so the
        // analysed node set is given explicitly (as the paper's driver does
        // when it extracts subgraphs).
        let nodes: Vec<u64> = (0..=5).collect();
        let comps = connected_components(&g, &nodes);
        assert!(comps.count >= 1);

        let pr = pagerank(&g, &nodes, &PageRankConfig::default());
        assert!((pr.values().sum::<f64>() - 1.0).abs() < 1e-6);

        let bc = betweenness_centrality(&g, &nodes);
        assert!(bc[&3] > bc[&1], "node 3 bridges the clique and the tail");

        let lcc = local_clustering_coefficients(&g, &nodes);
        assert!(lcc[&0] > 0.9, "clique members are fully clustered");
        assert_eq!(lcc[&5], 0.0);
    }
}
