//! Triangle Counting (Figure 12).
//!
//! The paper's methodology, reproduced literally: given a node, find all of
//! its 2-hop successors via successor queries, then issue an edge query for
//! every candidate edge `⟨2-hop successor, node⟩`; the number of successful
//! queries is the triangle count for that node. This deliberately stresses
//! both the successor-query and the edge-query paths of each storage scheme.

use graph_api::{DynamicGraph, NodeId};

/// Number of directed triangles `node → a → b → node` that contain `node`.
pub fn triangles_containing<G: DynamicGraph + ?Sized>(graph: &G, node: NodeId) -> usize {
    // Step 1: successor queries to enumerate 2-hop successors (with the
    // 1-hop node they were reached through; the same pair can appear once per
    // distinct path, matching the enumeration the paper describes).
    let mut two_hop = Vec::new();
    graph.for_each_successor(node, &mut |a| {
        if a == node {
            return;
        }
        graph.for_each_successor(a, &mut |b| {
            if b != node && b != a {
                two_hop.push(b);
            }
        });
    });
    // Step 2: edge queries ⟨2-hop successor, node⟩.
    two_hop
        .into_iter()
        .filter(|&b| graph.has_edge(b, node))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_baselines::AdjacencyListGraph;

    fn directed_triangle() -> AdjacencyListGraph {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(2, 3);
        g.insert_edge(3, 1);
        g
    }

    #[test]
    fn counts_a_single_directed_triangle() {
        let g = directed_triangle();
        assert_eq!(triangles_containing(&g, 1), 1);
        assert_eq!(triangles_containing(&g, 2), 1);
        assert_eq!(triangles_containing(&g, 3), 1);
    }

    #[test]
    fn no_triangles_without_the_closing_edge() {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(2, 3);
        assert_eq!(triangles_containing(&g, 1), 0);
    }

    #[test]
    fn bidirectional_clique_counts_every_closing_path() {
        // A 3-clique with edges in both directions: from node 1 there are two
        // directed 2-hop paths returning home (via 2→3 and via 3→2).
        let mut g = AdjacencyListGraph::new();
        for u in 1..=3u64 {
            for v in 1..=3u64 {
                if u != v {
                    g.insert_edge(u, v);
                }
            }
        }
        assert_eq!(triangles_containing(&g, 1), 2);
    }

    #[test]
    fn unknown_node_has_zero_triangles() {
        let g = directed_triangle();
        assert_eq!(triangles_containing(&g, 99), 0);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = directed_triangle();
        g.insert_edge(1, 1);
        assert_eq!(triangles_containing(&g, 1), 1);
    }
}
