//! Single-Source Shortest Paths with Dijkstra's algorithm (Figure 11).
//!
//! The paper runs Dijkstra from the 10 highest-total-degree nodes of the
//! original graph over a subgraph of top-degree nodes. The datasets are
//! unweighted, so every edge has length 1 (Dijkstra still runs with a binary
//! heap exactly as cited [54]; it simply degenerates to a BFS frontier).

use crate::subgraph::top_degree_nodes;
use graph_api::{DynamicGraph, NodeId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Dijkstra from `source` with unit edge weights. Returns the distance of
/// every reachable node (the source has distance 0).
pub fn dijkstra<G: DynamicGraph + ?Sized>(graph: &G, source: NodeId) -> HashMap<NodeId, u64> {
    let mut dist: HashMap<NodeId, u64> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    dist.insert(source, 0);
    heap.push(Reverse((0, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if dist.get(&u).copied().unwrap_or(u64::MAX) < d {
            continue; // stale heap entry
        }
        graph.for_each_successor(u, &mut |v| {
            let candidate = d + 1;
            let best = dist.entry(v).or_insert(u64::MAX);
            if candidate < *best {
                *best = candidate;
                heap.push(Reverse((candidate, v)));
            }
        });
    }
    dist
}

/// The Figure 11 workload: Dijkstra from each of the `sources`
/// highest-total-degree nodes; returns the number of reachable nodes per run.
pub fn sssp_from_top_degree<G: DynamicGraph + ?Sized>(graph: &G, sources: usize) -> Vec<usize> {
    top_degree_nodes(graph, sources)
        .into_iter()
        .map(|s| dijkstra(graph, s).len())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_baselines::AdjacencyListGraph;

    fn diamond() -> AdjacencyListGraph {
        // 0 → 1 → 3, 0 → 2 → 3 → 4; all unit weights.
        let mut g = AdjacencyListGraph::new();
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)] {
            g.insert_edge(u, v);
        }
        g
    }

    #[test]
    fn distances_follow_shortest_paths() {
        let d = dijkstra(&diamond(), 0);
        assert_eq!(d[&0], 0);
        assert_eq!(d[&1], 1);
        assert_eq!(d[&2], 1);
        assert_eq!(d[&3], 2);
        assert_eq!(d[&4], 3);
    }

    #[test]
    fn unreachable_nodes_are_absent() {
        let mut g = diamond();
        g.insert_edge(10, 11);
        let d = dijkstra(&g, 0);
        assert!(!d.contains_key(&10));
        assert!(!d.contains_key(&11));
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn cycles_do_not_loop_forever() {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(2, 1);
        g.insert_edge(2, 3);
        let d = dijkstra(&g, 1);
        assert_eq!(d[&3], 2);
    }

    #[test]
    fn top_degree_driver_runs_requested_sources() {
        let g = diamond();
        let counts = sssp_from_top_degree(&g, 3);
        assert_eq!(counts.len(), 3);
        assert!(counts.iter().all(|&c| c >= 1));
    }
}
