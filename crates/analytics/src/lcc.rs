//! Local Clustering Coefficient (Figure 16).
//!
//! Following the paper's methodology (and the LDBC Graphalytics definition it
//! cites [57]): pre-compute the neighbourhood of every node (treating the
//! graph as undirected for the purpose of neighbourhood membership), then for
//! each node count how many ordered pairs of its neighbours are connected by a
//! stored directed edge, divided by `deg · (deg − 1)`.

use graph_api::{DynamicGraph, NodeId};
use std::collections::{HashMap, HashSet};

/// Local clustering coefficient of every node in the subgraph induced by
/// `nodes`.
pub fn local_clustering_coefficients<G: DynamicGraph + ?Sized>(
    graph: &G,
    nodes: &[NodeId],
) -> HashMap<NodeId, f64> {
    let selected: Vec<NodeId> = {
        let mut v = nodes.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    let in_set: HashSet<NodeId> = selected.iter().copied().collect();

    // Pre-compute undirected neighbourhoods restricted to the subgraph, as the
    // paper does ("we pre-compute all neighbors of each node").
    let mut neighbourhood: HashMap<NodeId, HashSet<NodeId>> =
        selected.iter().map(|&u| (u, HashSet::new())).collect();
    for &u in &selected {
        graph.for_each_successor(u, &mut |v| {
            if v != u && in_set.contains(&v) {
                neighbourhood.get_mut(&u).expect("u selected").insert(v);
                neighbourhood.get_mut(&v).expect("v selected").insert(u);
            }
        });
    }

    let mut lcc = HashMap::with_capacity(selected.len());
    for &u in &selected {
        let neighbours: Vec<NodeId> = neighbourhood[&u].iter().copied().collect();
        let k = neighbours.len();
        if k < 2 {
            lcc.insert(u, 0.0);
            continue;
        }
        let mut links = 0usize;
        for &a in &neighbours {
            for &b in &neighbours {
                if a != b && graph.has_edge(a, b) {
                    links += 1;
                }
            }
        }
        lcc.insert(u, links as f64 / (k * (k - 1)) as f64);
    }
    lcc
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_baselines::AdjacencyListGraph;

    #[test]
    fn bidirectional_clique_has_coefficient_one() {
        let mut g = AdjacencyListGraph::new();
        for u in 1..=4u64 {
            for v in 1..=4u64 {
                if u != v {
                    g.insert_edge(u, v);
                }
            }
        }
        let lcc = local_clustering_coefficients(&g, &[1, 2, 3, 4]);
        for u in 1..=4u64 {
            assert!((lcc[&u] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn star_centre_has_zero_coefficient() {
        let mut g = AdjacencyListGraph::new();
        for v in 2..=5u64 {
            g.insert_edge(1, v);
        }
        let lcc = local_clustering_coefficients(&g, &[1, 2, 3, 4, 5]);
        assert_eq!(lcc[&1], 0.0, "no edges among the leaves");
        assert_eq!(lcc[&2], 0.0, "leaves have a single neighbour");
    }

    #[test]
    fn half_connected_neighbourhood() {
        // Node 1's neighbours are {2, 3}; only the directed edge 2→3 exists,
        // so 1 of 2 ordered pairs is connected.
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(1, 3);
        g.insert_edge(2, 3);
        let lcc = local_clustering_coefficients(&g, &[1, 2, 3]);
        assert!((lcc[&1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn neighbourhood_is_restricted_to_the_subgraph() {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(1, 99);
        g.insert_edge(2, 99);
        // With 99 excluded, node 1 has a single neighbour → coefficient 0.
        let lcc = local_clustering_coefficients(&g, &[1, 2]);
        assert_eq!(lcc[&1], 0.0);
        assert!(!lcc.contains_key(&99));
    }

    #[test]
    fn in_neighbours_count_for_the_neighbourhood() {
        // 2 → 1 and 3 → 1; neighbourhood of 1 is {2, 3} even though 1 has no
        // out-edges; the closing edge 2 → 3 yields coefficient 0.5.
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(2, 1);
        g.insert_edge(3, 1);
        g.insert_edge(2, 3);
        let lcc = local_clustering_coefficients(&g, &[1, 2, 3]);
        assert!((lcc[&1] - 0.5).abs() < 1e-12);
    }
}
