//! Top-degree node selection and subgraph extraction — the common
//! preprocessing step of the paper's analytics methodology (§ V-E): "select a
//! specific number of nodes with the largest total degree (the sum of
//! out-degree and in-degree) to extract subgraphs".

use graph_api::{DynamicGraph, NodeId};
use std::collections::{HashMap, HashSet};

/// Total degree (out + in) of every node reachable as a source or destination.
///
/// Storage schemes only index out-neighbours, so in-degrees are recovered by a
/// single pass over all edges — the same thing the paper's driver has to do.
pub fn total_degrees<G: DynamicGraph + ?Sized>(graph: &G) -> HashMap<NodeId, usize> {
    let mut degree: HashMap<NodeId, usize> = HashMap::new();
    graph.for_each_node(&mut |u| {
        let mut out = 0usize;
        graph.for_each_successor(u, &mut |v| {
            out += 1;
            *degree.entry(v).or_insert(0) += 1;
        });
        *degree.entry(u).or_insert(0) += out;
    });
    degree
}

/// The `k` highest-degree nodes of a precomputed total-degree map, in
/// descending degree order with ties broken towards the smaller node id so
/// results are deterministic. Shared by the serial and per-shard-merged
/// degree passes.
pub fn rank_by_degree(degrees: HashMap<NodeId, usize>, k: usize) -> Vec<NodeId> {
    let mut nodes: Vec<(NodeId, usize)> = degrees.into_iter().collect();
    nodes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    nodes.into_iter().take(k).map(|(n, _)| n).collect()
}

/// The `k` nodes with the largest total degree, in descending degree order.
/// Ties break towards the smaller node id so results are deterministic.
pub fn top_degree_nodes<G: DynamicGraph + ?Sized>(graph: &G, k: usize) -> Vec<NodeId> {
    rank_by_degree(total_degrees(graph), k)
}

/// Extracts the subgraph induced by `nodes` as an edge list: every stored edge
/// whose endpoints are both selected.
pub fn extract_subgraph<G: DynamicGraph + ?Sized>(
    graph: &G,
    nodes: &[NodeId],
) -> Vec<(NodeId, NodeId)> {
    let selected: HashSet<NodeId> = nodes.iter().copied().collect();
    let mut edges = Vec::new();
    for &u in nodes {
        graph.for_each_successor(u, &mut |v| {
            if selected.contains(&v) {
                edges.push((u, v));
            }
        });
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_baselines::AdjacencyListGraph;

    fn star_plus_path() -> AdjacencyListGraph {
        // Node 1 is a hub with 10 out-edges; node 2 receives 3 in-edges.
        let mut g = AdjacencyListGraph::new();
        for v in 10..20u64 {
            g.insert_edge(1, v);
        }
        g.insert_edge(10, 2);
        g.insert_edge(11, 2);
        g.insert_edge(12, 2);
        g
    }

    #[test]
    fn total_degree_counts_both_directions() {
        let g = star_plus_path();
        let d = total_degrees(&g);
        assert_eq!(d[&1], 10);
        // 10 has in-degree 1 (from the hub) and out-degree 1 (to 2).
        assert_eq!(d[&10], 2);
        assert_eq!(d[&2], 3);
        assert_eq!(d[&19], 1);
    }

    #[test]
    fn top_degree_selects_hubs_first() {
        let g = star_plus_path();
        let top = top_degree_nodes(&g, 2);
        assert_eq!(top[0], 1);
        assert_eq!(top[1], 2);
        // Requesting more nodes than exist returns everything.
        assert_eq!(top_degree_nodes(&g, 100).len(), total_degrees(&g).len());
    }

    #[test]
    fn subgraph_keeps_only_internal_edges() {
        let g = star_plus_path();
        let edges = extract_subgraph(&g, &[1, 10, 11, 2]);
        let set: std::collections::BTreeSet<_> = edges.into_iter().collect();
        assert!(set.contains(&(1, 10)));
        assert!(set.contains(&(10, 2)));
        assert!(set.contains(&(11, 2)));
        assert!(
            !set.iter().any(|&(_, v)| v == 19),
            "edge to unselected node leaked"
        );
    }

    #[test]
    fn empty_graph_yields_empty_results() {
        let g = AdjacencyListGraph::new();
        assert!(total_degrees(&g).is_empty());
        assert!(top_degree_nodes(&g, 5).is_empty());
        assert!(extract_subgraph(&g, &[1, 2]).is_empty());
    }
}
