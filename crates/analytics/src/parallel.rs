//! Parallel analytics passes over sharded graphs.
//!
//! A [`ShardedGraph`] partitions its source-node space across shards whose
//! read views are `Sync`, so whole-graph passes split into independent
//! per-shard passes that run on [`std::thread::scope`] threads and merge at
//! the end. The merge is cheap (hash-map sums, list concatenation) while the
//! per-shard scans carry the traversal work — the same shape as the sharded
//! batched inserts on the mutation side.
//!
//! Every function here is result-equivalent to its serial counterpart in the
//! sibling modules; the property tests in `tests/shard_equivalence.rs` and the
//! unit tests below pin that down.

use crate::cc::{connected_components, ComponentSummary};
use crate::subgraph::{rank_by_degree, total_degrees};
use graph_api::{DynamicGraph, NodeId, ShardedGraph};
use std::collections::HashMap;

/// Runs `f` over every shard view concurrently (one scoped thread per shard)
/// and collects the per-shard results in shard order.
fn map_shards<G, R, F>(graph: &G, f: F) -> Vec<R>
where
    G: ShardedGraph + ?Sized,
    R: Send,
    F: Fn(&(dyn DynamicGraph + Sync)) -> R + Sync,
{
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..graph.shard_count())
            .map(|shard| {
                let f = &f;
                scope.spawn(move || {
                    // The view is scoped to the closure so the graph's read
                    // protocol (reader pins under concurrent ingest) brackets
                    // the pass.
                    let mut out = None;
                    graph.with_shard_view(shard, &mut |view| out = Some(f(view)));
                    out.expect("with_shard_view skipped the pass closure")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard pass panicked"))
            .collect()
    })
}

/// Total degree (out + in) of every node, computed as one degree pass per
/// shard merged at the end. Result-equivalent to
/// [`crate::subgraph::total_degrees`]: each shard owns its source nodes'
/// out-edges outright, and the in-degree contributions that cross shards are
/// summed during the merge.
pub fn par_total_degrees<G: ShardedGraph + ?Sized>(graph: &G) -> HashMap<NodeId, usize> {
    let locals = map_shards(graph, |view| total_degrees(view));
    let mut locals = locals.into_iter();
    let mut merged = locals.next().unwrap_or_default();
    for local in locals {
        for (node, d) in local {
            *merged.entry(node).or_insert(0) += d;
        }
    }
    merged
}

/// The `k` nodes with the largest total degree, from per-shard degree passes.
/// Result-equivalent to [`crate::subgraph::top_degree_nodes`] (same
/// deterministic tie-breaking).
pub fn par_top_degree_nodes<G: ShardedGraph + ?Sized>(graph: &G, k: usize) -> Vec<NodeId> {
    rank_by_degree(par_total_degrees(graph), k)
}

/// Distinct edge count summed from parallel per-shard passes.
pub fn par_edge_count<G: ShardedGraph + ?Sized>(graph: &G) -> usize {
    map_shards(graph, |view| view.edge_count())
        .into_iter()
        .sum()
}

/// Every node of the graph, merged from parallel per-shard visitor passes.
/// Shards partition the source space, so each node appears exactly once;
/// order is unspecified.
pub fn par_nodes<G: ShardedGraph + ?Sized>(graph: &G) -> Vec<NodeId> {
    let chunks = map_shards(graph, |view| view.nodes());
    let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
    for chunk in chunks {
        out.extend(chunk);
    }
    out
}

/// Connected components over the whole sharded graph: the node set is
/// gathered with parallel per-shard passes, then Tarjan runs over the merged
/// view (the traversal itself crosses shards, so it stays serial). The node
/// list is sorted before the run so the component numbering is deterministic.
pub fn par_connected_components<G: ShardedGraph + ?Sized>(graph: &G) -> ComponentSummary {
    let mut nodes = par_nodes(graph);
    nodes.sort_unstable();
    connected_components(graph, &nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subgraph::{top_degree_nodes, total_degrees};
    use cuckoograph::ShardedCuckooGraph;
    use graph_api::DynamicGraph;
    use std::collections::BTreeSet;

    fn populated(shards: usize) -> ShardedCuckooGraph {
        let mut g = ShardedCuckooGraph::new(shards);
        let edges: Vec<(u64, u64)> = (0..4_000u64)
            .map(|i| (i % 61, (i * 7) % 500))
            .chain((0..200u64).map(|i| (i + 100, i + 101)))
            .collect();
        g.insert_edges(&edges);
        g
    }

    #[test]
    fn par_total_degrees_matches_serial() {
        for shards in [1usize, 3, 8] {
            let g = populated(shards);
            assert_eq!(par_total_degrees(&g), total_degrees(&g), "{shards} shards");
        }
    }

    #[test]
    fn par_top_degree_nodes_matches_serial_order() {
        let g = populated(4);
        assert_eq!(par_top_degree_nodes(&g, 25), top_degree_nodes(&g, 25));
        assert_eq!(
            par_top_degree_nodes(&g, usize::MAX).len(),
            total_degrees(&g).len()
        );
    }

    #[test]
    fn par_counts_and_nodes_match_the_trait_surface() {
        let g = populated(5);
        assert_eq!(par_edge_count(&g), g.edge_count());
        let merged: BTreeSet<u64> = par_nodes(&g).into_iter().collect();
        let serial: BTreeSet<u64> = g.nodes().into_iter().collect();
        assert_eq!(merged.len(), g.node_count(), "a node appeared twice");
        assert_eq!(merged, serial);
    }

    #[test]
    fn par_connected_components_matches_serial_run() {
        let g = populated(4);
        let mut nodes = g.nodes();
        nodes.sort_unstable();
        let serial = connected_components(&g, &nodes);
        let parallel = par_connected_components(&g);
        assert_eq!(parallel.count, serial.count);
        assert_eq!(parallel.largest(), serial.largest());
        assert_eq!(parallel.assignment, serial.assignment);
    }
}
