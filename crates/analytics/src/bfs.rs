//! Breadth-First Search (Figure 10).
//!
//! The paper's methodology: insert the whole dataset, pick a number of nodes
//! with the largest total degree, BFS from each of them, and report the nodes
//! (and their count) in traversal order.

use crate::subgraph::top_degree_nodes;
use graph_api::{DynamicGraph, NodeId};
use std::collections::{HashSet, VecDeque};

/// BFS from `source`; returns the visited nodes in traversal order
/// (including the source).
pub fn bfs<G: DynamicGraph + ?Sized>(graph: &G, source: NodeId) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut visited = HashSet::new();
    let mut queue = VecDeque::new();
    visited.insert(source);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        graph.for_each_successor(u, &mut |v| {
            if visited.insert(v) {
                queue.push_back(v);
            }
        });
    }
    order
}

/// Runs BFS from each of the `sources` top-total-degree nodes (the paper's
/// Figure 10 workload) and returns, per source, the number of nodes reached.
pub fn bfs_from_top_degree<G: DynamicGraph + ?Sized>(graph: &G, sources: usize) -> Vec<usize> {
    top_degree_nodes(graph, sources)
        .into_iter()
        .map(|s| bfs(graph, s).len())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_baselines::AdjacencyListGraph;

    fn chain_and_branch() -> AdjacencyListGraph {
        // 0 → 1 → 2 → 3 and 1 → 4, plus an unreachable island 10 → 11.
        let mut g = AdjacencyListGraph::new();
        for (u, v) in [(0, 1), (1, 2), (2, 3), (1, 4), (10, 11)] {
            g.insert_edge(u, v);
        }
        g
    }

    #[test]
    fn visits_reachable_nodes_in_level_order() {
        let g = chain_and_branch();
        let order = bfs(&g, 0);
        assert_eq!(order[0], 0);
        assert_eq!(order[1], 1);
        assert_eq!(order.len(), 5);
        // Level 2 contains {2, 4} in either order, level 3 is {3}.
        assert!(order[2..4].contains(&2) && order[2..4].contains(&4));
        assert_eq!(order[4], 3);
        assert!(!order.contains(&10));
    }

    #[test]
    fn unreachable_source_visits_only_itself() {
        let g = chain_and_branch();
        assert_eq!(bfs(&g, 3), vec![3]);
        assert_eq!(bfs(&g, 42), vec![42]);
    }

    #[test]
    fn cycles_terminate() {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(2, 3);
        g.insert_edge(3, 1);
        let order = bfs(&g, 1);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn top_degree_driver_reports_reach_counts() {
        let g = chain_and_branch();
        let reached = bfs_from_top_degree(&g, 2);
        assert_eq!(reached.len(), 2);
        // Node 1 has the largest total degree (1 in + 2 out) and reaches 4 nodes.
        assert_eq!(reached[0], 4);
    }
}
