//! Betweenness Centrality via Brandes' algorithm (Figure 15).
//!
//! The paper runs the Brandes algorithm [56] on the subgraph extracted from
//! the top-degree nodes. Brandes computes, for every source, a BFS shortest-
//! path DAG and accumulates pair dependencies on the way back — `O(|V|·|E|)`
//! for unweighted graphs.

use graph_api::{DynamicGraph, NodeId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Betweenness centrality of every node in the subgraph induced by `nodes`
/// (directed variant, no normalisation — the relative ordering is what the
/// evaluation compares).
pub fn betweenness_centrality<G: DynamicGraph + ?Sized>(
    graph: &G,
    nodes: &[NodeId],
) -> HashMap<NodeId, f64> {
    let selected: Vec<NodeId> = {
        let mut v = nodes.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    };
    let in_set: HashSet<NodeId> = selected.iter().copied().collect();
    let mut centrality: HashMap<NodeId, f64> = selected.iter().map(|&u| (u, 0.0)).collect();

    for &source in &selected {
        // Brandes' single-source phase (unweighted → BFS).
        let mut stack: Vec<NodeId> = Vec::new();
        let mut predecessors: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        let mut sigma: HashMap<NodeId, f64> = HashMap::new();
        let mut distance: HashMap<NodeId, i64> = HashMap::new();
        sigma.insert(source, 1.0);
        distance.insert(source, 0);
        let mut queue = VecDeque::new();
        queue.push_back(source);

        while let Some(u) = queue.pop_front() {
            stack.push(u);
            let du = distance[&u];
            let sigma_u = sigma[&u];
            graph.for_each_successor(u, &mut |v| {
                if !in_set.contains(&v) {
                    return;
                }
                let dv = distance.entry(v).or_insert_with(|| {
                    queue.push_back(v);
                    du + 1
                });
                if *dv == du + 1 {
                    *sigma.entry(v).or_insert(0.0) += sigma_u;
                    predecessors.entry(v).or_default().push(u);
                }
            });
        }

        // Dependency accumulation in reverse BFS order.
        let mut delta: HashMap<NodeId, f64> = HashMap::new();
        while let Some(w) = stack.pop() {
            let coefficient = (1.0 + delta.get(&w).copied().unwrap_or(0.0)) / sigma[&w];
            if let Some(preds) = predecessors.get(&w) {
                for &p in preds {
                    *delta.entry(p).or_insert(0.0) += sigma[&p] * coefficient;
                }
            }
            if w != source {
                *centrality.get_mut(&w).expect("w is selected") +=
                    delta.get(&w).copied().unwrap_or(0.0);
            }
        }
    }

    centrality
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_baselines::AdjacencyListGraph;

    #[test]
    fn middle_of_a_path_has_the_highest_centrality() {
        let mut g = AdjacencyListGraph::new();
        for (u, v) in [(1, 2), (2, 3), (3, 4), (4, 5)] {
            g.insert_edge(u, v);
        }
        let bc = betweenness_centrality(&g, &[1, 2, 3, 4, 5]);
        assert!(bc[&3] > bc[&2]);
        assert!(bc[&3] > bc[&4] || (bc[&3] - bc[&4]).abs() < 1e-12);
        assert_eq!(bc[&1], 0.0);
        assert_eq!(bc[&5], 0.0);
    }

    #[test]
    fn path_centrality_matches_hand_computation() {
        // Directed path 1→2→3: only pair (1,3) routes through 2.
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(2, 3);
        let bc = betweenness_centrality(&g, &[1, 2, 3]);
        assert!((bc[&2] - 1.0).abs() < 1e-12);
        assert_eq!(bc[&1], 0.0);
        assert_eq!(bc[&3], 0.0);
    }

    #[test]
    fn parallel_shortest_paths_split_the_dependency() {
        // 1→2→4 and 1→3→4: nodes 2 and 3 each carry half of pair (1,4).
        let mut g = AdjacencyListGraph::new();
        for (u, v) in [(1, 2), (1, 3), (2, 4), (3, 4)] {
            g.insert_edge(u, v);
        }
        let bc = betweenness_centrality(&g, &[1, 2, 3, 4]);
        assert!((bc[&2] - 0.5).abs() < 1e-12);
        assert!((bc[&3] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn nodes_outside_the_selection_are_ignored() {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(2, 3);
        g.insert_edge(2, 99);
        let bc = betweenness_centrality(&g, &[1, 2, 3]);
        assert!(!bc.contains_key(&99));
        assert!((bc[&2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_selection_is_empty() {
        let g = AdjacencyListGraph::new();
        assert!(betweenness_centrality(&g, &[]).is_empty());
    }
}
