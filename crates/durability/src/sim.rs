//! Deterministic fault injection: an in-memory [`Vfs`] whose failures are
//! scheduled by the test, not hoped-for.
//!
//! [`SimVfs`] models the disk as shared byte buffers. Three fault families
//! cover the crash paths the durability layer must survive:
//!
//! * **short writes** — the next write applies only a prefix and returns a
//!   typed I/O error ([`SimVfs::short_write_next`]);
//! * **fsync failures** — the next N syncs fail with
//!   [`DurabilityError::SyncFailed`] ([`SimVfs::fail_next_syncs`]);
//! * **kill at an arbitrary byte** — a global write budget; the write that
//!   exhausts it applies exactly the budgeted prefix, then the whole VFS is
//!   "dead" until [`SimVfs::revive`] ([`SimVfs::crash_after_bytes`]). The
//!   surviving bytes are the disk image a restarted process recovers from.
//!
//! Clones share storage, so a "restart" is: catch the crash error, call
//! `revive`, and open a fresh store over the same `SimVfs`.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::io::{DurabilityError, DurableFile, Result, Vfs};

#[derive(Debug, Default)]
struct SimState {
    files: BTreeMap<String, Vec<u8>>,
    /// Set once a write budget runs out; every subsequent operation fails
    /// with [`DurabilityError::SimulatedCrash`] until `revive`.
    crashed: bool,
    /// Remaining bytes the "process" may write before the kill.
    write_budget: Option<u64>,
    /// Syncs left to fail.
    fail_syncs: u32,
    /// Bytes the next write applies before erroring (one-shot).
    short_write: Option<usize>,
    total_written: u64,
    total_syncs: u64,
}

/// The fault-injection [`Vfs`]. Cheap to clone; clones share the same disk
/// image and fault schedule.
#[derive(Debug, Clone, Default)]
pub struct SimVfs {
    state: Arc<Mutex<SimState>>,
}

impl SimVfs {
    /// A fresh, empty, fault-free in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.state.lock().expect("sim vfs poisoned")
    }

    /// Kills the process after exactly `n` more written bytes: the write that
    /// crosses the budget applies only the budgeted prefix and returns
    /// [`DurabilityError::SimulatedCrash`].
    pub fn crash_after_bytes(&self, n: u64) {
        let mut s = self.lock();
        s.write_budget = Some(n);
        s.crashed = false;
    }

    /// Makes the next `n` syncs fail with [`DurabilityError::SyncFailed`].
    pub fn fail_next_syncs(&self, n: u32) {
        self.lock().fail_syncs = n;
    }

    /// Makes the next write apply only `applied` bytes and return an I/O
    /// error (a short write; the file stays usable).
    pub fn short_write_next(&self, applied: usize) {
        self.lock().short_write = Some(applied);
    }

    /// Clears the crashed flag and any remaining fault schedule — the
    /// "restart" after a kill. File contents (the surviving disk image) are
    /// untouched.
    pub fn revive(&self) {
        let mut s = self.lock();
        s.crashed = false;
        s.write_budget = None;
        s.fail_syncs = 0;
        s.short_write = None;
    }

    /// Whether the simulated process is currently dead.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Total bytes written so far across all files (survives revive).
    pub fn total_written(&self) -> u64 {
        self.lock().total_written
    }

    /// Total successful syncs so far.
    pub fn total_syncs(&self) -> u64 {
        self.lock().total_syncs
    }

    /// Snapshot of a file's bytes, if it exists.
    pub fn file_bytes(&self, path: &str) -> Option<Vec<u8>> {
        self.lock().files.get(path).cloned()
    }

    /// Replaces a file's bytes wholesale (test helper for corruption setups).
    pub fn set_file(&self, path: &str, bytes: Vec<u8>) {
        self.lock().files.insert(path.to_string(), bytes);
    }

    /// Flips one bit of `path` at `offset` (test helper: checksum-detectable
    /// corruption). Panics if the file or offset does not exist.
    pub fn corrupt_byte(&self, path: &str, offset: usize) {
        let mut s = self.lock();
        let file = s.files.get_mut(path).expect("corrupt_byte: no such file");
        file[offset] ^= 0x40;
    }

    /// All stored paths (deterministic order — useful for assertions).
    pub fn paths(&self) -> Vec<String> {
        self.lock().files.keys().cloned().collect()
    }

    fn check_alive(s: &SimState, path: &str) -> Result<()> {
        if s.crashed {
            Err(DurabilityError::SimulatedCrash {
                path: path.to_string(),
            })
        } else {
            Ok(())
        }
    }
}

/// A file handle on the simulated disk. Append-only, like the real handles.
#[derive(Debug)]
pub struct SimFile {
    vfs: SimVfs,
    path: String,
}

impl DurableFile for SimFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        let mut s = self.vfs.lock();
        SimVfs::check_alive(&s, &self.path)?;

        // One-shot short write: apply the prefix, surface a typed I/O error.
        if let Some(applied) = s.short_write.take() {
            let applied = applied.min(buf.len());
            s.total_written += applied as u64;
            if let Some(budget) = s.write_budget.as_mut() {
                *budget = budget.saturating_sub(applied as u64);
            }
            let path = self.path.clone();
            s.files
                .entry(path)
                .or_default()
                .extend_from_slice(&buf[..applied]);
            return Err(DurabilityError::Io {
                op: "write",
                path: self.path.clone(),
                message: format!("short write: {applied} of {} bytes", buf.len()),
            });
        }

        // Kill-at-byte: the write that exhausts the budget applies exactly
        // the surviving prefix, then the process is dead.
        if let Some(budget) = s.write_budget {
            if (buf.len() as u64) > budget {
                let applied = budget as usize;
                s.total_written += applied as u64;
                s.crashed = true;
                s.write_budget = None;
                let path = self.path.clone();
                s.files
                    .entry(path)
                    .or_default()
                    .extend_from_slice(&buf[..applied]);
                return Err(DurabilityError::SimulatedCrash {
                    path: self.path.clone(),
                });
            }
            s.write_budget = Some(budget - buf.len() as u64);
        }

        s.total_written += buf.len() as u64;
        let path = self.path.clone();
        s.files.entry(path).or_default().extend_from_slice(buf);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        let mut s = self.vfs.lock();
        SimVfs::check_alive(&s, &self.path)?;
        if s.fail_syncs > 0 {
            s.fail_syncs -= 1;
            return Err(DurabilityError::SyncFailed {
                path: self.path.clone(),
                message: "injected fsync failure".to_string(),
            });
        }
        s.total_syncs += 1;
        Ok(())
    }
}

impl Vfs for SimVfs {
    type File = SimFile;

    fn open_append(&self, path: &str) -> Result<SimFile> {
        let mut s = self.lock();
        Self::check_alive(&s, path)?;
        s.files.entry(path.to_string()).or_default();
        Ok(SimFile {
            vfs: self.clone(),
            path: path.to_string(),
        })
    }

    fn create(&self, path: &str) -> Result<SimFile> {
        let mut s = self.lock();
        Self::check_alive(&s, path)?;
        s.files.insert(path.to_string(), Vec::new());
        Ok(SimFile {
            vfs: self.clone(),
            path: path.to_string(),
        })
    }

    fn read(&self, path: &str) -> Result<Vec<u8>> {
        let s = self.lock();
        Self::check_alive(&s, path)?;
        s.files
            .get(path)
            .cloned()
            .ok_or_else(|| DurabilityError::Io {
                op: "read",
                path: path.to_string(),
                message: "no such file".to_string(),
            })
    }

    fn exists(&self, path: &str) -> bool {
        self.lock().files.contains_key(path)
    }

    fn len(&self, path: &str) -> Result<u64> {
        let s = self.lock();
        Self::check_alive(&s, path)?;
        s.files
            .get(path)
            .map(|f| f.len() as u64)
            .ok_or_else(|| DurabilityError::Io {
                op: "len",
                path: path.to_string(),
                message: "no such file".to_string(),
            })
    }

    fn truncate(&self, path: &str, len: u64) -> Result<()> {
        let mut s = self.lock();
        Self::check_alive(&s, path)?;
        match s.files.get_mut(path) {
            Some(f) => {
                f.truncate(len as usize);
                Ok(())
            }
            None => Err(DurabilityError::Io {
                op: "truncate",
                path: path.to_string(),
                message: "no such file".to_string(),
            }),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut s = self.lock();
        Self::check_alive(&s, from)?;
        match s.files.remove(from) {
            Some(bytes) => {
                s.files.insert(to.to_string(), bytes);
                Ok(())
            }
            None => Err(DurabilityError::Io {
                op: "rename",
                path: from.to_string(),
                message: "no such file".to_string(),
            }),
        }
    }

    fn remove(&self, path: &str) -> Result<()> {
        let mut s = self.lock();
        Self::check_alive(&s, path)?;
        s.files.remove(path);
        Ok(())
    }

    fn create_dir_all(&self, _path: &str) -> Result<()> {
        // Directories are implicit in the flat path map.
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_reads_round_trip_and_clones_share_storage() {
        let vfs = SimVfs::new();
        let mut f = vfs.create("a").unwrap();
        f.write_all(b"abc").unwrap();
        let clone = vfs.clone();
        assert_eq!(clone.read("a").unwrap(), b"abc");
        let mut g = clone.open_append("a").unwrap();
        g.write_all(b"def").unwrap();
        assert_eq!(vfs.read("a").unwrap(), b"abcdef");
        assert_eq!(vfs.len("a").unwrap(), 6);
    }

    #[test]
    fn short_write_applies_prefix_and_surfaces_typed_error() {
        let vfs = SimVfs::new();
        let mut f = vfs.create("a").unwrap();
        vfs.short_write_next(2);
        let err = f.write_all(b"abcdef").unwrap_err();
        assert!(matches!(err, DurabilityError::Io { op: "write", .. }));
        assert_eq!(vfs.read("a").unwrap(), b"ab");
        // One-shot: the next write succeeds.
        f.write_all(b"xyz").unwrap();
        assert_eq!(vfs.read("a").unwrap(), b"abxyz");
    }

    #[test]
    fn write_budget_kills_mid_write_and_revive_keeps_surviving_bytes() {
        let vfs = SimVfs::new();
        let mut f = vfs.create("log").unwrap();
        f.write_all(b"head").unwrap();
        vfs.crash_after_bytes(3);
        let err = f.write_all(b"TAILTAIL").unwrap_err();
        assert!(err.is_simulated_crash());
        assert!(vfs.crashed());
        // Everything is dead until revive…
        assert!(vfs.read("log").unwrap_err().is_simulated_crash());
        assert!(f.write_all(b"x").unwrap_err().is_simulated_crash());
        // …and the surviving image holds exactly the budgeted prefix.
        vfs.revive();
        assert_eq!(vfs.read("log").unwrap(), b"headTAI");
    }

    #[test]
    fn sync_failures_follow_the_schedule() {
        let vfs = SimVfs::new();
        let mut f = vfs.create("a").unwrap();
        vfs.fail_next_syncs(2);
        assert!(matches!(
            f.sync().unwrap_err(),
            DurabilityError::SyncFailed { .. }
        ));
        assert!(f.sync().is_err());
        f.sync().unwrap();
        assert_eq!(vfs.total_syncs(), 1);
    }

    #[test]
    fn rename_is_atomic_replace_and_corrupt_byte_flips_bits() {
        let vfs = SimVfs::new();
        let mut f = vfs.create("t.tmp").unwrap();
        f.write_all(b"snapshot").unwrap();
        vfs.set_file("t", b"old".to_vec());
        vfs.rename("t.tmp", "t").unwrap();
        assert!(!vfs.exists("t.tmp"));
        assert_eq!(vfs.read("t").unwrap(), b"snapshot");
        vfs.corrupt_byte("t", 0);
        assert_ne!(vfs.read("t").unwrap()[0], b's');
    }
}
