//! [`DurableGraphStore`]: the orchestrator tying the op log, snapshots, and
//! the manifest into one crash-recoverable graph.
//!
//! # Correctness invariant
//!
//! The AOF is **complete on its own**: it is only ever replaced wholesale by
//! [`DurableGraphStore::rewrite_aof`] (which clears the manifest first), and
//! its tail is only truncated at recovery to drop bytes no append ever
//! acknowledged. Snapshots therefore merely *accelerate* recovery — losing
//! every snapshot and the manifest degrades to a full AOF replay that
//! rebuilds the same state. A snapshot generation is used only when its
//! manifest checksums and its own checksums validate; anything questionable
//! falls back to the next older generation, and finally to full replay.
//! Nothing in recovery panics on bad bytes.
//!
//! Because weighted deltas are not idempotent, snapshot-based recovery always
//! resumes replay at the manifest-recorded offset — never before it.

use graph_api::{DynamicGraph, EdgeExport, EdgeImport, EdgeRecord, WeightedDynamicGraph};

use cuckoograph::{CuckooGraph, Sharded, WeightedCuckooGraph};

use crate::frame::{check_header, encode_frame, scan_frames, HeaderState, RecoveryMode, AOF_MAGIC};
use crate::io::{DurabilityError, DurableFile, Result, Vfs};
use crate::manifest::{Generation, Manifest};
use crate::oplog::{decode_ops, encode_ops, AofWriter, GraphOp, SyncPolicy};
use crate::snapshot::{encode_records, read_snapshot, write_snapshot};
use crate::stats::DurabilityStats;

/// AOF file name inside the durability directory.
pub const AOF_FILE: &str = "graph.aof";
const AOF_TMP: &str = "graph.aof.tmp";
/// Manifest file name.
pub const MANIFEST_FILE: &str = "MANIFEST";
const MANIFEST_TMP: &str = "MANIFEST.tmp";
const SNAPSHOT_TMP: &str = "snapshot.tmp";
/// Ops per frame when a rewrite serialises live state back into the log.
const REWRITE_FRAME_OPS: usize = 4096;

fn snapshot_file(epoch: u64) -> String {
    format!("snap-{epoch:06}.ckg")
}

/// A graph the durability layer can log, snapshot, and recover.
///
/// Implementations exist for the serial and sharded basic/weighted engines.
/// (The multi-edge graph exports/imports records but has no op-level durable
/// form yet: parallel-edge identifiers are owned by the database layer above,
/// which logs its own commands — see the kvstore command log.)
pub trait DurableGraph: EdgeExport + EdgeImport {
    /// Applies one logged op (the replay path).
    fn apply_op(&mut self, op: &GraphOp);

    /// Encoded snapshot sections. The default is one section of every record;
    /// sharded graphs override to encode per-shard sections in parallel.
    fn snapshot_sections(&self) -> Vec<Vec<u8>> {
        vec![encode_records(&self.edge_records())]
    }
}

fn apply_unweighted<G: DynamicGraph>(g: &mut G, op: &GraphOp) {
    match *op {
        GraphOp::Insert { u, v, .. } => {
            g.insert_edge(u, v);
        }
        GraphOp::Delete { u, v, .. } => {
            g.delete_edge(u, v);
        }
    }
}

fn apply_weighted<G: WeightedDynamicGraph + DynamicGraph>(g: &mut G, op: &GraphOp) {
    match *op {
        GraphOp::Insert { u, v, w } => {
            g.insert_weighted(u, v, w.max(1));
        }
        GraphOp::Delete { u, v, w: 0 } => {
            g.delete_edge(u, v);
        }
        GraphOp::Delete { u, v, w } => {
            g.delete_weighted(u, v, w);
        }
    }
}

impl DurableGraph for CuckooGraph {
    fn apply_op(&mut self, op: &GraphOp) {
        apply_unweighted(self, op);
    }
}

impl DurableGraph for WeightedCuckooGraph {
    fn apply_op(&mut self, op: &GraphOp) {
        apply_weighted(self, op);
    }
}

impl DurableGraph for Sharded<CuckooGraph> {
    fn apply_op(&mut self, op: &GraphOp) {
        apply_unweighted(self, op);
    }

    fn snapshot_sections(&self) -> Vec<Vec<u8>> {
        self.par_map_shards(|g| encode_records(&g.edge_records()))
    }
}

impl DurableGraph for Sharded<WeightedCuckooGraph> {
    fn apply_op(&mut self, op: &GraphOp) {
        apply_weighted(self, op);
    }

    fn snapshot_sections(&self) -> Vec<Vec<u8>> {
        self.par_map_shards(|g| encode_records(&g.edge_records()))
    }
}

/// Tuning and placement knobs for a [`DurableGraphStore`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the AOF, snapshots, and manifest.
    pub dir: String,
    /// When appended frames reach stable storage.
    pub sync_policy: SyncPolicy,
    /// How replay treats a torn or corrupt log tail.
    pub recovery_mode: RecoveryMode,
    /// Snapshot generations to retain (older ones are fallbacks when the
    /// newest fails validation). Minimum 1.
    pub snapshot_generations: usize,
    /// [`DurableGraphStore::maybe_rewrite_aof`] triggers once the log is this
    /// many times its size after the last rewrite/recovery…
    pub rewrite_growth: u64,
    /// …and at least this many bytes.
    pub rewrite_min_bytes: u64,
}

impl DurabilityConfig {
    /// Defaults: `EverySecond` sync, torn tails tolerated, 2 generations,
    /// rewrite at 4× growth past 1 MiB.
    pub fn new(dir: impl Into<String>) -> Self {
        Self {
            dir: dir.into(),
            sync_policy: SyncPolicy::default(),
            recovery_mode: RecoveryMode::default(),
            snapshot_generations: 2,
            rewrite_growth: 4,
            rewrite_min_bytes: 1 << 20,
        }
    }

    /// Builder-style sync policy override.
    pub fn with_sync_policy(mut self, policy: SyncPolicy) -> Self {
        self.sync_policy = policy;
        self
    }

    /// Builder-style recovery mode override.
    pub fn with_recovery_mode(mut self, mode: RecoveryMode) -> Self {
        self.recovery_mode = mode;
        self
    }

    /// Builder-style generation retention override.
    pub fn with_snapshot_generations(mut self, n: usize) -> Self {
        self.snapshot_generations = n.max(1);
        self
    }

    /// Builder-style rewrite thresholds override.
    pub fn with_rewrite_thresholds(mut self, growth: u64, min_bytes: u64) -> Self {
        self.rewrite_growth = growth.max(2);
        self.rewrite_min_bytes = min_bytes;
        self
    }

    fn path(&self, name: &str) -> String {
        format!("{}/{name}", self.dir.trim_end_matches('/'))
    }
}

/// Where the recovered state came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// No log existed: a brand-new store.
    Fresh,
    /// No usable snapshot: the whole log was replayed.
    AofReplay,
    /// This snapshot generation plus the log suffix past its offset.
    Snapshot {
        /// Epoch of the generation that validated.
        epoch: u64,
    },
}

/// What [`DurableGraphStore::open`] did to bring the graph back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Where the base state came from.
    pub source: RecoverySource,
    /// Newer snapshot generations that failed validation and were skipped.
    pub generations_skipped: u32,
    /// Valid frames replayed from the log.
    pub frames_replayed: u64,
    /// Ops inside those frames.
    pub ops_replayed: u64,
    /// Torn/corrupt tail bytes dropped (truncated) by recovery.
    pub dropped_bytes: u64,
    /// Log offset appends resume from.
    pub resume_offset: u64,
}

/// A graph paired with its durability machinery: every mutation goes through
/// the op log first, snapshots and rewrites compact recovery, and
/// [`DurableGraphStore::open`] brings the pair back after any crash.
#[derive(Debug)]
pub struct DurableGraphStore<G, V: Vfs> {
    graph: G,
    vfs: V,
    cfg: DurabilityConfig,
    aof: AofWriter<V::File>,
    manifest: Manifest,
    next_epoch: u64,
    /// Log size right after the last rewrite or recovery — the growth base
    /// [`DurableGraphStore::maybe_rewrite_aof`] compares against.
    rewrite_base: u64,
}

impl<G: DurableGraph, V: Vfs> DurableGraphStore<G, V> {
    /// Opens (and if needed recovers) the store in `cfg.dir`. `make_graph`
    /// builds the empty engine recovery fills.
    pub fn open(
        vfs: V,
        cfg: DurabilityConfig,
        make_graph: impl Fn() -> G,
    ) -> Result<(Self, RecoveryReport)> {
        vfs.create_dir_all(&cfg.dir)?;
        // A crash can strand temp files mid-commit; they are dead weight.
        for tmp in [AOF_TMP, MANIFEST_TMP, SNAPSHOT_TMP] {
            let _ = vfs.remove(&cfg.path(tmp));
        }

        let aof_path = cfg.path(AOF_FILE);
        let existed = vfs.exists(&aof_path);
        let mut aof_bytes = if existed {
            vfs.read(&aof_path)?
        } else {
            Vec::new()
        };
        let mut fresh = !existed;
        match check_header(&aof_bytes, AOF_MAGIC, cfg.recovery_mode, &aof_path)? {
            HeaderState::Valid => {}
            HeaderState::Empty => fresh = true,
            HeaderState::TornHeader => {
                // The very first write tore: nothing was ever durable.
                vfs.truncate(&aof_path, 0)?;
                aof_bytes.clear();
                fresh = true;
            }
        }

        let mut graph = make_graph();
        let manifest = Manifest::load(&vfs, &cfg.path(MANIFEST_FILE)).unwrap_or_default();
        let next_epoch = manifest
            .generations
            .iter()
            .map(|g| g.epoch + 1)
            .max()
            .unwrap_or(1);

        // Newest usable snapshot generation, if any.
        let mut generations_skipped = 0u32;
        let mut base: Option<(u64, u64)> = None; // (epoch, resume offset)
        if !fresh {
            for gen in &manifest.generations {
                let offset_plausible =
                    gen.aof_offset >= 8 && gen.aof_offset <= aof_bytes.len() as u64;
                if !offset_plausible {
                    generations_skipped += 1;
                    continue;
                }
                match read_snapshot(&vfs, &cfg.path(&gen.snapshot)) {
                    Ok(sections) => {
                        for records in &sections {
                            graph.import_edge_records(records);
                        }
                        base = Some((gen.epoch, gen.aof_offset));
                        break;
                    }
                    Err(_) => generations_skipped += 1,
                }
            }
        }

        // Replay the log (suffix) on top.
        let start = base.map_or(8, |(_, offset)| offset);
        let mut ops_replayed = 0u64;
        let mut frames_replayed = 0u64;
        let mut valid_len = start;
        let mut dropped = 0u64;
        if !fresh {
            // A frame whose checksum passes but whose payload does not decode
            // is corruption the CRC cannot see; everything from that frame on
            // is untrusted.
            let mut decode_bad_at = None;
            let mut cursor = start;
            let mut ops = Vec::new();
            let outcome =
                scan_frames(&aof_bytes, start, cfg.recovery_mode, &aof_path, |payload| {
                    let frame_start = cursor;
                    cursor += (crate::frame::FRAME_HEADER_LEN + payload.len()) as u64;
                    if decode_bad_at.is_some() {
                        return;
                    }
                    ops.clear();
                    match decode_ops(payload, &mut ops) {
                        Some(count) => {
                            for op in &ops {
                                graph.apply_op(op);
                            }
                            ops_replayed += count as u64;
                            frames_replayed += 1;
                        }
                        None => decode_bad_at = Some(frame_start),
                    }
                })?;
            valid_len = match decode_bad_at {
                None => outcome.valid_len,
                Some(bad_at) if cfg.recovery_mode == RecoveryMode::Strict => {
                    return Err(DurabilityError::Corrupt {
                        path: aof_path,
                        offset: bad_at,
                        detail: "undecodable op batch in checksummed frame".to_string(),
                    });
                }
                Some(bad_at) => bad_at,
            };
            dropped = aof_bytes.len() as u64 - valid_len;
            if dropped > 0 {
                vfs.truncate(&aof_path, valid_len)?;
            }
        }

        // Resume appending: a fresh log starts with the magic header.
        let mut file = vfs.open_append(&aof_path)?;
        let resume_offset = if fresh {
            file.write_all(AOF_MAGIC)?;
            8
        } else {
            valid_len
        };
        let aof = AofWriter::new(file, cfg.sync_policy, resume_offset);

        let source = match (base, fresh) {
            (Some((epoch, _)), _) => RecoverySource::Snapshot { epoch },
            (None, true) => RecoverySource::Fresh,
            (None, false) => RecoverySource::AofReplay,
        };
        let report = RecoveryReport {
            source,
            generations_skipped,
            frames_replayed,
            ops_replayed,
            dropped_bytes: dropped,
            resume_offset,
        };
        Ok((
            Self {
                graph,
                vfs,
                cfg,
                aof,
                manifest,
                next_epoch,
                rewrite_base: resume_offset,
            },
            report,
        ))
    }

    /// The recovered/live graph.
    pub fn graph(&self) -> &G {
        &self.graph
    }

    /// Consumes the store, returning the graph (the log handle is dropped
    /// unsynced — call [`DurableGraphStore::sync`] first if that matters).
    pub fn into_graph(self) -> G {
        self.graph
    }

    /// The store's configuration.
    pub fn config(&self) -> &DurabilityConfig {
        &self.cfg
    }

    /// Current log end offset.
    pub fn aof_offset(&self) -> u64 {
        self.aof.offset()
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> DurabilityStats {
        *self.aof.stats()
    }

    /// Logs `ops`, then applies them to the graph (write-ahead order). The
    /// returned error — e.g. a sync failure under [`SyncPolicy::Always`] —
    /// does not roll the ops back: they are in the file image and in memory,
    /// only their durability is in question.
    pub fn apply(&mut self, ops: &[GraphOp]) -> Result<u64> {
        let appended = self.aof.append_ops(ops);
        for op in ops {
            self.graph.apply_op(op);
        }
        appended
    }

    /// Explicitly fsyncs the log.
    pub fn sync(&mut self) -> Result<()> {
        self.aof.sync()
    }

    /// Writes a point-in-time snapshot (temp file + atomic rename), commits a
    /// new manifest generation tying it to the current log offset, and prunes
    /// generations beyond the retention limit. Returns the snapshot size.
    pub fn save_snapshot(&mut self) -> Result<u64> {
        // Make the recorded offset durable. A sync failure is survivable —
        // if the tail below the offset is later lost, the generation's offset
        // exceeds the valid log length and recovery skips it.
        let _ = self.aof.sync();
        let offset = self.aof.offset();
        let sections = self.graph.snapshot_sections();
        let epoch = self.next_epoch;
        let name = snapshot_file(epoch);
        let bytes = write_snapshot(
            &self.vfs,
            &self.cfg.path(&name),
            &self.cfg.path(SNAPSHOT_TMP),
            &sections,
        )?;
        self.next_epoch += 1;

        self.manifest.generations.insert(
            0,
            Generation {
                epoch,
                snapshot: name,
                aof_offset: offset,
            },
        );
        let dropped = if self.manifest.generations.len() > self.cfg.snapshot_generations {
            self.manifest
                .generations
                .split_off(self.cfg.snapshot_generations)
        } else {
            Vec::new()
        };
        self.manifest.store(
            &self.vfs,
            &self.cfg.path(MANIFEST_FILE),
            &self.cfg.path(MANIFEST_TMP),
        )?;
        for gen in dropped {
            let _ = self.vfs.remove(&self.cfg.path(&gen.snapshot));
        }

        let stats = self.aof.stats_mut();
        stats.snapshots_written += 1;
        stats.last_snapshot_bytes = bytes;
        Ok(bytes)
    }

    /// Compacts the log by rewriting it from live state (the BGREWRITEAOF
    /// dance): new log to a temp file, manifest cleared (its generations
    /// reference offsets in the log being replaced), atomic rename, append
    /// handle reopened. Every crash window leaves a recoverable pair — old
    /// log + old manifest, old log + empty manifest, or new log + empty
    /// manifest. Returns the new log size.
    pub fn rewrite_aof(&mut self) -> Result<u64> {
        let mut image = AOF_MAGIC.to_vec();
        let records = self.graph.edge_records();
        let mut ops = Vec::with_capacity(REWRITE_FRAME_OPS);
        for chunk in records.chunks(REWRITE_FRAME_OPS.max(1)) {
            ops.clear();
            ops.extend(chunk.iter().map(|r: &EdgeRecord| GraphOp::Insert {
                u: r.source,
                v: r.target,
                w: r.weight.max(1),
            }));
            encode_frame(&encode_ops(&ops), &mut image);
        }

        let tmp = self.cfg.path(AOF_TMP);
        let mut file = self.vfs.create(&tmp)?;
        file.write_all(&image)?;
        file.sync()?;
        drop(file);

        // Clear the manifest before the log swap: its offsets would be
        // meaningless (and dangerous) against the rewritten log.
        let dropped = std::mem::take(&mut self.manifest.generations);
        self.manifest.store(
            &self.vfs,
            &self.cfg.path(MANIFEST_FILE),
            &self.cfg.path(MANIFEST_TMP),
        )?;
        for gen in dropped {
            let _ = self.vfs.remove(&self.cfg.path(&gen.snapshot));
        }

        let aof_path = self.cfg.path(AOF_FILE);
        self.vfs.rename(&tmp, &aof_path)?;

        let file = self.vfs.open_append(&aof_path)?;
        let mut stats = *self.aof.stats();
        stats.aof_rewrites += 1;
        self.aof = AofWriter::new(file, self.cfg.sync_policy, image.len() as u64);
        *self.aof.stats_mut() = stats;
        self.rewrite_base = image.len() as u64;
        Ok(image.len() as u64)
    }

    /// Rewrites when the log has outgrown its post-rewrite base per the
    /// configured thresholds. Returns whether a rewrite ran.
    pub fn maybe_rewrite_aof(&mut self) -> Result<bool> {
        let len = self.aof.offset();
        let threshold = self
            .rewrite_base
            .saturating_mul(self.cfg.rewrite_growth)
            .max(self.cfg.rewrite_min_bytes);
        if len >= threshold {
            self.rewrite_aof()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimVfs;
    use graph_api::DynamicGraph;

    fn cfg() -> DurabilityConfig {
        DurabilityConfig::new("db").with_sync_policy(SyncPolicy::Never)
    }

    fn insert(u: u64, v: u64) -> GraphOp {
        GraphOp::Insert { u, v, w: 1 }
    }

    #[test]
    fn fresh_store_reopens_with_full_state_from_aof_alone() {
        let vfs = SimVfs::new();
        let (mut store, report) =
            DurableGraphStore::open(vfs.clone(), cfg(), CuckooGraph::new).unwrap();
        assert_eq!(report.source, RecoverySource::Fresh);
        store
            .apply(&(0..50u64).map(|i| insert(i, i + 1)).collect::<Vec<_>>())
            .unwrap();
        store
            .apply(&[GraphOp::Delete { u: 0, v: 1, w: 0 }])
            .unwrap();
        drop(store);

        let (store, report) = DurableGraphStore::open(vfs, cfg(), CuckooGraph::new).unwrap();
        assert_eq!(report.source, RecoverySource::AofReplay);
        assert_eq!(report.ops_replayed, 51);
        assert_eq!(report.dropped_bytes, 0);
        assert_eq!(store.graph().edge_count(), 49);
        assert!(!store.graph().has_edge(0, 1));
        assert!(store.graph().has_edge(7, 8));
    }

    #[test]
    fn snapshot_accelerates_recovery_and_replays_only_the_suffix() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableGraphStore::open(vfs.clone(), cfg(), CuckooGraph::new).unwrap();
        store
            .apply(&(0..40u64).map(|i| insert(i, 1)).collect::<Vec<_>>())
            .unwrap();
        store.save_snapshot().unwrap();
        store
            .apply(&(0..10u64).map(|i| insert(100 + i, 2)).collect::<Vec<_>>())
            .unwrap();
        drop(store);

        let (store, report) = DurableGraphStore::open(vfs, cfg(), CuckooGraph::new).unwrap();
        assert_eq!(report.source, RecoverySource::Snapshot { epoch: 1 });
        assert_eq!(
            report.ops_replayed, 10,
            "only the post-snapshot suffix replays"
        );
        assert_eq!(store.graph().edge_count(), 50);
    }

    #[test]
    fn corrupt_newest_snapshot_falls_back_to_older_generation_then_full_replay() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableGraphStore::open(vfs.clone(), cfg(), CuckooGraph::new).unwrap();
        store
            .apply(&(0..20u64).map(|i| insert(i, 1)).collect::<Vec<_>>())
            .unwrap();
        store.save_snapshot().unwrap(); // epoch 1
        store
            .apply(&(0..20u64).map(|i| insert(i, 2)).collect::<Vec<_>>())
            .unwrap();
        store.save_snapshot().unwrap(); // epoch 2
        store.apply(&[insert(999, 1)]).unwrap();
        drop(store);

        // Corrupt the newest snapshot: recovery degrades to epoch 1 and
        // replays everything past its offset.
        vfs.corrupt_byte("db/snap-000002.ckg", 20);
        let (store, report) =
            DurableGraphStore::open(vfs.clone(), cfg(), CuckooGraph::new).unwrap();
        assert_eq!(report.source, RecoverySource::Snapshot { epoch: 1 });
        assert_eq!(report.generations_skipped, 1);
        assert_eq!(store.graph().edge_count(), 41);
        drop(store);

        // Corrupt the older one too: full replay, still no error.
        vfs.corrupt_byte("db/snap-000001.ckg", 20);
        let (store, report) = DurableGraphStore::open(vfs, cfg(), CuckooGraph::new).unwrap();
        assert_eq!(report.source, RecoverySource::AofReplay);
        assert_eq!(report.generations_skipped, 2);
        assert_eq!(store.graph().edge_count(), 41);
    }

    #[test]
    fn lost_manifest_degrades_to_full_replay() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableGraphStore::open(vfs.clone(), cfg(), CuckooGraph::new).unwrap();
        store
            .apply(&(0..30u64).map(|i| insert(i, 1)).collect::<Vec<_>>())
            .unwrap();
        store.save_snapshot().unwrap();
        drop(store);
        vfs.set_file("db/MANIFEST", b"garbage".to_vec());

        let (store, report) = DurableGraphStore::open(vfs, cfg(), CuckooGraph::new).unwrap();
        assert_eq!(report.source, RecoverySource::AofReplay);
        assert_eq!(store.graph().edge_count(), 30);
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableGraphStore::open(vfs.clone(), cfg(), CuckooGraph::new).unwrap();
        store.apply(&[insert(1, 2)]).unwrap();
        let keep = store.aof_offset();
        store.apply(&[insert(3, 4)]).unwrap();
        drop(store);

        // Tear the last frame mid-body.
        let full = vfs.file_bytes("db/graph.aof").unwrap();
        vfs.set_file("db/graph.aof", full[..full.len() - 3].to_vec());

        let (mut store, report) =
            DurableGraphStore::open(vfs.clone(), cfg(), CuckooGraph::new).unwrap();
        assert_eq!(report.resume_offset, keep);
        assert!(report.dropped_bytes > 0);
        assert!(store.graph().has_edge(1, 2));
        assert!(!store.graph().has_edge(3, 4), "torn frame must not apply");
        assert_eq!(vfs.len("db/graph.aof").unwrap(), keep, "tail truncated");

        // Appends continue cleanly after the truncation point.
        store.apply(&[insert(5, 6)]).unwrap();
        drop(store);
        let (store, _) = DurableGraphStore::open(vfs, cfg(), CuckooGraph::new).unwrap();
        assert!(store.graph().has_edge(5, 6));
    }

    #[test]
    fn strict_mode_refuses_a_torn_tail() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableGraphStore::open(vfs.clone(), cfg(), CuckooGraph::new).unwrap();
        store.apply(&[insert(1, 2)]).unwrap();
        drop(store);
        let full = vfs.file_bytes("db/graph.aof").unwrap();
        vfs.set_file("db/graph.aof", full[..full.len() - 1].to_vec());

        let strict = cfg().with_recovery_mode(RecoveryMode::Strict);
        let err = DurableGraphStore::open(vfs, strict, CuckooGraph::new).unwrap_err();
        assert!(matches!(err, DurabilityError::Corrupt { .. }));
    }

    #[test]
    fn rewrite_compacts_the_log_and_preserves_state() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableGraphStore::open(vfs.clone(), cfg(), CuckooGraph::new).unwrap();
        // Lots of churn: inserts later deleted bloat the log.
        for round in 0..20u64 {
            store
                .apply(
                    &(0..20u64)
                        .map(|i| insert(i, round * 100 + i))
                        .collect::<Vec<_>>(),
                )
                .unwrap();
        }
        for round in 0..19u64 {
            store
                .apply(
                    &(0..20u64)
                        .map(|i| GraphOp::Delete {
                            u: i,
                            v: round * 100 + i,
                            w: 0,
                        })
                        .collect::<Vec<_>>(),
                )
                .unwrap();
        }
        store.save_snapshot().unwrap();
        let before = store.aof_offset();
        let after = store.rewrite_aof().unwrap();
        assert!(after < before, "rewrite must shrink a churned log");
        assert_eq!(store.stats().aof_rewrites, 1);
        let live = store.graph().edge_count();
        drop(store);

        let (store, report) = DurableGraphStore::open(vfs, cfg(), CuckooGraph::new).unwrap();
        // The rewrite cleared the manifest, so this is a pure AOF replay of
        // the compacted log.
        assert_eq!(report.source, RecoverySource::AofReplay);
        assert_eq!(store.graph().edge_count(), live);
    }

    #[test]
    fn maybe_rewrite_respects_thresholds() {
        let vfs = SimVfs::new();
        let small = cfg().with_rewrite_thresholds(2, 256);
        let (mut store, _) = DurableGraphStore::open(vfs, small, CuckooGraph::new).unwrap();
        assert!(
            !store.maybe_rewrite_aof().unwrap(),
            "empty log must not rewrite"
        );
        store
            .apply(&(0..200u64).map(|i| insert(i, i + 1)).collect::<Vec<_>>())
            .unwrap();
        assert!(store.maybe_rewrite_aof().unwrap());
        let base = store.aof_offset();
        assert!(!store.maybe_rewrite_aof().unwrap(), "just rewritten");
        assert_eq!(store.aof_offset(), base);
    }

    #[test]
    fn weighted_store_recovers_exact_weights_via_offset_resume() {
        let vfs = SimVfs::new();
        let (mut store, _) =
            DurableGraphStore::open(vfs.clone(), cfg(), WeightedCuckooGraph::new).unwrap();
        // Non-idempotent stream: the same edge keeps accumulating weight.
        for _ in 0..5 {
            store
                .apply(&[GraphOp::Insert { u: 1, v: 2, w: 3 }])
                .unwrap();
        }
        store.save_snapshot().unwrap();
        store
            .apply(&[GraphOp::Insert { u: 1, v: 2, w: 1 }])
            .unwrap();
        store
            .apply(&[GraphOp::Delete { u: 1, v: 2, w: 4 }])
            .unwrap();
        drop(store);

        let (store, report) =
            DurableGraphStore::open(vfs, cfg(), WeightedCuckooGraph::new).unwrap();
        assert_eq!(report.source, RecoverySource::Snapshot { epoch: 1 });
        assert_eq!(report.ops_replayed, 2, "pre-snapshot ops must not re-apply");
        assert_eq!(store.graph().weight(1, 2), 12);
    }

    #[test]
    fn sharded_store_snapshots_per_shard_and_recovers() {
        let vfs = SimVfs::new();
        let make = || Sharded::from_fn(4, |_| CuckooGraph::new());
        let (mut store, _) = DurableGraphStore::open(vfs.clone(), cfg(), make).unwrap();
        store
            .apply(&(0..500u64).map(|i| insert(i, i % 37)).collect::<Vec<_>>())
            .unwrap();
        assert!(store.graph().snapshot_sections().len() == 4);
        store.save_snapshot().unwrap();
        store.apply(&[insert(9_999, 1)]).unwrap();
        let expect = store.graph().edge_count();
        drop(store);

        // Recover into a *different* shard count: sections route by source.
        let make2 = || Sharded::from_fn(2, |_| CuckooGraph::new());
        let (store, report) = DurableGraphStore::open(vfs, cfg(), make2).unwrap();
        assert!(matches!(report.source, RecoverySource::Snapshot { .. }));
        assert_eq!(store.graph().edge_count(), expect);
        assert!(store.graph().has_edge(9_999, 1));
    }
}
