//! The injectable I/O layer every durability path goes through.
//!
//! [`Vfs`] + [`DurableFile`] abstract exactly the filesystem surface the
//! subsystem needs (append, whole-file read, truncate, atomic rename).
//! [`StdVfs`] is the production implementation over `std::fs`;
//! [`crate::sim::SimVfs`] is the fault-injection implementation that forces
//! short writes, fsync failures, and kill-at-arbitrary-byte crashes so every
//! crash path runs deterministically in CI.

use std::fmt;
use std::fs;
use std::io::Write as _;

/// Result alias for every durability operation.
pub type Result<T> = std::result::Result<T, DurabilityError>;

/// Typed durability failure. No path ever panics on I/O or corruption — it
/// surfaces one of these and the caller degrades (older snapshot generation,
/// torn-tail truncation, sync-failure counter).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// An I/O operation failed (open, write, read, rename, truncate, …).
    Io {
        /// The operation that failed, e.g. `"open_append"`.
        op: &'static str,
        /// File the operation targeted.
        path: String,
        /// OS error message.
        message: String,
    },
    /// `fsync` failed — the typed error the AOF writer surfaces (and counts
    /// in [`crate::stats::DurabilityStats::aof_sync_failures`]) instead of
    /// panicking.
    SyncFailed {
        /// File whose sync failed.
        path: String,
        /// OS error message.
        message: String,
    },
    /// Stored bytes failed validation (bad magic, bad checksum, garbage
    /// length, undecodable payload).
    Corrupt {
        /// File holding the corrupt bytes.
        path: String,
        /// Byte offset where validation failed.
        offset: u64,
        /// Human-readable description of what failed.
        detail: String,
    },
    /// The simulated process kill from [`crate::sim::SimVfs`]: the configured
    /// write budget ran out mid-write. Never produced by [`StdVfs`].
    SimulatedCrash {
        /// File being written when the budget ran out.
        path: String,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { op, path, message } => {
                write!(f, "io error during {op} on {path}: {message}")
            }
            Self::SyncFailed { path, message } => write!(f, "fsync failed on {path}: {message}"),
            Self::Corrupt {
                path,
                offset,
                detail,
            } => write!(f, "corrupt data in {path} at offset {offset}: {detail}"),
            Self::SimulatedCrash { path } => write!(f, "simulated crash while writing {path}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl DurabilityError {
    /// True for the fault-injection kill marker.
    pub fn is_simulated_crash(&self) -> bool {
        matches!(self, Self::SimulatedCrash { .. })
    }
}

/// An open file handle the durability layer appends to.
///
/// Writes are sequential appends only — the subsystem never seeks — so the
/// trait stays small enough that a deterministic in-memory fault-injection
/// implementation covers it exactly.
pub trait DurableFile {
    /// Appends `buf`. On failure some prefix of `buf` may have reached the
    /// file (a short write) — exactly the torn-tail shape recovery handles.
    fn write_all(&mut self, buf: &[u8]) -> Result<()>;

    /// Flushes written bytes to stable storage (fsync).
    fn sync(&mut self) -> Result<()>;
}

/// The filesystem surface behind the durability layer.
pub trait Vfs {
    /// Handle type returned by [`Vfs::open_append`] / [`Vfs::create`].
    type File: DurableFile;

    /// Opens `path` for appending, creating it empty if missing.
    fn open_append(&self, path: &str) -> Result<Self::File>;

    /// Creates `path` empty (truncating any existing file) for writing.
    fn create(&self, path: &str) -> Result<Self::File>;

    /// Reads the whole file.
    fn read(&self, path: &str) -> Result<Vec<u8>>;

    /// Whether `path` exists.
    fn exists(&self, path: &str) -> bool;

    /// Current length of `path` in bytes.
    fn len(&self, path: &str) -> Result<u64>;

    /// Truncates `path` to `len` bytes (used to drop a torn AOF tail).
    fn truncate(&self, path: &str, len: u64) -> Result<()>;

    /// Atomically renames `from` over `to` (the temp-file commit step for
    /// snapshots and manifests).
    fn rename(&self, from: &str, to: &str) -> Result<()>;

    /// Removes `path`; missing files are not an error.
    fn remove(&self, path: &str) -> Result<()>;

    /// Creates `path` and its parents as directories.
    fn create_dir_all(&self, path: &str) -> Result<()>;
}

fn io_err(op: &'static str, path: &str, e: std::io::Error) -> DurabilityError {
    DurabilityError::Io {
        op,
        path: path.to_string(),
        message: e.to_string(),
    }
}

/// The production [`Vfs`] over `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

/// A real file opened through [`StdVfs`].
#[derive(Debug)]
pub struct StdFile {
    file: fs::File,
    path: String,
}

impl DurableFile for StdFile {
    fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.file
            .write_all(buf)
            .map_err(|e| io_err("write", &self.path, e))
    }

    fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| DurabilityError::SyncFailed {
                path: self.path.clone(),
                message: e.to_string(),
            })
    }
}

impl Vfs for StdVfs {
    type File = StdFile;

    fn open_append(&self, path: &str) -> Result<StdFile> {
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err("open_append", path, e))?;
        Ok(StdFile {
            file,
            path: path.to_string(),
        })
    }

    fn create(&self, path: &str) -> Result<StdFile> {
        let file = fs::File::create(path).map_err(|e| io_err("create", path, e))?;
        Ok(StdFile {
            file,
            path: path.to_string(),
        })
    }

    fn read(&self, path: &str) -> Result<Vec<u8>> {
        fs::read(path).map_err(|e| io_err("read", path, e))
    }

    fn exists(&self, path: &str) -> bool {
        fs::metadata(path).is_ok()
    }

    fn len(&self, path: &str) -> Result<u64> {
        fs::metadata(path)
            .map(|m| m.len())
            .map_err(|e| io_err("len", path, e))
    }

    fn truncate(&self, path: &str, len: u64) -> Result<()> {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("truncate", path, e))?;
        file.set_len(len).map_err(|e| io_err("truncate", path, e))
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        fs::rename(from, to).map_err(|e| io_err("rename", from, e))
    }

    fn remove(&self, path: &str) -> Result<()> {
        match fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", path, e)),
        }
    }

    fn create_dir_all(&self, path: &str) -> Result<()> {
        fs::create_dir_all(path).map_err(|e| io_err("create_dir_all", path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_vfs_round_trips_in_a_temp_dir() {
        let dir = std::env::temp_dir().join(format!("durability-io-{}", std::process::id()));
        let dir_s = dir.to_str().unwrap().to_string();
        let vfs = StdVfs;
        vfs.create_dir_all(&dir_s).unwrap();
        let path = format!("{dir_s}/a.log");
        let tmp = format!("{dir_s}/a.log.tmp");

        let mut f = vfs.create(&tmp).unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.sync().unwrap();
        drop(f);
        vfs.rename(&tmp, &path).unwrap();

        assert!(vfs.exists(&path));
        assert!(!vfs.exists(&tmp));
        assert_eq!(vfs.read(&path).unwrap(), b"hello world");
        assert_eq!(vfs.len(&path).unwrap(), 11);

        let mut f = vfs.open_append(&path).unwrap();
        f.write_all(b"!").unwrap();
        drop(f);
        assert_eq!(vfs.read(&path).unwrap(), b"hello world!");

        vfs.truncate(&path, 5).unwrap();
        assert_eq!(vfs.read(&path).unwrap(), b"hello");

        vfs.remove(&path).unwrap();
        vfs.remove(&path).unwrap(); // idempotent
        assert!(!vfs.exists(&path));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_typed_and_displayable() {
        let vfs = StdVfs;
        let err = vfs.read("/nonexistent/durability/file").unwrap_err();
        assert!(matches!(err, DurabilityError::Io { op: "read", .. }));
        assert!(err.to_string().contains("/nonexistent/durability/file"));
        assert!(!err.is_simulated_crash());
    }
}
