//! Point-in-time snapshots: every stored edge record, compactly varint-coded
//! into per-shard sections.
//!
//! ```text
//! [magic "CKGRSNP1"][section_count: u32 LE][crc32(section_count): u32 LE]
//! [section frame]*                     -- one checksummed frame per shard
//! ```
//!
//! Each section payload is `varint record_count` followed by records
//! `varint source, varint target, varint weight, varint multiplicity`.
//! Sections map 1:1 onto shards, so a `Sharded<G>` encodes them in parallel
//! (`par_map_shards`) and a serial graph writes exactly one. The file is
//! committed with the temp-file + atomic-rename dance; the reader is always
//! strict — a snapshot that fails any checksum is rejected wholesale and the
//! store falls back to an older generation (or a full AOF replay).

use graph_api::EdgeRecord;

use crate::crc::crc32;
use crate::frame::{
    check_header, encode_frame, scan_frames, HeaderState, RecoveryMode, SNAPSHOT_MAGIC,
};
use crate::io::{DurabilityError, DurableFile, Result, Vfs};
use crate::oplog::{read_varint, write_varint};

/// Encodes one shard's records as a section payload (pre-framing).
pub fn encode_records(records: &[EdgeRecord]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + records.len() * 6);
    write_varint(&mut out, records.len() as u64);
    for r in records {
        write_varint(&mut out, r.source);
        write_varint(&mut out, r.target);
        write_varint(&mut out, r.weight);
        write_varint(&mut out, u64::from(r.multiplicity));
    }
    out
}

/// Decodes a section payload back into records. `None` on malformed bytes.
pub fn decode_records(payload: &[u8]) -> Option<Vec<EdgeRecord>> {
    let mut pos = 0usize;
    let count = usize::try_from(read_varint(payload, &mut pos)?).ok()?;
    let mut out = Vec::with_capacity(count.min(payload.len()));
    for _ in 0..count {
        let source = read_varint(payload, &mut pos)?;
        let target = read_varint(payload, &mut pos)?;
        let weight = read_varint(payload, &mut pos)?;
        let multiplicity = u32::try_from(read_varint(payload, &mut pos)?).ok()?;
        out.push(EdgeRecord {
            source,
            target,
            weight,
            multiplicity,
        });
    }
    (pos == payload.len()).then_some(out)
}

/// Assembles the full snapshot file image from encoded section payloads.
pub fn encode_snapshot(sections: &[Vec<u8>]) -> Vec<u8> {
    let body: usize = sections.iter().map(|s| s.len() + 8).sum();
    let mut out = Vec::with_capacity(16 + body);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    let count = (sections.len() as u32).to_le_bytes();
    out.extend_from_slice(&count);
    out.extend_from_slice(&crc32(&count).to_le_bytes());
    for section in sections {
        encode_frame(section, &mut out);
    }
    out
}

/// Writes `sections` to `path` via `path_tmp` + fsync + atomic rename.
pub fn write_snapshot<V: Vfs>(
    vfs: &V,
    path: &str,
    tmp_path: &str,
    sections: &[Vec<u8>],
) -> Result<u64> {
    let image = encode_snapshot(sections);
    let mut file = vfs.create(tmp_path)?;
    file.write_all(&image)?;
    file.sync()?;
    drop(file);
    vfs.rename(tmp_path, path)?;
    Ok(image.len() as u64)
}

/// Reads and fully validates the snapshot at `path`, returning one record
/// vector per section (shard). Any corruption — header, count checksum,
/// section checksum, undecodable record — is a typed error; the caller falls
/// back to an older generation.
pub fn read_snapshot<V: Vfs>(vfs: &V, path: &str) -> Result<Vec<Vec<EdgeRecord>>> {
    let bytes = vfs.read(path)?;
    let corrupt = |offset: u64, detail: &str| DurabilityError::Corrupt {
        path: path.to_string(),
        offset,
        detail: detail.to_string(),
    };
    match check_header(&bytes, SNAPSHOT_MAGIC, RecoveryMode::Strict, path)? {
        HeaderState::Valid => {}
        HeaderState::Empty | HeaderState::TornHeader => {
            return Err(corrupt(0, "empty snapshot file"));
        }
    }
    if bytes.len() < 16 {
        return Err(corrupt(8, "truncated section header"));
    }
    let count_bytes: [u8; 4] = bytes[8..12].try_into().expect("4 bytes");
    let stored_crc = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if crc32(&count_bytes) != stored_crc {
        return Err(corrupt(8, "section-count checksum mismatch"));
    }
    let section_count = u32::from_le_bytes(count_bytes) as usize;

    let mut sections = Vec::with_capacity(section_count);
    let mut decode_failure = None;
    scan_frames(
        &bytes,
        16,
        RecoveryMode::Strict,
        path,
        |payload| match decode_records(payload) {
            Some(records) => sections.push(records),
            None => decode_failure = Some(sections.len()),
        },
    )?;
    if let Some(idx) = decode_failure {
        return Err(corrupt(
            16,
            &format!("undecodable records in section {idx}"),
        ));
    }
    if sections.len() != section_count {
        return Err(corrupt(
            16,
            &format!(
                "expected {section_count} sections, found {}",
                sections.len()
            ),
        ));
    }
    Ok(sections)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimVfs;

    fn records(n: u64) -> Vec<EdgeRecord> {
        (0..n)
            .map(|i| EdgeRecord {
                source: i * 3,
                target: i * 7 + 1,
                weight: i + 1,
                multiplicity: (i % 4 + 1) as u32,
            })
            .collect()
    }

    #[test]
    fn sections_round_trip() {
        let a = records(100);
        let b = records(0);
        let c = records(17);
        let sections = vec![encode_records(&a), encode_records(&b), encode_records(&c)];
        let vfs = SimVfs::new();
        let bytes = write_snapshot(&vfs, "snap", "snap.tmp", &sections).unwrap();
        assert!(bytes > 0);
        assert!(!vfs.exists("snap.tmp"));
        let back = read_snapshot(&vfs, "snap").unwrap();
        assert_eq!(back, vec![a, b, c]);
    }

    #[test]
    fn any_corrupt_byte_rejects_the_snapshot() {
        let sections = vec![encode_records(&records(50))];
        let vfs = SimVfs::new();
        write_snapshot(&vfs, "snap", "snap.tmp", &sections).unwrap();
        let len = vfs.len("snap").unwrap() as usize;
        // Flip every byte position in turn: the reader must reject each
        // mutant (bit flips never silently pass).
        for offset in 0..len {
            let vfs2 = SimVfs::new();
            write_snapshot(&vfs2, "snap", "snap.tmp", &sections).unwrap();
            vfs2.corrupt_byte("snap", offset);
            assert!(
                read_snapshot(&vfs2, "snap").is_err(),
                "flip at {offset} was accepted"
            );
        }
    }

    #[test]
    fn torn_snapshot_writes_are_rejected() {
        let sections = vec![encode_records(&records(30)), encode_records(&records(5))];
        let vfs = SimVfs::new();
        write_snapshot(&vfs, "snap", "snap.tmp", &sections).unwrap();
        let full = vfs.file_bytes("snap").unwrap();
        for cut in 0..full.len() {
            let vfs2 = SimVfs::new();
            vfs2.set_file("snap", full[..cut].to_vec());
            assert!(
                read_snapshot(&vfs2, "snap").is_err(),
                "cut at {cut} was accepted"
            );
        }
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let vfs = SimVfs::new();
        assert!(matches!(
            read_snapshot(&vfs, "nope").unwrap_err(),
            DurabilityError::Io { .. }
        ));
    }
}
