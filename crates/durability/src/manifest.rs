//! The manifest ties snapshot generations to the AOF offset replay resumes
//! from.
//!
//! A small, line-oriented text file, newest generation first, committed via
//! temp-file + atomic rename and self-checksummed:
//!
//! ```text
//! CKGRMAN1
//! gen epoch=7 snapshot=snap-000007.ckg aof_offset=40962
//! gen epoch=6 snapshot=snap-000006.ckg aof_offset=20481
//! crc=3ac91f02
//! ```
//!
//! Recovery trusts an offset only if the whole manifest checksums — a torn
//! manifest write degrades to "no manifest", which is always safe: the AOF is
//! complete on its own (it is only ever replaced wholesale by a rewrite, which
//! clears the manifest first), so full replay from offset 8 rebuilds the same
//! state snapshots merely accelerate.

use crate::crc::crc32;
use crate::io::{DurableFile, Result, Vfs};

const HEADER: &str = "CKGRMAN1";

/// One snapshot generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generation {
    /// Monotone snapshot counter (also names the snapshot file).
    pub epoch: u64,
    /// Snapshot file name, relative to the durability directory.
    pub snapshot: String,
    /// AOF offset the snapshot's state corresponds to: replay resumes here.
    pub aof_offset: u64,
}

/// The parsed manifest: snapshot generations, newest first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Generations, newest first.
    pub generations: Vec<Generation>,
}

impl Manifest {
    /// Serialises to the checksummed text format.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = String::new();
        body.push_str(HEADER);
        body.push('\n');
        for g in &self.generations {
            body.push_str(&format!(
                "gen epoch={} snapshot={} aof_offset={}\n",
                g.epoch, g.snapshot, g.aof_offset
            ));
        }
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("crc={crc:08x}\n"));
        body.into_bytes()
    }

    /// Parses a manifest file image. `None` on any mismatch — header, field
    /// syntax, or checksum — because recovery must not trust a questionable
    /// offset (it falls back to full AOF replay instead).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let text = std::str::from_utf8(bytes).ok()?;
        let body_end = text.rfind("crc=")?;
        let (body, crc_line) = text.split_at(body_end);
        let stored = u32::from_str_radix(crc_line.trim().strip_prefix("crc=")?, 16).ok()?;
        if crc32(body.as_bytes()) != stored {
            return None;
        }
        let mut lines = body.lines();
        if lines.next()? != HEADER {
            return None;
        }
        let mut generations = Vec::new();
        for line in lines {
            let rest = line.strip_prefix("gen ")?;
            let mut epoch = None;
            let mut snapshot = None;
            let mut aof_offset = None;
            for field in rest.split_whitespace() {
                let (key, value) = field.split_once('=')?;
                match key {
                    "epoch" => epoch = Some(value.parse().ok()?),
                    "snapshot" => snapshot = Some(value.to_string()),
                    "aof_offset" => aof_offset = Some(value.parse().ok()?),
                    _ => return None,
                }
            }
            generations.push(Generation {
                epoch: epoch?,
                snapshot: snapshot?,
                aof_offset: aof_offset?,
            });
        }
        Some(Self { generations })
    }

    /// Loads the manifest at `path`; `None` when missing or invalid (both
    /// degrade to full-AOF recovery).
    pub fn load<V: Vfs>(vfs: &V, path: &str) -> Option<Self> {
        if !vfs.exists(path) {
            return None;
        }
        Self::decode(&vfs.read(path).ok()?)
    }

    /// Commits the manifest at `path` via `tmp_path` + fsync + rename.
    pub fn store<V: Vfs>(&self, vfs: &V, path: &str, tmp_path: &str) -> Result<()> {
        let mut file = vfs.create(tmp_path)?;
        file.write_all(&self.encode())?;
        file.sync()?;
        drop(file);
        vfs.rename(tmp_path, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimVfs;

    fn sample() -> Manifest {
        Manifest {
            generations: vec![
                Generation {
                    epoch: 7,
                    snapshot: "snap-000007.ckg".into(),
                    aof_offset: 40_962,
                },
                Generation {
                    epoch: 6,
                    snapshot: "snap-000006.ckg".into(),
                    aof_offset: 20_481,
                },
            ],
        }
    }

    #[test]
    fn round_trips_through_the_vfs() {
        let vfs = SimVfs::new();
        let m = sample();
        m.store(&vfs, "MANIFEST", "MANIFEST.tmp").unwrap();
        assert!(!vfs.exists("MANIFEST.tmp"));
        assert_eq!(Manifest::load(&vfs, "MANIFEST"), Some(m));
    }

    #[test]
    fn empty_manifest_round_trips() {
        let m = Manifest::default();
        assert_eq!(Manifest::decode(&m.encode()), Some(m));
    }

    #[test]
    fn missing_file_and_corruption_degrade_to_none() {
        let vfs = SimVfs::new();
        assert_eq!(Manifest::load(&vfs, "MANIFEST"), None);

        let m = sample();
        let bytes = m.encode();
        // Every single-byte flip must invalidate the manifest. (0x40 keeps
        // the mutant out of the whitespace range `trim` would forgive.)
        for offset in 0..bytes.len() {
            let mut mutant = bytes.clone();
            mutant[offset] ^= 0x40;
            assert_ne!(
                Manifest::decode(&mutant),
                Some(m.clone()),
                "flip at {offset} preserved the parse"
            );
        }
        // A torn write (any prefix) is rejected too. (Losing only the final
        // newline keeps every checksummed byte, so that cut still decodes.)
        for cut in 0..bytes.len() - 1 {
            assert_eq!(Manifest::decode(&bytes[..cut]), None, "cut at {cut}");
        }
    }
}
