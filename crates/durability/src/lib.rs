//! Durability for the CuckooGraph engines: an append-only op log plus
//! point-in-time snapshots, with crash recovery that never panics on bad
//! bytes.
//!
//! The layer follows the Redis persistence shape (AOF + RDB) adapted to the
//! graph engine:
//!
//! * [`oplog`] — edge mutations ([`GraphOp`]) varint-coded into checksummed
//!   batch frames, appended by [`AofWriter`] under a [`SyncPolicy`]
//!   (`Always` / `EverySecond` / `Never`).
//! * [`snapshot`] — every stored edge record in per-shard sections
//!   (`Sharded<G>` encodes them in parallel), committed via temp-file +
//!   atomic rename.
//! * [`manifest`] — checksummed text file tying each snapshot generation to
//!   the log offset replay resumes from.
//! * [`store`] — [`DurableGraphStore`] orchestrates recovery (newest valid
//!   snapshot, older generations on checksum failure, full replay as the
//!   final fallback), torn-tail truncation, and background log rewrite.
//! * [`io`] / [`sim`] — the injectable [`Vfs`]/[`DurableFile`] layer:
//!   [`StdVfs`] for real files, [`SimVfs`] for deterministic fault injection
//!   (short writes, fsync failures, kill-at-arbitrary-byte).
//!
//! The load-bearing invariant: **the op log is complete on its own.** It is
//! only replaced wholesale by a rewrite (which clears the manifest first), so
//! snapshots and the manifest only ever accelerate recovery — corrupting or
//! deleting all of them degrades to a full replay of the same state.

pub mod crc;
pub mod frame;
pub mod io;
pub mod manifest;
pub mod oplog;
pub mod sim;
pub mod snapshot;
pub mod stats;
pub mod store;

pub use crc::crc32;
pub use frame::{
    check_header, encode_frame, scan_frames, HeaderState, RecoveryMode, ScanOutcome, AOF_MAGIC,
    KV_AOF_MAGIC, SNAPSHOT_MAGIC,
};
pub use io::{DurabilityError, DurableFile, Result, StdVfs, Vfs};
pub use manifest::{Generation, Manifest};
pub use oplog::{decode_ops, encode_ops, AofWriter, GraphOp, SyncPolicy};
pub use sim::SimVfs;
pub use snapshot::{decode_records, encode_records, read_snapshot, write_snapshot};
pub use stats::DurabilityStats;
pub use store::{
    DurabilityConfig, DurableGraph, DurableGraphStore, RecoveryReport, RecoverySource,
};
