//! CRC32 (IEEE 802.3 polynomial, reflected), the checksum guarding every AOF
//! frame and snapshot section. Table-driven, built at compile time — no
//! external dependency, deterministic across platforms.

/// The reflected IEEE polynomial (the one used by zlib, gzip, PNG, Redis).
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC32 of `bytes` with the conventional `!0` pre/post conditioning.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let a = crc32(b"hello world");
        let mut flipped = b"hello world".to_vec();
        flipped[3] ^= 0x01;
        assert_ne!(a, crc32(&flipped));
    }
}
