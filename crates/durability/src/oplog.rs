//! The graph op log: edge mutations as varint-coded records inside checksummed
//! frames, appended by [`AofWriter`] under a configurable [`SyncPolicy`].

use std::time::{Duration, Instant};

use crate::frame::encode_frame;
use crate::io::{DurabilityError, DurableFile, Result};
use crate::stats::DurabilityStats;

/// One durable graph mutation.
///
/// `w` carries the weighted delta; unweighted graphs log `w = 1` on insert
/// and ignore it. `Delete { w: 0 }` removes the edge outright (any weight),
/// matching `DynamicGraph::delete_edge`; a non-zero `w` is the weighted
/// decrement of `delete_weighted`. Replay applies ops in order, so weighted
/// streams (which are not idempotent) recover exactly when replay resumes at
/// the manifest-recorded offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphOp {
    /// Insert `⟨u, v⟩` (weighted: add `w` to the edge weight).
    Insert {
        /// Source node.
        u: u64,
        /// Target node.
        v: u64,
        /// Weight delta (1 for unweighted inserts).
        w: u64,
    },
    /// Delete from `⟨u, v⟩`: the whole edge when `w == 0`, else a weighted
    /// decrement by `w` (removing the edge when the weight reaches zero).
    Delete {
        /// Source node.
        u: u64,
        /// Target node.
        v: u64,
        /// Weight decrement, or 0 for unconditional removal.
        w: u64,
    },
}

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// Appends `x` LEB128-style (7 bits per byte, high bit = continuation).
pub fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint at `*pos`, advancing it. `None` on truncation or a value
/// that overflows 64 bits.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        x |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(x);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

impl GraphOp {
    /// Appends the op's record bytes.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let (tag, u, v, w) = match *self {
            Self::Insert { u, v, w } => (TAG_INSERT, u, v, w),
            Self::Delete { u, v, w } => (TAG_DELETE, u, v, w),
        };
        out.push(tag);
        write_varint(out, u);
        write_varint(out, v);
        write_varint(out, w);
    }

    /// Decodes one op at `*pos`, advancing it. `None` on malformed bytes.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Option<Self> {
        let &tag = bytes.get(*pos)?;
        *pos += 1;
        let u = read_varint(bytes, pos)?;
        let v = read_varint(bytes, pos)?;
        let w = read_varint(bytes, pos)?;
        match tag {
            TAG_INSERT => Some(Self::Insert { u, v, w }),
            TAG_DELETE => Some(Self::Delete { u, v, w }),
            _ => None,
        }
    }
}

/// Packs a batch of ops into one frame payload: varint count, then records.
pub fn encode_ops(ops: &[GraphOp]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + ops.len() * 8);
    write_varint(&mut payload, ops.len() as u64);
    for op in ops {
        op.encode(&mut payload);
    }
    payload
}

/// Decodes a frame payload produced by [`encode_ops`], appending onto `out`.
/// `None` if the payload is malformed (a checksummed frame should never be —
/// this guards against logic bugs, not disk corruption).
pub fn decode_ops(payload: &[u8], out: &mut Vec<GraphOp>) -> Option<usize> {
    let mut pos = 0usize;
    let count = read_varint(payload, &mut pos)?;
    let count = usize::try_from(count).ok()?;
    out.reserve(count);
    for _ in 0..count {
        out.push(GraphOp::decode(payload, &mut pos)?);
    }
    if pos == payload.len() {
        Some(count)
    } else {
        None // trailing garbage inside a valid frame
    }
}

/// When the op log reaches stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// fsync after every appended frame. Slowest, loses nothing on a crash;
    /// a sync failure surfaces to the caller as
    /// [`DurabilityError::SyncFailed`].
    Always,
    /// fsync at most once per second (checked on append). The Redis
    /// `everysec` tradeoff: a crash loses at most the last second of frames;
    /// sync failures are absorbed into the
    /// [`DurabilityStats::aof_sync_failures`] counter.
    #[default]
    EverySecond,
    /// Never fsync from the append path — the OS decides. Fastest; an
    /// explicit [`AofWriter::sync`] is still available.
    Never,
}

/// Appends checksummed frames to an op log file under a [`SyncPolicy`].
///
/// The writer is format-agnostic at the frame level
/// ([`AofWriter::append_payload`]); [`AofWriter::append_ops`] is the graph-op
/// convenience. It never panics on I/O failure: write errors propagate typed,
/// sync failures follow the policy (surface on `Always`, count-and-continue
/// otherwise).
#[derive(Debug)]
pub struct AofWriter<F> {
    file: F,
    policy: SyncPolicy,
    /// Logical end offset: bytes successfully handed to the file so far
    /// (header included). This is the offset snapshots record for replay.
    offset: u64,
    last_sync: Instant,
    dirty_since_sync: bool,
    stats: DurabilityStats,
}

impl<F: DurableFile> AofWriter<F> {
    /// Wraps an open append handle whose current length is `offset`.
    pub fn new(file: F, policy: SyncPolicy, offset: u64) -> Self {
        Self {
            file,
            policy,
            offset,
            last_sync: Instant::now(),
            dirty_since_sync: false,
            stats: DurabilityStats::default(),
        }
    }

    /// Current logical end offset of the log.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// The configured sync policy.
    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> &DurabilityStats {
        &self.stats
    }

    /// Mutable counters (the store layer adds its snapshot/rewrite counts).
    pub fn stats_mut(&mut self) -> &mut DurabilityStats {
        &mut self.stats
    }

    /// Appends one framed `payload` and applies the sync policy. Returns the
    /// new end offset.
    pub fn append_payload(&mut self, payload: &[u8]) -> Result<u64> {
        let mut frame = Vec::with_capacity(payload.len() + crate::frame::FRAME_HEADER_LEN);
        encode_frame(payload, &mut frame);
        self.file.write_all(&frame)?;
        self.offset += frame.len() as u64;
        self.stats.aof_frames_appended += 1;
        self.stats.aof_bytes_appended += frame.len() as u64;
        self.dirty_since_sync = true;
        self.apply_sync_policy()?;
        Ok(self.offset)
    }

    /// Appends several framed payloads as one group commit: every frame is
    /// encoded into a single buffered write and the sync policy is applied
    /// once for the whole group instead of per frame — under
    /// [`SyncPolicy::Always`] a batch of N commands costs one fsync, not N.
    /// Returns the new end offset (unchanged for an empty batch).
    pub fn append_payloads<'a>(
        &mut self,
        payloads: impl IntoIterator<Item = &'a [u8]>,
    ) -> Result<u64> {
        let mut batch = Vec::new();
        let mut frames = 0u64;
        for payload in payloads {
            encode_frame(payload, &mut batch);
            frames += 1;
        }
        if frames == 0 {
            return Ok(self.offset);
        }
        self.file.write_all(&batch)?;
        self.offset += batch.len() as u64;
        self.stats.aof_frames_appended += frames;
        self.stats.aof_bytes_appended += batch.len() as u64;
        self.dirty_since_sync = true;
        self.apply_sync_policy()?;
        Ok(self.offset)
    }

    /// Appends a batch of graph ops as one frame. Returns the new end offset.
    pub fn append_ops(&mut self, ops: &[GraphOp]) -> Result<u64> {
        let offset = self.append_payload(&encode_ops(ops))?;
        self.stats.aof_ops_appended += ops.len() as u64;
        Ok(offset)
    }

    /// Clock-driven flush for [`SyncPolicy::EverySecond`]: syncs if the log
    /// has been dirty for at least the policy interval. The append path only
    /// checks the interval when a command happens to arrive, so an
    /// idle-then-burst workload could leave its burst unsynced indefinitely —
    /// a serving loop calls this from its own timer to close that hole. Sync
    /// failures degrade exactly like the append path (counted, retried next
    /// interval). No-op under `Always` (nothing is ever dirty) and `Never`
    /// (the OS decides).
    pub fn tick(&mut self) -> Result<()> {
        match self.policy {
            SyncPolicy::EverySecond => self.apply_sync_policy(),
            SyncPolicy::Always | SyncPolicy::Never => Ok(()),
        }
    }

    /// Explicit fsync. Failures always surface (and are counted).
    pub fn sync(&mut self) -> Result<()> {
        match self.file.sync() {
            Ok(()) => {
                self.stats.aof_syncs += 1;
                self.last_sync = Instant::now();
                self.dirty_since_sync = false;
                Ok(())
            }
            Err(e) => {
                self.stats.aof_sync_failures += 1;
                Err(e)
            }
        }
    }

    fn apply_sync_policy(&mut self) -> Result<()> {
        match self.policy {
            SyncPolicy::Always => self.sync(),
            SyncPolicy::EverySecond => {
                if self.dirty_since_sync && self.last_sync.elapsed() >= Duration::from_secs(1) {
                    match self.sync() {
                        Ok(()) => {}
                        // Degrade on fsync failure: the counter records it,
                        // appends continue, the next second retries.
                        Err(DurabilityError::SyncFailed { .. }) => {
                            self.last_sync = Instant::now();
                        }
                        Err(e) => return Err(e),
                    }
                }
                Ok(())
            }
            SyncPolicy::Never => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{scan_frames, RecoveryMode};
    use crate::io::Vfs;
    use crate::sim::SimVfs;

    #[test]
    fn varints_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
        }
        assert_eq!(pos, buf.len());
        // Truncated and overflowing inputs fail cleanly.
        assert_eq!(read_varint(&[0x80], &mut 0), None);
        assert_eq!(read_varint(&[0xFF; 11], &mut 0), None);
    }

    #[test]
    fn ops_round_trip_through_a_frame_payload() {
        let ops = [
            GraphOp::Insert { u: 1, v: 2, w: 1 },
            GraphOp::Insert {
                u: u64::MAX,
                v: 0,
                w: 300,
            },
            GraphOp::Delete { u: 1, v: 2, w: 0 },
            GraphOp::Delete { u: 9, v: 9, w: 5 },
        ];
        let payload = encode_ops(&ops);
        let mut back = Vec::new();
        assert_eq!(decode_ops(&payload, &mut back), Some(ops.len()));
        assert_eq!(back, ops);
        // Malformed payloads decode to None, not garbage.
        assert_eq!(
            decode_ops(&payload[..payload.len() - 1], &mut Vec::new()),
            None
        );
        let mut trailing = payload.clone();
        trailing.push(7);
        assert_eq!(decode_ops(&trailing, &mut Vec::new()), None);
        assert_eq!(decode_ops(&[42], &mut Vec::new()), None);
    }

    #[test]
    fn writer_appends_scannable_frames_and_tracks_offsets() {
        let vfs = SimVfs::new();
        let file = vfs.create("aof").unwrap();
        let mut w = AofWriter::new(file, SyncPolicy::Never, 0);
        let end1 = w
            .append_ops(&[GraphOp::Insert { u: 1, v: 2, w: 1 }])
            .unwrap();
        let end2 = w
            .append_ops(&[
                GraphOp::Insert { u: 3, v: 4, w: 1 },
                GraphOp::Delete { u: 1, v: 2, w: 0 },
            ])
            .unwrap();
        assert!(end2 > end1);
        assert_eq!(w.offset(), end2);
        assert_eq!(w.stats().aof_frames_appended, 2);
        assert_eq!(w.stats().aof_ops_appended, 3);

        let bytes = vfs.read("aof").unwrap();
        assert_eq!(bytes.len() as u64, end2);
        let mut ops = Vec::new();
        let outcome = scan_frames(&bytes, 0, RecoveryMode::Strict, "aof", |p| {
            decode_ops(p, &mut ops).unwrap();
        })
        .unwrap();
        assert_eq!(outcome.frames, 2);
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn always_policy_surfaces_sync_failure_as_typed_error_and_counts_it() {
        let vfs = SimVfs::new();
        let file = vfs.create("aof").unwrap();
        let mut w = AofWriter::new(file, SyncPolicy::Always, 0);
        w.append_ops(&[GraphOp::Insert { u: 1, v: 2, w: 1 }])
            .unwrap();
        assert_eq!(w.stats().aof_syncs, 1);

        vfs.fail_next_syncs(1);
        let err = w
            .append_ops(&[GraphOp::Insert { u: 3, v: 4, w: 1 }])
            .unwrap_err();
        assert!(matches!(err, DurabilityError::SyncFailed { .. }));
        assert_eq!(w.stats().aof_sync_failures, 1);
        // The frame itself was appended and the writer keeps working.
        assert_eq!(w.stats().aof_frames_appended, 2);
        w.append_ops(&[GraphOp::Insert { u: 5, v: 6, w: 1 }])
            .unwrap();
        assert_eq!(w.stats().aof_syncs, 2);
    }

    #[test]
    fn group_commit_appends_many_frames_under_one_sync() {
        let vfs = SimVfs::new();
        let file = vfs.create("aof").unwrap();
        let mut w = AofWriter::new(file, SyncPolicy::Always, 0);
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 4]).collect();
        let end = w
            .append_payloads(payloads.iter().map(Vec::as_slice))
            .unwrap();
        assert_eq!(w.stats().aof_frames_appended, 10);
        assert_eq!(vfs.total_syncs(), 1, "one fsync for the whole group");
        assert_eq!(w.offset(), end);

        // The empty group is a no-op, and the frames scan back individually.
        assert_eq!(w.append_payloads(std::iter::empty()).unwrap(), end);
        assert_eq!(vfs.total_syncs(), 1);
        let bytes = vfs.read("aof").unwrap();
        let mut seen = Vec::new();
        scan_frames(&bytes, 0, RecoveryMode::Strict, "aof", |p| {
            seen.push(p.to_vec());
        })
        .unwrap();
        assert_eq!(seen, payloads);
    }

    #[test]
    fn every_second_tick_flushes_an_idle_burst_from_the_loop_clock() {
        let vfs = SimVfs::new();
        let file = vfs.create("aof").unwrap();
        let mut w = AofWriter::new(file, SyncPolicy::EverySecond, 0);
        // A burst shortly after start-up: the per-append interval check has
        // not elapsed, so nothing syncs — this is the hole tick() closes.
        w.append_ops(&[GraphOp::Insert { u: 1, v: 2, w: 1 }])
            .unwrap();
        assert_eq!(vfs.total_syncs(), 0, "append within the interval");
        w.tick().unwrap();
        assert_eq!(vfs.total_syncs(), 0, "interval still not elapsed");

        // The serving loop keeps ticking while the connection goes idle; once
        // the interval passes, the dirty burst reaches disk with no further
        // append required.
        w.last_sync = Instant::now() - Duration::from_secs(2);
        w.tick().unwrap();
        assert_eq!(vfs.total_syncs(), 1, "loop clock drove the flush");
        assert_eq!(w.stats().aof_syncs, 1);
        w.tick().unwrap();
        assert_eq!(vfs.total_syncs(), 1, "clean log: tick is a no-op");

        // Failures degrade like the append path: counted, retried later.
        w.append_ops(&[GraphOp::Insert { u: 3, v: 4, w: 1 }])
            .unwrap();
        w.last_sync = Instant::now() - Duration::from_secs(2);
        vfs.fail_next_syncs(1);
        w.tick().unwrap();
        assert_eq!(w.stats().aof_sync_failures, 1);
        w.last_sync = Instant::now() - Duration::from_secs(2);
        w.tick().unwrap();
        assert_eq!(vfs.total_syncs(), 2, "next interval retried and synced");
    }

    #[test]
    fn never_policy_does_not_sync_but_explicit_sync_works() {
        let vfs = SimVfs::new();
        let file = vfs.create("aof").unwrap();
        let mut w = AofWriter::new(file, SyncPolicy::Never, 0);
        for i in 0..10 {
            w.append_ops(&[GraphOp::Insert {
                u: i,
                v: i + 1,
                w: 1,
            }])
            .unwrap();
        }
        assert_eq!(vfs.total_syncs(), 0);
        w.sync().unwrap();
        assert_eq!(vfs.total_syncs(), 1);
    }
}
