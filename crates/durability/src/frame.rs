//! The batch frame layer shared by the AOF and the snapshot format.
//!
//! A log file is an 8-byte magic header followed by self-delimiting frames:
//!
//! ```text
//! [len: u32 LE][crc32(payload): u32 LE][payload: len bytes]
//! ```
//!
//! Frames are opaque here — the op log packs graph ops into them, the kvstore
//! packs commands, the snapshot packs per-shard record sections. The scanner
//! walks frames front-to-back and classifies the first invalid position: in
//! [`RecoveryMode::TolerateTornTail`] (the default) everything from a torn or
//! corrupt frame onward is dropped and the caller truncates the file at the
//! last valid frame; [`RecoveryMode::Strict`] turns the same positions into
//! [`DurabilityError::Corrupt`].

use crate::crc::crc32;
use crate::io::{DurabilityError, Result};

/// Magic header of a graph op log.
pub const AOF_MAGIC: &[u8; 8] = b"CKGRAOF1";
/// Magic header of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CKGRSNP1";
/// Magic header of a kvstore command log.
pub const KV_AOF_MAGIC: &[u8; 8] = b"CKKVAOF1";

/// Frames above this payload size are rejected as corruption — a garbage
/// length field must not trigger a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 28;

/// Per-frame overhead: length + checksum.
pub const FRAME_HEADER_LEN: usize = 8;

/// How replay treats an invalid position in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMode {
    /// Accept every valid leading frame and drop the torn/corrupt tail
    /// (truncate-at-last-valid-frame). The default: a crash mid-append leaves
    /// exactly this shape.
    #[default]
    TolerateTornTail,
    /// Any invalid byte is an error — for operators who prefer to stop and
    /// inspect rather than silently drop a tail.
    Strict,
}

/// Appends one framed `payload` to `out`.
pub fn encode_frame(payload: &[u8], out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// What a frame scan established about the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOutcome {
    /// Number of valid frames visited.
    pub frames: u64,
    /// Absolute offset just past the last valid frame. The file is truncated
    /// here before appending resumes.
    pub valid_len: u64,
    /// Bytes dropped after `valid_len` (0 when the file ends cleanly).
    pub dropped_bytes: u64,
}

/// Result of validating a file's magic header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderState {
    /// Zero-length file: a log that was never started.
    Empty,
    /// Magic matches; frames begin at offset 8.
    Valid,
    /// The file holds a strict prefix of the magic — a crash tore the very
    /// first write. Only reported in [`RecoveryMode::TolerateTornTail`];
    /// recovery treats the log as empty.
    TornHeader,
}

/// Validates the magic header of `bytes`.
pub fn check_header(
    bytes: &[u8],
    magic: &[u8; 8],
    mode: RecoveryMode,
    path: &str,
) -> Result<HeaderState> {
    if bytes.is_empty() {
        return Ok(HeaderState::Empty);
    }
    if bytes.len() < magic.len() {
        return if bytes == &magic[..bytes.len()] && mode == RecoveryMode::TolerateTornTail {
            Ok(HeaderState::TornHeader)
        } else {
            Err(DurabilityError::Corrupt {
                path: path.to_string(),
                offset: 0,
                detail: "truncated magic header".to_string(),
            })
        };
    }
    if &bytes[..magic.len()] != magic {
        return Err(DurabilityError::Corrupt {
            path: path.to_string(),
            offset: 0,
            detail: format!(
                "bad magic: expected {:02x?}, found {:02x?}",
                magic,
                &bytes[..magic.len()]
            ),
        });
    }
    Ok(HeaderState::Valid)
}

/// Scans frames in `bytes` starting at absolute offset `start`, calling
/// `visit` with each valid payload in order. See [`RecoveryMode`] for how the
/// first invalid position is treated.
pub fn scan_frames(
    bytes: &[u8],
    start: u64,
    mode: RecoveryMode,
    path: &str,
    mut visit: impl FnMut(&[u8]),
) -> Result<ScanOutcome> {
    let mut pos = start as usize;
    let mut frames = 0u64;
    let fail = |frames: u64, pos: usize, detail: String| -> Result<ScanOutcome> {
        match mode {
            RecoveryMode::TolerateTornTail => Ok(ScanOutcome {
                frames,
                valid_len: pos as u64,
                dropped_bytes: (bytes.len() - pos) as u64,
            }),
            RecoveryMode::Strict => Err(DurabilityError::Corrupt {
                path: path.to_string(),
                offset: pos as u64,
                detail,
            }),
        }
    };
    if pos > bytes.len() {
        return Err(DurabilityError::Corrupt {
            path: path.to_string(),
            offset: start,
            detail: format!("scan start {start} beyond file end {}", bytes.len()),
        });
    }
    loop {
        if pos == bytes.len() {
            return Ok(ScanOutcome {
                frames,
                valid_len: pos as u64,
                dropped_bytes: 0,
            });
        }
        if bytes.len() - pos < FRAME_HEADER_LEN {
            return fail(frames, pos, "torn frame header".to_string());
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let expect_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            return fail(frames, pos, format!("frame length {len} exceeds limit"));
        }
        let body_start = pos + FRAME_HEADER_LEN;
        let body_end = body_start + len as usize;
        if body_end > bytes.len() {
            return fail(frames, pos, "torn frame body".to_string());
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != expect_crc {
            return fail(frames, pos, "frame checksum mismatch".to_string());
        }
        visit(payload);
        frames += 1;
        pos = body_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_with(payloads: &[&[u8]]) -> Vec<u8> {
        let mut out = AOF_MAGIC.to_vec();
        for p in payloads {
            encode_frame(p, &mut out);
        }
        out
    }

    fn collect(bytes: &[u8], mode: RecoveryMode) -> (Vec<Vec<u8>>, ScanOutcome) {
        let mut seen = Vec::new();
        let outcome = scan_frames(bytes, 8, mode, "test", |p| seen.push(p.to_vec())).unwrap();
        (seen, outcome)
    }

    #[test]
    fn clean_log_round_trips() {
        let log = log_with(&[b"one", b"", b"three"]);
        assert_eq!(
            check_header(&log, AOF_MAGIC, RecoveryMode::Strict, "t").unwrap(),
            HeaderState::Valid
        );
        let (seen, outcome) = collect(&log, RecoveryMode::Strict);
        assert_eq!(seen, vec![b"one".to_vec(), b"".to_vec(), b"three".to_vec()]);
        assert_eq!(outcome.frames, 3);
        assert_eq!(outcome.valid_len, log.len() as u64);
        assert_eq!(outcome.dropped_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let log = log_with(&[b"alpha", b"beta"]);
        let first_end = 8 + FRAME_HEADER_LEN + 5;
        // Cut the log at every byte: the scan must keep exactly the frames
        // wholly before the cut and report the rest dropped.
        for cut in 8..log.len() {
            let (seen, outcome) = collect(&log[..cut], RecoveryMode::TolerateTornTail);
            let expect_frames = usize::from(cut >= first_end) + usize::from(cut >= log.len());
            assert_eq!(seen.len(), expect_frames, "cut at {cut}");
            let expect_valid = if cut >= first_end { first_end } else { 8 };
            assert_eq!(outcome.valid_len as usize, expect_valid, "cut at {cut}");
            assert_eq!(
                outcome.dropped_bytes as usize,
                cut - expect_valid,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn strict_mode_errors_on_torn_tail() {
        let log = log_with(&[b"alpha"]);
        let torn = &log[..log.len() - 1];
        let err = scan_frames(torn, 8, RecoveryMode::Strict, "t", |_| {}).unwrap_err();
        assert!(matches!(err, DurabilityError::Corrupt { .. }));
    }

    #[test]
    fn checksum_mismatch_stops_the_scan() {
        let mut log = log_with(&[b"alpha", b"beta"]);
        let flip = 8 + FRAME_HEADER_LEN; // first payload byte
        log[flip] ^= 0xFF;
        let (seen, outcome) = collect(&log, RecoveryMode::TolerateTornTail);
        assert!(seen.is_empty());
        assert_eq!(outcome.valid_len, 8);
        assert!(
            scan_frames(&log, 8, RecoveryMode::Strict, "t", |_| {}).is_err(),
            "strict mode must error"
        );
    }

    #[test]
    fn garbage_length_is_rejected_not_allocated() {
        let mut log = AOF_MAGIC.to_vec();
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&[0u8; 4]);
        let (seen, outcome) = collect(&log, RecoveryMode::TolerateTornTail);
        assert!(seen.is_empty());
        assert_eq!(outcome.valid_len, 8);
    }

    #[test]
    fn header_states() {
        assert_eq!(
            check_header(b"", AOF_MAGIC, RecoveryMode::Strict, "t").unwrap(),
            HeaderState::Empty
        );
        assert_eq!(
            check_header(
                &AOF_MAGIC[..3],
                AOF_MAGIC,
                RecoveryMode::TolerateTornTail,
                "t"
            )
            .unwrap(),
            HeaderState::TornHeader
        );
        assert!(check_header(&AOF_MAGIC[..3], AOF_MAGIC, RecoveryMode::Strict, "t").is_err());
        assert!(check_header(b"NOTMAGIC", AOF_MAGIC, RecoveryMode::TolerateTornTail, "t").is_err());
        assert!(check_header(SNAPSHOT_MAGIC, AOF_MAGIC, RecoveryMode::Strict, "t").is_err());
    }

    #[test]
    fn scan_from_mid_file_frame_boundary_resumes_cleanly() {
        let log = log_with(&[b"alpha", b"beta", b"gamma"]);
        let second_start = 8 + FRAME_HEADER_LEN + 5;
        let mut seen = Vec::new();
        let outcome = scan_frames(&log, second_start as u64, RecoveryMode::Strict, "t", |p| {
            seen.push(p.to_vec())
        })
        .unwrap();
        assert_eq!(seen, vec![b"beta".to_vec(), b"gamma".to_vec()]);
        assert_eq!(outcome.frames, 2);
    }

    #[test]
    fn scan_start_beyond_end_is_an_error_in_both_modes() {
        let log = log_with(&[b"alpha"]);
        for mode in [RecoveryMode::TolerateTornTail, RecoveryMode::Strict] {
            assert!(scan_frames(&log, log.len() as u64 + 1, mode, "t", |_| {}).is_err());
        }
    }
}
