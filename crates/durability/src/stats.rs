//! Durability instrumentation counters, in the style of the engine's
//! `StructureStats` block: plain monotone `u64`s, read by tests and the
//! perf_smoke durability section, never consulted by hot-path logic.

/// Counters over one durability stack (AOF writer + snapshot machinery).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Frames appended to the op log.
    pub aof_frames_appended: u64,
    /// Individual ops inside those frames.
    pub aof_ops_appended: u64,
    /// Bytes appended to the op log (frame overhead included).
    pub aof_bytes_appended: u64,
    /// Successful fsyncs of the op log.
    pub aof_syncs: u64,
    /// Fsyncs that failed. The writer degrades per its sync policy and
    /// counts, rather than panicking.
    pub aof_sync_failures: u64,
    /// Snapshots written (temp-file + rename commits).
    pub snapshots_written: u64,
    /// Bytes of the most recent snapshot file.
    pub last_snapshot_bytes: u64,
    /// Background AOF rewrites completed.
    pub aof_rewrites: u64,
}
