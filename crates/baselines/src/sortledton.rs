//! Sortledton-like baseline: adjacency index + sorted, blocked adjacency sets.
//!
//! Sortledton [34] keeps a *vertex index* mapping each vertex to its
//! *adjacency set*, stored as a sequence of fixed-capacity sorted blocks
//! (an unrolled sorted list). Small neighbourhoods live in a single block;
//! larger ones are split so that insertions only shift within one block and
//! scans remain mostly sequential. Edge queries binary-search the block
//! directory and then the block, giving the `O(log |E|)` bound in Table III.

use graph_api::{for_each_source_run, DynamicGraph, GraphScheme, MemoryFootprint, NodeId};
use std::collections::HashMap;

/// Capacity of one adjacency block (Sortledton uses cache-line-sized blocks
/// for small sets and larger leaf blocks for big sets; 64 ids ≈ 512 B).
const BLOCK_CAPACITY: usize = 64;

/// A sorted, blocked adjacency set.
#[derive(Debug, Clone, Default)]
struct AdjacencySet {
    /// Blocks in ascending order; each block is internally sorted and
    /// non-empty (except when the whole set is empty).
    blocks: Vec<Vec<NodeId>>,
    len: usize,
}

impl AdjacencySet {
    /// Index of the block that could contain `v`.
    fn block_for(&self, v: NodeId) -> usize {
        // Binary search over block maxima.
        let mut lo = 0usize;
        let mut hi = self.blocks.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            let max = *self.blocks[mid].last().expect("blocks are non-empty");
            if max < v {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo.min(self.blocks.len().saturating_sub(1))
    }

    fn contains(&self, v: NodeId) -> bool {
        if self.blocks.is_empty() {
            return false;
        }
        let b = self.block_for(v);
        self.blocks[b].binary_search(&v).is_ok()
    }

    fn insert(&mut self, v: NodeId) -> bool {
        if self.blocks.is_empty() {
            self.blocks.push(vec![v]);
            self.len = 1;
            return true;
        }
        let b = self.block_for(v);
        match self.blocks[b].binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.blocks[b].insert(pos, v);
                self.len += 1;
                if self.blocks[b].len() > BLOCK_CAPACITY {
                    // Split the block in half, keeping the directory sorted.
                    let tail = self.blocks[b].split_off(BLOCK_CAPACITY / 2);
                    self.blocks.insert(b + 1, tail);
                }
                true
            }
        }
    }

    fn remove(&mut self, v: NodeId) -> bool {
        if self.blocks.is_empty() {
            return false;
        }
        let b = self.block_for(v);
        match self.blocks[b].binary_search(&v) {
            Err(_) => false,
            Ok(pos) => {
                self.blocks[b].remove(pos);
                self.len -= 1;
                if self.blocks[b].is_empty() {
                    self.blocks.remove(b);
                }
                true
            }
        }
    }

    fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.blocks.iter().flatten().copied()
    }

    fn bytes(&self) -> usize {
        self.blocks.capacity() * std::mem::size_of::<Vec<NodeId>>()
            + self
                .blocks
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
    }
}

/// Sortledton-like dynamic graph store.
#[derive(Debug, Clone, Default)]
pub struct SortledtonGraph {
    index: HashMap<NodeId, AdjacencySet>,
    edges: usize,
}

impl SortledtonGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of adjacency blocks allocated across all vertices (test hook for
    /// the blocked layout).
    pub fn block_count(&self) -> usize {
        self.index.values().map(|s| s.blocks.len()).sum()
    }
}

impl MemoryFootprint for SortledtonGraph {
    fn memory_bytes(&self) -> usize {
        let index_bytes = self.index.capacity()
            * (std::mem::size_of::<NodeId>() + std::mem::size_of::<AdjacencySet>() + 8);
        let set_bytes: usize = self.index.values().map(AdjacencySet::bytes).sum();
        std::mem::size_of::<Self>() + index_bytes + set_bytes
    }
}

impl DynamicGraph for SortledtonGraph {
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let inserted = self.index.entry(u).or_default().insert(v);
        if inserted {
            self.edges += 1;
        }
        inserted
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.index.get(&u).is_some_and(|s| s.contains(v))
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(set) = self.index.get_mut(&u) else {
            return false;
        };
        let removed = set.remove(v);
        if removed {
            self.edges -= 1;
        }
        removed
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        if let Some(set) = self.index.get(&u) {
            for v in set.iter() {
                f(v);
            }
        }
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
        for &u in self.index.keys() {
            f(u);
        }
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.index.get(&u).map_or(0, |s| s.len)
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        // One vertex-index lookup per run of same-source edges; the blocked
        // set still binary-searches per destination.
        let mut created = 0usize;
        for_each_source_run(
            edges,
            |e| e.0,
            |u, run| {
                let set = self.index.entry(u).or_default();
                for &(_, v) in run {
                    if set.insert(v) {
                        created += 1;
                    }
                }
            },
        );
        self.edges += created;
        created
    }

    fn edge_count(&self) -> usize {
        self.edges
    }

    fn node_count(&self) -> usize {
        self.index.len()
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.index.keys().copied().collect()
    }

    fn scheme(&self) -> GraphScheme {
        GraphScheme::Sortledton
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_delete_roundtrip() {
        let mut g = SortledtonGraph::new();
        assert!(g.insert_edge(1, 5));
        assert!(g.insert_edge(1, 3));
        assert!(!g.insert_edge(1, 5));
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(1, 4));
        assert!(g.delete_edge(1, 3));
        assert!(!g.delete_edge(1, 3));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn successors_are_returned_sorted() {
        let mut g = SortledtonGraph::new();
        for v in [9u64, 1, 7, 3, 5] {
            g.insert_edge(2, v);
        }
        assert_eq!(g.successors(2), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn blocks_split_for_large_neighbourhoods() {
        let mut g = SortledtonGraph::new();
        for v in 0..1_000u64 {
            g.insert_edge(1, v);
        }
        assert_eq!(g.out_degree(1), 1_000);
        assert!(g.block_count() > 1, "adjacency set never split into blocks");
        // Sorted order must survive block splits.
        let s = g.successors(1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s.len(), 1_000);
        for v in (0..1_000u64).step_by(83) {
            assert!(g.has_edge(1, v));
        }
    }

    #[test]
    fn deletion_drains_blocks() {
        let mut g = SortledtonGraph::new();
        for v in 0..300u64 {
            g.insert_edge(4, v);
        }
        for v in 0..300u64 {
            assert!(g.delete_edge(4, v));
        }
        assert_eq!(g.out_degree(4), 0);
        assert_eq!(g.block_count(), 0);
        assert!(g.successors(4).is_empty());
        assert_eq!(g.scheme(), GraphScheme::Sortledton);
    }

    #[test]
    fn interleaved_sources_stay_independent() {
        let mut g = SortledtonGraph::new();
        for i in 0..500u64 {
            g.insert_edge(i % 5, i);
        }
        for u in 0..5u64 {
            assert_eq!(g.out_degree(u), 100);
        }
        assert_eq!(g.node_count(), 5);
        assert!(g.memory_bytes() > 0);
    }
}
