//! The plain adjacency list — the "traditional" baseline § I starts from.
//!
//! One `Vec` of neighbours per source node, indexed by a `HashMap`. Easy to
//! edit, but pointer-heavy: every vertex owns a separate heap allocation and
//! edge queries are linear in the degree.

use graph_api::{for_each_source_run, DynamicGraph, GraphScheme, MemoryFootprint, NodeId};
use std::collections::HashMap;

/// A plain adjacency-list graph.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyListGraph {
    adjacency: HashMap<NodeId, Vec<NodeId>>,
    edges: usize,
}

impl AdjacencyListGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MemoryFootprint for AdjacencyListGraph {
    fn memory_bytes(&self) -> usize {
        let map_bytes = self.adjacency.capacity()
            * (std::mem::size_of::<NodeId>() + std::mem::size_of::<Vec<NodeId>>() + 8);
        let list_bytes: usize = self
            .adjacency
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<NodeId>())
            .sum();
        std::mem::size_of::<Self>() + map_bytes + list_bytes
    }
}

impl DynamicGraph for AdjacencyListGraph {
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let list = self.adjacency.entry(u).or_default();
        if list.contains(&v) {
            return false;
        }
        list.push(v);
        self.edges += 1;
        true
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency.get(&u).is_some_and(|list| list.contains(&v))
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(list) = self.adjacency.get_mut(&u) else {
            return false;
        };
        let Some(idx) = list.iter().position(|&x| x == v) else {
            return false;
        };
        list.swap_remove(idx);
        self.edges -= 1;
        true
    }

    fn successors(&self, u: NodeId) -> Vec<NodeId> {
        self.adjacency.get(&u).cloned().unwrap_or_default()
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        if let Some(list) = self.adjacency.get(&u) {
            for &v in list {
                f(v);
            }
        }
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
        for &u in self.adjacency.keys() {
            f(u);
        }
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.adjacency.get(&u).map_or(0, Vec::len)
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        // One index lookup per run of same-source edges instead of one per edge.
        let mut created = 0usize;
        for_each_source_run(
            edges,
            |e| e.0,
            |u, run| {
                let list = self.adjacency.entry(u).or_default();
                for &(_, v) in run {
                    if !list.contains(&v) {
                        list.push(v);
                        created += 1;
                    }
                }
            },
        );
        self.edges += created;
        created
    }

    fn edge_count(&self) -> usize {
        self.edges
    }

    fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.adjacency.keys().copied().collect()
    }

    fn scheme(&self) -> GraphScheme {
        GraphScheme::AdjacencyList
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_delete_roundtrip() {
        let mut g = AdjacencyListGraph::new();
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(1, 2));
        assert!(g.insert_edge(1, 3));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(2, 1));
        assert_eq!(g.out_degree(1), 2);
        assert_eq!(g.edge_count(), 2);
        assert!(g.delete_edge(1, 2));
        assert!(!g.delete_edge(1, 2));
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.successors(1), vec![3]);
    }

    #[test]
    fn node_accounting() {
        let mut g = AdjacencyListGraph::new();
        g.insert_edge(1, 2);
        g.insert_edge(3, 4);
        g.insert_edge(3, 5);
        assert_eq!(g.node_count(), 2);
        let mut nodes = g.nodes();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![1, 3]);
        assert_eq!(g.scheme(), GraphScheme::AdjacencyList);
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn for_each_successor_matches_successors() {
        let mut g = AdjacencyListGraph::new();
        for v in 0..20u64 {
            g.insert_edge(9, v);
        }
        let mut seen = Vec::new();
        g.for_each_successor(9, &mut |v| seen.push(v));
        seen.sort_unstable();
        let mut expected = g.successors(9);
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }
}
