//! PCSR-like baseline: a mutable CSR whose neighbour storage is a Packed
//! Memory Array.
//!
//! PCSR [26] replaces the static neighbour array of CSR with a PMA so edges
//! can be inserted and deleted without rebuilding the whole structure. Each
//! edge is stored in the PMA as a single sorted 128-bit-conceptual key
//! `(source, destination)` packed into 64 bits via a per-source interval; the
//! vertex index maps a node to its interval. To keep the substrate simple and
//! exercise the same code path, this implementation gives every source node
//! its own PMA (the "per-vertex PMA region" view of VCSR), which preserves the
//! properties the comparison cares about: sorted, gap-padded neighbour
//! storage with amortised-bounded shifting on update.

use crate::pma::PackedMemoryArray;
use graph_api::{for_each_source_run, DynamicGraph, GraphScheme, MemoryFootprint, NodeId};
use std::collections::HashMap;

/// PCSR-like dynamic graph.
#[derive(Debug, Clone, Default)]
pub struct PcsrGraph {
    vertex_index: HashMap<NodeId, PackedMemoryArray>,
    edges: usize,
}

impl PcsrGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of PMA slots allocated (occupied + gaps) — the space
    /// overhead CSR-family structures pay for updatability.
    pub fn total_slots(&self) -> usize {
        self.vertex_index
            .values()
            .map(PackedMemoryArray::capacity)
            .sum()
    }
}

impl MemoryFootprint for PcsrGraph {
    fn memory_bytes(&self) -> usize {
        let index_bytes = self.vertex_index.capacity()
            * (std::mem::size_of::<NodeId>() + std::mem::size_of::<PackedMemoryArray>() + 8);
        let pma_bytes: usize = self.vertex_index.values().map(|p| p.memory_bytes()).sum();
        std::mem::size_of::<Self>() + index_bytes + pma_bytes
    }
}

impl DynamicGraph for PcsrGraph {
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let inserted = self.vertex_index.entry(u).or_default().insert(v);
        if inserted {
            self.edges += 1;
        }
        inserted
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.vertex_index.get(&u).is_some_and(|p| p.contains(v))
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let Some(pma) = self.vertex_index.get_mut(&u) else {
            return false;
        };
        let removed = pma.remove(v);
        if removed {
            self.edges -= 1;
        }
        removed
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        if let Some(pma) = self.vertex_index.get(&u) {
            for v in pma.iter() {
                f(v);
            }
        }
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
        for &u in self.vertex_index.keys() {
            f(u);
        }
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.vertex_index.get(&u).map_or(0, PackedMemoryArray::len)
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        // One vertex-index lookup per run of same-source edges; the PMA does
        // its usual gap-shifting insert per destination.
        let mut created = 0usize;
        for_each_source_run(
            edges,
            |e| e.0,
            |u, run| {
                let pma = self.vertex_index.entry(u).or_default();
                for &(_, v) in run {
                    if pma.insert(v) {
                        created += 1;
                    }
                }
            },
        );
        self.edges += created;
        created
    }

    fn edge_count(&self) -> usize {
        self.edges
    }

    fn node_count(&self) -> usize {
        self.vertex_index.len()
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.vertex_index.keys().copied().collect()
    }

    fn scheme(&self) -> GraphScheme {
        GraphScheme::Pcsr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_delete_roundtrip() {
        let mut g = PcsrGraph::new();
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(1, 2));
        assert!(g.has_edge(1, 2));
        assert!(g.delete_edge(1, 2));
        assert!(!g.has_edge(1, 2));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.scheme(), GraphScheme::Pcsr);
    }

    #[test]
    fn neighbours_are_sorted_like_csr() {
        let mut g = PcsrGraph::new();
        for v in [9u64, 2, 7, 4, 1] {
            g.insert_edge(5, v);
        }
        assert_eq!(g.successors(5), vec![1, 2, 4, 7, 9]);
        assert_eq!(g.out_degree(5), 5);
    }

    #[test]
    fn gap_padding_costs_extra_slots() {
        let mut g = PcsrGraph::new();
        for v in 0..1_000u64 {
            g.insert_edge(1, v);
        }
        assert!(g.total_slots() > 1_000, "PMA keeps gaps for future inserts");
        assert!(g.memory_bytes() > 1_000 * 8);
        for v in (0..1_000u64).step_by(113) {
            assert!(g.has_edge(1, v));
        }
    }

    #[test]
    fn many_sources_round_trip() {
        let mut g = PcsrGraph::new();
        for u in 0..100u64 {
            for v in 0..30u64 {
                g.insert_edge(u, v * 2);
            }
        }
        assert_eq!(g.edge_count(), 3_000);
        assert_eq!(g.node_count(), 100);
        for u in (0..100u64).step_by(17) {
            assert_eq!(g.out_degree(u), 30);
            assert!(g.has_edge(u, 58));
            assert!(!g.has_edge(u, 59));
        }
        let mut nodes = g.nodes();
        nodes.sort_unstable();
        assert_eq!(nodes.len(), 100);
    }
}
