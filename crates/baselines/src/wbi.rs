//! Wind-Bell Index (WBI) baseline: adjacency matrix + hanging adjacency lists.
//!
//! WBI [35] hashes both endpoints of an edge into a `K × K` matrix of buckets;
//! each bucket carries a pointer to a "hanging" adjacency list that stores the
//! edges mapped to it. To mitigate the skew caused by high-degree nodes, every
//! edge has several candidate buckets (one per hash function) and insertion
//! appends to the *shortest* hanging list; queries therefore have to look at
//! every candidate bucket. Successor queries must scan an entire matrix row
//! per hash function, touching many unrelated edges — the reason WBI performs
//! worst on traversal-heavy tasks in the paper's Figures 10–16.

use graph_api::{for_each_source_run, DynamicGraph, GraphScheme, MemoryFootprint, NodeId};
use std::collections::HashSet;

/// Default matrix side length `K` (the paper treats `K` as a WBI parameter;
/// its space complexity is `O(K² + |E|)`).
pub const DEFAULT_K: usize = 64;

/// Number of hash functions / candidate buckets per edge.
const HASH_CHOICES: usize = 2;

#[derive(Debug, Clone, Default)]
struct Bucket {
    edges: Vec<(NodeId, NodeId)>,
}

/// Wind-Bell Index graph store.
#[derive(Debug, Clone)]
pub struct WindBellIndex {
    k: usize,
    /// Row-major `K × K` bucket matrix.
    matrix: Vec<Bucket>,
    /// Known source nodes (WBI itself has no vertex table; the evaluation
    /// driver needs node listings, so we track sources separately).
    sources: HashSet<NodeId>,
    edges: usize,
}

impl Default for WindBellIndex {
    fn default() -> Self {
        Self::with_k(DEFAULT_K)
    }
}

impl WindBellIndex {
    /// Creates a WBI with the default matrix size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a WBI with a `k × k` matrix.
    pub fn with_k(k: usize) -> Self {
        let k = k.max(1);
        Self {
            k,
            matrix: vec![Bucket::default(); k * k],
            sources: HashSet::new(),
            edges: 0,
        }
    }

    /// The matrix side length.
    pub fn k(&self) -> usize {
        self.k
    }

    #[inline]
    fn hash_node(node: NodeId, which: usize) -> u64 {
        // Two cheap independent mixers standing in for the paper's multiple
        // hash functions.
        let seed = [0x9e37_79b9_7f4a_7c15u64, 0xc2b2_ae3d_27d4_eb4fu64][which];
        let mut x = node ^ seed;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }

    /// Candidate matrix cells of edge `⟨u, v⟩`, one per hash function.
    fn candidate_cells(&self, u: NodeId, v: NodeId) -> [usize; HASH_CHOICES] {
        let mut cells = [0usize; HASH_CHOICES];
        for (i, cell) in cells.iter_mut().enumerate() {
            let row = (Self::hash_node(u, i) as usize) % self.k;
            let col = (Self::hash_node(v, i) as usize) % self.k;
            *cell = row * self.k + col;
        }
        cells
    }

    /// Candidate rows of source `u`, one per hash function.
    fn candidate_rows(&self, u: NodeId) -> [usize; HASH_CHOICES] {
        let mut rows = [0usize; HASH_CHOICES];
        for (i, row) in rows.iter_mut().enumerate() {
            *row = (Self::hash_node(u, i) as usize) % self.k;
        }
        rows
    }

    /// Average hanging-list length (test hook for the load-balancing claim).
    pub fn average_list_length(&self) -> f64 {
        let non_empty = self.matrix.iter().filter(|b| !b.edges.is_empty()).count();
        if non_empty == 0 {
            0.0
        } else {
            self.edges as f64 / non_empty as f64
        }
    }
}

impl MemoryFootprint for WindBellIndex {
    fn memory_bytes(&self) -> usize {
        let matrix_bytes = self.matrix.capacity() * std::mem::size_of::<Bucket>();
        let list_bytes: usize = self
            .matrix
            .iter()
            .map(|b| b.edges.capacity() * std::mem::size_of::<(NodeId, NodeId)>())
            .sum();
        let source_bytes = self.sources.capacity() * (std::mem::size_of::<NodeId>() + 8);
        std::mem::size_of::<Self>() + matrix_bytes + list_bytes + source_bytes
    }
}

impl DynamicGraph for WindBellIndex {
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if self.has_edge(u, v) {
            return false;
        }
        // Multi-hash choice: append to the shortest candidate hanging list.
        let cells = self.candidate_cells(u, v);
        let shortest = cells
            .into_iter()
            .min_by_key(|&c| self.matrix[c].edges.len())
            .expect("at least one candidate cell");
        self.matrix[shortest].edges.push((u, v));
        self.sources.insert(u);
        self.edges += 1;
        true
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.candidate_cells(u, v)
            .into_iter()
            .any(|c| self.matrix[c].edges.iter().any(|&(a, b)| a == u && b == v))
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        for c in self.candidate_cells(u, v) {
            let bucket = &mut self.matrix[c];
            if let Some(idx) = bucket.edges.iter().position(|&(a, b)| a == u && b == v) {
                bucket.edges.swap_remove(idx);
                self.edges -= 1;
                return true;
            }
        }
        false
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        // A successor query must scan the candidate rows of `u` in full,
        // touching every edge hanging off those rows (including edges of other
        // sources that happen to share the rows) — WBI's structural weakness.
        // Each stored edge lives in exactly one bucket and the duplicate row
        // guard skips coinciding candidate rows, so every successor is
        // reported exactly once.
        let mut seen_rows = [usize::MAX; HASH_CHOICES];
        for (i, row) in self.candidate_rows(u).into_iter().enumerate() {
            if seen_rows[..i].contains(&row) {
                continue;
            }
            seen_rows[i] = row;
            for col in 0..self.k {
                for &(a, b) in &self.matrix[row * self.k + col].edges {
                    if a == u {
                        f(b);
                    }
                }
            }
        }
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
        for &u in &self.sources {
            f(u);
        }
    }

    fn successors(&self, u: NodeId) -> Vec<NodeId> {
        // Sorted for deterministic output (the visitor reports matrix order).
        let mut out = Vec::new();
        self.for_each_successor(u, &mut |v| out.push(v));
        out.sort_unstable();
        out.dedup();
        out
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        // Every edge still hashes into the matrix individually; the only
        // hoistable setup is the source registration, done once per run.
        let mut created = 0usize;
        for_each_source_run(
            edges,
            |e| e.0,
            |u, run| {
                let mut any = false;
                for &(_, v) in run {
                    if self.has_edge(u, v) {
                        continue;
                    }
                    let cells = self.candidate_cells(u, v);
                    let shortest = cells
                        .into_iter()
                        .min_by_key(|&c| self.matrix[c].edges.len())
                        .expect("at least one candidate cell");
                    self.matrix[shortest].edges.push((u, v));
                    created += 1;
                    any = true;
                }
                if any {
                    self.sources.insert(u);
                }
            },
        );
        self.edges += created;
        created
    }

    fn edge_count(&self) -> usize {
        self.edges
    }

    fn node_count(&self) -> usize {
        self.sources.len()
    }

    fn scheme(&self) -> GraphScheme {
        GraphScheme::WindBellIndex
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_delete_roundtrip() {
        let mut g = WindBellIndex::new();
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(1, 2));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(2, 1));
        assert!(g.delete_edge(1, 2));
        assert!(!g.delete_edge(1, 2));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn successors_filter_out_other_sources_sharing_rows() {
        // A small matrix forces many sources to share rows; successor queries
        // must still only report the queried source's neighbours.
        let mut g = WindBellIndex::with_k(4);
        for u in 0..20u64 {
            for v in 0..5u64 {
                g.insert_edge(u, 100 + v);
            }
        }
        for u in 0..20u64 {
            assert_eq!(g.successors(u), vec![100, 101, 102, 103, 104]);
            assert_eq!(g.out_degree(u), 5);
        }
        assert_eq!(g.edge_count(), 100);
        assert_eq!(g.node_count(), 20);
    }

    #[test]
    fn shortest_list_insertion_balances_buckets() {
        let mut g = WindBellIndex::with_k(8);
        for v in 0..2_000u64 {
            g.insert_edge(1, v);
        }
        // With 2 hash choices per edge the hanging lists stay reasonably even:
        // the longest list must not dominate the total.
        let longest = g.matrix.iter().map(|b| b.edges.len()).max().unwrap();
        assert!(
            longest < 2_000 / 4,
            "one hanging list holds {longest} of 2000 edges"
        );
        assert!(g.average_list_length() > 0.0);
    }

    #[test]
    fn small_k_still_correct_under_churn() {
        let mut g = WindBellIndex::with_k(2);
        for i in 0..300u64 {
            g.insert_edge(i % 10, i);
        }
        for i in (0..300u64).step_by(2) {
            assert!(g.delete_edge(i % 10, i));
        }
        for i in 0..300u64 {
            assert_eq!(g.has_edge(i % 10, i), i % 2 == 1, "edge ({}, {i})", i % 10);
        }
        assert_eq!(g.edge_count(), 150);
        assert_eq!(g.scheme(), GraphScheme::WindBellIndex);
        assert!(g.memory_bytes() > 0);
    }
}
