//! Static Compressed Sparse Row (CSR) — the other classic layout § I starts
//! from. It is built once from an edge list, is extremely compact and fast to
//! traverse, but cannot be updated without a full rebuild, which is exactly
//! the limitation PCSR (and, differently, CuckooGraph) address.

use graph_api::{MemoryFootprint, NodeId};
use std::collections::HashMap;

/// A static CSR representation of a directed graph.
#[derive(Debug, Clone, Default)]
pub struct CsrGraph {
    /// Dense index of each known node (sources and destinations).
    node_index: HashMap<NodeId, usize>,
    /// The node at each dense index.
    node_ids: Vec<NodeId>,
    /// `offsets[i]..offsets[i + 1]` is the neighbour range of dense node `i`.
    offsets: Vec<usize>,
    /// Concatenated, per-source-sorted neighbour ids.
    neighbors: Vec<NodeId>,
}

impl CsrGraph {
    /// Builds a CSR from an edge list. Duplicate edges are kept once.
    pub fn from_edges(edges: &[(NodeId, NodeId)]) -> Self {
        let mut dedup: Vec<(NodeId, NodeId)> = edges.to_vec();
        dedup.sort_unstable();
        dedup.dedup();

        let mut node_index = HashMap::new();
        let mut node_ids = Vec::new();
        let intern =
            |id: NodeId, node_index: &mut HashMap<NodeId, usize>, node_ids: &mut Vec<NodeId>| {
                *node_index.entry(id).or_insert_with(|| {
                    node_ids.push(id);
                    node_ids.len() - 1
                })
            };
        for &(u, v) in &dedup {
            intern(u, &mut node_index, &mut node_ids);
            intern(v, &mut node_index, &mut node_ids);
        }

        let n = node_ids.len();
        let mut degree = vec![0usize; n];
        for &(u, _) in &dedup {
            degree[node_index[&u]] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; dedup.len()];
        for &(u, v) in &dedup {
            let ui = node_index[&u];
            neighbors[cursor[ui]] = v;
            cursor[ui] += 1;
        }
        Self {
            node_index,
            node_ids,
            offsets,
            neighbors,
        }
    }

    /// Rebuilds the CSR with one additional edge — the expensive operation
    /// dynamic workloads cannot afford, reproduced here so the ablation bench
    /// can show why CSR alone is not a dynamic-graph answer.
    pub fn with_edge(&self, u: NodeId, v: NodeId) -> Self {
        let mut edges = self.edges();
        edges.push((u, v));
        Self::from_edges(&edges)
    }

    /// Number of distinct nodes (sources and destinations).
    pub fn node_count(&self) -> usize {
        self.node_ids.len()
    }

    /// Number of stored edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.len()
    }

    /// True if edge `⟨u, v⟩` is stored.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.successors(u).binary_search(&v).is_ok()
    }

    /// Neighbour slice of `u` (sorted ascending), empty if unknown.
    pub fn successors(&self, u: NodeId) -> &[NodeId] {
        match self.node_index.get(&u) {
            None => &[],
            Some(&i) => &self.neighbors[self.offsets[i]..self.offsets[i + 1]],
        }
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.successors(u).len()
    }

    /// Every stored edge, sorted.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.neighbors.len());
        for (i, &u) in self.node_ids.iter().enumerate() {
            for &v in &self.neighbors[self.offsets[i]..self.offsets[i + 1]] {
                out.push((u, v));
            }
        }
        out.sort_unstable();
        out
    }
}

impl MemoryFootprint for CsrGraph {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.node_index.capacity() * (std::mem::size_of::<(NodeId, usize)>() + 8)
            + self.node_ids.capacity() * std::mem::size_of::<NodeId>()
            + self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.neighbors.capacity() * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_edge_list_and_answers_queries() {
        let g = CsrGraph::from_edges(&[(1, 2), (1, 3), (2, 3), (1, 2)]);
        assert_eq!(g.edge_count(), 3, "duplicates must be folded");
        assert_eq!(g.node_count(), 3);
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 3));
        assert!(!g.has_edge(3, 2));
        assert_eq!(g.successors(1), &[2, 3]);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.out_degree(99), 0);
    }

    #[test]
    fn update_requires_full_rebuild() {
        let g = CsrGraph::from_edges(&[(1, 2)]);
        let g2 = g.with_edge(3, 4);
        assert!(!g.has_edge(3, 4));
        assert!(g2.has_edge(3, 4));
        assert_eq!(g2.edge_count(), 2);
        assert_eq!(g2.edges(), vec![(1, 2), (3, 4)]);
    }

    #[test]
    fn memory_is_compact_relative_to_edges() {
        let edges: Vec<(u64, u64)> = (0..10_000u64).map(|i| (i % 100, i)).collect();
        let g = CsrGraph::from_edges(&edges);
        assert_eq!(g.edge_count(), 10_000);
        // CSR stores each edge once (8 bytes) plus offsets — comfortably under
        // 64 bytes/edge even with the node index included.
        assert!(g.memory_bytes() < 10_000 * 64);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = CsrGraph::from_edges(&[]);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 0);
        assert!(g.successors(1).is_empty());
        assert!(g.edges().is_empty());
    }
}
