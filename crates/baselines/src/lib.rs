//! Re-implementations of the dynamic-graph storage schemes the paper compares
//! CuckooGraph against (§ II-A, § V-A "Competitors"), plus the classic static
//! structures they evolved from.
//!
//! All of them sit behind the shared [`graph_api::DynamicGraph`] trait so the
//! benchmark harness and the analytics algorithms treat every scheme exactly
//! the same way the paper's evaluation driver does.
//!
//! | Module | Scheme | Paper reference |
//! |--------|--------|-----------------|
//! | [`adjacency_list`] | plain adjacency list | § I (the traditional baseline) |
//! | [`livegraph`] | LiveGraph: vertex blocks + transactional edge log | [30] |
//! | [`sortledton`] | Sortledton: adjacency index + sorted blocked sets | [34] |
//! | [`wbi`] | Wind-Bell Index: adjacency matrix + hanging lists | [35] |
//! | [`spruce`] | Spruce: split node index + adjacency edge storage | [36] |
//! | [`pma`] | Packed Memory Array (substrate for PCSR) | [44] |
//! | [`csr`] | static Compressed Sparse Row | § I |
//! | [`pcsr`] | PCSR: PMA-backed mutable CSR | [26] |
//!
//! These are clean-room re-implementations of the *storage data structures*
//! (the part the paper measures); transactional/MVCC machinery that the
//! paper's single-threaded evaluation never exercises is reduced to sequence
//! stamping, as documented in `DESIGN.md`.

pub mod adjacency_list;
pub mod csr;
pub mod livegraph;
pub mod pcsr;
pub mod pma;
pub mod sortledton;
pub mod spruce;
pub mod wbi;

pub use adjacency_list::AdjacencyListGraph;
pub use csr::CsrGraph;
pub use livegraph::LiveGraphStore;
pub use pcsr::PcsrGraph;
pub use pma::PackedMemoryArray;
pub use sortledton::SortledtonGraph;
pub use spruce::SpruceGraph;
pub use wbi::WindBellIndex;

use graph_api::DynamicGraph;

/// Builds one instance of every dynamic scheme the paper benchmarks
/// (Figures 6–16), boxed behind the common trait. The plain adjacency list is
/// included as an extra reference point.
pub fn all_schemes() -> Vec<Box<dyn DynamicGraph>> {
    vec![
        Box::new(livegraph::LiveGraphStore::new()),
        Box::new(spruce::SpruceGraph::new()),
        Box::new(sortledton::SortledtonGraph::new()),
        Box::new(wbi::WindBellIndex::new()),
        Box::new(adjacency_list::AdjacencyListGraph::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schemes_builds_every_competitor() {
        let schemes = all_schemes();
        assert_eq!(schemes.len(), 5);
        let labels: Vec<_> = schemes.iter().map(|s| s.scheme().label()).collect();
        assert!(labels.contains(&"LiveGraph"));
        assert!(labels.contains(&"Spruce"));
        assert!(labels.contains(&"Sortledton"));
        assert!(labels.contains(&"WBI"));
    }

    /// Every scheme must agree on a small randomised workload — the same
    /// cross-checking the integration tests do at larger scale.
    #[test]
    fn schemes_agree_on_a_small_workload() {
        let mut schemes = all_schemes();
        let edges: Vec<(u64, u64)> = (0..200u64).map(|i| (i % 20, (i * 7 + 3) % 50)).collect();
        for s in schemes.iter_mut() {
            for &(u, v) in &edges {
                s.insert_edge(u, v);
            }
        }
        let reference: std::collections::BTreeSet<_> = edges.iter().copied().collect();
        for s in &schemes {
            assert_eq!(s.edge_count(), reference.len(), "{}", s.scheme().label());
            for &(u, v) in &reference {
                assert!(s.has_edge(u, v), "{} lost ({u},{v})", s.scheme().label());
            }
            assert!(!s.has_edge(999, 999), "{}", s.scheme().label());
        }
    }
}
