//! Packed Memory Array (PMA) — the substrate PCSR and VCSR build on.
//!
//! A PMA [44] keeps a sorted sequence in an array with interspersed empty
//! slots so that insertions and deletions only shift a bounded neighbourhood.
//! The array is divided into segments of `Θ(log n)` slots forming an implicit
//! binary tree; when a segment's density leaves the allowed window the items
//! are rebalanced over the smallest enclosing window whose density is back in
//! range, doubling (or halving) the array when even the root is out of range.

use graph_api::MemoryFootprint;

/// Density bounds at the leaves; the window widens towards the root as in the
/// adaptive PMA literature.
const LEAF_MAX_DENSITY: f64 = 0.92;
const LEAF_MIN_DENSITY: f64 = 0.08;
const ROOT_MAX_DENSITY: f64 = 0.7;
const ROOT_MIN_DENSITY: f64 = 0.3;
const MIN_CAPACITY: usize = 8;

/// A packed memory array of `u64` keys (the only key type the graph
/// structures need).
#[derive(Debug, Clone)]
pub struct PackedMemoryArray {
    slots: Vec<Option<u64>>,
    segment_size: usize,
    len: usize,
}

impl Default for PackedMemoryArray {
    fn default() -> Self {
        Self::new()
    }
}

impl PackedMemoryArray {
    /// Creates an empty PMA.
    pub fn new() -> Self {
        Self {
            slots: vec![None; MIN_CAPACITY],
            segment_size: MIN_CAPACITY,
            len: 0,
        }
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of slots (occupied plus gaps).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Current overall density.
    pub fn density(&self) -> f64 {
        self.len as f64 / self.slots.len() as f64
    }

    /// True if `key` is stored.
    pub fn contains(&self, key: u64) -> bool {
        self.position_of(key).is_some()
    }

    /// Index of the slot holding `key`, if any. Occupied slots are sorted left
    /// to right, so the scan stops at the first larger value.
    fn position_of(&self, key: u64) -> Option<usize> {
        for (i, slot) in self.slots.iter().enumerate() {
            match slot {
                Some(k) if *k == key => return Some(i),
                Some(k) if *k > key => return None,
                _ => continue,
            }
        }
        None
    }

    /// Index of the first occupied slot whose value is greater than `key`
    /// (the ordered insertion point), or `slots.len()` if no such slot exists.
    fn insertion_point(&self, key: u64) -> usize {
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some(k) = slot {
                if *k > key {
                    return i;
                }
            }
        }
        self.slots.len()
    }

    /// Inserts `key`, keeping the sequence sorted. Returns `false` if the key
    /// was already present.
    pub fn insert(&mut self, key: u64) -> bool {
        if self.contains(key) {
            return false;
        }
        let insert_at = self.insertion_point(key);
        // Absorb the shift into the nearest gap: prefer the right side (the
        // classic PMA shift), fall back to the left, extend as a last resort.
        if let Some(gap) = (insert_at..self.slots.len()).find(|&i| self.slots[i].is_none()) {
            for i in (insert_at..gap).rev() {
                self.slots[i + 1] = self.slots[i].take();
            }
            self.slots[insert_at] = Some(key);
        } else if let Some(gap) = (0..insert_at).rev().find(|&i| self.slots[i].is_none()) {
            for i in gap..insert_at - 1 {
                self.slots[i] = self.slots[i + 1].take();
            }
            self.slots[insert_at - 1] = Some(key);
        } else {
            self.slots.insert(insert_at, Some(key));
        }
        self.len += 1;
        let pos = insert_at.min(self.slots.len() - 1);
        self.rebalance_around(pos);
        true
    }

    /// Removes `key`. Returns `false` if it was absent.
    pub fn remove(&mut self, key: u64) -> bool {
        let Some(pos) = self.position_of(key) else {
            return false;
        };
        self.slots[pos] = None;
        self.len -= 1;
        self.rebalance_around(pos);
        true
    }

    /// Iterates over the stored keys in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().flatten().copied()
    }

    /// Collects the stored keys in ascending order.
    pub fn to_vec(&self) -> Vec<u64> {
        self.iter().collect()
    }

    /// Rebalances after a structural change near `pos`: if the overall density
    /// leaves the root window the array is resized; if only the local segment
    /// left its window the items are spread evenly over the whole array (the
    /// windowed rebalance collapsed to the root window for simplicity — the
    /// amortised asymptotics the graph structures rely on are kept).
    fn rebalance_around(&mut self, pos: usize) {
        let density = self.density();
        if density > ROOT_MAX_DENSITY {
            self.resize(self.slots.len() * 2);
            return;
        }
        if density < ROOT_MIN_DENSITY && self.slots.len() > MIN_CAPACITY {
            self.resize((self.slots.len() / 2).max(MIN_CAPACITY));
            return;
        }
        let seg_start = (pos / self.segment_size) * self.segment_size;
        let seg_end = (seg_start + self.segment_size).min(self.slots.len());
        let occupied = self.slots[seg_start..seg_end].iter().flatten().count();
        let seg_len = seg_end - seg_start;
        let seg_density = occupied as f64 / seg_len as f64;
        if seg_density > LEAF_MAX_DENSITY || (seg_density < LEAF_MIN_DENSITY && self.len > 0) {
            self.spread();
        }
    }

    fn resize(&mut self, new_capacity: usize) {
        let items: Vec<u64> = self.iter().collect();
        let new_capacity = new_capacity
            .max(items.len().next_power_of_two())
            .max(MIN_CAPACITY);
        self.slots = vec![None; new_capacity];
        self.segment_size = (new_capacity.ilog2() as usize).next_power_of_two().max(4);
        self.place_evenly(&items);
    }

    fn spread(&mut self) {
        let items: Vec<u64> = self.iter().collect();
        for slot in &mut self.slots {
            *slot = None;
        }
        self.place_evenly(&items);
    }

    fn place_evenly(&mut self, items: &[u64]) {
        if items.is_empty() {
            return;
        }
        let stride = self.slots.len() as f64 / items.len() as f64;
        for (i, &item) in items.iter().enumerate() {
            let idx = ((i as f64) * stride) as usize;
            // Find the next free slot at or after idx (always exists because
            // stride >= 1).
            let mut j = idx.min(self.slots.len() - 1);
            while self.slots[j].is_some() {
                j += 1;
            }
            self.slots[j] = Some(item);
        }
    }
}

impl MemoryFootprint for PackedMemoryArray {
    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.slots.capacity() * std::mem::size_of::<Option<u64>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_items_sorted_under_random_insertions() {
        let mut pma = PackedMemoryArray::new();
        let keys = [50u64, 10, 90, 30, 70, 20, 80, 40, 60, 0, 100];
        for &k in &keys {
            assert!(pma.insert(k));
        }
        assert!(!pma.insert(50));
        assert_eq!(pma.len(), keys.len());
        let stored = pma.to_vec();
        let mut expected = keys.to_vec();
        expected.sort_unstable();
        assert_eq!(stored, expected);
    }

    #[test]
    fn contains_and_remove() {
        let mut pma = PackedMemoryArray::new();
        for k in 0..100u64 {
            pma.insert(k * 3);
        }
        assert!(pma.contains(33));
        assert!(!pma.contains(34));
        assert!(pma.remove(33));
        assert!(!pma.remove(33));
        assert!(!pma.contains(33));
        assert_eq!(pma.len(), 99);
    }

    #[test]
    fn density_stays_in_bounds_during_growth() {
        let mut pma = PackedMemoryArray::new();
        for k in 0..5_000u64 {
            pma.insert(k);
            assert!(pma.density() <= LEAF_MAX_DENSITY + 1e-9);
        }
        assert_eq!(pma.len(), 5_000);
        assert_eq!(pma.to_vec(), (0..5_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn shrinks_after_mass_deletion() {
        let mut pma = PackedMemoryArray::new();
        for k in 0..2_000u64 {
            pma.insert(k);
        }
        let grown = pma.capacity();
        for k in 0..1_990u64 {
            pma.remove(k);
        }
        assert!(pma.capacity() < grown);
        assert_eq!(pma.to_vec(), (1_990..2_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_inserts_and_removes_stay_sorted() {
        let mut pma = PackedMemoryArray::new();
        for k in (0..1_000u64).step_by(2) {
            pma.insert(k);
        }
        for k in (0..1_000u64).step_by(4) {
            pma.remove(k);
        }
        for k in (1..1_000u64).step_by(2) {
            pma.insert(k);
        }
        let v = pma.to_vec();
        assert!(v.windows(2).all(|w| w[0] < w[1]), "not sorted");
        assert!(pma.memory_bytes() > 0);
        assert!(!pma.is_empty());
    }
}
