//! LiveGraph-like baseline: Vertex Blocks + Transactional Edge Log (TEL).
//!
//! LiveGraph [30] stores the edges of each vertex in a *Transactional Edge
//! Log*: an append-only sequence of log entries (insertions and deletions,
//! each stamped with a sequence number) held in a per-vertex block. Reads scan
//! the log sequentially ("purely sequential adjacency list scans"); when a
//! block fills up it is copied into a block of twice the size, and a
//! compaction rewrites the log without superseded entries. Vertex Blocks are
//! located through a vertex index.
//!
//! The paper's evaluation is single-threaded, so the MVCC timestamps reduce to
//! a monotone sequence number here; everything else (log layout, sequential
//! scans, copy-on-full growth, compaction) follows the published design.

use graph_api::{for_each_source_run, DynamicGraph, GraphScheme, MemoryFootprint, NodeId};
use std::collections::HashMap;

/// One entry of a Transactional Edge Log.
#[derive(Debug, Clone, Copy)]
struct LogEntry {
    dst: NodeId,
    /// Sequence number of the operation that wrote this entry.
    seq: u64,
    /// `true` for an insertion entry, `false` for a deletion entry.
    is_insert: bool,
}

/// The per-vertex block holding the vertex's edge log.
#[derive(Debug, Clone, Default)]
struct VertexBlock {
    log: Vec<LogEntry>,
    /// Number of *live* edges (insertions not superseded by deletions).
    live: usize,
    /// True once the log contains a deletion entry. While false, every log
    /// entry is a live insertion with a distinct destination (insertions are
    /// deduplicated up front), so reads can scan the log sequentially without
    /// rebuilding a latest-entry map — the common no-churn case.
    has_deletes: bool,
}

impl VertexBlock {
    /// Scans the log backwards to find the latest entry for `dst`; the edge
    /// exists iff that entry is an insertion.
    fn has_edge(&self, dst: NodeId) -> bool {
        for entry in self.log.iter().rev() {
            if entry.dst == dst {
                return entry.is_insert;
            }
        }
        false
    }

    /// Appends an entry, growing (and opportunistically compacting) the block
    /// when its capacity is exhausted — the TEL copy-on-full behaviour.
    fn append(&mut self, entry: LogEntry) {
        if self.log.len() == self.log.capacity() && self.log.len() >= 8 {
            self.compact();
        }
        self.log.push(entry);
    }

    /// Rewrites the log keeping only the latest entry per destination, and
    /// only if that entry is an insertion. A compacted log holds only live
    /// insertions, so the sequential-scan fast path applies again afterwards.
    fn compact(&mut self) {
        if !self.has_deletes {
            return; // already only live insertions — nothing to rewrite
        }
        let mut latest: HashMap<NodeId, LogEntry> = HashMap::with_capacity(self.log.len());
        for &entry in &self.log {
            latest.insert(entry.dst, entry);
        }
        let mut compacted: Vec<LogEntry> = latest.into_values().filter(|e| e.is_insert).collect();
        compacted.sort_by_key(|e| e.seq);
        self.log = compacted;
        self.has_deletes = false;
    }

    /// Calls `f` for every live destination. Without deletions this is a pure
    /// sequential log scan; with deletions it reconstructs the latest entry
    /// per destination as `successors()` always did.
    fn for_each_successor(&self, f: &mut dyn FnMut(NodeId)) {
        if !self.has_deletes {
            for entry in &self.log {
                f(entry.dst);
            }
            return;
        }
        let mut latest: HashMap<NodeId, bool> = HashMap::with_capacity(self.log.len());
        for entry in &self.log {
            latest.insert(entry.dst, entry.is_insert);
        }
        for (dst, alive) in latest {
            if alive {
                f(dst);
            }
        }
    }

    fn bytes(&self) -> usize {
        self.log.capacity() * std::mem::size_of::<LogEntry>()
    }
}

/// LiveGraph-like dynamic graph store.
#[derive(Debug, Clone, Default)]
pub struct LiveGraphStore {
    /// Vertex index: maps a vertex to its block.
    blocks: HashMap<NodeId, VertexBlock>,
    /// Global operation sequence number (stands in for the MVCC timestamp).
    seq: u64,
    edges: usize,
}

impl LiveGraphStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compacts every vertex block (normally triggered per block when full).
    pub fn compact_all(&mut self) {
        for block in self.blocks.values_mut() {
            block.compact();
        }
    }

    /// Total number of log entries currently held (live + superseded); used by
    /// tests to observe the log-structured behaviour.
    pub fn log_entries(&self) -> usize {
        self.blocks.values().map(|b| b.log.len()).sum()
    }
}

impl MemoryFootprint for LiveGraphStore {
    fn memory_bytes(&self) -> usize {
        let index_bytes = self.blocks.capacity()
            * (std::mem::size_of::<NodeId>() + std::mem::size_of::<VertexBlock>() + 8);
        let block_bytes: usize = self.blocks.values().map(VertexBlock::bytes).sum();
        std::mem::size_of::<Self>() + index_bytes + block_bytes
    }
}

impl DynamicGraph for LiveGraphStore {
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.seq += 1;
        let seq = self.seq;
        let block = self.blocks.entry(u).or_default();
        if block.has_edge(v) {
            return false;
        }
        block.append(LogEntry {
            dst: v,
            seq,
            is_insert: true,
        });
        block.live += 1;
        self.edges += 1;
        true
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.blocks.get(&u).is_some_and(|b| b.has_edge(v))
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.seq += 1;
        let seq = self.seq;
        let Some(block) = self.blocks.get_mut(&u) else {
            return false;
        };
        if !block.has_edge(v) {
            return false;
        }
        block.append(LogEntry {
            dst: v,
            seq,
            is_insert: false,
        });
        block.has_deletes = true;
        block.live -= 1;
        self.edges -= 1;
        true
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        if let Some(block) = self.blocks.get(&u) {
            block.for_each_successor(f);
        }
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
        for &u in self.blocks.keys() {
            f(u);
        }
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.blocks.get(&u).map_or(0, |b| b.live)
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        // One vertex-index lookup per run of same-source edges.
        let mut created = 0usize;
        let seq = &mut self.seq;
        let blocks = &mut self.blocks;
        for_each_source_run(
            edges,
            |e| e.0,
            |u, run| {
                let block = blocks.entry(u).or_default();
                for &(_, v) in run {
                    *seq += 1;
                    if block.has_edge(v) {
                        continue;
                    }
                    block.append(LogEntry {
                        dst: v,
                        seq: *seq,
                        is_insert: true,
                    });
                    block.live += 1;
                    created += 1;
                }
            },
        );
        self.edges += created;
        created
    }

    fn edge_count(&self) -> usize {
        self.edges
    }

    fn node_count(&self) -> usize {
        self.blocks.len()
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.blocks.keys().copied().collect()
    }

    fn scheme(&self) -> GraphScheme {
        GraphScheme::LiveGraph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_delete_roundtrip() {
        let mut g = LiveGraphStore::new();
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(1, 2));
        assert!(g.has_edge(1, 2));
        assert!(g.delete_edge(1, 2));
        assert!(!g.has_edge(1, 2));
        assert!(!g.delete_edge(1, 2));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn deletion_is_a_log_entry_until_compaction() {
        let mut g = LiveGraphStore::new();
        g.insert_edge(1, 2);
        g.insert_edge(1, 3);
        g.delete_edge(1, 2);
        // Three operations → three log entries (insert, insert, delete).
        assert_eq!(g.log_entries(), 3);
        assert_eq!(g.out_degree(1), 1);
        g.compact_all();
        assert_eq!(g.log_entries(), 1);
        assert!(g.has_edge(1, 3));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn reinsert_after_delete_is_visible() {
        let mut g = LiveGraphStore::new();
        g.insert_edge(5, 6);
        g.delete_edge(5, 6);
        assert!(g.insert_edge(5, 6));
        assert!(g.has_edge(5, 6));
        assert_eq!(g.out_degree(5), 1);
        assert_eq!(g.successors(5), vec![6]);
    }

    #[test]
    fn high_degree_vertex_round_trips() {
        let mut g = LiveGraphStore::new();
        for v in 0..500u64 {
            g.insert_edge(1, v);
        }
        assert_eq!(g.out_degree(1), 500);
        let mut s = g.successors(1);
        s.sort_unstable();
        assert_eq!(s, (0..500u64).collect::<Vec<_>>());
        assert!(g.memory_bytes() > 500 * std::mem::size_of::<LogEntry>());
        assert_eq!(g.scheme(), GraphScheme::LiveGraph);
    }

    #[test]
    fn delete_free_blocks_scan_the_log_directly() {
        let mut g = LiveGraphStore::new();
        for v in 0..100u64 {
            g.insert_edge(3, v);
        }
        assert!(!g.blocks[&3].has_deletes);
        // Fast path: the visitor sees exactly the inserted destinations.
        let mut seen = Vec::new();
        g.for_each_successor(3, &mut |v| seen.push(v));
        seen.sort_unstable();
        assert_eq!(seen, (0..100u64).collect::<Vec<_>>());
        // A deletion flips the block to the slow path…
        g.delete_edge(3, 7);
        assert!(g.blocks[&3].has_deletes);
        let mut after = g.successors(3);
        after.sort_unstable();
        assert_eq!(after.len(), 99);
        assert!(!after.contains(&7));
        // …and compaction restores the fast path with the same live set.
        g.compact_all();
        assert!(!g.blocks[&3].has_deletes);
        let mut compacted = g.successors(3);
        compacted.sort_unstable();
        assert_eq!(compacted, after);
    }

    #[test]
    fn batched_insert_matches_per_edge_inserts() {
        let edges: Vec<(u64, u64)> = (0..300u64).map(|i| (i % 6, i / 2)).collect();
        let mut batched = LiveGraphStore::new();
        let mut looped = LiveGraphStore::new();
        let created = batched.insert_edges(&edges);
        let mut expected = 0;
        for &(u, v) in &edges {
            if looped.insert_edge(u, v) {
                expected += 1;
            }
        }
        assert_eq!(created, expected);
        assert_eq!(batched.edge_count(), looped.edge_count());
        for u in 0..6u64 {
            let mut a = batched.successors(u);
            let mut b = looped.successors(u);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn compaction_preserves_live_set_under_churn() {
        let mut g = LiveGraphStore::new();
        for round in 0..20u64 {
            for v in 0..50u64 {
                if round % 2 == 0 {
                    g.insert_edge(7, v);
                } else if v % 3 == 0 {
                    g.delete_edge(7, v);
                }
            }
        }
        let before: std::collections::BTreeSet<_> = g.successors(7).into_iter().collect();
        g.compact_all();
        let after: std::collections::BTreeSet<_> = g.successors(7).into_iter().collect();
        assert_eq!(before, after);
        assert_eq!(g.out_degree(7), after.len());
    }
}
