//! Spruce-like baseline — the paper's most competitive comparison point.
//!
//! Spruce [36] splits the 8-byte vertex identifier into 4 + 2 + 2 bytes:
//! the top 4 bytes select an entry of a hash-based node index shared by all
//! vertices with the same prefix, the middle 2 bytes select a bit in a bit
//! vector that records which vertex groups exist, and the low 2 bytes identify
//! the vertex inside its group. Each existing vertex points to an edge-storage
//! part based on adjacency arrays (sorted once they grow past a threshold).
//! This keeps memory low but still "needs to record quite a few pointers".
//!
//! The re-implementation keeps that decomposition (prefix hash map → bit
//! vector → per-vertex adjacency storage) and the two-tier adjacency layout
//! (small unsorted buffer that graduates into a sorted array), which is what
//! drives its behaviour in the paper's measurements.

use graph_api::{for_each_source_run, DynamicGraph, GraphScheme, MemoryFootprint, NodeId};
use std::collections::HashMap;

/// Neighbour buffers smaller than this stay unsorted; larger ones graduate to
/// the sorted representation (mirrors Spruce's small-vector optimisation).
const SORT_THRESHOLD: usize = 16;

/// Per-vertex edge storage: a small unsorted insertion buffer plus a sorted
/// main array.
#[derive(Debug, Clone, Default)]
struct EdgeStorage {
    buffer: Vec<NodeId>,
    sorted: Vec<NodeId>,
}

impl EdgeStorage {
    fn len(&self) -> usize {
        self.buffer.len() + self.sorted.len()
    }

    fn contains(&self, v: NodeId) -> bool {
        self.buffer.contains(&v) || self.sorted.binary_search(&v).is_ok()
    }

    fn insert(&mut self, v: NodeId) -> bool {
        if self.contains(v) {
            return false;
        }
        self.buffer.push(v);
        if self.buffer.len() >= SORT_THRESHOLD {
            self.merge();
        }
        true
    }

    /// Merges the insertion buffer into the sorted array.
    fn merge(&mut self) {
        self.sorted.append(&mut self.buffer);
        self.sorted.sort_unstable();
    }

    fn remove(&mut self, v: NodeId) -> bool {
        if let Some(idx) = self.buffer.iter().position(|&x| x == v) {
            self.buffer.swap_remove(idx);
            return true;
        }
        if let Ok(idx) = self.sorted.binary_search(&v) {
            self.sorted.remove(idx);
            return true;
        }
        false
    }

    fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.sorted.iter().chain(self.buffer.iter()).copied()
    }

    fn bytes(&self) -> usize {
        (self.buffer.capacity() + self.sorted.capacity()) * std::mem::size_of::<NodeId>()
    }
}

/// A group of up to 2¹⁶ vertices sharing the same 48-bit prefix: a bit vector
/// marking which members exist plus their edge storages.
#[derive(Debug, Clone)]
struct VertexGroup {
    /// One bit per possible low-16-bit suffix.
    bitmap: Vec<u64>,
    /// Edge storage of each existing member, keyed by the low 16 bits.
    members: HashMap<u16, EdgeStorage>,
}

impl VertexGroup {
    fn new() -> Self {
        Self {
            bitmap: vec![0u64; 1 << 10],
            members: HashMap::new(),
        }
    }

    #[inline]
    fn bit(&self, low: u16) -> bool {
        (self.bitmap[(low >> 6) as usize] >> (low & 63)) & 1 == 1
    }

    #[inline]
    fn set_bit(&mut self, low: u16) {
        self.bitmap[(low >> 6) as usize] |= 1 << (low & 63);
    }

    fn bytes(&self) -> usize {
        self.bitmap.capacity() * 8
            + self.members.capacity()
                * (std::mem::size_of::<u16>() + std::mem::size_of::<EdgeStorage>() + 8)
            + self.members.values().map(EdgeStorage::bytes).sum::<usize>()
    }
}

/// Spruce-like dynamic graph store.
#[derive(Debug, Clone, Default)]
pub struct SpruceGraph {
    /// Node-indexing part: 48-bit prefix → vertex group.
    groups: HashMap<u64, VertexGroup>,
    edges: usize,
    nodes: usize,
}

impl SpruceGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(u: NodeId) -> (u64, u16) {
        (u >> 16, (u & 0xffff) as u16)
    }

    fn storage(&self, u: NodeId) -> Option<&EdgeStorage> {
        let (prefix, low) = Self::split(u);
        let group = self.groups.get(&prefix)?;
        if !group.bit(low) {
            return None;
        }
        group.members.get(&low)
    }

    /// Number of vertex groups currently allocated (test hook).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

impl MemoryFootprint for SpruceGraph {
    fn memory_bytes(&self) -> usize {
        let index_bytes = self.groups.capacity()
            * (std::mem::size_of::<u64>() + std::mem::size_of::<VertexGroup>() + 8);
        let group_bytes: usize = self.groups.values().map(VertexGroup::bytes).sum();
        std::mem::size_of::<Self>() + index_bytes + group_bytes
    }
}

impl DynamicGraph for SpruceGraph {
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let (prefix, low) = Self::split(u);
        let group = self.groups.entry(prefix).or_insert_with(VertexGroup::new);
        if !group.bit(low) {
            group.set_bit(low);
            self.nodes += 1;
        }
        let inserted = group.members.entry(low).or_default().insert(v);
        if inserted {
            self.edges += 1;
        }
        inserted
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.storage(u).is_some_and(|s| s.contains(v))
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        let (prefix, low) = Self::split(u);
        let Some(group) = self.groups.get_mut(&prefix) else {
            return false;
        };
        let Some(storage) = group.members.get_mut(&low) else {
            return false;
        };
        let removed = storage.remove(v);
        if removed {
            self.edges -= 1;
        }
        removed
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        if let Some(s) = self.storage(u) {
            for v in s.iter() {
                f(v);
            }
        }
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
        for (&prefix, group) in &self.groups {
            for &low in group.members.keys() {
                f((prefix << 16) | u64::from(low));
            }
        }
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.storage(u).map_or(0, EdgeStorage::len)
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        // Resolve the prefix group and the member's edge storage once per run
        // of same-source edges instead of once per edge.
        let mut created = 0usize;
        let groups = &mut self.groups;
        let nodes = &mut self.nodes;
        for_each_source_run(
            edges,
            |e| e.0,
            |u, run| {
                let (prefix, low) = Self::split(u);
                let group = groups.entry(prefix).or_insert_with(VertexGroup::new);
                if !group.bit(low) {
                    group.set_bit(low);
                    *nodes += 1;
                }
                let storage = group.members.entry(low).or_default();
                for &(_, v) in run {
                    if storage.insert(v) {
                        created += 1;
                    }
                }
            },
        );
        self.edges += created;
        created
    }

    fn edge_count(&self) -> usize {
        self.edges
    }

    fn node_count(&self) -> usize {
        self.nodes
    }

    fn scheme(&self) -> GraphScheme {
        GraphScheme::Spruce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_delete_roundtrip() {
        let mut g = SpruceGraph::new();
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(1, 2));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(1, 3));
        assert!(g.delete_edge(1, 2));
        assert!(!g.delete_edge(1, 2));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn identifier_split_groups_vertices_by_prefix() {
        let mut g = SpruceGraph::new();
        // Same 48-bit prefix, different low 16 bits → one group, two members.
        g.insert_edge(0x1234_0001, 7);
        g.insert_edge(0x1234_0002, 8);
        // Different prefix → second group.
        g.insert_edge(0xffff_0001_0001, 9);
        assert_eq!(g.group_count(), 2);
        assert_eq!(g.node_count(), 3);
        let mut nodes = g.nodes();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0x1234_0001, 0x1234_0002, 0xffff_0001_0001]);
    }

    #[test]
    fn large_neighbourhood_graduates_to_sorted_storage() {
        let mut g = SpruceGraph::new();
        for v in (0..1_000u64).rev() {
            g.insert_edge(5, v);
        }
        assert_eq!(g.out_degree(5), 1_000);
        for v in (0..1_000u64).step_by(71) {
            assert!(g.has_edge(5, v));
        }
        let mut s = g.successors(5);
        s.sort_unstable();
        assert_eq!(s, (0..1_000u64).collect::<Vec<_>>());
    }

    #[test]
    fn deletion_works_in_both_tiers() {
        let mut g = SpruceGraph::new();
        for v in 0..40u64 {
            g.insert_edge(3, v);
        }
        // 0..32 are in the sorted tier by now, the rest in the buffer.
        assert!(g.delete_edge(3, 1));
        assert!(g.delete_edge(3, 38));
        assert!(!g.has_edge(3, 1));
        assert!(!g.has_edge(3, 38));
        assert_eq!(g.out_degree(3), 38);
        assert_eq!(g.scheme(), GraphScheme::Spruce);
        assert!(g.memory_bytes() > 0);
    }
}
