//! The property-graph store: node records, relationship records with per-node
//! relationship chains (the adjacency lists of § V-G), and properties.

use crate::cuckoo_index::CuckooEdgeIndex;
use graph_api::{MemoryFootprint, NodeId};
use std::collections::HashMap;

/// Identifier of a relationship (a concrete, possibly parallel edge).
pub type RelationshipId = u64;

/// A stored node.
#[derive(Debug, Clone, Default)]
pub struct NodeRecord {
    /// Node labels (e.g. `"User"`).
    pub labels: Vec<String>,
    /// Node properties.
    pub properties: HashMap<String, String>,
    /// Relationship chain: every relationship this node participates in, in
    /// creation order (both outgoing and incoming, as in Neo4j where the
    /// record is shared by both endpoints).
    pub relationships: Vec<RelationshipId>,
}

/// A stored relationship.
#[derive(Debug, Clone)]
pub struct RelationshipRecord {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Relationship type (e.g. `"SENT_PACKET"`).
    pub rel_type: String,
    /// Relationship properties.
    pub properties: HashMap<String, String>,
}

/// Counters describing how much work a query did — the quantity the Figure 18
/// analysis talks about ("many irrelevant/redundant edges must be traversed").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Relationship records touched while answering the query.
    pub relationships_scanned: usize,
}

/// A Neo4j-like property graph with an optional CuckooGraph relationship index.
#[derive(Debug, Default)]
pub struct PropertyGraph {
    nodes: HashMap<NodeId, NodeRecord>,
    relationships: HashMap<RelationshipId, RelationshipRecord>,
    next_relationship: RelationshipId,
    next_node: NodeId,
    /// The optional CuckooGraph edge index (§ V-G "Ours+Neo4j").
    index: Option<CuckooEdgeIndex>,
}

impl PropertyGraph {
    /// Creates an empty database without the CuckooGraph index (pure Neo4j).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty database with the CuckooGraph index attached.
    pub fn with_cuckoo_index() -> Self {
        Self {
            index: Some(CuckooEdgeIndex::new()),
            ..Self::default()
        }
    }

    /// True if the CuckooGraph index is attached.
    pub fn has_index(&self) -> bool {
        self.index.is_some()
    }

    /// Creates a node with the given labels; returns its id.
    pub fn create_node(&mut self, labels: &[&str]) -> NodeId {
        let id = self.next_node;
        self.next_node += 1;
        self.nodes.insert(
            id,
            NodeRecord {
                labels: labels.iter().map(|s| s.to_string()).collect(),
                ..NodeRecord::default()
            },
        );
        id
    }

    /// Ensures a node with a caller-chosen id exists (used when importing an
    /// edge list whose node ids are externally assigned, as in the § V-G
    /// CAIDA import).
    pub fn ensure_node(&mut self, id: NodeId) {
        self.nodes.entry(id).or_default();
        self.next_node = self.next_node.max(id + 1);
    }

    /// Sets a node property.
    pub fn set_node_property(&mut self, node: NodeId, key: &str, value: &str) -> bool {
        match self.nodes.get_mut(&node) {
            Some(record) => {
                record.properties.insert(key.to_string(), value.to_string());
                true
            }
            None => false,
        }
    }

    /// Reads a node property.
    pub fn node_property(&self, node: NodeId, key: &str) -> Option<&str> {
        self.nodes
            .get(&node)?
            .properties
            .get(key)
            .map(String::as_str)
    }

    /// Node labels (empty if the node does not exist).
    pub fn node_labels(&self, node: NodeId) -> Vec<String> {
        self.nodes
            .get(&node)
            .map(|n| n.labels.clone())
            .unwrap_or_default()
    }

    /// Allocates the id, inserts the record, and links both endpoint chains —
    /// everything relationship creation does *except* notifying the index,
    /// which the per-edge and bulk paths handle differently.
    fn insert_relationship_record(
        &mut self,
        src: NodeId,
        dst: NodeId,
        rel_type: &str,
    ) -> RelationshipId {
        self.ensure_node(src);
        self.ensure_node(dst);
        let id = self.next_relationship;
        self.next_relationship += 1;
        self.relationships.insert(
            id,
            RelationshipRecord {
                src,
                dst,
                rel_type: rel_type.to_string(),
                properties: HashMap::new(),
            },
        );
        self.nodes
            .get_mut(&src)
            .expect("ensured")
            .relationships
            .push(id);
        if src != dst {
            self.nodes
                .get_mut(&dst)
                .expect("ensured")
                .relationships
                .push(id);
        }
        id
    }

    /// Creates a relationship `src → dst`; both endpoints are created if
    /// missing. The relationship is appended to both endpoints' chains and to
    /// the CuckooGraph index when one is attached.
    pub fn create_relationship(
        &mut self,
        src: NodeId,
        dst: NodeId,
        rel_type: &str,
    ) -> RelationshipId {
        let id = self.insert_relationship_record(src, dst, rel_type);
        if let Some(index) = &mut self.index {
            index.on_create(src, dst, id);
        }
        id
    }

    /// Bulk import: creates one relationship per `(src, dst)` pair, all with
    /// the same type, and feeds the CuckooGraph index through its batched
    /// insert path (when attached) instead of one index update per edge —
    /// the § V-G CAIDA import is exactly this shape. Returns the ids in input
    /// order.
    pub fn create_relationships(
        &mut self,
        edges: &[(NodeId, NodeId)],
        rel_type: &str,
    ) -> Vec<RelationshipId> {
        let mut ids = Vec::with_capacity(edges.len());
        let mut indexed = Vec::with_capacity(if self.index.is_some() { edges.len() } else { 0 });
        for &(src, dst) in edges {
            let id = self.insert_relationship_record(src, dst, rel_type);
            if self.index.is_some() {
                indexed.push((src, dst, id));
            }
            ids.push(id);
        }
        if let Some(index) = &mut self.index {
            index.on_create_batch(&indexed);
        }
        ids
    }

    /// Sets a relationship property.
    pub fn set_relationship_property(
        &mut self,
        rel: RelationshipId,
        key: &str,
        value: &str,
    ) -> bool {
        match self.relationships.get_mut(&rel) {
            Some(record) => {
                record.properties.insert(key.to_string(), value.to_string());
                true
            }
            None => false,
        }
    }

    /// Reads a relationship record.
    pub fn relationship(&self, rel: RelationshipId) -> Option<&RelationshipRecord> {
        self.relationships.get(&rel)
    }

    /// Deletes a relationship; it is unlinked from both endpoint chains and
    /// from the index.
    pub fn delete_relationship(&mut self, rel: RelationshipId) -> bool {
        let Some(record) = self.relationships.remove(&rel) else {
            return false;
        };
        for endpoint in [record.src, record.dst] {
            if let Some(node) = self.nodes.get_mut(&endpoint) {
                node.relationships.retain(|&r| r != rel);
            }
        }
        if let Some(index) = &mut self.index {
            index.on_delete(record.src, record.dst, rel);
        }
        true
    }

    /// Pure-Neo4j edge query: walk `src`'s relationship chain and compare
    /// endpoints one by one. Returns the matching relationship ids plus the
    /// number of records that had to be touched.
    pub fn relationships_between_scan(
        &self,
        src: NodeId,
        dst: NodeId,
    ) -> (Vec<RelationshipId>, QueryCost) {
        let mut cost = QueryCost::default();
        let Some(node) = self.nodes.get(&src) else {
            return (Vec::new(), cost);
        };
        let mut matches = Vec::new();
        for &rel in &node.relationships {
            cost.relationships_scanned += 1;
            if let Some(record) = self.relationships.get(&rel) {
                if record.src == src && record.dst == dst {
                    matches.push(rel);
                }
            }
        }
        (matches, cost)
    }

    /// Indexed edge query: the CuckooGraph index returns an iterator over the
    /// relationship ids for `⟨src, dst⟩` without touching unrelated records.
    /// Falls back to the scan when no index is attached (pure Neo4j).
    pub fn relationships_between(
        &self,
        src: NodeId,
        dst: NodeId,
    ) -> (Vec<RelationshipId>, QueryCost) {
        match &self.index {
            Some(index) => {
                let matches: Vec<RelationshipId> = index.edges_between(src, dst).collect();
                let cost = QueryCost {
                    relationships_scanned: matches.len(),
                };
                (matches, cost)
            }
            None => self.relationships_between_scan(src, dst),
        }
    }

    /// Degree of a node (number of chain entries, both directions).
    pub fn degree(&self, node: NodeId) -> usize {
        self.nodes.get(&node).map_or(0, |n| n.relationships.len())
    }

    /// Number of stored nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stored relationships.
    pub fn relationship_count(&self) -> usize {
        self.relationships.len()
    }
}

impl MemoryFootprint for PropertyGraph {
    fn memory_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .values()
            .map(|n| {
                std::mem::size_of::<NodeRecord>()
                    + n.relationships.capacity() * 8
                    + n.labels.iter().map(String::capacity).sum::<usize>()
                    + n.properties
                        .iter()
                        .map(|(k, v)| k.capacity() + v.capacity() + 16)
                        .sum::<usize>()
            })
            .sum();
        let rel_bytes: usize = self
            .relationships
            .values()
            .map(|r| {
                std::mem::size_of::<RelationshipRecord>()
                    + r.rel_type.capacity()
                    + r.properties
                        .iter()
                        .map(|(k, v)| k.capacity() + v.capacity() + 16)
                        .sum::<usize>()
            })
            .sum();
        let index_bytes = self.index.as_ref().map_or(0, |i| i.memory_bytes());
        std::mem::size_of::<Self>() + node_bytes + rel_bytes + index_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_relationships_and_properties_roundtrip() {
        let mut db = PropertyGraph::new();
        let a = db.create_node(&["User"]);
        let b = db.create_node(&["User"]);
        assert_ne!(a, b);
        assert_eq!(db.node_labels(a), vec!["User"]);
        assert!(db.set_node_property(a, "name", "alice"));
        assert_eq!(db.node_property(a, "name"), Some("alice"));
        assert_eq!(db.node_property(a, "missing"), None);
        assert!(!db.set_node_property(999, "x", "y"));

        let r = db.create_relationship(a, b, "FOLLOWS");
        assert!(db.set_relationship_property(r, "since", "2024"));
        let record = db.relationship(r).unwrap();
        assert_eq!(record.rel_type, "FOLLOWS");
        assert_eq!(record.properties["since"], "2024");
        assert_eq!(db.node_count(), 2);
        assert_eq!(db.relationship_count(), 1);
        assert_eq!(db.degree(a), 1);
        assert_eq!(db.degree(b), 1);
    }

    #[test]
    fn bulk_import_matches_per_edge_creation() {
        let edges: Vec<(u64, u64)> = (0..200u64).map(|i| (i % 8, i % 31)).collect();
        let mut bulk = PropertyGraph::with_cuckoo_index();
        let mut single = PropertyGraph::with_cuckoo_index();
        let ids = bulk.create_relationships(&edges, "T");
        assert_eq!(ids.len(), edges.len());
        for &(u, v) in &edges {
            single.create_relationship(u, v, "T");
        }
        assert_eq!(bulk.relationship_count(), single.relationship_count());
        assert_eq!(bulk.node_count(), single.node_count());
        for &(u, v) in &edges {
            let (a, _) = bulk.relationships_between(u, v);
            let (b, _) = single.relationships_between(u, v);
            assert_eq!(a.len(), b.len(), "pair ({u}, {v})");
            assert_eq!(bulk.degree(u), single.degree(u));
        }
    }

    #[test]
    fn bulk_import_without_index_still_links_chains() {
        let mut db = PropertyGraph::new();
        let ids = db.create_relationships(&[(1, 2), (1, 3), (2, 3)], "T");
        assert_eq!(ids.len(), 3);
        assert_eq!(db.degree(1), 2);
        let (matches, _) = db.relationships_between(1, 3);
        assert_eq!(matches, vec![ids[1]]);
    }

    #[test]
    fn scan_query_touches_the_whole_chain() {
        let mut db = PropertyGraph::new();
        // Node 0 has 100 relationships; only 3 go to node 1.
        for v in 1..=100u64 {
            db.create_relationship(0, v, "T");
        }
        db.create_relationship(0, 1, "T");
        db.create_relationship(0, 1, "T");
        let (matches, cost) = db.relationships_between_scan(0, 1);
        assert_eq!(matches.len(), 3);
        assert_eq!(
            cost.relationships_scanned, 102,
            "the scan walks every chain entry"
        );
    }

    #[test]
    fn indexed_query_touches_only_matches() {
        let mut db = PropertyGraph::with_cuckoo_index();
        for v in 1..=100u64 {
            db.create_relationship(0, v, "T");
        }
        db.create_relationship(0, 1, "T");
        let (matches, cost) = db.relationships_between(0, 1);
        assert_eq!(matches.len(), 2);
        assert_eq!(cost.relationships_scanned, 2);
        // The scan and the index agree on the result set.
        let (scanned, _) = db.relationships_between_scan(0, 1);
        let a: std::collections::BTreeSet<_> = matches.into_iter().collect();
        let b: std::collections::BTreeSet<_> = scanned.into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn unindexed_database_falls_back_to_scanning() {
        let mut db = PropertyGraph::new();
        assert!(!db.has_index());
        db.create_relationship(1, 2, "T");
        let (matches, cost) = db.relationships_between(1, 2);
        assert_eq!(matches.len(), 1);
        assert_eq!(cost.relationships_scanned, 1);
    }

    #[test]
    fn deleting_relationships_unlinks_chains_and_index() {
        let mut db = PropertyGraph::with_cuckoo_index();
        let r1 = db.create_relationship(1, 2, "T");
        let r2 = db.create_relationship(1, 2, "T");
        assert!(db.delete_relationship(r1));
        assert!(!db.delete_relationship(r1));
        let (matches, _) = db.relationships_between(1, 2);
        assert_eq!(matches, vec![r2]);
        assert_eq!(db.degree(1), 1);
        assert_eq!(db.degree(2), 1);
        assert_eq!(db.relationship_count(), 1);
    }

    #[test]
    fn self_loops_are_stored_once_in_the_chain() {
        let mut db = PropertyGraph::with_cuckoo_index();
        let r = db.create_relationship(5, 5, "SELF");
        assert_eq!(db.degree(5), 1);
        let (matches, _) = db.relationships_between(5, 5);
        assert_eq!(matches, vec![r]);
    }

    #[test]
    fn memory_reporting_includes_the_index() {
        let mut bare = PropertyGraph::new();
        let mut indexed = PropertyGraph::with_cuckoo_index();
        for v in 1..200u64 {
            bare.create_relationship(0, v, "T");
            indexed.create_relationship(0, v, "T");
        }
        assert!(indexed.memory_bytes() > bare.memory_bytes());
    }
}
