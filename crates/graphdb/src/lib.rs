//! A Neo4j-like property-graph database substrate (§ V-G).
//!
//! The paper's Neo4j experiment compares two ways of answering an edge query
//! `⟨u, v⟩`:
//!
//! * **pure Neo4j**: each node keeps an adjacency list of all relationships
//!   attached to it; the query walks `u`'s whole list and compares endpoints
//!   one by one — touching many unrelated relationships when `u`'s degree is
//!   high;
//! * **Neo4j + CuckooGraph**: a CuckooGraph index (the multi-edge adaptation,
//!   since Neo4j allows parallel relationships between the same node pair)
//!   maps the pair `⟨u, v⟩` straight to the list of relationship identifiers
//!   and returns an iterator in `O(1)`.
//!
//! This crate re-implements the property-graph storage model the experiment
//! rests on — a node store, a relationship store with per-node relationship
//! chains, and a property store — plus the pluggable CuckooGraph edge index.
//!
//! * [`store`] — the property graph itself.
//! * [`cuckoo_index`] — the CuckooGraph relationship index plug-in.

pub mod cuckoo_index;
pub mod store;

pub use cuckoo_index::CuckooEdgeIndex;
pub use store::{NodeRecord, PropertyGraph, RelationshipId, RelationshipRecord};
