//! The CuckooGraph relationship index plugged into the property graph.
//!
//! This is the § V-G adaptation: "we change the weight field in each S-CHT
//! small slot from a counter ... to a linked list consisting of a series of
//! edges with the same nodes u and v", and the query interface returns an
//! iterator over those relationship identifiers.

use cuckoograph::{EdgeId, MultiEdgeCuckooGraph};
use graph_api::{MemoryFootprint, NodeId};

/// A CuckooGraph-backed index from `⟨src, dst⟩` pairs to relationship ids.
#[derive(Debug, Clone, Default)]
pub struct CuckooEdgeIndex {
    graph: MultiEdgeCuckooGraph,
}

impl CuckooEdgeIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index maintenance on relationship creation.
    pub fn on_create(&mut self, src: NodeId, dst: NodeId, relationship: EdgeId) {
        self.graph.add_edge(src, dst, relationship);
    }

    /// Index maintenance on relationship deletion.
    pub fn on_delete(&mut self, src: NodeId, dst: NodeId, relationship: EdgeId) {
        self.graph.remove_edge(src, dst, relationship);
    }

    /// Batched index maintenance for bulk imports: one node-cell resolution
    /// per run of same-source relationships instead of one per relationship.
    pub fn on_create_batch(&mut self, relationships: &[(NodeId, NodeId, EdgeId)]) {
        self.graph.add_edges(relationships);
    }

    /// The O(1) lookup the paper adds to Neo4j: an iterator over every
    /// relationship id connecting `src` to `dst`.
    pub fn edges_between(&self, src: NodeId, dst: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.graph.edges_between(src, dst)
    }

    /// True if at least one relationship connects `src` to `dst`.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.graph.has_any_edge(src, dst)
    }

    /// Number of indexed relationships.
    pub fn len(&self) -> usize {
        self.graph.total_edge_count()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl MemoryFootprint for CuckooEdgeIndex {
    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_query_delete_roundtrip() {
        let mut index = CuckooEdgeIndex::new();
        assert!(index.is_empty());
        index.on_create(1, 2, 100);
        index.on_create(1, 2, 101);
        index.on_create(1, 3, 102);
        assert_eq!(index.len(), 3);
        assert!(index.has_edge(1, 2));
        assert!(!index.has_edge(2, 1));
        let ids: Vec<_> = index.edges_between(1, 2).collect();
        assert_eq!(ids, vec![100, 101]);
        index.on_delete(1, 2, 100);
        let ids: Vec<_> = index.edges_between(1, 2).collect();
        assert_eq!(ids, vec![101]);
        assert_eq!(index.len(), 2);
    }

    #[test]
    fn missing_pairs_yield_empty_iterators() {
        let index = CuckooEdgeIndex::new();
        assert_eq!(index.edges_between(7, 8).count(), 0);
        assert!(!index.has_edge(7, 8));
    }

    #[test]
    fn large_parallel_edge_sets_are_handled() {
        let mut index = CuckooEdgeIndex::new();
        for rel in 0..5_000u64 {
            index.on_create(rel % 50, (rel / 50) % 20, rel);
        }
        assert_eq!(index.len(), 5_000);
        assert_eq!(index.edges_between(0, 0).count(), 5);
        assert!(index.memory_bytes() > 0);
    }
}
