//! The keyed value store behind the server: Redis' five original value types
//! (reduced to the ones the experiments touch) plus module-defined values.

use crate::module::ModuleValue;
use std::collections::HashMap;

/// A stored value.
pub enum Value {
    /// A plain string (SET / GET / APPEND ...).
    Str(String),
    /// A list (LPUSH / RPUSH / LRANGE ...).
    List(Vec<String>),
    /// A hash (HSET / HGET ...).
    Hash(HashMap<String, String>),
    /// A value owned by a loaded module (e.g. a CuckooGraph).
    Module(Box<dyn ModuleValue>),
}

impl std::fmt::Debug for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Str(s) => write!(f, "Str({s:?})"),
            Value::List(l) => write!(f, "List(len={})", l.len()),
            Value::Hash(h) => write!(f, "Hash(len={})", h.len()),
            Value::Module(m) => write!(f, "Module({})", m.type_name()),
        }
    }
}

impl Value {
    /// Approximate heap bytes used by the value.
    pub fn memory_bytes(&self) -> usize {
        match self {
            Value::Str(s) => s.capacity(),
            Value::List(l) => {
                l.capacity() * std::mem::size_of::<String>()
                    + l.iter().map(String::capacity).sum::<usize>()
            }
            Value::Hash(h) => {
                h.capacity() * (2 * std::mem::size_of::<String>() + 8)
                    + h.iter()
                        .map(|(k, v)| k.capacity() + v.capacity())
                        .sum::<usize>()
            }
            Value::Module(m) => m.memory_bytes(),
        }
    }
}

/// The keyspace: a flat map from key to value, as in a single Redis database.
#[derive(Debug, Default)]
pub struct Keyspace {
    entries: HashMap<String, Value>,
}

impl Keyspace {
    /// Creates an empty keyspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries.get_mut(key)
    }

    /// Inserts or replaces a key.
    pub fn set(&mut self, key: impl Into<String>, value: Value) {
        self.entries.insert(key.into(), value);
    }

    /// Removes a key; returns true if it existed.
    pub fn delete(&mut self, key: &str) -> bool {
        self.entries.remove(key).is_some()
    }

    /// True if the key exists.
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// All keys (unspecified order).
    pub fn keys(&self) -> Vec<&String> {
        self.entries.keys().collect()
    }

    /// Iterates over `(key, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }

    /// Gets the module value stored at `key`, creating it with `init` when the
    /// key is absent. Returns `None` when the key holds a non-module value or
    /// a value of a different module type (a `WRONGTYPE` situation).
    pub fn module_entry<T: ModuleValue + 'static>(
        &mut self,
        key: &str,
        init: impl FnOnce() -> T,
    ) -> Option<&mut T> {
        if !self.entries.contains_key(key) {
            self.entries
                .insert(key.to_string(), Value::Module(Box::new(init())));
        }
        match self.entries.get_mut(key) {
            Some(Value::Module(boxed)) => boxed.as_any_mut().downcast_mut::<T>(),
            _ => None,
        }
    }

    /// Gets the module value stored at `key` without creating it.
    pub fn module_get<T: ModuleValue + 'static>(&self, key: &str) -> Option<&T> {
        match self.entries.get(key) {
            Some(Value::Module(boxed)) => boxed.as_any().downcast_ref::<T>(),
            _ => None,
        }
    }

    /// Total approximate memory used by all values.
    pub fn memory_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(k, v)| k.capacity() + v.memory_bytes())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl ModuleValue for Counter {
        fn type_name(&self) -> &'static str {
            "counter"
        }
        fn save_rdb(&self) -> Vec<u8> {
            self.0.to_le_bytes().to_vec()
        }
        fn aof_rewrite(&self, key: &str) -> Vec<Vec<String>> {
            vec![vec!["counter.set".into(), key.into(), self.0.to_string()]]
        }
        fn memory_bytes(&self) -> usize {
            8
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn basic_key_operations() {
        let mut ks = Keyspace::new();
        assert!(ks.is_empty());
        ks.set("a", Value::Str("hello".into()));
        ks.set("b", Value::List(vec!["x".into()]));
        assert_eq!(ks.len(), 2);
        assert!(ks.contains("a"));
        assert!(matches!(ks.get("a"), Some(Value::Str(s)) if s == "hello"));
        assert!(ks.delete("a"));
        assert!(!ks.delete("a"));
        assert_eq!(ks.len(), 1);
    }

    #[test]
    fn module_entry_creates_and_downcasts() {
        let mut ks = Keyspace::new();
        {
            let counter = ks.module_entry("cnt", || Counter(0)).unwrap();
            counter.0 += 5;
        }
        let counter = ks.module_get::<Counter>("cnt").unwrap();
        assert_eq!(counter.0, 5);
        // A non-module key is rejected instead of being clobbered.
        ks.set("plain", Value::Str("x".into()));
        assert!(ks.module_entry::<Counter>("plain", || Counter(0)).is_none());
    }

    #[test]
    fn memory_accounts_for_all_value_kinds() {
        let mut ks = Keyspace::new();
        ks.set("s", Value::Str("0123456789".into()));
        ks.set("l", Value::List(vec!["abc".into(); 4]));
        ks.set("m", Value::Module(Box::new(Counter(1))));
        assert!(ks.memory_bytes() >= 10 + 4 * 3 + 8);
        assert_eq!(ks.keys().len(), 3);
    }
}
