//! Durable persistence for the kvstore: a framed command AOF plus RDB
//! snapshots, built on the `graph-durability` machinery.
//!
//! [`DurableServer`] wraps a [`Server`] and gives its command stream the same
//! crash-safety contract the graph stores have:
//!
//! * every write command is appended to a checksummed command log **before**
//!   it executes (write-ahead order), under a
//!   [`SyncPolicy`](graph_durability::SyncPolicy);
//! * `SAVE` writes an RDB snapshot (temp file + atomic rename) and a manifest
//!   generation tying it to the log offset replay resumes from;
//! * `BGREWRITEAOF` rewrites the log from live state, clearing the manifest
//!   first so no stale offset can point into the replaced file;
//! * [`DurableServer::open`] recovers from the newest valid snapshot (older
//!   generations on checksum failure, full replay as the final fallback) and
//!   truncates a torn log tail instead of panicking.
//!
//! The command log shares the durability layer's invariant: it is complete on
//! its own, so losing every snapshot degrades to a full replay of the same
//! state.

use crate::module::Reply;
use crate::server::Server;
use graph_durability::frame::FRAME_HEADER_LEN;
use graph_durability::oplog::{read_varint, write_varint};
use graph_durability::store::{DurabilityConfig, RecoveryReport, RecoverySource};
use graph_durability::{
    check_header, encode_frame, scan_frames, AofWriter, DurabilityError, DurabilityStats,
    DurableFile, Generation, HeaderState, Manifest, RecoveryMode, Result, Vfs, KV_AOF_MAGIC,
};

/// Command log file name inside the durability directory.
pub const KV_AOF_FILE: &str = "commands.aof";
const KV_AOF_TMP: &str = "commands.aof.tmp";
/// Manifest file name.
pub const KV_MANIFEST_FILE: &str = "MANIFEST";
const KV_MANIFEST_TMP: &str = "MANIFEST.tmp";
const KV_SNAPSHOT_TMP: &str = "dump.tmp";
/// Magic header of a framed RDB snapshot file.
pub const KV_RDB_MAGIC: &[u8; 8] = b"CKKVRDB1";

fn snapshot_file(epoch: u64) -> String {
    format!("dump-{epoch:06}.rdb")
}

fn path(cfg: &DurabilityConfig, name: &str) -> String {
    format!("{}/{name}", cfg.dir.trim_end_matches('/'))
}

/// Encodes one command word list as a log frame payload: varint argc, then
/// varint-length-prefixed UTF-8 words.
pub fn encode_command(parts: &[String]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + parts.iter().map(|p| p.len() + 2).sum::<usize>());
    write_varint(&mut out, parts.len() as u64);
    for part in parts {
        write_varint(&mut out, part.len() as u64);
        out.extend_from_slice(part.as_bytes());
    }
    out
}

/// Decodes a command frame payload. `None` on malformed bytes (replay treats
/// the frame as corruption the checksum could not see).
pub fn decode_command(payload: &[u8]) -> Option<Vec<String>> {
    let mut pos = 0usize;
    let argc = usize::try_from(read_varint(payload, &mut pos)?).ok()?;
    let mut parts = Vec::with_capacity(argc.min(payload.len()));
    for _ in 0..argc {
        let len = usize::try_from(read_varint(payload, &mut pos)?).ok()?;
        let end = pos.checked_add(len)?;
        let bytes = payload.get(pos..end)?;
        parts.push(String::from_utf8(bytes.to_vec()).ok()?);
        pos = end;
    }
    (pos == payload.len()).then_some(parts)
}

/// Writes the RDB image as a framed snapshot file (temp + fsync + rename).
fn write_kv_snapshot<V: Vfs>(vfs: &V, dst: &str, tmp: &str, rdb: &[u8]) -> Result<u64> {
    let mut image = KV_RDB_MAGIC.to_vec();
    encode_frame(rdb, &mut image);
    let mut file = vfs.create(tmp)?;
    file.write_all(&image)?;
    file.sync()?;
    drop(file);
    vfs.rename(tmp, dst)?;
    Ok(image.len() as u64)
}

/// Reads and fully validates a framed RDB snapshot, returning the RDB bytes.
fn read_kv_snapshot<V: Vfs>(vfs: &V, src: &str) -> Result<Vec<u8>> {
    let bytes = vfs.read(src)?;
    match check_header(&bytes, KV_RDB_MAGIC, RecoveryMode::Strict, src)? {
        HeaderState::Valid => {}
        HeaderState::Empty | HeaderState::TornHeader => {
            return Err(DurabilityError::Corrupt {
                path: src.to_string(),
                offset: 0,
                detail: "empty snapshot file".to_string(),
            });
        }
    }
    let mut rdb = None;
    scan_frames(&bytes, 8, RecoveryMode::Strict, src, |payload| {
        if rdb.is_none() {
            rdb = Some(payload.to_vec());
        }
    })?;
    rdb.ok_or_else(|| DurabilityError::Corrupt {
        path: src.to_string(),
        offset: 8,
        detail: "snapshot holds no frame".to_string(),
    })
}

/// A [`Server`] paired with a durable command log and snapshot lifecycle.
#[derive(Debug)]
pub struct DurableServer<V: Vfs> {
    server: Server,
    vfs: V,
    cfg: DurabilityConfig,
    aof: AofWriter<V::File>,
    manifest: Manifest,
    next_epoch: u64,
    rewrite_base: u64,
}

impl<V: Vfs> DurableServer<V> {
    /// Opens (and if needed recovers) a durable server in `cfg.dir`.
    /// `make_server` builds the empty server — with every module the log or
    /// snapshots may reference already loaded, exactly like Redis requires
    /// `--loadmodule` before it replays module commands.
    pub fn open(
        vfs: V,
        cfg: DurabilityConfig,
        make_server: impl FnOnce() -> Server,
    ) -> Result<(Self, RecoveryReport)> {
        vfs.create_dir_all(&cfg.dir)?;
        for tmp in [KV_AOF_TMP, KV_MANIFEST_TMP, KV_SNAPSHOT_TMP] {
            let _ = vfs.remove(&path(&cfg, tmp));
        }

        let aof_path = path(&cfg, KV_AOF_FILE);
        let existed = vfs.exists(&aof_path);
        let mut aof_bytes = if existed {
            vfs.read(&aof_path)?
        } else {
            Vec::new()
        };
        let mut fresh = !existed;
        match check_header(&aof_bytes, KV_AOF_MAGIC, cfg.recovery_mode, &aof_path)? {
            HeaderState::Valid => {}
            HeaderState::Empty => fresh = true,
            HeaderState::TornHeader => {
                vfs.truncate(&aof_path, 0)?;
                aof_bytes.clear();
                fresh = true;
            }
        }

        let mut server = make_server();
        let manifest = Manifest::load(&vfs, &path(&cfg, KV_MANIFEST_FILE)).unwrap_or_default();
        let next_epoch = manifest
            .generations
            .iter()
            .map(|g| g.epoch + 1)
            .max()
            .unwrap_or(1);

        // Newest usable snapshot generation: manifest offset plausible, file
        // checksums, and the RDB image loads (a module missing from
        // `make_server` skips the generation and degrades to log replay).
        let mut generations_skipped = 0u32;
        let mut base: Option<(u64, u64)> = None;
        if !fresh {
            for gen in &manifest.generations {
                let offset_plausible =
                    gen.aof_offset >= 8 && gen.aof_offset <= aof_bytes.len() as u64;
                if !offset_plausible {
                    generations_skipped += 1;
                    continue;
                }
                let loaded = read_kv_snapshot(&vfs, &path(&cfg, &gen.snapshot))
                    .ok()
                    .and_then(|rdb| server.load_rdb(&rdb).ok());
                match loaded {
                    Some(()) => {
                        base = Some((gen.epoch, gen.aof_offset));
                        break;
                    }
                    None => generations_skipped += 1,
                }
            }
        }

        // Replay the command log (suffix) on top.
        let start = base.map_or(8, |(_, offset)| offset);
        let mut frames_replayed = 0u64;
        let mut commands_replayed = 0u64;
        let mut valid_len = start;
        let mut dropped = 0u64;
        if !fresh {
            let mut decode_bad_at = None;
            let mut cursor = start;
            let outcome =
                scan_frames(&aof_bytes, start, cfg.recovery_mode, &aof_path, |payload| {
                    let frame_start = cursor;
                    cursor += (FRAME_HEADER_LEN + payload.len()) as u64;
                    if decode_bad_at.is_some() {
                        return;
                    }
                    match decode_command(payload) {
                        Some(parts) => {
                            server.execute(&parts);
                            frames_replayed += 1;
                            commands_replayed += 1;
                        }
                        None => decode_bad_at = Some(frame_start),
                    }
                })?;
            valid_len = match decode_bad_at {
                None => outcome.valid_len,
                Some(bad_at) if cfg.recovery_mode == RecoveryMode::Strict => {
                    return Err(DurabilityError::Corrupt {
                        path: aof_path,
                        offset: bad_at,
                        detail: "undecodable command in checksummed frame".to_string(),
                    });
                }
                Some(bad_at) => bad_at,
            };
            dropped = aof_bytes.len() as u64 - valid_len;
            if dropped > 0 {
                vfs.truncate(&aof_path, valid_len)?;
            }
        }

        let mut file = vfs.open_append(&aof_path)?;
        let resume_offset = if fresh {
            file.write_all(KV_AOF_MAGIC)?;
            8
        } else {
            valid_len
        };
        let aof = AofWriter::new(file, cfg.sync_policy, resume_offset);

        let source = match (base, fresh) {
            (Some((epoch, _)), _) => RecoverySource::Snapshot { epoch },
            (None, true) => RecoverySource::Fresh,
            (None, false) => RecoverySource::AofReplay,
        };
        let report = RecoveryReport {
            source,
            generations_skipped,
            frames_replayed,
            ops_replayed: commands_replayed,
            dropped_bytes: dropped,
            resume_offset,
        };
        Ok((
            Self {
                server,
                vfs,
                cfg,
                aof,
                manifest,
                next_epoch,
                rewrite_base: resume_offset,
            },
            report,
        ))
    }

    /// Executes a command with write-ahead logging. `SAVE` and `BGREWRITEAOF`
    /// are intercepted here — the persistence lifecycle lives outside the
    /// in-memory server core.
    pub fn execute(&mut self, parts: &[String]) -> Reply {
        let Some(first) = parts.first() else {
            return self.server.execute(parts);
        };
        let command = first.to_ascii_lowercase();
        match command.as_str() {
            "save" => match self.save_snapshot() {
                Ok(_) => Reply::Ok,
                Err(e) => Reply::Error(format!("ERR save failed: {e}")),
            },
            "bgrewriteaof" => match self.rewrite_aof() {
                Ok(_) => Reply::Simple("Append only file rewriting completed".into()),
                Err(e) => Reply::Error(format!("ERR rewrite failed: {e}")),
            },
            _ => {
                if Server::is_write_command(&command) {
                    // Log first: if the append fails the command is refused,
                    // so memory never runs ahead of what replay can rebuild.
                    if let Err(e) = self.aof.append_payload(&encode_command(parts)) {
                        return Reply::Error(format!("ERR aof append failed: {e}"));
                    }
                }
                self.server.execute(parts)
            }
        }
    }

    /// Executes a batch of commands with **one group-committed log append**:
    /// every write in the batch is framed into a single buffered write and
    /// the sync policy is applied once (under `Always`, N commands cost one
    /// fsync instead of N) — the drain path of the serving layer's queued
    /// writer. The write-ahead invariant is preserved batch-wide: all frames
    /// reach the log before any command executes, and if the append fails
    /// every logged command in the batch is refused unexecuted.
    ///
    /// Replies match per-command [`DurableServer::execute`]; runs of
    /// consecutive valid `GRAPH.ADDEDGE` / `GRAPH.DELEDGE` commands apply
    /// through the sharded batch-ingest path (identical final state, and the
    /// reason those commands reply `+OK` rather than per-edge values).
    pub fn execute_batch(&mut self, batch: &[Vec<String>]) -> Vec<Reply> {
        enum Plan {
            /// Pre-validated graph write: `(insert?, u, v, w)`.
            Graph(bool, u64, u64, u64),
            /// Logged non-graph write: execute on the inner server.
            LoggedWrite,
            /// Unlogged command (reads, SAVE/BGREWRITEAOF): route through
            /// the per-command path, which never appends for these.
            Unlogged,
            /// Refused before logging (parse error) or by append failure.
            Refused(Reply),
        }

        // Phase 1: classify + pre-validate, collecting the log payloads.
        let mut plans: Vec<Plan> = Vec::with_capacity(batch.len());
        let mut payloads: Vec<Vec<u8>> = Vec::new();
        for parts in batch {
            let command = parts.first().map(|p| p.to_ascii_lowercase());
            let plan = match command.as_deref() {
                Some(cmd @ ("graph.addedge" | "graph.deledge")) => {
                    match Server::parse_graph_write(cmd, &parts[1..]) {
                        Ok((u, v, w)) => {
                            payloads.push(encode_command(parts));
                            Plan::Graph(cmd == "graph.addedge", u, v, w)
                        }
                        // Malformed graph writes are refused *before* the
                        // log sees them — replay never meets them.
                        Err(reply) => Plan::Refused(reply),
                    }
                }
                Some(cmd) if Server::is_write_command(cmd) => {
                    payloads.push(encode_command(parts));
                    Plan::LoggedWrite
                }
                _ => Plan::Unlogged,
            };
            plans.push(plan);
        }

        // Phase 2: group commit. Failure refuses every logged command.
        if let Err(e) = self.aof.append_payloads(payloads.iter().map(Vec::as_slice)) {
            let refusal = format!("ERR aof append failed: {e}");
            for plan in &mut plans {
                if matches!(plan, Plan::Graph(..) | Plan::LoggedWrite) {
                    *plan = Plan::Refused(Reply::Error(refusal.clone()));
                }
            }
        }

        // Phase 3: apply in order, folding consecutive graph writes of the
        // same kind into one sharded batch-ingest call.
        let mut replies: Vec<Reply> = Vec::with_capacity(batch.len());
        let mut run: Vec<(u64, u64, u64)> = Vec::new();
        let mut run_insert = true;
        let flush_run = |server: &mut Server, run: &mut Vec<(u64, u64, u64)>, insert: bool| {
            if run.is_empty() {
                return;
            }
            if insert {
                server.apply_graph_insert_run(run);
            } else {
                server.apply_graph_delete_run(run);
            }
            run.clear();
        };
        for (parts, plan) in batch.iter().zip(plans) {
            match plan {
                Plan::Graph(insert, u, v, w) => {
                    if insert != run_insert {
                        flush_run(&mut self.server, &mut run, run_insert);
                        run_insert = insert;
                    }
                    run.push((u, v, w));
                    replies.push(Reply::Ok);
                }
                other => {
                    flush_run(&mut self.server, &mut run, run_insert);
                    replies.push(match other {
                        Plan::LoggedWrite => self.server.execute(parts),
                        Plan::Unlogged => self.execute(parts),
                        Plan::Refused(reply) => reply,
                        Plan::Graph(..) => unreachable!("handled above"),
                    });
                }
            }
        }
        flush_run(&mut self.server, &mut run, run_insert);
        replies
    }

    /// Clock-driven [`SyncPolicy`](graph_durability::SyncPolicy) flush: the
    /// serving writer loop calls this on its own timer so an `EverySecond`
    /// log still syncs within ~1 s of a burst even when no further command
    /// arrives (see `AofWriter::tick`).
    pub fn tick(&mut self) -> Result<()> {
        self.aof.tick()
    }

    /// The wrapped server (read-only: mutations must go through
    /// [`DurableServer::execute`] to hit the log).
    pub fn server(&self) -> &Server {
        &self.server
    }

    /// The store's configuration.
    pub fn config(&self) -> &DurabilityConfig {
        &self.cfg
    }

    /// Current command log end offset.
    pub fn aof_offset(&self) -> u64 {
        self.aof.offset()
    }

    /// Instrumentation counters.
    pub fn stats(&self) -> DurabilityStats {
        *self.aof.stats()
    }

    /// Explicitly fsyncs the command log.
    pub fn sync(&mut self) -> Result<()> {
        self.aof.sync()
    }

    /// Writes an RDB snapshot plus a manifest generation tying it to the
    /// current log offset (the `SAVE` path). Returns the snapshot size.
    pub fn save_snapshot(&mut self) -> Result<u64> {
        // Best-effort sync: if the tail below the recorded offset is later
        // lost, the offset exceeds the valid log length and recovery skips
        // this generation.
        let _ = self.aof.sync();
        let offset = self.aof.offset();
        let rdb = self.server.save_rdb();
        let epoch = self.next_epoch;
        let name = snapshot_file(epoch);
        let bytes = write_kv_snapshot(
            &self.vfs,
            &path(&self.cfg, &name),
            &path(&self.cfg, KV_SNAPSHOT_TMP),
            &rdb,
        )?;
        self.next_epoch += 1;

        self.manifest.generations.insert(
            0,
            Generation {
                epoch,
                snapshot: name,
                aof_offset: offset,
            },
        );
        let dropped = if self.manifest.generations.len() > self.cfg.snapshot_generations {
            self.manifest
                .generations
                .split_off(self.cfg.snapshot_generations)
        } else {
            Vec::new()
        };
        self.manifest.store(
            &self.vfs,
            &path(&self.cfg, KV_MANIFEST_FILE),
            &path(&self.cfg, KV_MANIFEST_TMP),
        )?;
        for gen in dropped {
            let _ = self.vfs.remove(&path(&self.cfg, &gen.snapshot));
        }

        let stats = self.aof.stats_mut();
        stats.snapshots_written += 1;
        stats.last_snapshot_bytes = bytes;
        Ok(bytes)
    }

    /// Rewrites the command log from live state (the `BGREWRITEAOF` dance):
    /// minimal rebuild commands to a temp file, manifest cleared first, atomic
    /// rename, append handle reopened. Returns the new log size.
    pub fn rewrite_aof(&mut self) -> Result<u64> {
        self.server.aof_rewrite();
        let mut image = KV_AOF_MAGIC.to_vec();
        for command in self.server.aof() {
            encode_frame(&encode_command(command), &mut image);
        }

        let tmp = path(&self.cfg, KV_AOF_TMP);
        let mut file = self.vfs.create(&tmp)?;
        file.write_all(&image)?;
        file.sync()?;
        drop(file);

        // Clear the manifest before the log swap: its offsets would be
        // meaningless against the rewritten log.
        let dropped = std::mem::take(&mut self.manifest.generations);
        self.manifest.store(
            &self.vfs,
            &path(&self.cfg, KV_MANIFEST_FILE),
            &path(&self.cfg, KV_MANIFEST_TMP),
        )?;
        for gen in dropped {
            let _ = self.vfs.remove(&path(&self.cfg, &gen.snapshot));
        }

        let aof_path = path(&self.cfg, KV_AOF_FILE);
        self.vfs.rename(&tmp, &aof_path)?;

        let file = self.vfs.open_append(&aof_path)?;
        let mut stats = *self.aof.stats();
        stats.aof_rewrites += 1;
        self.aof = AofWriter::new(file, self.cfg.sync_policy, image.len() as u64);
        *self.aof.stats_mut() = stats;
        self.rewrite_base = image.len() as u64;
        Ok(image.len() as u64)
    }

    /// Rewrites when the log has outgrown its post-rewrite base per the
    /// configured thresholds. Returns whether a rewrite ran.
    pub fn maybe_rewrite_aof(&mut self) -> Result<bool> {
        let len = self.aof.offset();
        let threshold = self
            .rewrite_base
            .saturating_mul(self.cfg.rewrite_growth)
            .max(self.cfg.rewrite_min_bytes);
        if len >= threshold {
            self.rewrite_aof()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_module::CuckooGraphModule;
    use graph_durability::{SimVfs, SyncPolicy};

    fn cmd(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn cfg() -> DurabilityConfig {
        DurabilityConfig::new("kv").with_sync_policy(SyncPolicy::Never)
    }

    fn make_server() -> Server {
        let mut s = Server::new();
        s.load_module(Box::new(CuckooGraphModule::new()));
        s
    }

    #[test]
    fn command_codec_round_trips_and_rejects_garbage() {
        let parts = cmd(&["graph.insert", "g", "1", "2"]);
        let payload = encode_command(&parts);
        assert_eq!(decode_command(&payload), Some(parts));
        assert_eq!(decode_command(&encode_command(&[])), Some(Vec::new()));
        assert_eq!(decode_command(&[7]), None, "argc without args");
        let mut torn = encode_command(&cmd(&["set", "k", "v"]));
        torn.truncate(torn.len() - 1);
        assert_eq!(decode_command(&torn), None);
    }

    #[test]
    fn fresh_store_replays_its_log_after_restart() {
        let vfs = SimVfs::new();
        let (mut store, report) = DurableServer::open(vfs.clone(), cfg(), make_server).unwrap();
        assert_eq!(report.source, RecoverySource::Fresh);
        assert_eq!(store.execute(&cmd(&["SET", "k", "v1"])), Reply::Ok);
        assert_eq!(store.execute(&cmd(&["SET", "k", "v2"])), Reply::Ok);
        store.execute(&cmd(&["graph.insert", "g", "1", "2"]));
        store.execute(&cmd(&["graph.insert", "g", "1", "2"]));
        drop(store);

        let (mut back, report) = DurableServer::open(vfs, cfg(), make_server).unwrap();
        assert_eq!(report.source, RecoverySource::AofReplay);
        assert_eq!(report.ops_replayed, 4);
        assert_eq!(back.execute(&cmd(&["GET", "k"])), Reply::Bulk("v2".into()));
        assert_eq!(
            back.execute(&cmd(&["graph.query", "g", "1", "2"])),
            Reply::Integer(2)
        );
    }

    #[test]
    fn snapshot_shortens_replay_to_the_suffix() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableServer::open(vfs.clone(), cfg(), make_server).unwrap();
        for i in 0..10 {
            store.execute(&cmd(&["SET", &format!("k{i}"), "x"]));
        }
        assert_eq!(store.execute(&cmd(&["SAVE"])), Reply::Ok);
        store.execute(&cmd(&["SET", "late", "1"]));
        drop(store);

        let (mut back, report) = DurableServer::open(vfs, cfg(), make_server).unwrap();
        assert_eq!(report.source, RecoverySource::Snapshot { epoch: 1 });
        assert_eq!(report.ops_replayed, 1, "only the post-snapshot suffix");
        assert_eq!(back.execute(&cmd(&["DBSIZE"])), Reply::Integer(11));
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_full_replay() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableServer::open(vfs.clone(), cfg(), make_server).unwrap();
        store.execute(&cmd(&["SET", "a", "1"]));
        store.execute(&cmd(&["SAVE"]));
        store.execute(&cmd(&["SET", "b", "2"]));
        drop(store);
        vfs.corrupt_byte("kv/dump-000001.rdb", 20);

        let (mut back, report) = DurableServer::open(vfs, cfg(), make_server).unwrap();
        assert_eq!(report.source, RecoverySource::AofReplay);
        assert_eq!(report.generations_skipped, 1);
        assert_eq!(back.execute(&cmd(&["GET", "a"])), Reply::Bulk("1".into()));
        assert_eq!(back.execute(&cmd(&["GET", "b"])), Reply::Bulk("2".into()));
    }

    #[test]
    fn snapshot_without_its_module_degrades_to_log_replay() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableServer::open(vfs.clone(), cfg(), make_server).unwrap();
        store.execute(&cmd(&["graph.insert", "g", "1", "2"]));
        store.execute(&cmd(&["SAVE"]));
        drop(store);

        // Reopen without the module: the snapshot cannot load, but the log
        // replays (module commands simply error) — no panic, no data loss for
        // the parts the server can still interpret.
        let (back, report) = DurableServer::open(vfs, cfg(), Server::new).unwrap();
        assert_eq!(report.source, RecoverySource::AofReplay);
        assert_eq!(report.generations_skipped, 1);
        assert_eq!(back.server().keyspace().len(), 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_resume() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableServer::open(vfs.clone(), cfg(), make_server).unwrap();
        store.execute(&cmd(&["SET", "a", "1"]));
        store.execute(&cmd(&["SET", "b", "2"]));
        drop(store);
        let full = vfs.file_bytes("kv/commands.aof").unwrap();
        vfs.set_file("kv/commands.aof", full[..full.len() - 3].to_vec());

        let (mut back, report) = DurableServer::open(vfs.clone(), cfg(), make_server).unwrap();
        assert_eq!(report.ops_replayed, 1, "torn second command dropped");
        assert!(report.dropped_bytes > 0);
        assert_eq!(back.execute(&cmd(&["GET", "b"])), Reply::Nil);
        back.execute(&cmd(&["SET", "c", "3"]));
        drop(back);

        let (mut again, report) = DurableServer::open(vfs, cfg(), make_server).unwrap();
        assert_eq!(report.ops_replayed, 2);
        assert_eq!(again.execute(&cmd(&["GET", "c"])), Reply::Bulk("3".into()));
    }

    #[test]
    fn strict_mode_surfaces_the_torn_tail() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableServer::open(vfs.clone(), cfg(), make_server).unwrap();
        store.execute(&cmd(&["SET", "a", "1"]));
        drop(store);
        let full = vfs.file_bytes("kv/commands.aof").unwrap();
        vfs.set_file("kv/commands.aof", full[..full.len() - 2].to_vec());

        let strict = cfg().with_recovery_mode(RecoveryMode::Strict);
        let err = DurableServer::open(vfs, strict, make_server).unwrap_err();
        assert!(matches!(err, DurabilityError::Corrupt { .. }));
    }

    #[test]
    fn crash_mid_append_recovers_the_acknowledged_prefix() {
        let vfs = SimVfs::new();
        let always = cfg().with_sync_policy(SyncPolicy::Always);
        let (mut store, _) = DurableServer::open(vfs.clone(), always.clone(), make_server).unwrap();
        vfs.crash_after_bytes(160);
        let mut acked = Vec::new();
        for i in 0..50 {
            let parts = cmd(&["SET", &format!("k{i}"), "v"]);
            match store.execute(&parts) {
                Reply::Ok => acked.push(i),
                Reply::Error(_) => break,
                other => panic!("unexpected reply {other:?}"),
            }
        }
        assert!(acked.len() < 50, "the crash must have hit");
        drop(store);
        vfs.revive();

        let (mut back, _) = DurableServer::open(vfs, always, make_server).unwrap();
        for i in &acked {
            assert_eq!(
                back.execute(&cmd(&["GET", &format!("k{i}")])),
                Reply::Bulk("v".into()),
                "acknowledged write k{i} must survive"
            );
        }
        assert_eq!(
            back.execute(&cmd(&["DBSIZE"])),
            Reply::Integer(acked.len() as i64),
            "nothing beyond the acknowledged prefix may appear"
        );
    }

    #[test]
    fn execute_batch_group_commits_writes_and_replays_them() {
        let vfs = SimVfs::new();
        let always = cfg().with_sync_policy(SyncPolicy::Always);
        let (mut store, _) = DurableServer::open(vfs.clone(), always.clone(), make_server).unwrap();
        let syncs_before = vfs.total_syncs();
        let batch: Vec<Vec<String>> = vec![
            cmd(&["SET", "k", "v"]),
            cmd(&["GRAPH.ADDEDGE", "1", "2"]),
            cmd(&["GRAPH.ADDEDGE", "1", "3", "4"]),
            cmd(&["GRAPH.DELEDGE", "1", "3"]),
            cmd(&["GRAPH.ADDEDGE", "bad", "2"]),
            cmd(&["GRAPH.SUCCESSORS", "1"]),
            cmd(&["GET", "k"]),
        ];
        let replies = store.execute_batch(&batch);
        assert_eq!(&replies[..4], &[Reply::Ok, Reply::Ok, Reply::Ok, Reply::Ok]);
        assert!(matches!(replies[4], Reply::Error(_)), "bad id refused");
        assert_eq!(
            replies[5],
            Reply::Array(vec![Reply::Bulk("2".into())]),
            "reads see the batch's earlier writes, in order"
        );
        assert_eq!(replies[6], Reply::Bulk("v".into()));
        assert_eq!(
            vfs.total_syncs() - syncs_before,
            1,
            "four write frames, one group-committed fsync"
        );

        drop(store);
        let (mut back, report) = DurableServer::open(vfs, always, make_server).unwrap();
        assert_eq!(report.ops_replayed, 4, "refused + read commands not logged");
        assert_eq!(
            back.execute(&cmd(&["GRAPH.SUCCESSORS", "1"])),
            Reply::Array(vec![Reply::Bulk("2".into())])
        );
        assert_eq!(back.execute(&cmd(&["GET", "k"])), Reply::Bulk("v".into()));
    }

    #[test]
    fn execute_batch_matches_per_command_execution() {
        let vfs_a = SimVfs::new();
        let vfs_b = SimVfs::new();
        let (mut batched, _) = DurableServer::open(vfs_a, cfg(), make_server).unwrap();
        let (mut serial, _) = DurableServer::open(vfs_b, cfg(), make_server).unwrap();
        let commands: Vec<Vec<String>> = (0..200)
            .map(|i| match i % 5 {
                0 => cmd(&["GRAPH.ADDEDGE", &(i % 7).to_string(), &i.to_string()]),
                1 => cmd(&["GRAPH.ADDEDGE", &(i % 3).to_string(), "9", "2"]),
                2 => cmd(&[
                    "GRAPH.DELEDGE",
                    &((i + 2) % 7).to_string(),
                    &(i - 2).to_string(),
                ]),
                3 => cmd(&["SET", &format!("k{}", i % 10), &i.to_string()]),
                _ => cmd(&["GRAPH.HASEDGE", &(i % 7).to_string(), "9"]),
            })
            .collect();
        let batch_replies = batched.execute_batch(&commands);
        let serial_replies: Vec<Reply> = commands.iter().map(|c| serial.execute(c)).collect();
        assert_eq!(batch_replies, serial_replies);
        for u in 0..10u64 {
            assert_eq!(
                batched.execute(&cmd(&["GRAPH.SUCCESSORS", &u.to_string()])),
                serial.execute(&cmd(&["GRAPH.SUCCESSORS", &u.to_string()])),
                "successors of {u} diverged"
            );
        }
        assert_eq!(
            batched.execute(&cmd(&["GRAPH.EDGECOUNT"])),
            serial.execute(&cmd(&["GRAPH.EDGECOUNT"]))
        );
    }

    #[test]
    fn tick_drives_the_every_second_flush_from_the_loop_clock() {
        let vfs = SimVfs::new();
        let everysec = cfg().with_sync_policy(SyncPolicy::EverySecond);
        let (mut store, _) = DurableServer::open(vfs.clone(), everysec, make_server).unwrap();
        store.execute(&cmd(&["SET", "k", "v"]));
        store.tick().unwrap();
        assert_eq!(vfs.total_syncs(), 0, "interval not yet elapsed");
        std::thread::sleep(std::time::Duration::from_millis(1100));
        store.tick().unwrap();
        assert_eq!(
            vfs.total_syncs(),
            1,
            "idle-then-wait burst reached disk from the tick clock alone"
        );
    }

    #[test]
    fn bgrewriteaof_compacts_the_log() {
        let vfs = SimVfs::new();
        let (mut store, _) = DurableServer::open(vfs.clone(), cfg(), make_server).unwrap();
        for _ in 0..100 {
            store.execute(&cmd(&["SET", "hot", "x"]));
        }
        let before = store.aof_offset();
        assert!(matches!(
            store.execute(&cmd(&["BGREWRITEAOF"])),
            Reply::Simple(_)
        ));
        assert!(store.aof_offset() < before, "rewrite must shrink the log");
        assert_eq!(store.stats().aof_rewrites, 1);
        drop(store);

        let (mut back, report) = DurableServer::open(vfs, cfg(), make_server).unwrap();
        assert_eq!(report.ops_replayed, 1, "one rebuild command remains");
        assert_eq!(back.execute(&cmd(&["GET", "hot"])), Reply::Bulk("x".into()));
    }

    #[test]
    fn maybe_rewrite_honours_thresholds() {
        let vfs = SimVfs::new();
        let small = cfg().with_rewrite_thresholds(2, 64);
        let (mut store, _) = DurableServer::open(vfs, small, make_server).unwrap();
        assert!(!store.maybe_rewrite_aof().unwrap(), "log still tiny");
        for _ in 0..20 {
            store.execute(&cmd(&["SET", "hot", "x"]));
        }
        assert!(store.maybe_rewrite_aof().unwrap());
        assert_eq!(store.stats().aof_rewrites, 1);
    }
}
