//! Per-connection sessions and the TCP front door.
//!
//! The server core ([`crate::Server`]) is a pure command dispatcher; this
//! module adds the connection handling around it. The robustness contract:
//!
//! * a malformed RESP frame (undecodable byte stream) gets a RESP error reply
//!   and closes **only that connection** — framing is lost, so the session
//!   cannot safely resynchronise;
//! * a well-framed but non-command value (e.g. a bare integer) gets an error
//!   reply and the session stays open — framing is intact;
//! * EOF mid-command is a clean close, not an error;
//! * the accept loop never exits because one connection misbehaved.

use crate::module::Reply;
use crate::resp::RespValue;
use crate::server::Server;
use bytes::BytesMut;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

/// What the session wants done with its connection after consuming input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Keep reading from the connection.
    Open,
    /// Close this connection (after flushing the returned replies).
    Close,
}

/// One client connection's incremental RESP state.
///
/// Bytes arrive in arbitrary chunks; the session buffers partial commands and
/// executes every complete one, so pipelining works for free. Replies are
/// encoded into a **reusable per-session output buffer** — one allocation's
/// capacity amortized over the connection's lifetime instead of a fresh `Vec`
/// per read plus a fresh `Bytes` per command.
#[derive(Debug, Default)]
pub struct Session {
    buf: BytesMut,
    out: Vec<u8>,
}

impl Session {
    /// Creates a session with an empty receive buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds freshly received bytes, executing every complete command against
    /// `server`. Returns the concatenated RESP replies to write back (borrowed
    /// from the session's reusable buffer — consumed before the next feed) and
    /// whether the connection must close.
    pub fn feed(&mut self, server: &mut Server, data: &[u8]) -> (&[u8], SessionStatus) {
        self.buf.extend_from_slice(data);
        self.out.clear();
        loop {
            match RespValue::decode(&mut self.buf) {
                Ok(None) => return (&self.out, SessionStatus::Open),
                Ok(Some(value)) => {
                    let reply = match value.into_command() {
                        Ok(parts) => server.execute(&parts),
                        Err(e) => Reply::Error(format!("ERR {e}")),
                    };
                    Server::encode_reply_into(&reply, &mut self.out);
                }
                Err(e) => {
                    // Byte-stream framing is lost: reply, then drop only this
                    // session. The listener and every other session live on.
                    let reply = Reply::Error(format!("ERR protocol error: {e}"));
                    Server::encode_reply_into(&reply, &mut self.out);
                    return (&self.out, SessionStatus::Close);
                }
            }
        }
    }

    /// Appends freshly received bytes without executing anything — the
    /// decode-only half of [`Session::feed`], for dispatchers (the reactor)
    /// that route commands instead of executing them inline.
    pub fn push_bytes(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Decodes the next complete RESP value buffered by
    /// [`Session::push_bytes`]. `Ok(None)` means more bytes are needed;
    /// `Err` means framing is lost and the connection must close after an
    /// error reply.
    pub fn next_value(&mut self) -> Result<Option<RespValue>, String> {
        RespValue::decode(&mut self.buf)
    }

    /// Whether an EOF now would cut a command in half (bytes are buffered but
    /// no complete value arrived). Either way the close is clean.
    pub fn eof_mid_command(&self) -> bool {
        !self.buf.is_empty()
    }
}

/// A shared, lockable server — what each connection thread holds.
pub type SharedServer = Arc<Mutex<Server>>;

/// Wraps a server for use by [`serve`].
pub fn shared(server: Server) -> SharedServer {
    Arc::new(Mutex::new(server))
}

/// Accept loop: serves connections on `listener` until the process exits,
/// spawning one thread per connection. Transient accept errors and
/// misbehaving clients never bring the loop down.
pub fn serve(listener: TcpListener, server: SharedServer) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // Pipelined bursts of small replies must not sit out Nagle
                // delays waiting for an ACK.
                let _ = stream.set_nodelay(true);
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    // I/O errors here mean the peer vanished — that
                    // connection is done, nothing else is affected.
                    let _ = handle_connection(stream, &server);
                });
            }
            // Transient conditions: retry the accept itself.
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            // Per-connection failures surfaced at accept time (e.g.
            // ECONNABORTED) must not kill the listener.
            Err(_) => continue,
        }
    }
}

/// Binds an ephemeral listener and serves it on a background thread.
/// Returns the bound address (used by tests and examples).
pub fn spawn_server(server: Server) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let shared = shared(server);
    std::thread::spawn(move || serve(listener, shared));
    Ok(addr)
}

fn handle_connection(mut stream: TcpStream, server: &Mutex<Server>) -> std::io::Result<()> {
    let mut session = Session::new();
    let mut chunk = [0u8; 4096];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            // EOF — clean close even if a command was left half-sent.
            return Ok(());
        }
        let (replies, status) = {
            let mut guard = server.lock().unwrap_or_else(|p| p.into_inner());
            session.feed(&mut guard, &chunk[..n])
        };
        stream.write_all(replies)?;
        if status == SessionStatus::Close {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::Shutdown;
    use std::time::Duration;

    fn wire(parts: &[&str]) -> Vec<u8> {
        RespValue::command(parts).encode().to_vec()
    }

    #[test]
    fn session_executes_pipelined_commands_from_split_chunks() {
        let mut server = Server::new();
        let mut session = Session::new();
        let mut bytes = wire(&["SET", "k", "v"]);
        bytes.extend_from_slice(&wire(&["GET", "k"]));
        let (head, tail) = bytes.split_at(bytes.len() - 5);

        let (replies, status) = session.feed(&mut server, head);
        assert_eq!(status, SessionStatus::Open);
        assert_eq!(replies, b"+OK\r\n", "first command completes early");
        assert!(session.eof_mid_command(), "second command is half-buffered");

        let (replies, status) = session.feed(&mut server, tail);
        assert_eq!(status, SessionStatus::Open);
        assert_eq!(replies, b"$1\r\nv\r\n");
        assert!(!session.eof_mid_command());
    }

    #[test]
    fn malformed_frame_gets_error_reply_and_closes_only_that_session() {
        let mut server = Server::new();
        let mut session = Session::new();
        let (replies, status) = session.feed(&mut server, b"?garbage\r\n");
        assert_eq!(status, SessionStatus::Close);
        assert!(replies.starts_with(b"-ERR protocol error"));

        // The server itself is unharmed: a fresh session still works.
        let mut session2 = Session::new();
        let (replies, status) = session2.feed(&mut server, &wire(&["PING"]));
        assert_eq!(status, SessionStatus::Open);
        assert_eq!(replies, b"+PONG\r\n");
    }

    #[test]
    fn well_framed_non_command_keeps_the_session_open() {
        let mut server = Server::new();
        let mut session = Session::new();
        let (replies, status) = session.feed(&mut server, b":42\r\n");
        assert_eq!(status, SessionStatus::Open, "framing intact: stay open");
        assert!(replies.starts_with(b"-ERR"));
        let (replies, _) = session.feed(&mut server, &wire(&["PING"]));
        assert_eq!(replies, b"+PONG\r\n");
    }

    #[test]
    fn eof_mid_command_is_reported() {
        let mut server = Server::new();
        let mut session = Session::new();
        let bytes = wire(&["SET", "k", "v"]);
        let (replies, status) = session.feed(&mut server, &bytes[..bytes.len() - 3]);
        assert_eq!(status, SessionStatus::Open);
        assert!(replies.is_empty());
        assert!(session.eof_mid_command());
    }

    fn read_reply(stream: &mut BufReader<TcpStream>) -> String {
        let mut line = String::new();
        stream.read_line(&mut line).unwrap();
        line
    }

    #[test]
    fn tcp_accept_loop_survives_malformed_frames_and_mid_command_eof() {
        let addr = spawn_server(Server::new()).unwrap();
        let timeout = Some(Duration::from_secs(5));

        // Connection A: garbage bytes → error reply, then the server closes
        // just this connection.
        let a = TcpStream::connect(addr).unwrap();
        a.set_read_timeout(timeout).unwrap();
        let mut a_reader = BufReader::new(a.try_clone().unwrap());
        (&a).write_all(b"?bogus\r\n").unwrap();
        assert!(read_reply(&mut a_reader).starts_with("-ERR protocol error"));
        let mut rest = Vec::new();
        a_reader.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "server closed the bad connection");

        // Connection B: hangs up mid-command — the server must shrug.
        let b = TcpStream::connect(addr).unwrap();
        let partial = wire(&["SET", "k", "v"]);
        (&b).write_all(&partial[..partial.len() - 4]).unwrap();
        b.shutdown(Shutdown::Both).unwrap();

        // Connection C: the accept loop is still alive and serving.
        let c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(timeout).unwrap();
        let mut c_reader = BufReader::new(c.try_clone().unwrap());
        (&c).write_all(&wire(&["SET", "x", "1"])).unwrap();
        assert_eq!(read_reply(&mut c_reader), "+OK\r\n");
        (&c).write_all(&wire(&["GET", "x"])).unwrap();
        assert_eq!(read_reply(&mut c_reader), "$1\r\n");
        assert_eq!(read_reply(&mut c_reader), "1\r\n");
    }

    #[test]
    fn tcp_sessions_share_one_keyspace() {
        let addr = spawn_server(Server::new()).unwrap();
        let timeout = Some(Duration::from_secs(5));

        let a = TcpStream::connect(addr).unwrap();
        a.set_read_timeout(timeout).unwrap();
        let mut a_reader = BufReader::new(a.try_clone().unwrap());
        (&a).write_all(&wire(&["SET", "shared", "yes"])).unwrap();
        assert_eq!(read_reply(&mut a_reader), "+OK\r\n");

        let b = TcpStream::connect(addr).unwrap();
        b.set_read_timeout(timeout).unwrap();
        let mut b_reader = BufReader::new(b.try_clone().unwrap());
        (&b).write_all(&wire(&["GET", "shared"])).unwrap();
        assert_eq!(read_reply(&mut b_reader), "$3\r\n");
        assert_eq!(read_reply(&mut b_reader), "yes\r\n");
    }
}
