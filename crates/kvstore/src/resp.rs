//! A RESP (REdis Serialization Protocol) style codec.
//!
//! Only the subset the experiment needs is implemented: simple strings,
//! errors, integers, bulk strings, arrays and nulls — enough to encode every
//! command and reply the CuckooGraph module exchanges with a client.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A RESP protocol value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RespValue {
    /// `+OK\r\n`
    Simple(String),
    /// `-ERR ...\r\n`
    Error(String),
    /// `:42\r\n`
    Integer(i64),
    /// `$5\r\nhello\r\n`
    Bulk(Bytes),
    /// `$-1\r\n`
    Null,
    /// `*N\r\n...`
    Array(Vec<RespValue>),
}

impl RespValue {
    /// Builds a bulk string from text.
    pub fn bulk(text: impl Into<String>) -> Self {
        RespValue::Bulk(Bytes::from(text.into()))
    }

    /// Builds the array-of-bulk-strings encoding of a command.
    pub fn command(parts: &[&str]) -> Self {
        RespValue::Array(parts.iter().map(|p| RespValue::bulk(*p)).collect())
    }

    /// Encodes this value into RESP bytes.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        self.encode_into(&mut out);
        out.freeze()
    }

    /// Encodes this value onto the end of `out` — the allocation-free path a
    /// session's reusable output buffer feeds.
    pub fn encode_into(&self, out: &mut BytesMut) {
        match self {
            RespValue::Simple(s) => {
                out.put_u8(b'+');
                out.put_slice(s.as_bytes());
                out.put_slice(b"\r\n");
            }
            RespValue::Error(s) => {
                out.put_u8(b'-');
                out.put_slice(s.as_bytes());
                out.put_slice(b"\r\n");
            }
            RespValue::Integer(i) => {
                out.put_u8(b':');
                out.put_slice(i.to_string().as_bytes());
                out.put_slice(b"\r\n");
            }
            RespValue::Bulk(b) => {
                out.put_u8(b'$');
                out.put_slice(b.len().to_string().as_bytes());
                out.put_slice(b"\r\n");
                out.put_slice(b);
                out.put_slice(b"\r\n");
            }
            RespValue::Null => out.put_slice(b"$-1\r\n"),
            RespValue::Array(items) => {
                out.put_u8(b'*');
                out.put_slice(items.len().to_string().as_bytes());
                out.put_slice(b"\r\n");
                for item in items {
                    item.encode_into(out);
                }
            }
        }
    }

    /// Decodes one RESP value from the front of `buf`. Returns `None` when the
    /// buffer does not yet hold a complete value (the caller keeps reading).
    pub fn decode(buf: &mut BytesMut) -> Result<Option<RespValue>, String> {
        let mut cursor = Cursor { data: buf, pos: 0 };
        match parse(&mut cursor) {
            Ok(Some(value)) => {
                let consumed = cursor.pos;
                buf.advance(consumed);
                Ok(Some(value))
            }
            Ok(None) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Converts an array-of-bulk-strings value into a command word list.
    pub fn into_command(self) -> Result<Vec<String>, String> {
        let RespValue::Array(items) = self else {
            return Err("commands must be RESP arrays".into());
        };
        items
            .into_iter()
            .map(|item| match item {
                RespValue::Bulk(b) => String::from_utf8(b.to_vec())
                    .map_err(|_| "command arguments must be UTF-8".to_string()),
                RespValue::Simple(s) => Ok(s),
                other => Err(format!("unexpected command element: {other:?}")),
            })
            .collect()
    }
}

struct Cursor<'a> {
    data: &'a BytesMut,
    pos: usize,
}

impl Cursor<'_> {
    fn read_line(&mut self) -> Option<&[u8]> {
        let rest = &self.data[self.pos..];
        let end = rest.windows(2).position(|w| w == b"\r\n")?;
        let line = &rest[..end];
        self.pos += end + 2;
        Some(line)
    }

    fn read_exact(&mut self, n: usize) -> Option<&[u8]> {
        if self.data.len() < self.pos + n + 2 {
            return None;
        }
        let bytes = &self.data[self.pos..self.pos + n];
        self.pos += n + 2; // skip trailing \r\n
        Some(bytes)
    }
}

fn parse(cursor: &mut Cursor<'_>) -> Result<Option<RespValue>, String> {
    if cursor.pos >= cursor.data.len() {
        return Ok(None);
    }
    let kind = cursor.data[cursor.pos];
    cursor.pos += 1;
    let Some(line) = cursor.read_line() else {
        return Ok(None);
    };
    let line = String::from_utf8_lossy(line).to_string();
    match kind {
        b'+' => Ok(Some(RespValue::Simple(line))),
        b'-' => Ok(Some(RespValue::Error(line))),
        b':' => line
            .parse()
            .map(|i| Some(RespValue::Integer(i)))
            .map_err(|_| format!("bad integer: {line}")),
        b'$' => {
            let len: i64 = line
                .parse()
                .map_err(|_| format!("bad bulk length: {line}"))?;
            if len < 0 {
                return Ok(Some(RespValue::Null));
            }
            match cursor.read_exact(len as usize) {
                None => Ok(None),
                Some(bytes) => Ok(Some(RespValue::Bulk(Bytes::copy_from_slice(bytes)))),
            }
        }
        b'*' => {
            let len: i64 = line
                .parse()
                .map_err(|_| format!("bad array length: {line}"))?;
            if len < 0 {
                return Ok(Some(RespValue::Null));
            }
            let mut items = Vec::with_capacity(len as usize);
            for _ in 0..len {
                match parse(cursor)? {
                    Some(item) => items.push(item),
                    None => return Ok(None),
                }
            }
            Ok(Some(RespValue::Array(items)))
        }
        other => Err(format!("unknown RESP type byte: {other:#x}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: RespValue) {
        let encoded = value.encode();
        let mut buf = BytesMut::from(&encoded[..]);
        let decoded = RespValue::decode(&mut buf).unwrap().unwrap();
        assert_eq!(decoded, value);
        assert!(buf.is_empty(), "decoder left bytes behind");
    }

    #[test]
    fn all_types_roundtrip() {
        roundtrip(RespValue::Simple("OK".into()));
        roundtrip(RespValue::Error("ERR boom".into()));
        roundtrip(RespValue::Integer(-42));
        roundtrip(RespValue::bulk("hello world"));
        roundtrip(RespValue::Null);
        roundtrip(RespValue::Array(vec![
            RespValue::Integer(1),
            RespValue::bulk("two"),
            RespValue::Array(vec![RespValue::Null]),
        ]));
    }

    #[test]
    fn partial_input_returns_none_and_keeps_bytes() {
        let full = RespValue::command(&["graph.insert", "g", "1", "2"]).encode();
        let mut buf = BytesMut::from(&full[..full.len() - 3]);
        assert_eq!(RespValue::decode(&mut buf).unwrap(), None);
        assert_eq!(buf.len(), full.len() - 3, "partial decode must not consume");
        buf.extend_from_slice(&full[full.len() - 3..]);
        let decoded = RespValue::decode(&mut buf).unwrap().unwrap();
        assert_eq!(
            decoded.into_command().unwrap(),
            vec!["graph.insert", "g", "1", "2"]
        );
    }

    #[test]
    fn command_conversion_rejects_non_arrays() {
        assert!(RespValue::Integer(3).into_command().is_err());
    }

    #[test]
    fn pipelined_values_decode_one_at_a_time() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&RespValue::Integer(1).encode());
        buf.extend_from_slice(&RespValue::Integer(2).encode());
        assert_eq!(
            RespValue::decode(&mut buf).unwrap(),
            Some(RespValue::Integer(1))
        );
        assert_eq!(
            RespValue::decode(&mut buf).unwrap(),
            Some(RespValue::Integer(2))
        );
        assert_eq!(RespValue::decode(&mut buf).unwrap(), None);
    }

    #[test]
    fn unknown_type_byte_is_an_error() {
        let mut buf = BytesMut::from(&b"?3\r\n"[..]);
        assert!(RespValue::decode(&mut buf).is_err());
    }
}
