//! Pipelined concurrent serving: a non-blocking event loop with a sharded
//! read path.
//!
//! The thread-per-connection front door in [`crate::net`] serializes every
//! command — reads included — behind one server mutex, and pays a thread plus
//! a wakeup per connection. This module replaces that shape for serving under
//! traffic:
//!
//! * **No per-connection thread.** One acceptor thread hands sockets to a
//!   small fixed worker pool; each worker multiplexes many non-blocking
//!   connections with an escalating `park_timeout` idle backoff (never a
//!   busy-spin).
//! * **True pipelining.** Every complete RESP command buffered on a readable
//!   connection is decoded and dispatched in one pass; replies land in
//!   per-command sequence slots and the in-order completed prefix is flushed
//!   with **one vectored write per wakeup**.
//! * **Reads bypass the writer.** Dispatch classifies commands via
//!   [`Server::classify_command`]: graph reads execute inline on the worker
//!   against a [`Sharded::read_view`] snapshot — no mutex, no queue, no
//!   hand-off. Workers never even hold a reference to the [`DurableServer`],
//!   so the exclusion is structural, not a discipline.
//! * **Writes funnel to one writer.** All mutating commands cross a bounded
//!   MPSC queue to a single writer thread that owns the [`DurableServer`]
//!   outright. The writer drains the queue in batches and feeds
//!   [`DurableServer::execute_batch`], which group-commits the whole batch to
//!   the AOF **before** any command executes — memory never runs ahead of the
//!   log, exactly the per-command write-ahead invariant, amortized.
//! * **Per-connection causality is preserved.** A pipelined read that follows
//!   a still-in-flight write from the *same* connection is routed through the
//!   writer queue behind it, so a client always reads its own writes; reads
//!   with no write in flight take the concurrent path.
//!
//! [`ServerConfig::with_concurrent_dispatch`]`(false)` disables the read
//! fast-path and routes *everything* through the writer — the serial-dispatch
//! oracle the benchmarks and equivalence tests compare against.
//!
//! [`Sharded::read_view`]: cuckoograph::Sharded::read_view

use crate::module::Reply;
use crate::net::Session;
use crate::persist::DurableServer;
use crate::server::{CommandClass, Server};
use cuckoograph::{ReadCounters, ShardReadView, ShardedWeightedCuckooGraph, WeightedCuckooGraph};
use graph_durability::Vfs;
use std::collections::VecDeque;
use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle, Thread};
use std::time::{Duration, Instant};

/// Idle backoff bounds for acceptor and worker loops: start fast, escalate to
/// a modest ceiling. The loops *sleep* between polls — never busy-spin — and
/// are unparked the moment a peer thread hands them work.
const BACKOFF_MIN: Duration = Duration::from_micros(50);
const BACKOFF_MAX: Duration = Duration::from_millis(2);

/// Per-read scratch size. Large enough that a deep pipelined burst usually
/// arrives in one syscall.
const READ_CHUNK: usize = 16 * 1024;

/// Tuning for [`Reactor::spawn`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    workers: usize,
    concurrent_dispatch: bool,
    queue_depth: usize,
    batch_max: usize,
    tick_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            concurrent_dispatch: true,
            queue_depth: 1024,
            batch_max: 256,
            tick_interval: Duration::from_millis(100),
        }
    }
}

impl ServerConfig {
    /// Default configuration: two workers, concurrent read dispatch on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of connection-handling worker threads (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// `false` routes **every** command — reads included — through the single
    /// writer: the serial-dispatch oracle. `true` (the default) executes
    /// graph reads concurrently on the workers.
    pub fn with_concurrent_dispatch(mut self, on: bool) -> Self {
        self.concurrent_dispatch = on;
        self
    }

    /// Bound of the write queue (minimum 1). A full queue back-pressures the
    /// submitting worker instead of buffering unboundedly.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Most commands the writer folds into one group-committed batch.
    pub fn with_batch_max(mut self, max: usize) -> Self {
        self.batch_max = max.max(1);
        self
    }

    /// Interval of the writer's housekeeping clock, which drives
    /// [`DurableServer::tick`] (the `EverySecond` sync policy's flush).
    pub fn with_tick_interval(mut self, interval: Duration) -> Self {
        self.tick_interval = interval.max(Duration::from_millis(1));
        self
    }

    /// Whether graph reads take the concurrent path.
    pub fn concurrent_dispatch(&self) -> bool {
        self.concurrent_dispatch
    }
}

/// A write (or serially-routed) command in flight to the writer thread.
struct WriteReq {
    worker: usize,
    conn: u64,
    seq: u64,
    parts: Vec<String>,
}

/// A finished writer command: the encoded reply for one sequence slot.
struct Completion {
    conn: u64,
    seq: u64,
    bytes: Vec<u8>,
}

/// One multiplexed connection owned by a worker.
struct Conn {
    stream: TcpStream,
    session: Session,
    /// Replies for sequences `flushed_seq ..`; `None` = still in flight.
    slots: VecDeque<Option<Vec<u8>>>,
    /// First sequence not yet handed to the kernel.
    flushed_seq: u64,
    /// Next sequence to assign to a decoded command.
    next_seq: u64,
    /// Bytes accepted by a previous partial write, retried first.
    pending_out: Vec<u8>,
    /// Commands sent to the writer whose completions have not returned.
    writes_in_flight: usize,
    /// Stop reading; close once every slot is flushed.
    closing: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            session: Session::new(),
            slots: VecDeque::new(),
            flushed_seq: 0,
            next_seq: 0,
            pending_out: Vec::new(),
            writes_in_flight: 0,
            closing: false,
        }
    }

    /// Fills the reply slot for `seq` (a no-op if the slot was already
    /// dropped by an earlier close).
    fn fill(&mut self, seq: u64, bytes: Vec<u8>) {
        let Some(idx) = seq.checked_sub(self.flushed_seq) else {
            return;
        };
        if let Some(slot) = self.slots.get_mut(idx as usize) {
            *slot = Some(bytes);
        }
    }

    fn done(&self) -> bool {
        self.closing && self.slots.iter().all(Option::is_some) && self.writes_in_flight == 0
    }
}

/// The serving front end: acceptor + worker pool + single durable writer.
///
/// Dropping the handle leaves the threads running (they hold everything they
/// need); call [`Reactor::shutdown`] for an orderly stop that drains the
/// write queue and syncs the log.
#[derive(Debug)]
pub struct Reactor {
    addr: SocketAddr,
    graph: Arc<ShardedWeightedCuckooGraph>,
    running: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Binds an ephemeral loopback listener and spawns the serving threads
    /// around `durable`. The [`DurableServer`] moves into the writer thread
    /// wholesale — after this call the only shared state is the graph's
    /// epoch-protected read surface.
    pub fn spawn<V>(durable: DurableServer<V>, cfg: ServerConfig) -> io::Result<Reactor>
    where
        V: Vfs + Send + 'static,
        V::File: Send,
    {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let graph = durable.server().shared_graph();
        let running = Arc::new(AtomicBool::new(true));

        let (write_tx, write_rx) = mpsc::sync_channel::<WriteReq>(cfg.queue_depth);
        let mut conn_txs = Vec::with_capacity(cfg.workers);
        let mut workers = Vec::with_capacity(cfg.workers);
        let mut completion_txs = Vec::with_capacity(cfg.workers);
        let mut worker_threads: Vec<Thread> = Vec::with_capacity(cfg.workers);

        for index in 0..cfg.workers {
            let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
            let (completion_tx, completion_rx) = mpsc::channel::<Completion>();
            conn_txs.push(conn_tx);
            completion_txs.push(completion_tx);
            let handle = thread::Builder::new()
                .name(format!("kv-worker-{index}"))
                .spawn({
                    let graph = Arc::clone(&graph);
                    let running = Arc::clone(&running);
                    let write_tx = write_tx.clone();
                    let concurrent = cfg.concurrent_dispatch;
                    move || {
                        worker_loop(
                            index,
                            &graph,
                            &running,
                            &conn_rx,
                            &completion_rx,
                            &write_tx,
                            concurrent,
                        )
                    }
                })?;
            worker_threads.push(handle.thread().clone());
            workers.push(handle);
        }
        // The workers hold the only long-lived clones; dropping the original
        // lets the writer observe disconnect once every worker exits.
        drop(write_tx);

        let acceptor = thread::Builder::new().name("kv-acceptor".into()).spawn({
            let running = Arc::clone(&running);
            let worker_threads = worker_threads.clone();
            move || accept_loop(&listener, &running, &conn_txs, &worker_threads)
        })?;

        let writer = thread::Builder::new().name("kv-writer".into()).spawn({
            let cfg = cfg.clone();
            move || writer_loop(durable, &cfg, &write_rx, &completion_txs, &worker_threads)
        })?;

        Ok(Reactor {
            addr,
            graph,
            running,
            workers,
            acceptor: Some(acceptor),
            writer: Some(writer),
        })
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served graph's shared handle (benchmarks preload through it).
    pub fn graph(&self) -> Arc<ShardedWeightedCuckooGraph> {
        Arc::clone(&self.graph)
    }

    /// Aggregated read-path instrumentation — `read_pins` rises iff readers
    /// actually took the concurrent snapshot path.
    pub fn read_counters(&self) -> ReadCounters {
        self.graph.read_counters()
    }

    /// Orderly stop: accepts no new connections, lets the workers drain their
    /// buffered commands into the write queue, and joins the writer after it
    /// has group-committed everything submitted, with a final sync.
    pub fn shutdown(mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.thread().unpark();
            let _ = acceptor.join();
        }
        for worker in &self.workers {
            worker.thread().unpark();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(writer) = self.writer.take() {
            writer.thread().unpark();
            let _ = writer.join();
        }
    }
}

fn transient(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::Interrupted)
}

/// Accepts connections on the non-blocking listener and deals them to the
/// workers round-robin, unparking the chosen worker. WouldBlock escalates the
/// park backoff; per-connection accept failures (ECONNABORTED) never stop the
/// loop.
fn accept_loop(
    listener: &TcpListener,
    running: &AtomicBool,
    conn_txs: &[Sender<TcpStream>],
    worker_threads: &[Thread],
) {
    let mut next = 0usize;
    let mut backoff = BACKOFF_MIN;
    while running.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                backoff = BACKOFF_MIN;
                // Pipelined bursts of small replies must not wait out Nagle.
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let target = next % conn_txs.len();
                next = next.wrapping_add(1);
                if conn_txs[target].send(stream).is_ok() {
                    worker_threads[target].unpark();
                }
            }
            Err(e) if transient(e.kind()) => {
                thread::park_timeout(backoff);
                backoff = (backoff * 2).min(BACKOFF_MAX);
            }
            // ECONNABORTED and friends cost one connection, not the listener.
            Err(_) => continue,
        }
    }
}

/// One worker: multiplexes its connections, decoding every buffered command
/// per readable event, dispatching reads inline and writes to the queue, and
/// flushing each connection's in-order completed replies with one vectored
/// write per wakeup.
fn worker_loop(
    index: usize,
    graph: &ShardedWeightedCuckooGraph,
    running: &AtomicBool,
    conn_rx: &Receiver<TcpStream>,
    completion_rx: &Receiver<Completion>,
    write_tx: &SyncSender<WriteReq>,
    concurrent: bool,
) {
    let mut conns: Vec<(u64, Conn)> = Vec::new();
    let mut next_id = 0u64;
    let mut backoff = BACKOFF_MIN;
    let mut chunk = vec![0u8; READ_CHUNK];
    loop {
        let mut progressed = false;

        while let Ok(stream) = conn_rx.try_recv() {
            conns.push((next_id, Conn::new(stream)));
            next_id += 1;
            progressed = true;
        }

        while let Ok(completion) = completion_rx.try_recv() {
            if let Some((_, conn)) = conns.iter_mut().find(|(id, _)| *id == completion.conn) {
                conn.fill(completion.seq, completion.bytes);
                conn.writes_in_flight -= 1;
            }
            progressed = true;
        }

        let mut dead: Vec<u64> = Vec::new();
        for (id, conn) in &mut conns {
            let mut io_ok = true;
            while !conn.closing {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        // EOF — clean close even mid-command; flush what the
                        // peer already pipelined.
                        conn.closing = true;
                        progressed = true;
                    }
                    Ok(n) => {
                        conn.session.push_bytes(&chunk[..n]);
                        progressed = true;
                        if n < chunk.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => {
                        io_ok = false;
                        break;
                    }
                }
            }
            if io_ok {
                dispatch_buffered(index, *id, conn, graph, concurrent, write_tx);
                if flush(conn).is_err() {
                    io_ok = false;
                }
            }
            if !io_ok || conn.done() {
                dead.push(*id);
            }
        }
        conns.retain(|(id, _)| !dead.contains(id));

        if !running.load(Ordering::SeqCst) && conns.iter().all(|(_, c)| c.writes_in_flight == 0) {
            return;
        }
        if progressed {
            backoff = BACKOFF_MIN;
        } else {
            thread::park_timeout(backoff);
            backoff = (backoff * 2).min(BACKOFF_MAX);
        }
    }
}

/// Decodes every complete command buffered on `conn` and routes each one:
/// graph reads execute inline against a lazily-pinned [`ShardReadView`]
/// (when the concurrent path is on and no same-connection write is in
/// flight); everything else crosses the write queue. Each command claims the
/// next sequence slot, so replies flush in submission order no matter which
/// path answered first. One view covers the whole buffered burst and unpins
/// on return.
fn dispatch_buffered(
    worker: usize,
    conn_id: u64,
    conn: &mut Conn,
    graph: &ShardedWeightedCuckooGraph,
    concurrent: bool,
    write_tx: &SyncSender<WriteReq>,
) {
    let mut view: Option<ShardReadView<'_, WeightedCuckooGraph>> = None;
    while !conn.closing {
        match conn.session.next_value() {
            Ok(None) => return,
            Ok(Some(value)) => {
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.slots.push_back(None);
                match value.into_command() {
                    Err(e) => {
                        let mut bytes = Vec::new();
                        Server::encode_reply_into(&Reply::Error(format!("ERR {e}")), &mut bytes);
                        conn.fill(seq, bytes);
                    }
                    Ok(parts) if parts.is_empty() => {
                        let mut bytes = Vec::new();
                        Server::encode_reply_into(
                            &Reply::Error("ERR empty command".into()),
                            &mut bytes,
                        );
                        conn.fill(seq, bytes);
                    }
                    Ok(parts) => {
                        let command = parts[0].to_ascii_lowercase();
                        let inline_read = concurrent
                            && conn.writes_in_flight == 0
                            && Server::classify_command(&command) == CommandClass::GraphRead;
                        if inline_read {
                            let snap = view.get_or_insert_with(|| graph.read_view());
                            let reply = Server::graph_read_reply(snap, &command, &parts[1..]);
                            let mut bytes = Vec::new();
                            Server::encode_reply_into(&reply, &mut bytes);
                            conn.fill(seq, bytes);
                        } else {
                            conn.writes_in_flight += 1;
                            // A full queue blocks here: bounded back-pressure.
                            if write_tx
                                .send(WriteReq {
                                    worker,
                                    conn: conn_id,
                                    seq,
                                    parts,
                                })
                                .is_err()
                            {
                                // Writer is gone (shutdown); close out.
                                conn.writes_in_flight -= 1;
                                conn.fill(seq, b"-ERR server shutting down\r\n".to_vec());
                                conn.closing = true;
                            }
                        }
                    }
                }
            }
            Err(e) => {
                // Framing lost: error reply, then close this connection only.
                let seq = conn.next_seq;
                conn.next_seq += 1;
                conn.slots.push_back(None);
                let mut bytes = Vec::new();
                Server::encode_reply_into(
                    &Reply::Error(format!("ERR protocol error: {e}")),
                    &mut bytes,
                );
                conn.fill(seq, bytes);
                conn.closing = true;
            }
        }
    }
}

/// Flushes the in-order completed reply prefix with a single vectored write.
/// A short write parks the remainder in `pending_out`, retried first next
/// wakeup; `WouldBlock` parks everything. Only hard I/O errors are returned.
fn flush(conn: &mut Conn) -> io::Result<()> {
    let mut ready: Vec<Vec<u8>> = Vec::new();
    while matches!(conn.slots.front(), Some(Some(_))) {
        if let Some(Some(bytes)) = conn.slots.pop_front() {
            conn.flushed_seq += 1;
            ready.push(bytes);
        }
    }
    if conn.pending_out.is_empty() && ready.is_empty() {
        return Ok(());
    }
    let mut slices = Vec::with_capacity(1 + ready.len());
    if !conn.pending_out.is_empty() {
        slices.push(IoSlice::new(&conn.pending_out));
    }
    slices.extend(ready.iter().map(|b| IoSlice::new(b)));
    match conn.stream.write_vectored(&slices) {
        Ok(mut written) => {
            if !conn.pending_out.is_empty() {
                let consumed = written.min(conn.pending_out.len());
                conn.pending_out.drain(..consumed);
                written -= consumed;
            }
            for bytes in &ready {
                if written >= bytes.len() {
                    written -= bytes.len();
                } else {
                    conn.pending_out.extend_from_slice(&bytes[written..]);
                    written = 0;
                }
            }
            Ok(())
        }
        Err(e) if transient(e.kind()) => {
            for bytes in &ready {
                conn.pending_out.extend_from_slice(bytes);
            }
            Ok(())
        }
        Err(e) => Err(e),
    }
}

/// The single writer: drains the bounded queue in batches, group-commits each
/// batch through [`DurableServer::execute_batch`] (log first, execute
/// second), routes the encoded replies back to the owning workers, and drives
/// the durable layer's housekeeping clock ([`DurableServer::tick`]) so the
/// `EverySecond` sync policy flushes even when no commands arrive.
fn writer_loop<V: Vfs>(
    mut durable: DurableServer<V>,
    cfg: &ServerConfig,
    write_rx: &Receiver<WriteReq>,
    completion_txs: &[Sender<Completion>],
    worker_threads: &[Thread],
) {
    let mut last_tick = Instant::now();
    let mut batch: Vec<WriteReq> = Vec::with_capacity(cfg.batch_max);
    loop {
        batch.clear();
        match write_rx.recv_timeout(cfg.tick_interval) {
            Ok(first) => {
                batch.push(first);
                while batch.len() < cfg.batch_max {
                    match write_rx.try_recv() {
                        Ok(req) => batch.push(req),
                        Err(_) => break,
                    }
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if !batch.is_empty() {
            let commands: Vec<Vec<String>> = batch
                .iter_mut()
                .map(|req| std::mem::take(&mut req.parts))
                .collect();
            let replies = durable.execute_batch(&commands);
            let mut touched = vec![false; completion_txs.len()];
            for (req, reply) in batch.iter().zip(&replies) {
                let mut bytes = Vec::new();
                Server::encode_reply_into(reply, &mut bytes);
                let _ = completion_txs[req.worker].send(Completion {
                    conn: req.conn,
                    seq: req.seq,
                    bytes,
                });
                touched[req.worker] = true;
            }
            for (worker, touched) in worker_threads.iter().zip(touched) {
                if touched {
                    worker.unpark();
                }
            }
        }
        if last_tick.elapsed() >= cfg.tick_interval {
            let _ = durable.tick();
            last_tick = Instant::now();
        }
    }
    // Queue disconnected: every worker has exited. Leave the log synced.
    let _ = durable.sync();
}
