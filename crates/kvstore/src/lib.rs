//! A Redis-like in-memory key-value store substrate.
//!
//! The paper (§ V-F) registers CuckooGraph as a Redis *module*: the module
//! adds a new value type and the commands `insert`, `del`, `query` and
//! `getneighbors`, implements the module API callbacks (`save_rdb`,
//! `load_rdb`, `aof_rewrite`) for persistence, and is loaded into the server
//! at start-up. Re-running that experiment does not need all of Redis — it
//! needs the integration surfaces the experiment touches. This crate builds
//! exactly those:
//!
//! * [`resp`] — a RESP-style wire protocol codec (commands in, replies out);
//! * [`keyspace`] — the keyed value store with string/list/hash and
//!   module-defined value types;
//! * [`module`] — the module API: command registration plus the persistence
//!   callbacks;
//! * [`server`] — command dispatch, RDB-style snapshots and an append-only
//!   file (AOF) with rewrite;
//! * [`net`] — per-connection RESP sessions and the TCP accept loop (a
//!   malformed frame or a mid-command EOF costs one connection, never the
//!   server);
//! * [`reactor`] — the pipelined concurrent serving front end: acceptor +
//!   worker pool + single durable writer, with graph reads dispatched off the
//!   write path onto sharded read views;
//! * [`persist`] — [`DurableServer`]: a framed on-disk command log plus RDB
//!   snapshots with crash recovery, built on the `graph-durability` crate;
//! * [`graph_module`] — the CuckooGraph module itself (§ V-F).
//!
//! The performance phenomenon the paper reports — module throughput being
//! limited by command dispatch rather than by CuckooGraph — is reproduced by
//! the `fig17` benchmark, which drives the same workload once through the
//! in-process API and once through the command path.

pub mod graph_module;
pub mod keyspace;
pub mod module;
pub mod net;
pub mod persist;
pub mod reactor;
pub mod resp;
pub mod server;

pub use graph_module::CuckooGraphModule;
pub use keyspace::{Keyspace, Value};
pub use module::{Module, ModuleValue, Reply};
pub use net::{serve, spawn_server, Session, SessionStatus};
pub use persist::DurableServer;
pub use reactor::{Reactor, ServerConfig};
pub use resp::RespValue;
pub use server::{CommandClass, Server};
