//! The CuckooGraph module for the key-value store (§ V-F).
//!
//! Mirrors the paper's Redis integration: the module registers a new value
//! type backed by [`cuckoograph::WeightedCuckooGraph`] (the extended version,
//! because the datasets used in the experiment — CAIDA and StackOverflow —
//! contain duplicate edges) and the extended commands `graph.insert`,
//! `graph.del`, `graph.query` and `graph.getneighbors`, plus the persistence
//! callbacks `save_rdb`, `load_rdb` and `aof_rewrite`.

use crate::keyspace::Keyspace;
use crate::module::{Module, ModuleValue, Reply};
use cuckoograph::WeightedCuckooGraph;
use graph_api::{
    DynamicGraph, EdgeExport, EdgeImport, MemoryFootprint, NodeId, WeightedDynamicGraph,
};
use graph_durability::{decode_records, encode_records};

/// The module value type: one CuckooGraph per key.
#[derive(Debug)]
pub struct GraphValue {
    /// The underlying weighted CuckooGraph.
    pub graph: WeightedCuckooGraph,
}

impl GraphValue {
    /// Creates an empty graph value.
    pub fn new() -> Self {
        Self {
            graph: WeightedCuckooGraph::new(),
        }
    }
}

impl Default for GraphValue {
    fn default() -> Self {
        Self::new()
    }
}

impl ModuleValue for GraphValue {
    fn type_name(&self) -> &'static str {
        "cuckoograph"
    }

    fn save_rdb(&self) -> Vec<u8> {
        // Varint edge-record section (the durability snapshot codec), sorted
        // by (u, v) so reload bulk-inserts each adjacency run contiguously.
        let mut records = self.graph.edge_records();
        records.sort_unstable_by_key(|r| (r.source, r.target));
        encode_records(&records)
    }

    fn aof_rewrite(&self, key: &str) -> Vec<Vec<String>> {
        let mut records = self.graph.edge_records();
        records.sort_unstable_by_key(|r| (r.source, r.target));
        records
            .into_iter()
            .map(|r| {
                vec![
                    "graph.insert".to_string(),
                    key.to_string(),
                    r.source.to_string(),
                    r.target.to_string(),
                    r.weight.to_string(),
                ]
            })
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// The loadable CuckooGraph module.
#[derive(Debug, Default, Clone)]
pub struct CuckooGraphModule;

impl CuckooGraphModule {
    /// Creates the module (ready to pass to [`crate::Server::load_module`]).
    pub fn new() -> Self {
        Self
    }

    fn parse_node(arg: Option<&String>) -> Result<NodeId, Reply> {
        arg.and_then(|s| s.parse().ok())
            .ok_or_else(|| Reply::Error("ERR node ids must be unsigned integers".into()))
    }
}

impl Module for CuckooGraphModule {
    fn name(&self) -> &'static str {
        "cuckoograph"
    }

    fn commands(&self) -> Vec<&'static str> {
        vec![
            "graph.insert",
            "graph.del",
            "graph.query",
            "graph.getneighbors",
        ]
    }

    fn dispatch(&self, keyspace: &mut Keyspace, command: &str, args: &[String]) -> Reply {
        let Some(key) = args.first() else {
            return Reply::Error("ERR missing graph key".into());
        };
        match command {
            "graph.insert" => {
                let u = match Self::parse_node(args.get(1)) {
                    Ok(u) => u,
                    Err(e) => return e,
                };
                let v = match Self::parse_node(args.get(2)) {
                    Ok(v) => v,
                    Err(e) => return e,
                };
                let delta: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(1);
                let Some(value) = keyspace.module_entry(key, GraphValue::new) else {
                    return Reply::Error("WRONGTYPE key holds a non-graph value".into());
                };
                let weight = value.graph.insert_weighted(u, v, delta);
                Reply::Integer(weight as i64)
            }
            "graph.del" => {
                let u = match Self::parse_node(args.get(1)) {
                    Ok(u) => u,
                    Err(e) => return e,
                };
                let v = match Self::parse_node(args.get(2)) {
                    Ok(v) => v,
                    Err(e) => return e,
                };
                let Some(value) = keyspace.module_entry(key, GraphValue::new) else {
                    return Reply::Error("WRONGTYPE key holds a non-graph value".into());
                };
                if value.graph.weight(u, v) == 0 {
                    return Reply::Integer(0);
                }
                let remaining = value.graph.delete_weighted(u, v, 1);
                Reply::Integer(remaining as i64)
            }
            "graph.query" => {
                let u = match Self::parse_node(args.get(1)) {
                    Ok(u) => u,
                    Err(e) => return e,
                };
                let v = match Self::parse_node(args.get(2)) {
                    Ok(v) => v,
                    Err(e) => return e,
                };
                match keyspace.module_get::<GraphValue>(key) {
                    None => Reply::Nil,
                    Some(value) => Reply::Integer(value.graph.weight(u, v) as i64),
                }
            }
            "graph.getneighbors" => {
                let u = match Self::parse_node(args.get(1)) {
                    Ok(u) => u,
                    Err(e) => return e,
                };
                match keyspace.module_get::<GraphValue>(key) {
                    None => Reply::Array(Vec::new()),
                    Some(value) => {
                        let mut neighbors = Vec::with_capacity(value.graph.out_degree(u));
                        value
                            .graph
                            .for_each_successor(u, &mut |v| neighbors.push(v));
                        neighbors.sort_unstable();
                        Reply::Array(
                            neighbors
                                .into_iter()
                                .map(|n| Reply::Bulk(n.to_string()))
                                .collect(),
                        )
                    }
                }
            }
            other => Reply::Error(format!("ERR unknown graph command '{other}'")),
        }
    }

    fn load_rdb(&self, bytes: &[u8]) -> Result<Box<dyn ModuleValue>, String> {
        let records =
            decode_records(bytes).ok_or_else(|| "malformed cuckoograph payload".to_string())?;
        let mut value = GraphValue::new();
        value.graph.import_edge_records(&records);
        Ok(Box::new(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    fn cmd(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn server_with_module() -> Server {
        let mut s = Server::new();
        s.load_module(Box::new(CuckooGraphModule::new()));
        s
    }

    #[test]
    fn insert_query_del_through_commands() {
        let mut s = server_with_module();
        assert_eq!(
            s.execute(&cmd(&["graph.insert", "g", "1", "2"])),
            Reply::Integer(1)
        );
        assert_eq!(
            s.execute(&cmd(&["graph.insert", "g", "1", "2"])),
            Reply::Integer(2)
        );
        assert_eq!(
            s.execute(&cmd(&["graph.query", "g", "1", "2"])),
            Reply::Integer(2)
        );
        assert_eq!(
            s.execute(&cmd(&["graph.query", "g", "1", "9"])),
            Reply::Integer(0)
        );
        assert_eq!(
            s.execute(&cmd(&["graph.del", "g", "1", "2"])),
            Reply::Integer(1)
        );
        assert_eq!(
            s.execute(&cmd(&["graph.del", "g", "1", "2"])),
            Reply::Integer(0)
        );
        assert_eq!(
            s.execute(&cmd(&["graph.del", "g", "1", "2"])),
            Reply::Integer(0)
        );
    }

    #[test]
    fn getneighbors_returns_sorted_ids() {
        let mut s = server_with_module();
        for v in [5u64, 3, 9] {
            s.execute(&cmd(&["graph.insert", "g", "1", &v.to_string()]));
        }
        assert_eq!(
            s.execute(&cmd(&["graph.getneighbors", "g", "1"])),
            Reply::Array(vec![
                Reply::Bulk("3".into()),
                Reply::Bulk("5".into()),
                Reply::Bulk("9".into())
            ])
        );
        assert_eq!(
            s.execute(&cmd(&["graph.getneighbors", "missing", "1"])),
            Reply::Array(Vec::new())
        );
    }

    #[test]
    fn module_commands_reject_bad_arguments_and_wrong_types() {
        let mut s = server_with_module();
        assert!(matches!(
            s.execute(&cmd(&["graph.insert", "g", "x", "2"])),
            Reply::Error(_)
        ));
        assert!(matches!(
            s.execute(&cmd(&["graph.insert"])),
            Reply::Error(_)
        ));
        s.execute(&cmd(&["SET", "plain", "1"]));
        assert!(matches!(
            s.execute(&cmd(&["graph.insert", "plain", "1", "2"])),
            Reply::Error(_)
        ));
    }

    #[test]
    fn rdb_persistence_roundtrips_the_graph() {
        let mut s = server_with_module();
        for (u, v) in [(1u64, 2u64), (1, 3), (4, 5)] {
            s.execute(&cmd(&["graph.insert", "g", &u.to_string(), &v.to_string()]));
        }
        s.execute(&cmd(&["graph.insert", "g", "1", "2"])); // weight 2
        let snapshot = s.save_rdb();

        let mut restored = Server::new();
        restored.load_module(Box::new(CuckooGraphModule::new()));
        restored.load_rdb(&snapshot).unwrap();
        assert_eq!(
            restored.execute(&cmd(&["graph.query", "g", "1", "2"])),
            Reply::Integer(2)
        );
        assert_eq!(
            restored.execute(&cmd(&["graph.query", "g", "4", "5"])),
            Reply::Integer(1)
        );
    }

    #[test]
    fn snapshot_without_module_fails_to_load() {
        let mut s = server_with_module();
        s.execute(&cmd(&["graph.insert", "g", "1", "2"]));
        let snapshot = s.save_rdb();
        let mut bare = Server::new();
        let err = bare.load_rdb(&snapshot).unwrap_err();
        assert!(err.contains("cuckoograph"));
    }

    #[test]
    fn aof_rewrite_rebuilds_the_graph_from_minimal_commands() {
        let mut s = server_with_module();
        for _ in 0..3 {
            s.execute(&cmd(&["graph.insert", "g", "7", "8"]));
        }
        s.execute(&cmd(&["graph.insert", "g", "7", "9"]));
        s.execute(&cmd(&["graph.del", "g", "7", "9"]));
        assert_eq!(s.aof_len(), 5);
        s.aof_rewrite();
        // Only one edge remains: one rebuild command.
        assert_eq!(s.aof_len(), 1);
        let log = s.aof().to_vec();

        let mut replayed = Server::new();
        replayed.load_module(Box::new(CuckooGraphModule::new()));
        replayed.replay_aof(&log);
        assert_eq!(
            replayed.execute(&cmd(&["graph.query", "g", "7", "8"])),
            Reply::Integer(3)
        );
        assert_eq!(
            replayed.execute(&cmd(&["graph.query", "g", "7", "9"])),
            Reply::Integer(0)
        );
    }

    #[test]
    fn module_value_reports_memory_and_type() {
        let mut v = GraphValue::new();
        v.graph.insert_weighted(1, 2, 1);
        assert_eq!(v.type_name(), "cuckoograph");
        assert!(v.memory_bytes() > 0);
        assert!(v.graph.has_edge(1, 2));
    }

    #[test]
    fn corrupt_module_payload_is_rejected() {
        let module = CuckooGraphModule::new();
        assert!(module.load_rdb(&[1, 2, 3]).is_err());
        let mut payload = 5u64.to_le_bytes().to_vec();
        payload.extend_from_slice(&[0u8; 10]);
        assert!(module.load_rdb(&payload).is_err());
    }
}
