//! The module API — the integration surface the paper uses to register
//! CuckooGraph inside Redis (§ V-F): command handlers plus the persistence
//! callbacks (`save_rdb`, `load_rdb`, `aof_rewrite`).

use crate::keyspace::Keyspace;

/// A reply produced by a command handler. The server encodes it to RESP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+OK`
    Ok,
    /// A simple status string.
    Simple(String),
    /// An integer reply.
    Integer(i64),
    /// A bulk string reply.
    Bulk(String),
    /// A nested array reply.
    Array(Vec<Reply>),
    /// A null reply (missing key / missing edge).
    Nil,
    /// An error reply.
    Error(String),
}

/// A value type defined by a module and stored inside the keyspace.
///
/// Mirrors the RedisModule type callbacks the paper implements: the value can
/// serialise itself for RDB snapshots and emit the command stream that
/// recreates it for AOF rewrite.
pub trait ModuleValue: Send {
    /// The module type name recorded in snapshots (e.g. `"cuckoograph"`).
    fn type_name(&self) -> &'static str;

    /// Serialises the value for an RDB snapshot (`save_rdb`).
    fn save_rdb(&self) -> Vec<u8>;

    /// Emits, for AOF rewrite, the minimal command sequence that rebuilds this
    /// value under the given key (`aof_rewrite`).
    fn aof_rewrite(&self, key: &str) -> Vec<Vec<String>>;

    /// Heap bytes used by the value (module values report their own size so
    /// the store can answer `MEMORY USAGE`).
    fn memory_bytes(&self) -> usize;

    /// Dynamic cast support for command handlers.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable dynamic cast support for command handlers.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// A loadable module: a named command family plus the deserialisation callback
/// for its value type.
pub trait Module: Send {
    /// Module name (shown by `MODULE LIST`).
    fn name(&self) -> &'static str;

    /// The command names this module registers (lower-case, e.g.
    /// `"graph.insert"`).
    fn commands(&self) -> Vec<&'static str>;

    /// Executes one of the module's commands against the keyspace.
    fn dispatch(&self, keyspace: &mut Keyspace, command: &str, args: &[String]) -> Reply;

    /// Rebuilds a module value from its RDB serialisation (`load_rdb`).
    fn load_rdb(&self, bytes: &[u8]) -> Result<Box<dyn ModuleValue>, String>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_variants_compare() {
        assert_eq!(Reply::Ok, Reply::Ok);
        assert_ne!(Reply::Integer(1), Reply::Integer(2));
        assert_eq!(
            Reply::Array(vec![Reply::Bulk("a".into()), Reply::Nil]),
            Reply::Array(vec![Reply::Bulk("a".into()), Reply::Nil])
        );
    }
}
