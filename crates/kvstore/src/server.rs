//! The store front-end: command dispatch, module loading, RDB snapshots and
//! the append-only file (AOF) with rewrite — the pieces of Redis the § V-F
//! experiment exercises.
//!
//! Since PR 10 the server also owns a **shared served graph**: an
//! [`Arc<ShardedWeightedCuckooGraph>`] behind the `GRAPH.*` command family.
//! Unlike the keyspace-scoped `graph.insert` module values, this graph is
//! reachable *outside* the server (via [`Server::shared_graph`]), which is
//! what lets the serving reactor answer `GRAPH.SUCCESSORS` / `GRAPH.DEGREE` /
//! `GRAPH.HASEDGE` from a lock-free [`read_view`](cuckoograph::Sharded::read_view)
//! while writes serialize through the durable writer. Every command still has
//! a serial path through [`Server::execute`], so AOF replay and the
//! serial-dispatch oracle work unchanged.

use crate::keyspace::{Keyspace, Value};
use crate::module::{Module, Reply};
use crate::resp::RespValue;
use bytes::{Bytes, BytesMut};
use cuckoograph::ShardedWeightedCuckooGraph;
use graph_api::{DynamicGraph, EdgeExport, GraphReadSnapshot, NodeId, WeightedDynamicGraph};
use std::collections::HashMap;
use std::sync::Arc;

/// Default shard count of the served graph — small enough that a fresh
/// `Server::new()` stays cheap, large enough that concurrent readers spread.
pub const DEFAULT_GRAPH_SHARDS: usize = 4;

/// How the dispatch layer must route a command — decided *before* execution,
/// from the command name alone, so a pipelined front end can fan reads out
/// without consulting the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandClass {
    /// Answerable from a [`GraphReadSnapshot`] of the shared served graph:
    /// safe to execute concurrently with the writer, never logged.
    GraphRead,
    /// Mutates state: serialized through the single writer and recorded in
    /// the AOF before execution.
    Write,
    /// Reads server-held state (keyspace, modules, introspection):
    /// serialized with writes for ordering, but never logged.
    Read,
}

/// A single-threaded Redis-like server instance.
pub struct Server {
    keyspace: Keyspace,
    modules: Vec<Box<dyn Module>>,
    /// Maps a module command name to the index of the owning module.
    command_index: HashMap<String, usize>,
    /// The append-only log of write commands since start-up or last rewrite.
    aof: Vec<Vec<String>>,
    /// The served graph behind `GRAPH.*` — shared so the reactor's readers
    /// can hold it without holding the server.
    graph: Arc<ShardedWeightedCuckooGraph>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("keys", &self.keyspace.len())
            .field("modules", &self.modules.len())
            .field("commands", &self.command_index.len())
            .field("aof_entries", &self.aof.len())
            .field("graph_edges", &self.graph.edge_count())
            .finish()
    }
}

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

impl Server {
    /// Creates a server with an empty keyspace and no modules.
    pub fn new() -> Self {
        Self::with_graph_shards(DEFAULT_GRAPH_SHARDS)
    }

    /// Creates a server whose served graph has `shards` shards.
    pub fn with_graph_shards(shards: usize) -> Self {
        Self {
            keyspace: Keyspace::new(),
            modules: Vec::new(),
            command_index: HashMap::new(),
            aof: Vec::new(),
            graph: Arc::new(ShardedWeightedCuckooGraph::new(shards.max(1))),
        }
    }

    /// A shared handle on the served graph. Readers clone this once and then
    /// answer `GRAPH.*` read commands through
    /// [`read_view`](cuckoograph::Sharded::read_view) without ever touching
    /// the server again. [`Server::load_rdb`] replaces the handle (snapshot
    /// restore rebuilds the graph), so serving layers acquire it *after*
    /// recovery completes.
    pub fn shared_graph(&self) -> Arc<ShardedWeightedCuckooGraph> {
        Arc::clone(&self.graph)
    }

    /// Borrow of the served graph (the batched-apply path in `persist` goes
    /// through this).
    pub fn graph(&self) -> &ShardedWeightedCuckooGraph {
        &self.graph
    }

    /// Loads a module (the `--loadmodule` moment): its commands become
    /// dispatchable and its value type becomes loadable from snapshots.
    pub fn load_module(&mut self, module: Box<dyn Module>) {
        let idx = self.modules.len();
        for command in module.commands() {
            self.command_index.insert(command.to_ascii_lowercase(), idx);
        }
        self.modules.push(module);
    }

    /// Direct access to the keyspace (used by tests and benches).
    pub fn keyspace(&self) -> &Keyspace {
        &self.keyspace
    }

    /// Number of write commands currently recorded in the AOF.
    pub fn aof_len(&self) -> usize {
        self.aof.len()
    }

    /// Executes a command given as words and returns the reply.
    pub fn execute(&mut self, parts: &[String]) -> Reply {
        if parts.is_empty() {
            return Reply::Error("ERR empty command".into());
        }
        let command = parts[0].to_ascii_lowercase();
        let args = &parts[1..];
        let reply = match command.as_str() {
            "ping" => Reply::Simple("PONG".into()),
            "set" => self.cmd_set(args),
            "get" => self.cmd_get(args),
            "del" => self.cmd_del(args),
            "exists" => self.cmd_exists(args),
            "dbsize" => Reply::Integer(self.keyspace.len() as i64),
            "lpush" => self.cmd_lpush(args),
            "lrange" => self.cmd_lrange(args),
            "hset" => self.cmd_hset(args),
            "hget" => self.cmd_hget(args),
            "memory" => self.cmd_memory(args),
            "module" => self.cmd_module(args),
            "graph.addedge" => self.cmd_graph_addedge(args),
            "graph.deledge" => self.cmd_graph_deledge(args),
            "graph.successors" | "graph.degree" | "graph.hasedge" | "graph.edgecount"
            | "graph.nodecount" => {
                // The serial path to the same answers the reactor serves from
                // its own read view — one-shot view per command.
                Self::graph_read_reply(&self.graph.read_view(), &command, args)
            }
            _ => match self.command_index.get(&command) {
                Some(&idx) => self.modules[idx].dispatch(&mut self.keyspace, &command, args),
                None => Reply::Error(format!("ERR unknown command '{command}'")),
            },
        };
        if !matches!(reply, Reply::Error(_)) && Self::is_write_command(&command) {
            self.aof.push(parts.to_vec());
        }
        reply
    }

    /// Executes a RESP-encoded command buffer and returns the RESP reply.
    pub fn execute_resp(&mut self, wire: &[u8]) -> Bytes {
        let mut buf = BytesMut::from(wire);
        let reply = match RespValue::decode(&mut buf) {
            Err(e) => Reply::Error(format!("ERR protocol error: {e}")),
            Ok(None) => Reply::Error("ERR incomplete command".into()),
            Ok(Some(value)) => match value.into_command() {
                Err(e) => Reply::Error(format!("ERR {e}")),
                Ok(parts) => self.execute(&parts),
            },
        };
        Self::reply_to_resp(&reply).encode()
    }

    /// Routes a (lowercased) command name: graph reads fan out to snapshot
    /// readers, writes serialize through the logged writer, everything else
    /// is a serialized-but-unlogged read. Commands a pipelined dispatcher has
    /// never heard of classify as writes when they look like module mutations
    /// (the historical dotted-name rule), otherwise as reads — misrouting an
    /// unknown command to the writer is safe, the reverse is not.
    pub fn classify_command(command: &str) -> CommandClass {
        match command {
            "graph.successors" | "graph.degree" | "graph.hasedge" | "graph.edgecount"
            | "graph.nodecount" => CommandClass::GraphRead,
            "graph.addedge" | "graph.deledge" | "set" | "del" | "lpush" | "hset" => {
                CommandClass::Write
            }
            _ if command.contains('.')
                && !command.ends_with(".query")
                && !command.ends_with(".getneighbors") =>
            {
                CommandClass::Write
            }
            _ => CommandClass::Read,
        }
    }

    /// Whether a (lowercased) command name mutates state — these are the
    /// commands the AOF records.
    pub fn is_write_command(command: &str) -> bool {
        Self::classify_command(command) == CommandClass::Write
    }

    /// Answers one of the `GRAPH.*` read commands from any
    /// [`GraphReadSnapshot`] — the server's serial path and the reactor's
    /// concurrent read fan-out share this single implementation, so the two
    /// dispatch modes cannot drift apart.
    pub fn graph_read_reply(snap: &dyn GraphReadSnapshot, command: &str, args: &[String]) -> Reply {
        match command {
            "graph.successors" => match parse_node_args::<1>(command, args) {
                Ok([u]) => {
                    let mut succ = snap.successors(u);
                    succ.sort_unstable();
                    Reply::Array(succ.iter().map(|v| Reply::Bulk(v.to_string())).collect())
                }
                Err(e) => e,
            },
            "graph.degree" => match parse_node_args::<1>(command, args) {
                Ok([u]) => Reply::Integer(snap.out_degree(u) as i64),
                Err(e) => e,
            },
            "graph.hasedge" => match parse_node_args::<2>(command, args) {
                Ok([u, v]) => Reply::Integer(i64::from(snap.has_edge(u, v))),
                Err(e) => e,
            },
            "graph.edgecount" => match parse_node_args::<0>(command, args) {
                Ok([]) => Reply::Integer(snap.edge_count() as i64),
                Err(e) => e,
            },
            "graph.nodecount" => match parse_node_args::<0>(command, args) {
                Ok([]) => Reply::Integer(snap.node_count() as i64),
                Err(e) => e,
            },
            other => Reply::Error(format!("ERR '{other}' is not a graph read command")),
        }
    }

    /// Parses a `GRAPH.ADDEDGE` / `GRAPH.DELEDGE` argument list into the
    /// `(u, v, weight)` triple the batched writer ingests. Both commands
    /// reply `+OK`, which is what lets the writer fold a pipelined run of
    /// them into one `ingest_weighted_batch` call without tracking per-edge
    /// return values.
    pub fn parse_graph_write(
        command: &str,
        args: &[String],
    ) -> Result<(NodeId, NodeId, u64), Reply> {
        let (lo, hi) = if command == "graph.addedge" {
            (2, 3)
        } else {
            (2, 2)
        };
        if args.len() < lo || args.len() > hi {
            return Err(Reply::Error(format!(
                "ERR wrong number of arguments for '{command}'"
            )));
        }
        let u = parse_node(&args[0])?;
        let v = parse_node(&args[1])?;
        let w = match args.get(2) {
            Some(raw) => match raw.parse::<u64>() {
                Ok(0) | Err(_) => {
                    return Err(Reply::Error("ERR weight must be a positive integer".into()))
                }
                Ok(w) => w,
            },
            None => 1,
        };
        Ok((u, v, w))
    }

    fn cmd_graph_addedge(&mut self, args: &[String]) -> Reply {
        match Self::parse_graph_write("graph.addedge", args) {
            Ok((u, v, w)) => {
                self.graph.update_shard(u, |g| g.insert_weighted(u, v, w));
                Reply::Ok
            }
            Err(e) => e,
        }
    }

    fn cmd_graph_deledge(&mut self, args: &[String]) -> Reply {
        match Self::parse_graph_write("graph.deledge", args) {
            Ok((u, v, _)) => {
                self.graph.update_shard(u, |g| g.delete_edge(u, v));
                Reply::Ok
            }
            Err(e) => e,
        }
    }

    /// Applies a pre-validated run of `GRAPH.ADDEDGE` triples through the
    /// sharded batch-ingest path and records the commands in the in-memory
    /// AOF — the queued writer's grouped-apply entry point (the commands were
    /// already written to the durable log).
    pub(crate) fn apply_graph_insert_run(&mut self, run: &[(NodeId, NodeId, u64)]) {
        self.graph.ingest_weighted_batch(run);
        for &(u, v, w) in run {
            self.aof.push(vec![
                "graph.addedge".into(),
                u.to_string(),
                v.to_string(),
                w.to_string(),
            ]);
        }
    }

    /// The `GRAPH.DELEDGE` counterpart of
    /// [`Server::apply_graph_insert_run`].
    pub(crate) fn apply_graph_delete_run(&mut self, run: &[(NodeId, NodeId, u64)]) {
        let pairs: Vec<(NodeId, NodeId)> = run.iter().map(|&(u, v, _)| (u, v)).collect();
        self.graph.remove_batch(&pairs);
        for &(u, v) in &pairs {
            self.aof
                .push(vec!["graph.deledge".into(), u.to_string(), v.to_string()]);
        }
    }

    /// Encodes a handler reply straight onto a reusable output buffer — the
    /// serving path's replacement for `reply_to_resp(..).encode()`, which
    /// built an intermediate [`RespValue`] (cloning every string) and then a
    /// fresh [`Bytes`] per command.
    pub fn encode_reply_into(reply: &Reply, out: &mut Vec<u8>) {
        match reply {
            Reply::Ok => out.extend_from_slice(b"+OK\r\n"),
            Reply::Simple(s) => {
                out.push(b'+');
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            Reply::Error(e) => {
                out.push(b'-');
                out.extend_from_slice(e.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            Reply::Integer(i) => {
                let mut digits = [0u8; 20];
                out.push(b':');
                out.extend_from_slice(format_i64(*i, &mut digits));
                out.extend_from_slice(b"\r\n");
            }
            Reply::Bulk(s) => {
                let mut digits = [0u8; 20];
                out.push(b'$');
                out.extend_from_slice(format_i64(s.len() as i64, &mut digits));
                out.extend_from_slice(b"\r\n");
                out.extend_from_slice(s.as_bytes());
                out.extend_from_slice(b"\r\n");
            }
            Reply::Nil => out.extend_from_slice(b"$-1\r\n"),
            Reply::Array(items) => {
                let mut digits = [0u8; 20];
                out.push(b'*');
                out.extend_from_slice(format_i64(items.len() as i64, &mut digits));
                out.extend_from_slice(b"\r\n");
                for item in items {
                    Self::encode_reply_into(item, out);
                }
            }
        }
    }

    /// Converts a handler reply into the wire representation.
    pub fn reply_to_resp(reply: &Reply) -> RespValue {
        match reply {
            Reply::Ok => RespValue::Simple("OK".into()),
            Reply::Simple(s) => RespValue::Simple(s.clone()),
            Reply::Integer(i) => RespValue::Integer(*i),
            Reply::Bulk(s) => RespValue::bulk(s.clone()),
            Reply::Array(items) => {
                RespValue::Array(items.iter().map(Self::reply_to_resp).collect())
            }
            Reply::Nil => RespValue::Null,
            Reply::Error(e) => RespValue::Error(e.clone()),
        }
    }

    // ---- built-in commands -------------------------------------------------

    fn cmd_set(&mut self, args: &[String]) -> Reply {
        if args.len() != 2 {
            return Reply::Error("ERR wrong number of arguments for 'set'".into());
        }
        self.keyspace
            .set(args[0].clone(), Value::Str(args[1].clone()));
        Reply::Ok
    }

    fn cmd_get(&self, args: &[String]) -> Reply {
        if args.len() != 1 {
            return Reply::Error("ERR wrong number of arguments for 'get'".into());
        }
        match self.keyspace.get(&args[0]) {
            Some(Value::Str(s)) => Reply::Bulk(s.clone()),
            Some(_) => Reply::Error("WRONGTYPE key holds a non-string value".into()),
            None => Reply::Nil,
        }
    }

    fn cmd_del(&mut self, args: &[String]) -> Reply {
        let removed = args.iter().filter(|k| self.keyspace.delete(k)).count();
        Reply::Integer(removed as i64)
    }

    fn cmd_exists(&self, args: &[String]) -> Reply {
        let found = args.iter().filter(|k| self.keyspace.contains(k)).count();
        Reply::Integer(found as i64)
    }

    fn cmd_lpush(&mut self, args: &[String]) -> Reply {
        if args.len() < 2 {
            return Reply::Error("ERR wrong number of arguments for 'lpush'".into());
        }
        if !self.keyspace.contains(&args[0]) {
            self.keyspace.set(args[0].clone(), Value::List(Vec::new()));
        }
        match self.keyspace.get_mut(&args[0]) {
            Some(Value::List(list)) => {
                for item in &args[1..] {
                    list.insert(0, item.clone());
                }
                Reply::Integer(list.len() as i64)
            }
            _ => Reply::Error("WRONGTYPE key holds a non-list value".into()),
        }
    }

    fn cmd_lrange(&self, args: &[String]) -> Reply {
        if args.len() != 3 {
            return Reply::Error("ERR wrong number of arguments for 'lrange'".into());
        }
        let (Ok(start), Ok(stop)) = (args[1].parse::<i64>(), args[2].parse::<i64>()) else {
            return Reply::Error("ERR value is not an integer".into());
        };
        match self.keyspace.get(&args[0]) {
            Some(Value::List(list)) => {
                let n = list.len() as i64;
                let fix = |i: i64| if i < 0 { (n + i).max(0) } else { i.min(n) } as usize;
                let (start, stop) = (fix(start), fix(stop).min(list.len().saturating_sub(1)));
                if start > stop {
                    return Reply::Array(Vec::new());
                }
                Reply::Array(
                    list[start..=stop]
                        .iter()
                        .map(|s| Reply::Bulk(s.clone()))
                        .collect(),
                )
            }
            Some(_) => Reply::Error("WRONGTYPE key holds a non-list value".into()),
            None => Reply::Array(Vec::new()),
        }
    }

    fn cmd_hset(&mut self, args: &[String]) -> Reply {
        if args.len() != 3 {
            return Reply::Error("ERR wrong number of arguments for 'hset'".into());
        }
        if !self.keyspace.contains(&args[0]) {
            self.keyspace
                .set(args[0].clone(), Value::Hash(HashMap::new()));
        }
        match self.keyspace.get_mut(&args[0]) {
            Some(Value::Hash(map)) => {
                let created = map.insert(args[1].clone(), args[2].clone()).is_none();
                Reply::Integer(i64::from(created))
            }
            _ => Reply::Error("WRONGTYPE key holds a non-hash value".into()),
        }
    }

    fn cmd_hget(&self, args: &[String]) -> Reply {
        if args.len() != 2 {
            return Reply::Error("ERR wrong number of arguments for 'hget'".into());
        }
        match self.keyspace.get(&args[0]) {
            Some(Value::Hash(map)) => map
                .get(&args[1])
                .map_or(Reply::Nil, |v| Reply::Bulk(v.clone())),
            Some(_) => Reply::Error("WRONGTYPE key holds a non-hash value".into()),
            None => Reply::Nil,
        }
    }

    fn cmd_memory(&self, args: &[String]) -> Reply {
        match args.first().map(|s| s.to_ascii_lowercase()).as_deref() {
            Some("usage") => match args.get(1) {
                Some(key) => self
                    .keyspace
                    .get(key)
                    .map_or(Reply::Nil, |v| Reply::Integer(v.memory_bytes() as i64)),
                None => Reply::Error("ERR missing key".into()),
            },
            _ => Reply::Error("ERR unknown MEMORY subcommand".into()),
        }
    }

    fn cmd_module(&self, args: &[String]) -> Reply {
        match args.first().map(|s| s.to_ascii_lowercase()).as_deref() {
            Some("list") => Reply::Array(
                self.modules
                    .iter()
                    .map(|m| Reply::Bulk(m.name().to_string()))
                    .collect(),
            ),
            _ => Reply::Error("ERR unknown MODULE subcommand".into()),
        }
    }

    // ---- persistence -------------------------------------------------------

    /// Serialises the whole keyspace into an RDB-style snapshot.
    pub fn save_rdb(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let mut keys: Vec<&String> = self.keyspace.keys();
        keys.sort();
        write_u64(&mut out, keys.len() as u64);
        for key in keys {
            let value = self.keyspace.get(key).expect("key listed");
            write_bytes(&mut out, key.as_bytes());
            match value {
                Value::Str(s) => {
                    out.push(0);
                    write_bytes(&mut out, s.as_bytes());
                }
                Value::List(items) => {
                    out.push(1);
                    write_u64(&mut out, items.len() as u64);
                    for item in items {
                        write_bytes(&mut out, item.as_bytes());
                    }
                }
                Value::Hash(map) => {
                    out.push(2);
                    let mut entries: Vec<_> = map.iter().collect();
                    entries.sort();
                    write_u64(&mut out, entries.len() as u64);
                    for (k, v) in entries {
                        write_bytes(&mut out, k.as_bytes());
                        write_bytes(&mut out, v.as_bytes());
                    }
                }
                Value::Module(m) => {
                    out.push(3);
                    write_bytes(&mut out, m.type_name().as_bytes());
                    write_bytes(&mut out, &m.save_rdb());
                }
            }
        }
        // Served-graph section, appended only when non-empty so snapshots
        // from before the GRAPH.* family stay byte-identical: record count,
        // then sorted `(u, v, weight)` triples.
        let records = self.graph_records_sorted();
        if !records.is_empty() {
            write_u64(&mut out, records.len() as u64);
            for r in &records {
                write_u64(&mut out, r.source);
                write_u64(&mut out, r.target);
                write_u64(&mut out, r.weight);
            }
        }
        out
    }

    /// Every served-graph edge record, sorted for deterministic output.
    fn graph_records_sorted(&self) -> Vec<graph_api::EdgeRecord> {
        let mut records = Vec::with_capacity(self.graph.edge_record_count());
        self.graph.for_each_edge_record(&mut |r| records.push(r));
        records.sort_unstable();
        records
    }

    /// Restores the keyspace from an RDB-style snapshot. Module values require
    /// the owning module to be loaded first, exactly like Redis.
    pub fn load_rdb(&mut self, bytes: &[u8]) -> Result<(), String> {
        let mut cursor = 0usize;
        let count = read_u64(bytes, &mut cursor)?;
        let mut keyspace = Keyspace::new();
        for _ in 0..count {
            let key = String::from_utf8(read_bytes(bytes, &mut cursor)?.to_vec())
                .map_err(|_| "non-UTF-8 key".to_string())?;
            let tag = *bytes.get(cursor).ok_or("truncated snapshot")?;
            cursor += 1;
            let value = match tag {
                0 => Value::Str(
                    String::from_utf8(read_bytes(bytes, &mut cursor)?.to_vec())
                        .map_err(|_| "non-UTF-8 string value".to_string())?,
                ),
                1 => {
                    let n = read_u64(bytes, &mut cursor)?;
                    let mut items = Vec::with_capacity(n as usize);
                    for _ in 0..n {
                        items.push(
                            String::from_utf8(read_bytes(bytes, &mut cursor)?.to_vec())
                                .map_err(|_| "non-UTF-8 list item".to_string())?,
                        );
                    }
                    Value::List(items)
                }
                2 => {
                    let n = read_u64(bytes, &mut cursor)?;
                    let mut map = HashMap::with_capacity(n as usize);
                    for _ in 0..n {
                        let k = String::from_utf8(read_bytes(bytes, &mut cursor)?.to_vec())
                            .map_err(|_| "non-UTF-8 hash key".to_string())?;
                        let v = String::from_utf8(read_bytes(bytes, &mut cursor)?.to_vec())
                            .map_err(|_| "non-UTF-8 hash value".to_string())?;
                        map.insert(k, v);
                    }
                    Value::Hash(map)
                }
                3 => {
                    let type_name = String::from_utf8(read_bytes(bytes, &mut cursor)?.to_vec())
                        .map_err(|_| "non-UTF-8 module type".to_string())?;
                    let payload = read_bytes(bytes, &mut cursor)?;
                    let module = self
                        .modules
                        .iter()
                        .find(|m| m.name() == type_name)
                        .ok_or(format!("module '{type_name}' not loaded"))?;
                    Value::Module(module.load_rdb(payload)?)
                }
                other => return Err(format!("unknown value tag {other}")),
            };
            keyspace.set(key, value);
        }
        // Optional served-graph section (absent in pre-GRAPH.* snapshots and
        // when the graph was empty at save time).
        let mut graph = ShardedWeightedCuckooGraph::new(self.graph.shard_count());
        if cursor < bytes.len() {
            let n = read_u64(bytes, &mut cursor)?;
            let mut triples = Vec::with_capacity((n as usize).min(bytes.len() / 3));
            for _ in 0..n {
                let u = read_u64(bytes, &mut cursor)?;
                let v = read_u64(bytes, &mut cursor)?;
                let w = read_u64(bytes, &mut cursor)?;
                triples.push((u, v, w));
            }
            if cursor != bytes.len() {
                return Err("trailing bytes after graph section".into());
            }
            graph.insert_weighted_edges(&triples);
        }
        self.keyspace = keyspace;
        // Replace the shared handle: a snapshot restore is a rebuild, and the
        // serving layer (re)acquires the handle only after recovery.
        self.graph = Arc::new(graph);
        Ok(())
    }

    /// Replays an AOF command log (e.g. after a restart).
    pub fn replay_aof(&mut self, log: &[Vec<String>]) {
        for command in log {
            self.execute(command);
        }
    }

    /// Returns the current AOF contents.
    pub fn aof(&self) -> &[Vec<String>] {
        &self.aof
    }

    /// Rewrites the AOF: replaces the accumulated command log with the minimal
    /// command sequence that rebuilds the current keyspace (module values use
    /// their `aof_rewrite` callback).
    pub fn aof_rewrite(&mut self) {
        let mut rewritten: Vec<Vec<String>> = Vec::new();
        let mut keys: Vec<&String> = self.keyspace.keys();
        keys.sort();
        for key in keys {
            match self.keyspace.get(key).expect("key listed") {
                Value::Str(s) => rewritten.push(vec!["set".into(), key.clone(), s.clone()]),
                Value::List(items) => {
                    for item in items.iter().rev() {
                        rewritten.push(vec!["lpush".into(), key.clone(), item.clone()]);
                    }
                }
                Value::Hash(map) => {
                    let mut entries: Vec<_> = map.iter().collect();
                    entries.sort();
                    for (k, v) in entries {
                        rewritten.push(vec!["hset".into(), key.clone(), k.clone(), v.clone()]);
                    }
                }
                Value::Module(m) => rewritten.extend(m.aof_rewrite(key)),
            }
        }
        // Rebuild commands for the served graph: one weighted GRAPH.ADDEDGE
        // per stored edge, mirroring the module values' `aof_rewrite`.
        for r in self.graph_records_sorted() {
            rewritten.push(vec![
                "graph.addedge".into(),
                r.source.to_string(),
                r.target.to_string(),
                r.weight.to_string(),
            ]);
        }
        self.aof = rewritten;
    }
}

/// Formats `value` into `buf` without allocating, returning the used slice.
fn format_i64(value: i64, buf: &mut [u8; 20]) -> &[u8] {
    let mut n = value.unsigned_abs();
    let mut pos = buf.len();
    loop {
        pos -= 1;
        buf[pos] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    if value < 0 {
        pos -= 1;
        buf[pos] = b'-';
    }
    &buf[pos..]
}

fn parse_node(raw: &str) -> Result<NodeId, Reply> {
    raw.parse::<NodeId>()
        .map_err(|_| Reply::Error(format!("ERR node id '{raw}' is not an unsigned integer")))
}

fn parse_node_args<const N: usize>(command: &str, args: &[String]) -> Result<[NodeId; N], Reply> {
    if args.len() != N {
        return Err(Reply::Error(format!(
            "ERR wrong number of arguments for '{command}'"
        )));
    }
    let mut out = [0u64; N];
    for (slot, raw) in out.iter_mut().zip(args) {
        *slot = parse_node(raw)?;
    }
    Ok(out)
}

fn write_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn read_u64(bytes: &[u8], cursor: &mut usize) -> Result<u64, String> {
    let end = *cursor + 8;
    let slice = bytes.get(*cursor..end).ok_or("truncated snapshot")?;
    *cursor = end;
    Ok(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
}

fn read_bytes<'a>(bytes: &'a [u8], cursor: &mut usize) -> Result<&'a [u8], String> {
    let len = read_u64(bytes, cursor)? as usize;
    let end = *cursor + len;
    let slice = bytes.get(*cursor..end).ok_or("truncated snapshot")?;
    *cursor = end;
    Ok(slice)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn string_commands_roundtrip() {
        let mut s = Server::new();
        assert_eq!(s.execute(&cmd(&["PING"])), Reply::Simple("PONG".into()));
        assert_eq!(s.execute(&cmd(&["SET", "k", "v"])), Reply::Ok);
        assert_eq!(s.execute(&cmd(&["GET", "k"])), Reply::Bulk("v".into()));
        assert_eq!(
            s.execute(&cmd(&["EXISTS", "k", "missing"])),
            Reply::Integer(1)
        );
        assert_eq!(s.execute(&cmd(&["DEL", "k"])), Reply::Integer(1));
        assert_eq!(s.execute(&cmd(&["GET", "k"])), Reply::Nil);
        assert_eq!(s.execute(&cmd(&["DBSIZE"])), Reply::Integer(0));
    }

    #[test]
    fn list_and_hash_commands() {
        let mut s = Server::new();
        assert_eq!(
            s.execute(&cmd(&["LPUSH", "l", "a", "b"])),
            Reply::Integer(2)
        );
        assert_eq!(
            s.execute(&cmd(&["LRANGE", "l", "0", "-1"])),
            Reply::Array(vec![Reply::Bulk("b".into()), Reply::Bulk("a".into())])
        );
        assert_eq!(s.execute(&cmd(&["HSET", "h", "f", "1"])), Reply::Integer(1));
        assert_eq!(s.execute(&cmd(&["HSET", "h", "f", "2"])), Reply::Integer(0));
        assert_eq!(
            s.execute(&cmd(&["HGET", "h", "f"])),
            Reply::Bulk("2".into())
        );
        assert_eq!(s.execute(&cmd(&["HGET", "h", "missing"])), Reply::Nil);
    }

    #[test]
    fn unknown_commands_and_wrongtype_are_errors() {
        let mut s = Server::new();
        assert!(matches!(s.execute(&cmd(&["NOPE"])), Reply::Error(_)));
        s.execute(&cmd(&["SET", "k", "v"]));
        assert!(matches!(
            s.execute(&cmd(&["LRANGE", "k", "0", "1"])),
            Reply::Error(_)
        ));
        assert!(matches!(
            s.execute(&cmd(&["HGET", "k", "f"])),
            Reply::Error(_)
        ));
    }

    #[test]
    fn resp_pipeline_end_to_end() {
        let mut s = Server::new();
        let wire = RespValue::command(&["SET", "hello", "world"]).encode();
        let reply = s.execute_resp(&wire);
        assert_eq!(&reply[..], b"+OK\r\n");
        let wire = RespValue::command(&["GET", "hello"]).encode();
        let reply = s.execute_resp(&wire);
        assert_eq!(&reply[..], b"$5\r\nworld\r\n");
    }

    #[test]
    fn rdb_snapshot_roundtrips_builtin_values() {
        let mut s = Server::new();
        s.execute(&cmd(&["SET", "s", "x"]));
        s.execute(&cmd(&["LPUSH", "l", "1", "2"]));
        s.execute(&cmd(&["HSET", "h", "a", "b"]));
        let snapshot = s.save_rdb();

        let mut restored = Server::new();
        restored.load_rdb(&snapshot).unwrap();
        assert_eq!(
            restored.execute(&cmd(&["GET", "s"])),
            Reply::Bulk("x".into())
        );
        assert_eq!(
            restored.execute(&cmd(&["HGET", "h", "a"])),
            Reply::Bulk("b".into())
        );
        assert_eq!(restored.keyspace().len(), 3);
    }

    #[test]
    fn aof_records_writes_and_rewrite_compacts() {
        let mut s = Server::new();
        s.execute(&cmd(&["SET", "k", "1"]));
        s.execute(&cmd(&["SET", "k", "2"]));
        s.execute(&cmd(&["GET", "k"]));
        assert_eq!(s.aof_len(), 2, "reads must not be logged");
        s.aof_rewrite();
        assert_eq!(s.aof_len(), 1, "rewrite folds superseded writes");

        let log = s.aof().to_vec();
        let mut replayed = Server::new();
        replayed.replay_aof(&log);
        assert_eq!(
            replayed.execute(&cmd(&["GET", "k"])),
            Reply::Bulk("2".into())
        );
    }

    #[test]
    fn graph_commands_execute_against_the_shared_graph() {
        let mut s = Server::new();
        assert_eq!(s.execute(&cmd(&["GRAPH.ADDEDGE", "1", "2"])), Reply::Ok);
        assert_eq!(
            s.execute(&cmd(&["GRAPH.ADDEDGE", "1", "3", "5"])),
            Reply::Ok
        );
        assert_eq!(s.execute(&cmd(&["GRAPH.DEGREE", "1"])), Reply::Integer(2));
        assert_eq!(
            s.execute(&cmd(&["GRAPH.HASEDGE", "1", "2"])),
            Reply::Integer(1)
        );
        assert_eq!(
            s.execute(&cmd(&["GRAPH.SUCCESSORS", "1"])),
            Reply::Array(vec![Reply::Bulk("2".into()), Reply::Bulk("3".into())])
        );
        assert_eq!(s.execute(&cmd(&["GRAPH.EDGECOUNT"])), Reply::Integer(2));
        assert_eq!(s.execute(&cmd(&["GRAPH.NODECOUNT"])), Reply::Integer(1));
        assert_eq!(s.execute(&cmd(&["GRAPH.DELEDGE", "1", "2"])), Reply::Ok);
        assert_eq!(
            s.execute(&cmd(&["GRAPH.HASEDGE", "1", "2"])),
            Reply::Integer(0)
        );
        // Bad arguments are refused before they reach the graph or the AOF.
        let before = s.aof_len();
        assert!(matches!(
            s.execute(&cmd(&["GRAPH.ADDEDGE", "x", "2"])),
            Reply::Error(_)
        ));
        assert!(matches!(
            s.execute(&cmd(&["GRAPH.ADDEDGE", "1", "2", "0"])),
            Reply::Error(_)
        ));
        assert_eq!(s.aof_len(), before);
    }

    #[test]
    fn command_classification_routes_graph_reads_off_the_writer() {
        assert_eq!(
            Server::classify_command("graph.successors"),
            CommandClass::GraphRead
        );
        assert_eq!(
            Server::classify_command("graph.hasedge"),
            CommandClass::GraphRead
        );
        assert_eq!(
            Server::classify_command("graph.addedge"),
            CommandClass::Write
        );
        assert_eq!(Server::classify_command("set"), CommandClass::Write);
        assert_eq!(
            Server::classify_command("graph.insert"),
            CommandClass::Write
        );
        assert_eq!(Server::classify_command("graph.query"), CommandClass::Read);
        assert_eq!(Server::classify_command("get"), CommandClass::Read);
        assert_eq!(Server::classify_command("save"), CommandClass::Read);
        // The AOF predicate must agree with the classification.
        assert!(Server::is_write_command("graph.addedge"));
        assert!(!Server::is_write_command("graph.successors"));
    }

    #[test]
    fn shared_graph_survives_snapshot_and_rewrite() {
        let mut s = Server::new();
        s.execute(&cmd(&["GRAPH.ADDEDGE", "1", "2", "3"]));
        s.execute(&cmd(&["GRAPH.ADDEDGE", "7", "8"]));
        s.execute(&cmd(&["SET", "k", "v"]));
        let snapshot = s.save_rdb();

        let mut restored = Server::new();
        restored.load_rdb(&snapshot).unwrap();
        assert_eq!(
            restored.execute(&cmd(&["GRAPH.HASEDGE", "1", "2"])),
            Reply::Integer(1)
        );
        assert_eq!(
            restored.execute(&cmd(&["GRAPH.EDGECOUNT"])),
            Reply::Integer(2)
        );
        assert_eq!(
            restored.execute(&cmd(&["GET", "k"])),
            Reply::Bulk("v".into())
        );

        // AOF rewrite emits rebuild commands that replay to the same graph.
        s.aof_rewrite();
        let log = s.aof().to_vec();
        let mut replayed = Server::new();
        replayed.replay_aof(&log);
        assert_eq!(
            replayed.execute(&cmd(&["GRAPH.SUCCESSORS", "1"])),
            Reply::Array(vec![Reply::Bulk("2".into())])
        );
        assert_eq!(
            replayed.execute(&cmd(&["GRAPH.EDGECOUNT"])),
            Reply::Integer(2)
        );
    }

    #[test]
    fn encode_reply_into_matches_the_resp_value_encoding() {
        let replies = [
            Reply::Ok,
            Reply::Simple("PONG".into()),
            Reply::Integer(-42),
            Reply::Integer(i64::MIN),
            Reply::Bulk("hello".into()),
            Reply::Nil,
            Reply::Error("ERR nope".into()),
            Reply::Array(vec![Reply::Integer(0), Reply::Bulk("x".into())]),
        ];
        for reply in &replies {
            let mut direct = Vec::new();
            Server::encode_reply_into(reply, &mut direct);
            let via_value = Server::reply_to_resp(reply).encode();
            assert_eq!(direct, via_value.to_vec(), "{reply:?}");
        }
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let mut s = Server::new();
        assert!(s.load_rdb(&[1, 2, 3]).is_err());
        let mut snapshot = {
            let mut donor = Server::new();
            donor.execute(&cmd(&["SET", "a", "b"]));
            donor.save_rdb()
        };
        snapshot.truncate(snapshot.len() - 2);
        assert!(s.load_rdb(&snapshot).is_err());
    }
}
