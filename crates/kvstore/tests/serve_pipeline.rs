//! End-to-end tests of the pipelined serving reactor: burst ordering,
//! concurrent readers under an ingest stream (vs. a serial oracle), the
//! serial-dispatch mode itself, and crash-style recovery through the queued
//! durable writer.

use bytes::BytesMut;
use graph_durability::store::DurabilityConfig;
use graph_durability::{SimVfs, SyncPolicy};
use kvstore::graph_module::CuckooGraphModule;
use kvstore::reactor::{Reactor, ServerConfig};
use kvstore::{DurableServer, RespValue, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn cfg() -> DurabilityConfig {
    DurabilityConfig::new("kv").with_sync_policy(SyncPolicy::Never)
}

fn make_server() -> Server {
    let mut s = Server::new();
    s.load_module(Box::new(CuckooGraphModule::new()));
    s
}

fn spawn_reactor(vfs: &SimVfs, config: ServerConfig) -> Reactor {
    let (durable, _) = DurableServer::open(vfs.clone(), cfg(), make_server).unwrap();
    Reactor::spawn(durable, config).unwrap()
}

/// A tiny RESP test client: writes whole bursts, decodes whole replies.
struct Client {
    stream: TcpStream,
    buf: BytesMut,
}

impl Client {
    fn connect(reactor: &Reactor) -> Self {
        let stream = TcpStream::connect(reactor.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        Self {
            stream,
            buf: BytesMut::new(),
        }
    }

    fn send(&mut self, commands: &[&[&str]]) {
        let mut wire = Vec::new();
        for parts in commands {
            wire.extend_from_slice(&RespValue::command(parts).encode());
        }
        self.stream.write_all(&wire).unwrap();
    }

    fn recv(&mut self) -> RespValue {
        loop {
            if let Some(value) = RespValue::decode(&mut self.buf).unwrap() {
                return value;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).unwrap();
            assert!(n > 0, "server closed mid-reply");
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    fn roundtrip(&mut self, parts: &[&str]) -> RespValue {
        self.send(&[parts]);
        self.recv()
    }
}

fn ok() -> RespValue {
    RespValue::Simple("OK".into())
}

fn successors(value: &RespValue) -> Vec<u64> {
    let RespValue::Array(items) = value else {
        panic!("expected array, got {value:?}");
    };
    items
        .iter()
        .map(|item| match item {
            RespValue::Bulk(b) => std::str::from_utf8(b).unwrap().parse().unwrap(),
            other => panic!("expected bulk, got {other:?}"),
        })
        .collect()
}

#[test]
fn pipelined_burst_returns_ordered_replies() {
    let vfs = SimVfs::new();
    let reactor = spawn_reactor(&vfs, ServerConfig::new());
    let mut client = Client::connect(&reactor);

    // One write carrying a mixed burst: writes, reads-after-writes (which
    // must observe them), kv traffic and a trailing read.
    let burst: Vec<Vec<String>> = (0..50u64)
        .flat_map(|i| {
            vec![
                vec!["GRAPH.ADDEDGE".into(), "7".to_string(), i.to_string()],
                vec!["GRAPH.DEGREE".into(), "7".to_string()],
                vec!["SET".into(), format!("k{i}"), i.to_string()],
            ]
        })
        .collect();
    let as_slices: Vec<Vec<&str>> = burst
        .iter()
        .map(|c| c.iter().map(String::as_str).collect())
        .collect();
    let refs: Vec<&[&str]> = as_slices.iter().map(Vec::as_slice).collect();
    client.send(&refs);

    for i in 0..50u64 {
        assert_eq!(client.recv(), ok(), "ADDEDGE #{i}");
        // The read is pipelined behind the i-th insert on the same
        // connection: it must see exactly i+1 edges, in order.
        assert_eq!(
            client.recv(),
            RespValue::Integer(i as i64 + 1),
            "DEGREE after insert #{i}"
        );
        assert_eq!(client.recv(), ok(), "SET #{i}");
    }
    assert_eq!(
        client.roundtrip(&["GRAPH.EDGECOUNT"]),
        RespValue::Integer(50)
    );
    reactor.shutdown();
}

#[test]
fn concurrent_readers_under_ingest_match_the_serial_oracle() {
    let vfs = SimVfs::new();
    let reactor = spawn_reactor(&vfs, ServerConfig::new().with_workers(3));
    let pins_before = reactor.read_counters().read_pins;
    const EDGES: u64 = 400;

    // One writer connection streams inserts while reader connections hammer
    // GRAPH.SUCCESSORS on the hot vertex the whole time.
    let writer = {
        let reactor_addr = reactor.addr();
        std::thread::spawn(move || {
            let stream = TcpStream::connect(reactor_addr).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let mut client = Client {
                stream,
                buf: BytesMut::new(),
            };
            for v in 0..EDGES {
                let vs = v.to_string();
                assert_eq!(client.roundtrip(&["GRAPH.ADDEDGE", "1", &vs]), ok());
            }
        })
    };
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let reactor_addr = reactor.addr();
            std::thread::spawn(move || {
                let stream = TcpStream::connect(reactor_addr).unwrap();
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut client = Client {
                    stream,
                    buf: BytesMut::new(),
                };
                let mut last = 0usize;
                for _ in 0..300 {
                    let seen = successors(&client.roundtrip(&["GRAPH.SUCCESSORS", "1"]));
                    // Monotone: a snapshot never shows fewer edges than an
                    // earlier acknowledged read, and never shows garbage.
                    assert!(seen.len() >= last, "successor set shrank");
                    assert!(seen.iter().all(|v| *v < EDGES));
                    last = seen.len();
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for reader in readers {
        reader.join().unwrap();
    }

    // Readers really took the lock-free snapshot path.
    let pins_after = reactor.read_counters().read_pins;
    assert!(
        pins_after > pins_before,
        "read_pins must rise: {pins_before} -> {pins_after}"
    );

    // Final state is exactly what a serial oracle produces.
    let mut check = Client::connect(&reactor);
    let seen = successors(&check.roundtrip(&["GRAPH.SUCCESSORS", "1"]));
    let mut oracle = make_server();
    for v in 0..EDGES {
        let parts: Vec<String> = vec!["GRAPH.ADDEDGE".into(), "1".into(), v.to_string()];
        oracle.execute(&parts);
    }
    let oracle_parts: Vec<String> = vec!["GRAPH.SUCCESSORS".into(), "1".into()];
    let oracle_reply = oracle.execute(&oracle_parts);
    let mut oracle_bytes = Vec::new();
    Server::encode_reply_into(&oracle_reply, &mut oracle_bytes);
    let mut oracle_buf = BytesMut::from(&oracle_bytes[..]);
    let oracle_seen = successors(&RespValue::decode(&mut oracle_buf).unwrap().unwrap());
    assert_eq!(seen, oracle_seen);
    reactor.shutdown();
}

#[test]
fn serial_dispatch_oracle_serves_the_same_protocol() {
    let vfs = SimVfs::new();
    let reactor = spawn_reactor(&vfs, ServerConfig::new().with_concurrent_dispatch(false));
    let mut client = Client::connect(&reactor);

    assert_eq!(client.roundtrip(&["GRAPH.ADDEDGE", "3", "4"]), ok());
    assert_eq!(
        client.roundtrip(&["GRAPH.HASEDGE", "3", "4"]),
        RespValue::Integer(1)
    );
    assert_eq!(
        client.roundtrip(&["GRAPH.SUCCESSORS", "3"]),
        RespValue::Array(vec![RespValue::bulk("4")])
    );
    assert_eq!(client.roundtrip(&["SET", "k", "v"]), ok());
    assert_eq!(client.roundtrip(&["GET", "k"]), RespValue::bulk("v"));
    reactor.shutdown();
}

#[test]
fn acknowledged_writes_survive_shutdown_and_recover() {
    let vfs = SimVfs::new();
    {
        let reactor = spawn_reactor(&vfs, ServerConfig::new());
        let mut client = Client::connect(&reactor);
        for v in 0..64u64 {
            let vs = v.to_string();
            assert_eq!(client.roundtrip(&["GRAPH.ADDEDGE", "9", &vs]), ok());
        }
        assert_eq!(client.roundtrip(&["SET", "survivor", "yes"]), ok());
        // Every reply above was read back: each command is group-committed to
        // the log before its reply exists. Kill the reactor.
        reactor.shutdown();
    }

    // Reopen from the same simulated disk: the queued writer's batches must
    // replay to exactly the acknowledged state.
    let (mut revived, report) = DurableServer::open(vfs, cfg(), make_server).unwrap();
    assert_eq!(report.ops_replayed, 65);
    let parts: Vec<String> = vec!["GRAPH.DEGREE".into(), "9".into()];
    assert_eq!(revived.execute(&parts), kvstore::Reply::Integer(64));
    let parts: Vec<String> = vec!["GET".into(), "survivor".into()];
    assert_eq!(revived.execute(&parts), kvstore::Reply::Bulk("yes".into()));
}

#[test]
fn malformed_frame_closes_only_that_connection() {
    let vfs = SimVfs::new();
    let reactor = spawn_reactor(&vfs, ServerConfig::new());

    let mut bad = Client::connect(&reactor);
    bad.stream.write_all(b"?nonsense\r\n").unwrap();
    let reply = bad.recv();
    assert!(
        matches!(&reply, RespValue::Error(e) if e.contains("protocol error")),
        "got {reply:?}"
    );
    let mut rest = Vec::new();
    bad.stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "reactor closed the poisoned connection");

    let mut good = Client::connect(&reactor);
    assert_eq!(good.roundtrip(&["SET", "x", "1"]), ok());
    assert_eq!(good.roundtrip(&["GET", "x"]), RespValue::bulk("1"));
    reactor.shutdown();
}
