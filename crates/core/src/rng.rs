//! A tiny deterministic pseudo-random generator for kick-victim selection.
//!
//! Cuckoo hashing "randomly selects one of the stored items to kick out"
//! (§ II-C). The choice only needs to be cheap and well spread, not
//! cryptographic, so an xorshift64* keeps the hot path free of external
//! dependencies and makes runs reproducible for a fixed seed.

/// xorshift64* generator.
#[derive(Debug, Clone)]
pub struct KickRng {
    state: u64,
}

impl KickRng {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant because xorshift has an all-zero fixed point.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    #[inline]
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// A coin flip.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut a = KickRng::new(0);
        let mut b = KickRng::new(0);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), 0);
    }

    #[test]
    fn values_stay_below_bound() {
        let mut rng = KickRng::new(42);
        for _ in 0..10_000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn all_residues_are_reachable() {
        let mut rng = KickRng::new(7);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.next_below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn coin_flip_is_roughly_fair() {
        let mut rng = KickRng::new(99);
        let heads = (0..10_000).filter(|_| rng.next_bool()).count();
        assert!((4_000..6_000).contains(&heads), "heads={heads}");
    }
}
