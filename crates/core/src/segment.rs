//! Contiguous successor scan segments: the degree-adaptive flat layout behind
//! the PR-8 scan fast path.
//!
//! Above-threshold cells store their neighbours in an S-CHT chain — great for
//! point probes (tag-word candidate scans, § III-A), but a successor *scan*
//! walks every bucket of every table in the chain: scattered cache lines and
//! mostly-empty tag words at the paper's `G = 0.9` load ceiling. Sortledton
//! and LiveGraph win the scan benchmarks precisely because their adjacency is
//! contiguous. A [`ScanArena`] closes that gap without touching the probe
//! path: every transformed cell additionally owns one **scan segment** — a
//! dense, append-ordered array of successor ids with a parallel tombstone
//! bitmap — and `for_each_successor` walks that one contiguous run instead of
//! the chain.
//!
//! A segment is a *single* pooled buffer: `cap` successor ids followed by
//! `⌈cap/64⌉` tombstone bitmap words (bit set ⇒ the entry at that index is
//! dead). Packing the bitmap into the id buffer keeps the whole segment one
//! allocation — 8.125 bytes per entry instead of the 9 a parallel tag-byte
//! array costs — and the bookkeeping struct at 32 bytes. The scan skips dead
//! slots whole-word: each 64-entry block folds its bitmap word once and walks
//! the survivors by `trailing_zeros`, the same SWAR discipline the tag-word
//! probes use.
//!
//! The segment is maintained incrementally alongside the chain by the cell's
//! mutation hooks (see [`crate::cell`]):
//!
//! * **insert** appends the successor id at the tail;
//! * **delete** punches a tombstone (bitmap bit set) found by an id scan that
//!   consults the bitmap on match — a dead entry keeps its id, and the same
//!   successor may have been re-inserted behind it;
//! * a per-segment tombstone counter triggers **in-place compaction** (live
//!   entries slide down, append order preserved) once the dead fraction
//!   exceeds 1/4 of the appended length;
//! * a full tail **grows** the buffer by an exact chunk — no doubling — which
//!   doubles as a compaction since only live entries are copied.
//!
//! The segment stores successor **ids**, not payload clones: a stored edge's
//! key never changes (in-place payload updates through `get_mut`/upsert touch
//! weights and edge lists, never `v`), so the segment can only go stale
//! through the membership hooks above — there is no write-back problem and no
//! per-update sync cost for any payload variant.
//!
//! Like its sibling [`crate::arena::SlotArena`], the arena hands out `u32`
//! indices and recycles freed segments through a LIFO free list. Segment
//! buffers come from (and retire into) an embedded epoch-aware
//! [`TablePool`]: inside a concurrent mutation window (see [`crate::epoch`]),
//! a buffer dropped by segment growth or a cell collapse is stamped and
//! quarantined instead of recycled, so a reader pinned at an older epoch can
//! finish scanning a retired segment safely. (Under the current drain
//! protocol readers never overlap a window at all — the quarantine is the
//! same belt-and-braces the table pools wear.)
//!
//! `CuckooGraphConfig::with_scan_segments(false)` builds a disabled arena:
//! [`ScanArena::create`] returns [`NO_SEG`], every hook no-ops, and the
//! engine's scan falls back to the chain walk — the pre-PR-8 iterator stays
//! live as the oracle the property tests and the `perf_smoke` guard compare
//! against.

use crate::pool::TablePool;
use crate::scht::prefetch_read;
use graph_api::NodeId;

/// "No segment attached": inline cells, and every cell when segments are
/// disabled. Sibling of [`crate::arena::NO_BLOCK`].
pub const NO_SEG: u32 = u32::MAX;

/// Minimum capacity of a freshly created segment. Creation happens at
/// TRANSFORMATION time with `2R + 1` (basic) or `R + 1` (weighted) live
/// entries, so one small chunk of headroom avoids an immediate grow.
const MIN_CAP: usize = 8;

/// Smallest growth chunk. Growth is *exact-chunk* — `cap/4` rounded up to at
/// least this — rather than doubling, keeping the per-segment overshoot
/// bounded at 25% so the scan layout stays inside the memory budget the
/// Figure 9 experiments track.
const GROW_MIN: usize = 4;

/// Exact-chunk growth step of the `segs` bookkeeping vector. Segment counts
/// track the transformed-cell population — hundreds at most on the benchmark
/// scales — so `Vec`'s doubling would routinely strand a near-2× slack of
/// 32-byte structs; reserving in small exact chunks keeps that slack bounded.
const SEGS_CHUNK: usize = 8;

/// Largest capacity (in entries) a *released* segment buffer keeps when it
/// retires into the pool. A cell collapse hands back a buffer sized for the
/// cell's former degree; retaining a giant one would hold peak memory hostage
/// after mass deletion (the pool counts retained capacity honestly), while
/// fresh segments are born near [`MIN_CAP`] and grow in 25% chunks — so
/// oversized retirees are shrunk to this bound first. Growth retirees are
/// exempt: mid-growth the arena is expanding and the next grow reuses them
/// at full size.
const RETIRE_CAP: usize = 256;

/// Tombstone bitmap words needed for `cap` entries.
#[inline]
const fn words_for(cap: usize) -> usize {
    cap.div_ceil(64)
}

/// Buffer length (in `NodeId` words) of a segment with `cap` entries: the ids
/// plus the trailing tombstone bitmap.
#[inline]
const fn total_for(cap: usize) -> usize {
    cap + words_for(cap)
}

/// Inverse of [`total_for`]: the largest capacity whose buffer fits in
/// `total` words. Buffers are always allocated at exactly `total_for(cap)`,
/// so on every live segment this recovers `cap` precisely (the roundtrip is
/// pinned exhaustively by a test); the two correction loops run at most one
/// step each.
#[inline]
fn cap_for(total: usize) -> usize {
    let mut cap = total * 64 / 65;
    while total_for(cap + 1) <= total {
        cap += 1;
    }
    while total_for(cap) > total {
        cap -= 1;
    }
    cap
}

/// One cell's scan segment: `len` appended entries at the front of the
/// buffer, `dead` of them tombstoned in the trailing bitmap. The capacity is
/// recovered from the buffer length via [`cap_for`] — nothing else is stored.
#[derive(Debug, Clone, Default)]
struct ScanSegment {
    /// Successor ids in `0..cap` (append order; tombstoned entries keep their
    /// slot and id until a compaction slides the live tail down), tombstone
    /// bitmap words in `cap..`.
    buf: Vec<NodeId>,
    /// Appended entries (live + tombstoned).
    len: u32,
    /// Tombstoned entries within `..len`.
    dead: u32,
}

impl ScanSegment {
    #[inline]
    fn capacity(&self) -> usize {
        cap_for(self.buf.len())
    }

    /// The id slice and bitmap slice, mutably split at the capacity boundary.
    #[inline]
    fn split_mut(&mut self) -> (&mut [NodeId], &mut [u64]) {
        let cap = self.capacity();
        let (ids, bm) = self.buf.split_at_mut(cap);
        // `NodeId` is a plain 64-bit integer; reading the bitmap words
        // through it directly avoids any reinterpretation.
        (ids, bm)
    }

    #[inline]
    fn is_dead(bm: &[u64], i: usize) -> bool {
        bm[i / 64] & (1u64 << (i % 64)) != 0
    }
}

/// Arena of per-cell scan segments: `u32` segment ids, LIFO free list,
/// embedded epoch-aware buffer pool. One per engine, disabled wholesale by
/// `with_scan_segments(false)`.
#[derive(Debug, Clone)]
pub struct ScanArena {
    segs: Vec<ScanSegment>,
    /// Freed segment ids, reused LIFO so hot churn re-touches warm slots.
    free: Vec<u32>,
    /// Recycles segment buffers across grow/release events; quarantines
    /// retirements behind epoch stamps inside concurrent mutation windows.
    pool: TablePool<NodeId>,
    enabled: bool,
    /// Cumulative threshold-triggered in-place compactions.
    compactions: u64,
    /// Cumulative tombstones punched.
    tombstones: u64,
}

impl ScanArena {
    /// An arena in the given mode. A disabled arena never allocates:
    /// [`ScanArena::create`] returns [`NO_SEG`] and every other operation on
    /// [`NO_SEG`] is a no-op, so callers need no flag of their own.
    pub fn new(enabled: bool) -> Self {
        Self {
            segs: Vec::new(),
            free: Vec::new(),
            pool: if enabled {
                TablePool::enabled()
            } else {
                TablePool::disabled()
            },
            enabled,
            compactions: 0,
            tombstones: 0,
        }
    }

    /// Whether segments are maintained at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Acquires a buffer for `cap` entries with its bitmap region zeroed (the
    /// id region is raw — segments track their own fill level).
    fn acquire_buf(&mut self, cap: usize) -> Vec<NodeId> {
        let mut buf = self.pool.acquire_ids(total_for(cap));
        for w in &mut buf[cap..] {
            *w = 0;
        }
        buf
    }

    /// Creates an empty segment sized for `hint` entries (plus chunk
    /// rounding), returning its id — or [`NO_SEG`] when disabled.
    pub fn create(&mut self, hint: usize) -> u32 {
        if !self.enabled {
            return NO_SEG;
        }
        let cap = hint.max(MIN_CAP);
        let buf = self.acquire_buf(cap);
        let seg = ScanSegment {
            buf,
            len: 0,
            dead: 0,
        };
        match self.free.pop() {
            Some(id) => {
                self.segs[id as usize] = seg;
                id
            }
            None => {
                let id = u32::try_from(self.segs.len()).expect("scan arena overflow");
                assert_ne!(id, NO_SEG, "scan arena overflow");
                if self.segs.len() == self.segs.capacity() {
                    self.segs.reserve_exact(SEGS_CHUNK);
                }
                self.segs.push(seg);
                id
            }
        }
    }

    /// Appends a live entry for successor `v`. Grows the buffer by an exact
    /// chunk — copying only live entries, so growth doubles as a compaction —
    /// when the tail is full. No-op on [`NO_SEG`].
    pub fn append(&mut self, seg: u32, v: NodeId) {
        if seg == NO_SEG {
            return;
        }
        let idx = seg as usize;
        if self.segs[idx].len as usize == self.segs[idx].capacity() {
            self.grow(idx);
        }
        let s = &mut self.segs[idx];
        let at = s.len as usize;
        s.buf[at] = v;
        s.len += 1;
    }

    /// Tombstones the entry for successor `v` (located by an id scan that
    /// consults the bitmap on match — a dead slot keeps its id, and `v` may
    /// have been re-inserted behind an earlier tombstone of itself),
    /// compacting in place once the dead fraction exceeds 1/4. Returns
    /// whether an entry was found; no-op `true` on [`NO_SEG`].
    pub fn tombstone(&mut self, seg: u32, v: NodeId) -> bool {
        if seg == NO_SEG {
            return true;
        }
        let s = &mut self.segs[seg as usize];
        let n = s.len as usize;
        let dense = s.dead == 0;
        let (ids, bm) = s.split_mut();
        let mut hit = None;
        for (i, &id) in ids[..n].iter().enumerate() {
            if id == v && (dense || !ScanSegment::is_dead(bm, i)) {
                hit = Some(i);
                break;
            }
        }
        let Some(i) = hit else {
            debug_assert!(false, "tombstone for a successor the segment never saw");
            return false;
        };
        bm[i / 64] |= 1u64 << (i % 64);
        s.dead += 1;
        self.tombstones += 1;
        if s.dead * 4 > s.len {
            self.compact(seg as usize);
            self.compactions += 1;
        }
        true
    }

    /// Returns a freed cell's segment: the buffer retires into the pool
    /// (quarantined when inside a concurrent mutation window) and the id
    /// re-enters the LIFO free list. No-op on [`NO_SEG`].
    pub fn release(&mut self, seg: u32) {
        if seg == NO_SEG {
            return;
        }
        let s = &mut self.segs[seg as usize];
        let mut buf = std::mem::take(&mut s.buf);
        s.len = 0;
        s.dead = 0;
        if buf.capacity() > total_for(RETIRE_CAP) {
            buf.truncate(total_for(RETIRE_CAP));
            buf.shrink_to(total_for(RETIRE_CAP));
        }
        self.pool.retire_ids(buf);
        self.free.push(seg);
    }

    /// Walks the live entries of `seg` in append order. Tombstone-free
    /// segments (the common case under insert-mostly load) take a dense slice
    /// walk the hardware prefetcher streams; segments carrying tombstones
    /// fold one bitmap word per 64-entry block and walk the survivors by
    /// `trailing_zeros`, skipping dead slots whole-word. The first lines of
    /// the ids and the bitmap are software-prefetched up front so the reads
    /// do not stall on the pointer chase from the cell.
    #[inline]
    pub fn for_each(&self, seg: u32, mut f: impl FnMut(NodeId)) {
        let s = &self.segs[seg as usize];
        let n = s.len as usize;
        if n == 0 {
            return;
        }
        let ids = &s.buf[..n];
        prefetch_read(ids.as_ptr().cast());
        if s.dead == 0 {
            for &v in ids {
                f(v);
            }
        } else {
            let bm = &s.buf[s.capacity()..];
            prefetch_read(bm.as_ptr().cast());
            for (word, base) in (0..n).step_by(64).enumerate() {
                let lim = (n - base).min(64);
                let mask = if lim == 64 { !0u64 } else { (1u64 << lim) - 1 };
                let mut live = !bm[word] & mask;
                while live != 0 {
                    f(ids[base + live.trailing_zeros() as usize]);
                    live &= live - 1;
                }
            }
        }
    }

    /// Live entries of `seg` (0 for [`NO_SEG`]).
    pub fn live_len(&self, seg: u32) -> usize {
        if seg == NO_SEG {
            return 0;
        }
        let s = &self.segs[seg as usize];
        (s.len - s.dead) as usize
    }

    /// Slides the live entries of `segs[idx]` down over its tombstones,
    /// preserving append order, and clears the bitmap. Safe under the shard
    /// read protocol: writers drain every reader pin before a mutation window
    /// opens, so no scan can observe the slide mid-flight.
    fn compact(&mut self, idx: usize) {
        let s = &mut self.segs[idx];
        let n = s.len as usize;
        let (ids, bm) = s.split_mut();
        let mut live = 0usize;
        for i in 0..n {
            if !ScanSegment::is_dead(bm, i) {
                if live != i {
                    ids[live] = ids[i];
                }
                live += 1;
            }
        }
        for w in bm.iter_mut() {
            *w = 0;
        }
        s.len = live as u32;
        s.dead = 0;
    }

    /// Grows `segs[idx]` by one exact chunk (`cap/4`, at least [`GROW_MIN`]),
    /// copying only live entries into a pool-acquired buffer and retiring the
    /// old one (into the epoch quarantine when a window is open).
    fn grow(&mut self, idx: usize) {
        let old_cap = self.segs[idx].capacity();
        let new_cap = old_cap + (old_cap / 4).max(GROW_MIN);
        let mut buf = self.acquire_buf(new_cap);
        let s = &mut self.segs[idx];
        let n = s.len as usize;
        let (ids, bm) = s.split_mut();
        let mut live = 0usize;
        for (i, &id) in ids.iter().enumerate().take(n) {
            if !ScanSegment::is_dead(bm, i) {
                buf[live] = id;
                live += 1;
            }
        }
        let old_buf = std::mem::replace(&mut s.buf, buf);
        s.len = live as u32;
        s.dead = 0;
        self.pool.retire_ids(old_buf);
    }

    /// Cumulative threshold-triggered compactions.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Cumulative tombstones punched.
    pub fn tombstones(&self) -> u64 {
        self.tombstones
    }

    /// Bytes held by the arena: segment buffers (capacity, not length),
    /// bookkeeping, and everything parked in the buffer pool — pooled
    /// capacity is never hidden from the memory experiments.
    pub fn memory_bytes(&self) -> usize {
        let buffers: usize = self
            .segs
            .iter()
            .map(|s| s.buf.capacity() * std::mem::size_of::<NodeId>())
            .sum();
        buffers
            + self.segs.capacity() * std::mem::size_of::<ScanSegment>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.pool.retained_bytes()
    }

    /// Enters deferred-retire mode for the buffer pool (see
    /// [`TablePool::begin_deferred`]); called by the engine at the top of a
    /// concurrent mutation window.
    pub fn begin_deferred_retires(&mut self, epoch: u64) {
        self.pool.begin_deferred(epoch);
    }

    /// Leaves deferred-retire mode, releasing quarantined buffers stamped
    /// below `safe_epoch`. Returns how many were released.
    pub fn end_deferred_retires(&mut self, safe_epoch: u64) -> usize {
        self.pool.end_deferred(safe_epoch)
    }
}

/// Compile-time proof the arena crosses the shard fan-out's thread
/// boundaries inside an engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ScanArena>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(arena: &ScanArena, seg: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        arena.for_each(seg, |v| out.push(v));
        out
    }

    #[test]
    fn capacity_roundtrips_through_the_packed_buffer_length() {
        // The capacity is recovered from the buffer length alone, so the
        // total_for/cap_for pair must roundtrip exactly for every capacity a
        // segment can reach.
        for cap in 0..100_000usize {
            assert_eq!(cap_for(total_for(cap)), cap, "roundtrip broke at cap {cap}");
        }
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
    }

    #[test]
    fn disabled_arena_is_inert() {
        let mut a = ScanArena::new(false);
        assert!(!a.is_enabled());
        let seg = a.create(16);
        assert_eq!(seg, NO_SEG);
        a.append(seg, 7);
        assert!(a.tombstone(seg, 7));
        a.release(seg);
        assert_eq!(a.live_len(seg), 0);
        assert_eq!(a.memory_bytes(), 0);
        assert_eq!((a.compactions(), a.tombstones()), (0, 0));
    }

    #[test]
    fn append_preserves_insertion_order() {
        let mut a = ScanArena::new(true);
        let seg = a.create(4);
        for v in [9u64, 3, 77, 3_000_000] {
            a.append(seg, v);
        }
        assert_eq!(collect(&a, seg), vec![9, 3, 77, 3_000_000]);
        assert_eq!(a.live_len(seg), 4);
    }

    #[test]
    fn growth_is_exact_chunk_and_keeps_entries() {
        let mut a = ScanArena::new(true);
        let seg = a.create(1); // rounds up to MIN_CAP
        for v in 0..100u64 {
            a.append(seg, v);
        }
        assert_eq!(collect(&a, seg), (0..100u64).collect::<Vec<_>>());
        // Exact-chunk growth: capacity never jumps by more than 25% (or the
        // minimum chunk), so the overshoot past 100 entries stays small.
        let cap = a.segs[seg as usize].capacity();
        assert!(cap >= 100);
        assert!(cap < 100 + (100 / 4).max(GROW_MIN) + GROW_MIN, "cap {cap}");
    }

    #[test]
    fn tombstones_skip_dead_entries_and_trigger_compaction() {
        let mut a = ScanArena::new(true);
        let seg = a.create(32);
        for v in 0..20u64 {
            a.append(seg, v);
        }
        // 4 tombstones in 20 appended: 16 live, dead*4 = 16 <= len 20 — no
        // compaction yet.
        for v in [1u64, 5, 9, 13] {
            assert!(a.tombstone(seg, v));
        }
        assert_eq!(a.compactions(), 0);
        assert_eq!(a.tombstones(), 4);
        let survivors: Vec<NodeId> = (0..20u64).filter(|v| ![1, 5, 9, 13].contains(v)).collect();
        assert_eq!(collect(&a, seg), survivors);

        // The 6th tombstone crosses dead*4 > len (6*4 > 20): in-place
        // compaction, order preserved, dead counter reset.
        assert!(a.tombstone(seg, 17));
        assert_eq!(a.compactions(), 0, "5*4 = 20 is not > 20");
        assert!(a.tombstone(seg, 2));
        assert_eq!(a.compactions(), 1);
        let survivors: Vec<NodeId> = (0..20u64)
            .filter(|v| ![1, 5, 9, 13, 17, 2].contains(v))
            .collect();
        assert_eq!(collect(&a, seg), survivors);
        assert_eq!(a.segs[seg as usize].dead, 0);
        assert_eq!(a.live_len(seg), survivors.len());
    }

    #[test]
    fn tombstone_then_reinsert_of_the_same_id_kills_the_live_copy() {
        // A dead slot keeps its id; a delete after a re-insert of the same
        // successor must tombstone the *live* copy, not re-find the corpse.
        let mut a = ScanArena::new(true);
        let seg = a.create(8);
        a.append(seg, 5);
        a.append(seg, 6);
        assert!(a.tombstone(seg, 5));
        a.append(seg, 5); // re-insert behind its own tombstone
        assert_eq!(collect(&a, seg), vec![6, 5]);
        assert!(a.tombstone(seg, 5));
        assert_eq!(collect(&a, seg), vec![6]);
        assert_eq!(a.live_len(seg), 1);
    }

    #[test]
    fn sparse_scan_skips_whole_words_across_block_boundaries() {
        // Spread entries across three bitmap words and tombstone a scattering
        // (below the compaction threshold) to exercise the word-folding walk.
        let mut a = ScanArena::new(true);
        let seg = a.create(200);
        for v in 0..150u64 {
            a.append(seg, v);
        }
        let doomed: Vec<u64> = (0..150).filter(|v| v % 5 == 0).collect();
        for &v in &doomed {
            assert!(a.tombstone(seg, v));
        }
        assert!(a.segs[seg as usize].dead > 0, "stayed dense");
        let expect: Vec<NodeId> = (0..150u64).filter(|v| v % 5 != 0).collect();
        assert_eq!(collect(&a, seg), expect);
    }

    #[test]
    fn growth_drops_tombstones() {
        let mut a = ScanArena::new(true);
        let seg = a.create(8);
        for v in 0..8u64 {
            a.append(seg, v);
        }
        assert!(a.tombstone(seg, 0));
        // Tail full: the next append grows and copies only live entries.
        a.append(seg, 100);
        let s = &a.segs[seg as usize];
        assert_eq!(s.dead, 0);
        assert_eq!(collect(&a, seg), vec![1, 2, 3, 4, 5, 6, 7, 100]);
    }

    #[test]
    fn release_recycles_ids_lifo_and_buffers_through_the_pool() {
        let mut a = ScanArena::new(true);
        let s0 = a.create(8);
        let s1 = a.create(8);
        a.append(s1, 4);
        a.release(s1);
        assert_eq!(a.live_len(s1), 0);
        // LIFO id reuse; the recycled buffer comes back from the pool.
        let s2 = a.create(8);
        assert_eq!(s2, s1);
        assert_eq!(collect(&a, s2), Vec::<NodeId>::new());
        a.append(s2, 5);
        assert_eq!(collect(&a, s2), vec![5]);
        assert_ne!(s0, s2);
    }

    #[test]
    fn recycled_buffers_start_with_a_clean_bitmap() {
        // Retirees go back dirty (raw pool) — creation must still hand out a
        // segment whose bitmap carries no stale tombstones.
        let mut a = ScanArena::new(true);
        let seg = a.create(8);
        for v in 0..8u64 {
            a.append(seg, v);
        }
        assert!(a.tombstone(seg, 3));
        a.release(seg);
        let seg = a.create(8);
        for v in 10..18u64 {
            a.append(seg, v);
        }
        assert_eq!(collect(&a, seg), (10..18u64).collect::<Vec<_>>());
    }

    #[test]
    fn deferred_release_quarantines_buffers_until_the_epoch_clears() {
        let mut a = ScanArena::new(true);
        let seg = a.create(8);
        a.append(seg, 1);
        a.begin_deferred_retires(5);
        let before = a.memory_bytes();
        a.release(seg);
        // Quarantined, still counted in memory.
        assert!(a.memory_bytes() >= before);
        assert_eq!(a.end_deferred_retires(6), 1);
    }

    #[test]
    fn memory_is_reported_and_shrinks_on_release_reuse() {
        let mut a = ScanArena::new(true);
        let seg = a.create(64);
        let with_seg = a.memory_bytes();
        assert!(with_seg >= total_for(64) * std::mem::size_of::<NodeId>());
        a.release(seg);
        // Buffers moved to the pool: still counted (never hidden).
        assert!(a.memory_bytes() >= with_seg - 64);
    }
}
