//! The L-CHT: the node-level cuckoo structure plus its denylist.
//!
//! [`NodeTable`] owns the chain of large cuckoo hash tables whose payloads are
//! whole [`Cell`]s (Part 1 = `u`, Part 2 = the neighbour storage), and the
//! L-DL that absorbs cells evicted past the kick budget. Because the L-DL unit
//! is an entire cell, an evicted node's S-CHT chain never has to be copied —
//! exactly the property § III-A2 calls out.

use crate::cell::Cell;
use crate::chain::{ChainInsert, ChainParams, TableChain};
use crate::denylist::LargeDenylist;
use crate::hash::KeyHash;
use crate::payload::Payload;
use crate::pool::PoolStats;
use crate::rng::KickRng;
use crate::scratch::RebuildScratch;
use graph_api::NodeId;

/// Opaque coordinates of a cell (chain slot or L-DL index), produced by
/// [`NodeTable::find`] and consumed by [`NodeTable::cell_at_mut`]. Valid only
/// until the next mutation of the node table.
#[derive(Debug, Clone, Copy)]
pub(crate) enum NodePos {
    /// Chain coordinates (table, (array, flat slot)).
    Chain((usize, (usize, usize))),
    /// Index into the L-DL.
    Deny(usize),
}

/// Counters the node table feeds back to the engine's [`crate::StructureStats`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeTableCounters {
    /// Cell placements performed (initial, kick-out, and expansion re-inserts).
    pub placements: u64,
    /// Distinct nodes whose insertion was requested.
    pub items: u64,
    /// Insertions that exceeded the kick budget and fell back to the L-DL.
    pub failures: u64,
}

/// The L-CHT chain plus its L-DL.
#[derive(Debug, Clone)]
pub struct NodeTable<P> {
    chain: TableChain<Cell<P>>,
    denylist: LargeDenylist<Cell<P>>,
    use_denylist: bool,
    counters: NodeTableCounters,
    /// Rebuild buffers for the L-CHT chain's own expand/contract events —
    /// whole cells (each carrying its S-CHT chain by move, never by copy).
    scratch: RebuildScratch<Cell<P>>,
    /// Reusable buffer for draining the L-DL back into the chain after an
    /// expansion, so the denylist path stops allocating per event too.
    park_buf: Vec<Cell<P>>,
}

impl<P: Payload> NodeTable<P> {
    /// Creates an empty node table. `resize_scratch` selects the persistent
    /// rebuild buffers (production) or the alloc-per-event reference shape
    /// (see [`RebuildScratch`]); `table_pool` selects whether the L-CHT
    /// chain's transformations recycle table buffers (see [`crate::pool`]).
    pub fn new(
        params: ChainParams,
        seed: u64,
        denylist_capacity: usize,
        use_denylist: bool,
        resize_scratch: bool,
        table_pool: bool,
    ) -> Self {
        let mut scratch = if resize_scratch {
            RebuildScratch::persistent()
        } else {
            RebuildScratch::alloc_per_event()
        }
        .with_table_pool(table_pool);
        Self {
            chain: TableChain::new_in(params, seed, &mut scratch.pool),
            denylist: LargeDenylist::new(denylist_capacity),
            use_denylist,
            counters: NodeTableCounters::default(),
            scratch,
            park_buf: Vec::new(),
        }
    }

    /// Number of distinct nodes stored (chain plus denylist).
    pub fn node_count(&self) -> usize {
        self.chain.count() + self.denylist.len()
    }

    /// Counter snapshot for stats reporting.
    pub fn counters(&self) -> NodeTableCounters {
        self.counters
    }

    /// Number of L-CHT tables currently enabled.
    pub fn table_count(&self) -> usize {
        self.chain.table_count()
    }

    /// Total cell capacity across the L-CHT chain.
    pub fn cell_capacity(&self) -> usize {
        self.chain.capacity()
    }

    /// Entries currently parked in the L-DL.
    pub fn denylist_len(&self) -> usize {
        self.denylist.len()
    }

    /// Expansions performed by the L-CHT chain.
    pub fn expansions(&self) -> u64 {
        self.chain.expansions()
    }

    /// Contractions performed by the L-CHT chain.
    pub fn contractions(&self) -> u64 {
        self.chain.contractions()
    }

    /// Looks up the cell for node `kh.key()` (chain first, then the L-DL —
    /// the same order the paper's query procedure uses).
    pub fn get(&self, kh: KeyHash) -> Option<&Cell<P>> {
        self.chain.get(kh).or_else(|| {
            let u = kh.key();
            self.denylist.find(|c| c.node() == u)
        })
    }

    /// Mutable lookup of the cell for node `kh.key()` — a single probe: the
    /// chain is located once (tag-byte scan) and the slot re-borrowed in
    /// O(1), instead of the probe-twice `contains` + `get_mut` shape this
    /// method had before PR 4.
    pub fn get_mut(&mut self, kh: KeyHash) -> Option<&mut Cell<P>> {
        if let Some(pos) = self.chain.find_index(kh) {
            return Some(self.chain.item_at_mut(pos));
        }
        let u = kh.key();
        self.denylist.find_mut(|c| c.node() == u)
    }

    /// True if node `kh.key()` has a cell.
    pub fn contains(&self, kh: KeyHash) -> bool {
        let u = kh.key();
        self.chain.contains(kh) || self.denylist.find(|c| c.node() == u).is_some()
    }

    /// Locates the cell for `kh.key()`, returning opaque coordinates for
    /// [`NodeTable::cell_at_mut`].
    pub(crate) fn find(&self, kh: KeyHash) -> Option<NodePos> {
        if let Some(pos) = self.chain.find_index(kh) {
            return Some(NodePos::Chain(pos));
        }
        let u = kh.key();
        self.denylist.position(|c| c.node() == u).map(NodePos::Deny)
    }

    /// Direct access to a cell located by [`NodeTable::find`].
    #[inline]
    pub(crate) fn cell_at_mut(&mut self, pos: NodePos) -> &mut Cell<P> {
        match pos {
            NodePos::Chain(p) => self.chain.item_at_mut(p),
            NodePos::Deny(i) => self.denylist.cell_at_mut(i),
        }
    }

    /// Pre-change reference lookup (per-table re-hash, full key compares, no
    /// tags) — the oracle/baseline counterpart of [`NodeTable::get`].
    pub fn get_unmemoized(&self, u: NodeId) -> Option<&Cell<P>> {
        self.chain
            .get_unmemoized(u)
            .or_else(|| self.denylist.find(|c| c.node() == u))
    }

    /// Returns a mutable reference to the cell for `kh.key()`, creating it if
    /// needed. The creation path implements the insertion Step 2 of § III-A3:
    /// place the new cell, kicking residents as needed; route the final
    /// homeless cell to the L-DL; force an expansion when denylists are
    /// disabled or full. The hit path resolves the key exactly once (the
    /// pre-PR-4 shape probed up to three times: `contains`, `insert_cell`'s
    /// duplicate check, then `get_mut`).
    pub fn ensure(&mut self, kh: KeyHash, rng: &mut KickRng) -> &mut Cell<P> {
        if let Some(pos) = self.find(kh) {
            return self.cell_at_mut(pos);
        }
        self.counters.items += 1;
        self.insert_cell(Cell::new(kh.key()), kh, rng);
        // The fresh cell settled in the chain or was parked in the L-DL; one
        // more probe pins it down (creation only — the hot hit path above
        // never reaches this).
        let pos = self.find(kh).expect("cell was just ensured");
        self.cell_at_mut(pos)
    }

    /// Inserts a cell (new or drained from the L-DL), handling expansion and
    /// denylist fallback so the operation always succeeds.
    fn insert_cell(&mut self, cell: Cell<P>, kh: KeyHash, rng: &mut KickRng) {
        // The chain consults the expansion rule itself; when it expands we
        // first give parked cells a chance to move back in.
        let expansions_before = self.chain.expansions();
        match self.chain.insert(
            cell,
            kh,
            rng,
            &mut self.counters.placements,
            &mut self.scratch,
        ) {
            ChainInsert::Stored => {}
            ChainInsert::Failed(cell) => {
                self.counters.failures += 1;
                if self.use_denylist {
                    match self.denylist.push(cell) {
                        Ok(()) => {}
                        Err(cell) => {
                            // Denylist full: expand and retry; the larger table
                            // accepts the cell with overwhelming probability.
                            self.force_expand_and_insert(cell, rng);
                        }
                    }
                } else {
                    self.force_expand_and_insert(cell, rng);
                }
            }
        }
        if self.chain.expansions() > expansions_before {
            self.drain_denylist(rng);
        }
    }

    fn force_expand_and_insert(&mut self, cell: Cell<P>, rng: &mut KickRng) {
        let mut pending = cell;
        let mut pending_kh = pending.key_hash();
        loop {
            let leftovers =
                self.chain
                    .expand(rng, &mut self.counters.placements, &mut self.scratch);
            for cell in leftovers {
                // Cells displaced by the merge go to the denylist regardless of
                // the capacity limit — nothing may be dropped.
                self.denylist.push_forced(cell);
            }
            match self.chain.insert_no_expand(
                pending,
                pending_kh,
                rng,
                &mut self.counters.placements,
            ) {
                ChainInsert::Stored => break,
                ChainInsert::Failed(cell) => {
                    // The homeless cell may be a kick-walk victim, not the one
                    // we started with — re-derive its hash material.
                    pending_kh = cell.key_hash();
                    pending = cell;
                }
            }
        }
        self.drain_denylist(rng);
    }

    /// Moves every parked cell back into the (recently expanded) chain;
    /// anything that still cannot be placed is re-parked. Runs through the
    /// reusable `park_buf`, so the per-expansion denylist drain allocates
    /// nothing in the steady state.
    fn drain_denylist(&mut self, rng: &mut KickRng) {
        if self.denylist.is_empty() {
            return;
        }
        debug_assert!(self.park_buf.is_empty(), "denylist drain re-entered");
        self.denylist.drain_all_into(&mut self.park_buf);
        while let Some(cell) = self.park_buf.pop() {
            let kh = cell.key_hash();
            match self
                .chain
                .insert_no_expand(cell, kh, rng, &mut self.counters.placements)
            {
                ChainInsert::Stored => {}
                ChainInsert::Failed(cell) => self.denylist.push_forced(cell),
            }
        }
    }

    /// Calls `f` for every stored cell (chain and denylist). The chain pass
    /// is the SWAR occupancy scan — node enumeration skips empty L-CHT
    /// regions in whole-word jumps.
    pub fn for_each(&self, mut f: impl FnMut(&Cell<P>)) {
        self.chain.for_each(&mut f);
        for cell in self.denylist.iter() {
            f(cell);
        }
    }

    /// Pre-SWAR counterpart of [`NodeTable::for_each`] (scalar slot walk over
    /// the chain), for the scan oracle and guard baseline.
    pub fn for_each_scalar(&self, mut f: impl FnMut(&Cell<P>)) {
        self.chain.for_each_scalar(&mut f);
        for cell in self.denylist.iter() {
            f(cell);
        }
    }

    /// Mutable walk over every stored cell (chain and denylist). Callers must
    /// not change a cell's node; used by the engine's arena compaction to
    /// rewrite every inline cell's block index.
    pub(crate) fn for_each_cell_mut(&mut self, mut f: impl FnMut(&mut Cell<P>)) {
        self.chain.for_each_mut(&mut f);
        for cell in self.denylist.iter_mut() {
            f(cell);
        }
    }

    /// Every stored node id.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.node_count());
        self.for_each(|c| out.push(c.node()));
        out
    }

    /// Bytes held by the L-CHT chain, its cells' Part 2, the L-DL buffer, and
    /// the idle table buffers pooled by this level's scratch (pooled capacity
    /// is never hidden from memory reporting).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.chain.memory_bytes()
            + self.denylist.buffer_bytes()
            + self.scratch.pool_retained_bytes();
        for cell in self.denylist.iter() {
            bytes += cell.part2_bytes();
        }
        bytes
    }

    /// Counter snapshot of this level's table pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.scratch.pool_stats()
    }

    /// Puts this level's pool into epoch-stamped deferred-retire mode for a
    /// concurrent mutation window (see [`crate::epoch`]).
    pub(crate) fn begin_deferred_retires(&mut self, epoch: u64) {
        self.scratch.begin_deferred_retires(epoch);
    }

    /// Closes the deferred-retire window at `safe_epoch`; returns how many
    /// quarantined buffers were released.
    pub(crate) fn end_deferred_retires(&mut self, safe_epoch: u64) -> usize {
        self.scratch.end_deferred_retires(safe_epoch)
    }

    /// Applies the reverse-transformation rule to the L-CHT chain (used after
    /// bulk deletions); cells displaced by a contraction go to the L-DL.
    pub fn maybe_contract(&mut self, rng: &mut KickRng) {
        let displaced =
            self.chain
                .maybe_contract(rng, &mut self.counters.placements, &mut self.scratch);
        for cell in displaced {
            self.denylist.push_forced(cell);
        }
    }
}

/// Compile-time proof that the node table (L-CHT chain + L-DL) is
/// `Send + Sync`, as the sharded engine's thread fan-out requires.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<NodeTable<NodeId>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn kh(u: NodeId) -> KeyHash {
        KeyHash::new(u)
    }

    fn params() -> ChainParams {
        ChainParams {
            cells_per_bucket: 8,
            r: 3,
            expand_threshold: 0.9,
            contract_threshold: 0.5,
            max_kicks: 100,
            base_len: 4,
        }
    }

    fn table() -> NodeTable<NodeId> {
        NodeTable::new(params(), 0x77, 64, true, true, true)
    }

    #[test]
    fn ensure_creates_each_node_once() {
        let mut t = table();
        let mut rng = KickRng::new(1);
        for u in 0..100u64 {
            t.ensure(kh(u), &mut rng);
        }
        // Second pass must not create duplicates.
        for u in 0..100u64 {
            t.ensure(kh(u), &mut rng);
        }
        assert_eq!(t.node_count(), 100);
        assert_eq!(t.counters().items, 100);
        for u in 0..100u64 {
            assert!(t.contains(kh(u)));
            assert_eq!(t.get(kh(u)).unwrap().node(), u);
        }
        assert!(!t.contains(kh(1000)));
    }

    #[test]
    fn growth_keeps_all_nodes_reachable() {
        let mut t = table();
        let mut rng = KickRng::new(2);
        for u in 0..5_000u64 {
            t.ensure(kh(u), &mut rng);
        }
        assert_eq!(t.node_count(), 5_000);
        assert!(t.expansions() > 0, "L-CHT never expanded");
        for u in (0..5_000u64).step_by(97) {
            assert!(t.contains(kh(u)), "lost node {u}");
        }
    }

    #[test]
    fn denylist_absorbs_failures_without_losing_nodes() {
        // A tiny kick budget causes frequent failures; every node must still
        // be reachable afterwards (via the chain or the L-DL).
        let p = ChainParams {
            max_kicks: 2,
            base_len: 2,
            ..params()
        };
        let mut t: NodeTable<NodeId> = NodeTable::new(p, 5, 1024, true, true, true);
        let mut rng = KickRng::new(3);
        for u in 0..2_000u64 {
            t.ensure(kh(u), &mut rng);
        }
        assert_eq!(t.node_count(), 2_000);
        for u in 0..2_000u64 {
            assert!(t.contains(kh(u)), "node {u} was lost");
        }
    }

    #[test]
    fn denylist_disabled_forces_expansion() {
        let p = ChainParams {
            max_kicks: 2,
            base_len: 2,
            ..params()
        };
        let mut t: NodeTable<NodeId> = NodeTable::new(p, 5, 0, false, true, true);
        let mut rng = KickRng::new(4);
        for u in 0..1_000u64 {
            t.ensure(kh(u), &mut rng);
        }
        assert_eq!(t.node_count(), 1_000);
        assert_eq!(
            t.denylist_len(),
            0,
            "denylist must stay unused when disabled"
        );
        for u in 0..1_000u64 {
            assert!(t.contains(kh(u)));
        }
    }

    #[test]
    fn cells_keep_their_neighbors_through_node_evictions() {
        let mut t = table();
        let mut rng = KickRng::new(5);
        let ctx = crate::cell::CellCtx {
            small_slots: 6,
            chain: params(),
            seed: 1,
        };
        let mut placements = 0u64;
        let mut scratch = RebuildScratch::persistent();
        let mut arena = crate::arena::SlotArena::new(ctx.small_slots);
        let mut scan = crate::segment::ScanArena::new(true);
        // Give node 7 some neighbours, then insert many more nodes to force
        // kick-outs and expansions around it.
        {
            let cell = t.ensure(kh(7), &mut rng);
            for v in 0..20u64 {
                cell.insert(
                    v,
                    kh(v),
                    &ctx,
                    &mut arena,
                    &mut rng,
                    &mut placements,
                    &mut scratch,
                    &mut scan,
                );
            }
        }
        for u in 1_000..6_000u64 {
            t.ensure(kh(u), &mut rng);
        }
        let cell = t.get(kh(7)).expect("node 7 must survive");
        assert_eq!(cell.degree(), 20);
        let mut nbrs = cell.neighbors(&arena);
        nbrs.sort_unstable();
        assert_eq!(nbrs, (0..20u64).collect::<Vec<_>>());
    }

    #[test]
    fn memory_bytes_grow_with_nodes() {
        let mut t = table();
        let mut rng = KickRng::new(6);
        let before = t.memory_bytes();
        for u in 0..1_000u64 {
            t.ensure(kh(u), &mut rng);
        }
        assert!(t.memory_bytes() > before);
    }

    #[test]
    fn nodes_lists_every_source() {
        let mut t = table();
        let mut rng = KickRng::new(7);
        for u in [5u64, 9, 200, 3] {
            t.ensure(kh(u), &mut rng);
        }
        let mut nodes = t.nodes();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![3, 5, 9, 200]);
    }
}
