//! 32-bit Bob Jenkins hash ("Bob Hash" / lookup2 / evahash).
//!
//! The paper's implementation (§ V-A) hashes keys with the 32-bit Bob Hash
//! from Bob Jenkins' public-domain `lookup2`/evahash code, seeded with random
//! initial values. This module re-implements that function from its public
//! description and wraps it in [`HashPair`]: the two independently seeded hash
//! functions every cuckoo hash table in CuckooGraph carries (`H1`/`H2` for the
//! L-CHT, `h1`/`h2` for S-CHTs).

use graph_api::NodeId;

/// The golden-ratio constant used by `lookup2` to initialise the internal
/// state.
const GOLDEN_RATIO: u32 = 0x9e37_79b9;

/// Bob Jenkins' `mix` step: reversible mixing of three 32-bit words.
#[inline(always)]
fn mix(mut a: u32, mut b: u32, mut c: u32) -> (u32, u32, u32) {
    a = a.wrapping_sub(b).wrapping_sub(c) ^ (c >> 13);
    b = b.wrapping_sub(c).wrapping_sub(a) ^ (a << 8);
    c = c.wrapping_sub(a).wrapping_sub(b) ^ (b >> 13);
    a = a.wrapping_sub(b).wrapping_sub(c) ^ (c >> 12);
    b = b.wrapping_sub(c).wrapping_sub(a) ^ (a << 16);
    c = c.wrapping_sub(a).wrapping_sub(b) ^ (b >> 5);
    a = a.wrapping_sub(b).wrapping_sub(c) ^ (c >> 3);
    b = b.wrapping_sub(c).wrapping_sub(a) ^ (a << 10);
    c = c.wrapping_sub(a).wrapping_sub(b) ^ (b >> 15);
    (a, b, c)
}

/// 32-bit Bob Hash over an arbitrary byte slice with a seed (`initval`).
///
/// Follows the structure of `lookup2`: consume 12 bytes per round through
/// [`mix`], then fold the trailing bytes and the length into the final round.
pub fn bob_hash(bytes: &[u8], seed: u32) -> u32 {
    bob_hash2(bytes, seed).1
}

/// The two-lane variant of [`bob_hash`]: one `lookup2` pass whose final
/// [`mix`] yields *two* well-mixed 32-bit words (`b` and `c`) instead of one.
/// This is the "single Bob-hash pass producing both lanes" that backs
/// [`KeyHash`] — every cuckoo table then derives its bucket indices from the
/// memoized lanes with a cheap per-table finalizer instead of re-running the
/// full pass per table and per array.
pub fn bob_hash2(bytes: &[u8], seed: u32) -> (u32, u32) {
    let mut a = GOLDEN_RATIO;
    let mut b = GOLDEN_RATIO;
    let mut c = seed;
    let mut len = bytes.len();
    let mut offset = 0usize;

    #[inline(always)]
    fn word(bytes: &[u8], at: usize) -> u32 {
        u32::from(bytes[at])
            | (u32::from(bytes[at + 1]) << 8)
            | (u32::from(bytes[at + 2]) << 16)
            | (u32::from(bytes[at + 3]) << 24)
    }

    while len >= 12 {
        a = a.wrapping_add(word(bytes, offset));
        b = b.wrapping_add(word(bytes, offset + 4));
        c = c.wrapping_add(word(bytes, offset + 8));
        let (na, nb, nc) = mix(a, b, c);
        a = na;
        b = nb;
        c = nc;
        offset += 12;
        len -= 12;
    }

    c = c.wrapping_add(bytes.len() as u32);
    // Fold the trailing 0..=11 bytes. The first byte of the last group is
    // reserved for the length (as in the original), hence the shifted lanes.
    let tail = &bytes[offset..];
    if !tail.is_empty() {
        let mut lanes = [0u32; 3];
        for (i, &byte) in tail.iter().enumerate() {
            let lane = i / 4;
            let shift = (i % 4) * 8;
            // The original shifts the `c` lane by one byte to make room for
            // the length; reproduce that behaviour.
            let shift = if lane == 2 { shift + 8 } else { shift };
            if shift < 32 {
                lanes[lane] = lanes[lane].wrapping_add(u32::from(byte) << shift);
            }
        }
        a = a.wrapping_add(lanes[0]);
        b = b.wrapping_add(lanes[1]);
        c = c.wrapping_add(lanes[2]);
    }

    let (_, b, c) = mix(a, b, c);
    (b, c)
}

/// [`bob_hash2`] specialised to an 8-byte little-endian key — bit-identical
/// output, but the tail fold collapses to two word extractions instead of the
/// generic per-byte loop (an 8-byte input feeds lanes `a` and `b` directly
/// and leaves the length-shifted `c` lane untouched). This is the hash every
/// [`KeyHash::new`] runs, i.e. once per keyed operation across the whole
/// engine, so the scan and probe paths feel it directly; equivalence with the
/// byte-slice pass is pinned by a test.
#[inline(always)]
pub fn bob_hash2_u64(key: u64, seed: u32) -> (u32, u32) {
    let a = GOLDEN_RATIO.wrapping_add(key as u32);
    let b = GOLDEN_RATIO.wrapping_add((key >> 32) as u32);
    let c = seed.wrapping_add(8); // the folded-in input length
    let (_, b, c) = mix(a, b, c);
    (b, c)
}

/// Base seed of the shared Bob-hash pass behind [`KeyHash::new`]. Per-table
/// randomness comes from each table's [`HashPair`] seeds, folded into the
/// memoized lanes by [`HashPair::bucket_of`]; the base pass itself is fixed so
/// a `KeyHash` computed anywhere in the engine is valid for every table.
const KEYHASH_SEED: u32 = 0x51ed_270b;

/// Memoized hash material for one key: both Bob-hash lanes, computed once per
/// operation and threaded through the whole probe path (engine → L-CHT chain →
/// cell → S-CHT chain → table).
///
/// The contract: a `KeyHash` is a pure function of the key (the lanes come
/// from one [`bob_hash2`] pass with a fixed base seed), so it can be computed
/// at any layer and reused by every table below. Each table turns the lanes
/// into its two bucket indices via [`HashPair::bucket_of`] (lane ⊕ per-table
/// seed, then [`fmix32`]) — a chain of `R` tables therefore costs one Bob pass
/// per operation instead of `2·R`. The 7-bit [`KeyHash::fingerprint`] is what
/// the tagged buckets compare before ever touching a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyHash {
    key: NodeId,
    lane0: u32,
    lane1: u32,
}

impl KeyHash {
    /// Hashes `key` once (single Bob pass, both lanes, via the 8-byte
    /// specialisation [`bob_hash2_u64`]).
    #[inline]
    pub fn new(key: NodeId) -> Self {
        let (lane0, lane1) = bob_hash2_u64(key, KEYHASH_SEED);
        Self { key, lane0, lane1 }
    }

    /// The key this hash material belongs to.
    #[inline]
    pub fn key(&self) -> NodeId {
        self.key
    }

    /// Both lanes packed into one 64-bit word — the input of the per-table
    /// multiply-shift in [`HashPair::bucket_of`].
    #[inline]
    pub fn lanes64(&self) -> u64 {
        (u64::from(self.lane0) << 32) | u64::from(self.lane1)
    }

    /// 7-bit fingerprint stored in the per-slot tag bytes. Derived from both
    /// lanes so it stays decorrelated from any single table's bucket index.
    #[inline]
    pub fn fingerprint(&self) -> u8 {
        (((self.lane0 >> 7) ^ (self.lane1 >> 19)) & 0x7f) as u8
    }
}

/// Bob Hash specialised to 8-byte node identifiers, the key type used by every
/// table in CuckooGraph.
#[inline]
pub fn bob_hash_u64(key: NodeId, seed: u32) -> u32 {
    bob_hash(&key.to_le_bytes(), seed)
}

/// The pair of independently seeded hash functions associated with one cuckoo
/// hash table (two bucket arrays, one function per array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashPair {
    seed0: u32,
    seed1: u32,
    /// Odd multiply-shift multiplier for bucket array 0, derived from `seed0`
    /// at construction so [`HashPair::bucket_of`] is a handful of ALU ops.
    mul0: u64,
    /// Odd multiply-shift multiplier for bucket array 1.
    mul1: u64,
}

impl HashPair {
    /// Creates a hash pair from two seeds. The seeds should differ so the two
    /// candidate buckets of an item are independent.
    pub fn new(seed0: u32, seed1: u32) -> Self {
        Self {
            seed0,
            seed1,
            mul0: splitmix64(u64::from(seed0) ^ 0xa076_1d64_78bd_642f) | 1,
            mul1: splitmix64(u64::from(seed1) ^ 0xe703_7ed1_a0b4_28db) | 1,
        }
    }

    /// Derives a pair of seeds from a single 64-bit seed using a splitmix64
    /// step, mirroring "random initial seeds" in the paper.
    pub fn from_seed(seed: u64) -> Self {
        let a = splitmix64(seed);
        let b = splitmix64(a);
        Self::new((a >> 32) as u32 ^ a as u32, (b >> 32) as u32 ^ b as u32)
    }

    /// Hash of `key` for bucket array 0.
    #[inline]
    pub fn hash0(&self, key: NodeId) -> u32 {
        bob_hash_u64(key, self.seed0)
    }

    /// Hash of `key` for bucket array 1.
    #[inline]
    pub fn hash1(&self, key: NodeId) -> u32 {
        bob_hash_u64(key, self.seed1)
    }

    /// Bucket index of `key` in array `array` (0 or 1) of `buckets` buckets.
    ///
    /// The pre-memoization bucket *function* (one full Bob pass per call),
    /// retained for this module's distribution tests and as documentation of
    /// the original design. Nothing places items with it anymore, so the
    /// unmemoized oracle probes (`contains_unmemoized` and friends) cannot
    /// use it either — they reproduce the pre-change *cost shape* (a full
    /// Bob pass per bucket array) but must derive buckets with
    /// [`HashPair::bucket_of`] to find items where the live layout put them.
    #[inline]
    pub fn bucket(&self, key: NodeId, array: usize, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        let h = if array == 0 {
            self.hash0(key)
        } else {
            self.hash1(key)
        };
        (h as usize) % buckets
    }

    /// Bucket index derived from memoized hash material — no re-hash of the
    /// key. Each table/array applies its own **multiply-shift** to the packed
    /// lanes (`(lanes64 · a) >> 32`, `a` a per-table random odd multiplier):
    /// a near-universal family, so bucket collisions of a key pair are
    /// independent across tables and arrays — the property the kick-out walk
    /// needs. (A plain `mix(lane ^ seed)` finalizer is *not* enough: the
    /// lane difference of a key pair is constant across all tables, which
    /// correlates their collisions and measurably raises kick-out failures.)
    #[inline]
    pub fn bucket_of(&self, kh: KeyHash, array: usize, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        let mul = if array == 0 { self.mul0 } else { self.mul1 };
        let p = kh.lanes64().wrapping_mul(mul);
        // Xor-fold the product before the range reduction: fast-range consumes
        // the TOP bits of its input, and the top bits of a multiply-shift
        // product preserve the order of nearby values — without the fold,
        // clustered products collapse into the same bucket (overfull cuckoo
        // components that no kick-out walk can untangle). Folding the low half
        // in breaks that monotonicity for one XOR.
        let h = (p >> 32) as u32 ^ p as u32;
        // Lemire fast-range instead of `h % buckets`: one widening multiply
        // maps the well-mixed 32-bit hash onto `[0, buckets)` without the
        // 20+-cycle integer division the modulo costs. Probes pay this per
        // bucket array per chained table, so on the successor-scan path the
        // division was the single most expensive ALU op of the whole lookup.
        ((u64::from(h) * buckets as u64) >> 32) as usize
    }
}

/// splitmix64: cheap 64-bit mixer used for seed derivation only (not for
/// bucket addressing).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(bob_hash_u64(42, 7), bob_hash_u64(42, 7));
        assert_eq!(bob_hash(b"hello world", 3), bob_hash(b"hello world", 3));
    }

    #[test]
    fn different_seeds_give_different_hashes() {
        let collisions = (0u64..1000)
            .filter(|&k| bob_hash_u64(k, 1) == bob_hash_u64(k, 2))
            .count();
        assert!(
            collisions < 5,
            "seeds are not independent: {collisions} collisions"
        );
    }

    #[test]
    fn hash_distributes_over_buckets() {
        // All 10_000 sequential keys into 64 buckets: every bucket should be hit.
        let pair = HashPair::from_seed(0xdead_beef);
        let mut hit = vec![0usize; 64];
        for k in 0..10_000u64 {
            hit[pair.bucket(k, 0, 64)] += 1;
        }
        assert!(
            hit.iter().all(|&c| c > 0),
            "some buckets never hit: {hit:?}"
        );
        let max = *hit.iter().max().unwrap();
        let min = *hit.iter().min().unwrap();
        assert!(
            max < min * 3,
            "distribution too skewed: min={min} max={max}"
        );
    }

    #[test]
    fn hash_pair_candidate_buckets_differ_for_most_keys() {
        let pair = HashPair::from_seed(123);
        let same = (0u64..1000)
            .filter(|&k| pair.bucket(k, 0, 128) == pair.bucket(k, 1, 64))
            .count();
        // With independent functions over different ranges collisions are rare.
        assert!(same < 100);
    }

    #[test]
    fn long_and_short_inputs_differ() {
        let mut seen = HashSet::new();
        for len in 0..40 {
            let data = vec![0xabu8; len];
            seen.insert(bob_hash(&data, 0));
        }
        // Nearly all lengths must hash differently (length is folded in).
        assert!(seen.len() >= 38);
    }

    #[test]
    fn bob_hash2_second_lane_matches_bob_hash() {
        for k in [0u64, 1, 42, u64::MAX] {
            let bytes = k.to_le_bytes();
            assert_eq!(bob_hash2(&bytes, 9).1, bob_hash(&bytes, 9));
        }
    }

    #[test]
    fn u64_specialisation_matches_the_byte_pass() {
        // The fast path must be bit-identical to the generic pass — the
        // contract that keeps every stored layout and oracle valid.
        for k in [0u64, 1, 7, 0xff, 0x1234_5678, u64::MAX, u64::MAX - 3] {
            for seed in [0u32, 9, 0x51ed_270b, u32::MAX] {
                assert_eq!(
                    bob_hash2_u64(k, seed),
                    bob_hash2(&k.to_le_bytes(), seed),
                    "divergence at key {k:#x} seed {seed:#x}"
                );
            }
        }
        for k in (0..5_000u64).map(splitmix64) {
            assert_eq!(
                bob_hash2_u64(k, 0x51ed_270b),
                bob_hash2(&k.to_le_bytes(), 0x51ed_270b)
            );
        }
    }

    #[test]
    fn key_hash_arrays_are_independent_within_a_table() {
        // The two candidate buckets of a key (same table, different arrays)
        // must rarely coincide when ranges align.
        let pair = HashPair::from_seed(77);
        let same = (0u64..2000)
            .map(KeyHash::new)
            .filter(|&kh| pair.bucket_of(kh, 0, 64) == pair.bucket_of(kh, 1, 64))
            .count();
        assert!(same < 100, "arrays too correlated: {same} collisions");
    }

    #[test]
    fn bucket_of_distributes_over_buckets() {
        let pair = HashPair::from_seed(0xdead_beef);
        let mut hit = vec![0usize; 64];
        for k in 0..10_000u64 {
            hit[pair.bucket_of(KeyHash::new(k), 0, 64)] += 1;
        }
        assert!(
            hit.iter().all(|&c| c > 0),
            "some buckets never hit: {hit:?}"
        );
        let max = *hit.iter().max().unwrap();
        let min = *hit.iter().min().unwrap();
        assert!(
            max < min * 3,
            "distribution too skewed: min={min} max={max}"
        );
    }

    #[test]
    fn bucket_of_decorrelates_across_table_seeds() {
        // Two tables with different seeds must send the same memoized KeyHash
        // to independent buckets — the property the whole chain relies on now
        // that the Bob pass is shared.
        let a = HashPair::from_seed(1);
        let b = HashPair::from_seed(2);
        let same = (0u64..2000)
            .map(KeyHash::new)
            .filter(|&kh| a.bucket_of(kh, 0, 64) == b.bucket_of(kh, 0, 64))
            .count();
        // Expectation under independence: 2000/64 ≈ 31.
        assert!(same < 150, "per-table seeds not independent: {same}");
    }

    #[test]
    fn fingerprints_cover_the_tag_space() {
        use std::collections::HashSet;
        let seen: HashSet<u8> = (0u64..4000)
            .map(|k| KeyHash::new(k).fingerprint())
            .collect();
        assert!(
            seen.len() > 100,
            "only {} of 128 fingerprints hit",
            seen.len()
        );
        assert!(seen.iter().all(|&f| f < 128));
    }

    #[test]
    fn splitmix_is_bijective_enough() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(splitmix64(i));
        }
        assert_eq!(seen.len(), 10_000);
    }
}
