//! The cuckoo hash table underlying both the S-CHTs and the L-CHTs.
//!
//! A [`CuckooTable`] follows the structure described in § II-C and § III-A1 of
//! the paper: two bucket arrays with a 2:1 bucket-count ratio, each associated
//! with an independently seeded Bob Hash function, and `d` cells (slots) per
//! bucket. Insertions use the classic random-walk kick-out procedure bounded
//! by `T` loops; a loss is reported back to the caller, which routes the item
//! to a DENYLIST or triggers a TRANSFORMATION.
//!
//! The same generic table stores either neighbour payloads (S-CHT: keyed by
//! `v`) or whole L-CHT cells (keyed by `u`), because both implement
//! [`Payload`].
//!
//! # The tagged probe path
//!
//! Since PR 4 the table keeps, next to each payload slot, one **tag byte**:
//! bit 7 marks occupancy and bits 0–6 hold the key's 7-bit fingerprint
//! ([`KeyHash::fingerprint`]). A probe scans the `d` tag bytes of a candidate
//! bucket — one cache line, no payload traffic — and dereferences a payload
//! only on a tag hit, where the full key is still compared so lookups stay
//! exact. Bucket indices are derived from memoized [`KeyHash`] lanes
//! ([`HashPair::bucket_of`]), so the caller hashes a key once per operation
//! regardless of how many tables a chain probes.
//!
//! # The SWAR scan path
//!
//! Since PR 5 every tag access runs word-at-a-time through [`crate::swar`]:
//! probes answer "which slots carry this fingerprint" and "where is the first
//! empty slot" with one broadcast-XOR zero-byte search over up to eight tags
//! at once, and iteration ([`CuckooTable::for_each`], [`CuckooTable::drain`])
//! walks the occupancy bitmap `word & 0x8080…`, touching only occupied
//! payload slots and skipping empty regions in whole-word jumps. The scalar
//! byte loops survive as `*_scalar` methods — the correctness oracle for the
//! property tests and the live pre-change baseline the `perf_smoke` scan
//! guard measures against.
//!
//! # The pooled flat layout
//!
//! Since PR 6 the table is **`Option`-free and two-buffer flat**: one slot
//! vector and one tag vector hold both bucket arrays back to back (array 1
//! starts at flat offset `buckets0 * d`), and the tag occupancy bit is the
//! *only* empty/occupied discriminant — a vacant slot physically holds
//! [`Payload::filler`], written on removal and never observable because every
//! read is guarded by the tags. This halves the slot footprint of plain
//! payloads (`Option<NodeId>` was 16 bytes, `NodeId` is 8) and cuts a fresh
//! table from four heap allocations to two.
//!
//! Those two allocations are then recycled: tables are born via
//! [`CuckooTable::new_in`] out of a [`TablePool`] and die via
//! [`CuckooTable::retire`] back into it, so steady-state TRANSFORMATION churn
//! reuses the same slot/tag buffers instead of round-tripping the allocator
//! (see [`crate::pool`]).

use crate::hash::{HashPair, KeyHash};
use crate::payload::Payload;
use crate::pool::TablePool;
use crate::rng::KickRng;
use crate::swar;
use graph_api::NodeId;

/// The "length" of a table is the number of buckets in its larger array
/// (footnote 3 in the paper). The smaller array holds half as many buckets.
#[inline]
fn secondary_buckets(len: usize) -> usize {
    (len / 2).max(1)
}

/// Tag byte for an occupied slot: occupancy bit plus the 7-bit fingerprint.
/// An empty slot's tag is 0 (the occupancy bit guarantees occupied ≠ 0).
#[inline(always)]
fn tag_of(kh: KeyHash) -> u8 {
    0x80 | kh.fingerprint()
}

/// Software prefetch of the cache line holding `p`, used by the batch drivers
/// to pull the next key's candidate tag bytes in while the current key
/// settles. A no-op on architectures without a stable prefetch intrinsic.
///
/// `_mm_prefetch` is purely a cache hint — it performs no load, cannot fault
/// even on an invalid address, and has no observable semantic effect, so it
/// is sound for any pointer value. (The only other `unsafe` in the workspace
/// is the gated shard-slot access in [`crate::shard`].)
#[allow(unsafe_code)]
#[inline(always)]
pub(crate) fn prefetch_read(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p.cast());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// A two-array, multi-slot cuckoo hash table with tagged buckets.
#[derive(Debug, Clone)]
pub struct CuckooTable<T> {
    /// Flat slot storage for both arrays: `buckets0 * d` entries of array 0
    /// followed by `buckets1 * d` entries of array 1. Vacant slots hold
    /// [`Payload::filler`]; the parallel tag bytes are the only discriminant.
    slots: Vec<T>,
    /// Tag bytes parallel to `slots`: 0 = empty, `0x80 | fingerprint` else.
    tags: Vec<u8>,
    buckets0: usize,
    buckets1: usize,
    d: usize,
    hashes: HashPair,
    count: usize,
}

impl<T: Payload> CuckooTable<T> {
    /// Creates an empty table of the given length (`len` buckets in array 0,
    /// `len/2` in array 1) with `d` slots per bucket, hashing with the seeds
    /// derived from `seed`. Allocates fresh buffers; the engine paths use
    /// [`CuckooTable::new_in`] to recycle retired ones.
    pub fn new(len: usize, d: usize, seed: u64) -> Self {
        Self::new_in(len, d, seed, &mut TablePool::disabled())
    }

    /// Creates an empty table whose slot/tag buffers come from `pool` —
    /// recycled from a retired table when available, freshly allocated on a
    /// pool miss.
    pub fn new_in(len: usize, d: usize, seed: u64, pool: &mut TablePool<T>) -> Self {
        let len = len.max(1);
        let buckets1 = secondary_buckets(len);
        let (slots, tags) = pool.acquire((len + buckets1) * d);
        Self {
            slots,
            tags,
            buckets0: len,
            buckets1,
            d,
            hashes: HashPair::from_seed(seed),
            count: 0,
        }
    }

    /// Hands the table's buffers back to `pool` for recycling. Callers drain
    /// the table first, so the buffers arrive all-filler / all-zero and the
    /// next [`CuckooTable::new_in`] pays a `memset`, not a `malloc`.
    pub fn retire(self, pool: &mut TablePool<T>) {
        debug_assert_eq!(self.count, 0, "retiring a table that still holds items");
        pool.retire(self.slots, self.tags);
    }

    /// Length of the table (buckets in the larger array).
    pub fn len_buckets(&self) -> usize {
        self.buckets0
    }

    /// Slots per bucket (`d`).
    pub fn cells_per_bucket(&self) -> usize {
        self.d
    }

    /// Total number of slots across both arrays. Purely geometric
    /// (`(buckets0 + buckets1) · d`), independent of any excess capacity a
    /// recycled buffer may carry — so every loading-rate aggregate derived
    /// from it reflects live tables only.
    pub fn capacity(&self) -> usize {
        (self.buckets0 + self.buckets1) * self.d
    }

    /// Number of stored items.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Loading rate `LR = count / capacity`.
    pub fn loading_rate(&self) -> f64 {
        self.count as f64 / self.capacity() as f64
    }

    #[inline]
    fn bucket_index(&self, kh: KeyHash, array: usize) -> usize {
        let buckets = if array == 0 {
            self.buckets0
        } else {
            self.buckets1
        };
        self.hashes.bucket_of(kh, array, buckets)
    }

    /// Flat offset at which the given array's slots begin.
    #[inline]
    fn array_base(&self, array: usize) -> usize {
        if array == 0 {
            0
        } else {
            self.buckets0 * self.d
        }
    }

    /// Flat offset of the first slot of `kh`'s candidate bucket in `array`.
    #[inline]
    fn bucket_base(&self, kh: KeyHash, array: usize) -> usize {
        self.array_base(array) + self.bucket_index(kh, array) * self.d
    }

    /// Returns the `(array, flat_index)` coordinates of the item keyed by
    /// `kh.key()` if present. Scans the `d` tag bytes of each candidate bucket
    /// as SWAR words and touches a payload only on a fingerprint hit.
    pub(crate) fn locate(&self, kh: KeyHash) -> Option<(usize, usize)> {
        let key = kh.key();
        let tag = tag_of(kh);
        for array in 0..2 {
            let base = self.bucket_base(kh, array);
            let mut found = None;
            swar::scan_eq(&self.tags[base..base + self.d], tag, |offset| {
                // Tag hit: confirm with the full key so collisions between
                // different keys sharing a fingerprint stay exact.
                if self.slots[base + offset].key() == key {
                    found = Some((array, base + offset));
                    return true;
                }
                false
            });
            if found.is_some() {
                return found;
            }
        }
        None
    }

    /// Pre-SWAR byte-at-a-time counterpart of [`CuckooTable::locate`], kept as
    /// the scalar oracle for the property tests.
    pub(crate) fn locate_scalar(&self, kh: KeyHash) -> Option<(usize, usize)> {
        let key = kh.key();
        let tag = tag_of(kh);
        for array in 0..2 {
            let base = self.bucket_base(kh, array);
            for (offset, &t) in self.tags[base..base + self.d].iter().enumerate() {
                if t == tag && self.slots[base + offset].key() == key {
                    return Some((array, base + offset));
                }
            }
        }
        None
    }

    /// Direct access to a slot located by [`CuckooTable::locate`].
    #[inline]
    pub(crate) fn slot_at_mut(&mut self, pos: (usize, usize)) -> &mut T {
        debug_assert!(self.tags[pos.1] & 0x80 != 0, "located slot is occupied");
        &mut self.slots[pos.1]
    }

    /// Returns a reference to the item with the given key, if stored.
    pub fn get(&self, kh: KeyHash) -> Option<&T> {
        let (_, i) = self.locate(kh)?;
        Some(&self.slots[i])
    }

    /// [`CuckooTable::get`] through the scalar probe ([`CuckooTable::locate_scalar`]) —
    /// the SWAR-vs-scalar oracle used by `tests/swar_scan_model.rs`.
    #[doc(hidden)]
    pub fn get_scalar(&self, kh: KeyHash) -> Option<&T> {
        let (_, i) = self.locate_scalar(kh)?;
        Some(&self.slots[i])
    }

    /// Returns a mutable reference to the item with the given key, if stored.
    pub fn get_mut(&mut self, kh: KeyHash) -> Option<&mut T> {
        let pos = self.locate(kh)?;
        Some(self.slot_at_mut(pos))
    }

    /// True if an item with the given key is stored.
    pub fn contains(&self, kh: KeyHash) -> bool {
        self.locate(kh).is_some()
    }

    /// Removes and returns the item with the given key. The vacated slot is
    /// overwritten with [`Payload::filler`] and its tag zeroed.
    pub fn remove(&mut self, kh: KeyHash) -> Option<T> {
        let (_, i) = self.locate(kh)?;
        let item = std::mem::replace(&mut self.slots[i], T::filler());
        self.tags[i] = 0;
        self.count -= 1;
        Some(item)
    }

    /// Pre-change reference probe, kept as the correctness oracle for the
    /// property tests and the baseline the `perf_smoke` probe guard measures
    /// against: recomputes the full hash material per bucket array (two Bob
    /// passes per table, the cost `HashPair::bucket` paid before memoization)
    /// and compares full payload keys, consulting only the occupancy bit of
    /// the tags (the pre-tag layout's `Option` discriminant), never the
    /// fingerprints. The bucket *indices* still come from
    /// [`HashPair::bucket_of`] — items live where the tagged path put them,
    /// so the oracle reproduces the old probe's cost shape, not its (now
    /// unused) bucket function.
    pub fn contains_unmemoized(&self, key: NodeId) -> bool {
        self.get_unmemoized(key).is_some()
    }

    /// Reference counterpart of [`CuckooTable::get`] with the pre-change cost
    /// shape (see [`CuckooTable::contains_unmemoized`]).
    pub fn get_unmemoized(&self, key: NodeId) -> Option<&T> {
        for array in 0..2 {
            // One full Bob pass per array — the pre-memoization cost shape.
            // black_box keeps the optimizer from hoisting the second pass.
            let kh = KeyHash::new(std::hint::black_box(key));
            let base = self.bucket_base(kh, array);
            for offset in 0..self.d {
                if self.tags[base + offset] & 0x80 != 0 {
                    let item = &self.slots[base + offset];
                    if item.key() == key {
                        return Some(item);
                    }
                }
            }
        }
        None
    }

    /// Prefetches the tag bytes of both candidate buckets of `kh` — the cache
    /// lines a subsequent [`CuckooTable::locate`] for the same key will read.
    #[inline]
    pub fn prefetch(&self, kh: KeyHash) {
        let b0 = self.bucket_base(kh, 0);
        prefetch_read(self.tags[b0..].as_ptr());
        let b1 = self.bucket_base(kh, 1);
        prefetch_read(self.tags[b1..].as_ptr());
    }

    /// Tries to place `item` in an empty slot of one of its two candidate
    /// buckets, without evicting anything. Returns the item back on failure.
    /// The first-empty-slot search is a SWAR zero-byte scan over the bucket's
    /// tag word(s).
    fn try_place_direct(&mut self, item: T, kh: KeyHash, placements: &mut u64) -> Result<(), T> {
        let tag = tag_of(kh);
        for array in 0..2 {
            let base = self.bucket_base(kh, array);
            if let Some(offset) = swar::find_eq(&self.tags[base..base + self.d], 0) {
                self.slots[base + offset] = item;
                self.tags[base + offset] = tag;
                self.count += 1;
                *placements += 1;
                return Ok(());
            }
        }
        Err(item)
    }

    /// Inserts `item` (whose memoized hash is `kh`), assuming its key is not
    /// already present (callers use [`CuckooTable::get_mut`] for updates).
    /// Performs up to `max_kicks` random-walk evictions. On failure the
    /// currently homeless item is returned so the caller can route it to a
    /// denylist.
    ///
    /// `placements` is incremented once per slot write, feeding the
    /// Theorem 1 validation counters (§ IV-A).
    pub fn insert(
        &mut self,
        item: T,
        kh: KeyHash,
        rng: &mut KickRng,
        max_kicks: usize,
        placements: &mut u64,
    ) -> Result<(), T> {
        debug_assert_eq!(item.key(), kh.key(), "item inserted under foreign hash");
        debug_assert!(!self.contains(kh), "insert of duplicate key");
        let mut cur = match self.try_place_direct(item, kh, placements) {
            Ok(()) => return Ok(()),
            Err(item) => item,
        };
        let mut cur_kh = kh;

        // Both candidate buckets are full: start the kick-out walk. We evict a
        // random resident of one candidate bucket, settle the newcomer there,
        // and continue with the evictee in its *other* candidate bucket.
        let mut array = if rng.next_bool() { 1 } else { 0 };
        for _ in 0..max_kicks {
            let base = self.bucket_base(cur_kh, array);
            let d = self.d;
            let cur_tag = tag_of(cur_kh);

            // If an empty slot opened up (possible after earlier evictions),
            // settle immediately.
            if let Some(offset) = swar::find_eq(&self.tags[base..base + d], 0) {
                self.slots[base + offset] = cur;
                self.tags[base + offset] = cur_tag;
                self.count += 1;
                *placements += 1;
                return Ok(());
            }

            // Evict a random resident and take its place.
            let victim_slot = base + rng.next_below(d);
            debug_assert!(self.tags[victim_slot] & 0x80 != 0, "victim slot occupied");
            let victim = std::mem::replace(&mut self.slots[victim_slot], cur);
            self.tags[victim_slot] = cur_tag;
            *placements += 1;
            cur = victim;
            // The victim is re-hashed once per eviction — still cheaper than
            // the pre-memoization path, which re-hashed once per *bucket*.
            cur_kh = cur.key_hash();

            // The victim's alternative bucket lives in the other array.
            array = 1 - array;
        }
        // The walk exceeded T loops: report the homeless item. Note `count` is
        // unchanged for it (it never found a slot); all swapped residents are
        // still stored.
        Err(cur)
    }

    /// Calls `f` for every stored item, walking the tag array eight slots at
    /// a time: the occupancy bitmap (`word & 0x8080…`) names exactly the
    /// occupied slots, so empty regions cost one word test and no payload
    /// traffic at all — the successor-scan fast path. With the flat layout
    /// both bucket arrays are covered by one pass.
    ///
    /// The walk pairs each tag word with its 8-slot payload chunk
    /// (`chunks_exact`), so the per-item slot access needs no bounds check:
    /// `trailing_zeros >> 3` of a non-zero `u64` is provably `< 8`.
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        let mut slot_chunks = self.slots.chunks_exact(8);
        let mut tag_chunks = self.tags.chunks_exact(8);
        for (chunk, tag_chunk) in slot_chunks.by_ref().zip(tag_chunks.by_ref()) {
            let word = u64::from_le_bytes(tag_chunk.try_into().expect("chunks_exact(8)"));
            let mut mask = swar::occupied_mask(word);
            while mask != 0 {
                f(&chunk[swar::first_index(mask)]);
                mask &= mask - 1;
            }
        }
        for (slot, &tag) in slot_chunks.remainder().iter().zip(tag_chunks.remainder()) {
            if tag & 0x80 != 0 {
                f(slot);
            }
        }
    }

    /// Pre-SWAR iteration (walks the tag bytes one at a time — the scalar
    /// discriminant walk the `Option` layout used to do), kept as the scalar
    /// oracle and the live baseline of the `perf_smoke` scan guard.
    pub fn for_each_scalar(&self, mut f: impl FnMut(&T)) {
        for (slot, &tag) in self.slots.iter().zip(self.tags.iter()) {
            if tag & 0x80 != 0 {
                f(slot);
            }
        }
    }

    /// Mutable scalar walk over every stored item. Callers must not change an
    /// item's key (that would desynchronise the tags); used by the arena
    /// compaction remap, which rewrites cell block indices only.
    pub(crate) fn for_each_mut(&mut self, mut f: impl FnMut(&mut T)) {
        for (slot, &tag) in self.slots.iter_mut().zip(self.tags.iter()) {
            if tag & 0x80 != 0 {
                f(slot);
            }
        }
    }

    /// Iterates over stored items. Scalar tag walk — the rare cold callers
    /// (memory accounting, tests) double as the oracle for
    /// [`CuckooTable::for_each`].
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.slots
            .iter()
            .zip(self.tags.iter())
            .filter_map(|(slot, &tag)| (tag & 0x80 != 0).then_some(slot))
    }

    /// Moves every stored item into `out`, leaving the table empty. The
    /// occupied slots are located by tag-word scan, so a drain touches only
    /// the slots that actually hold items (each is swapped out for a
    /// [`Payload::filler`]); the tag array is wiped with one `fill`. This is
    /// the allocation-free feeder of the rebuild scratch, and it leaves the
    /// buffers clean for [`CuckooTable::retire`].
    pub fn drain_into(&mut self, out: &mut Vec<T>) {
        out.reserve(self.count);
        let slots = &mut self.slots;
        swar::scan_occupied(&self.tags, |i| {
            out.push(std::mem::replace(&mut slots[i], T::filler()));
        });
        self.tags.fill(0);
        self.count = 0;
    }

    /// Removes and returns all stored items, leaving the table empty.
    /// Allocating convenience wrapper around [`CuckooTable::drain_into`].
    pub fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.count);
        self.drain_into(&mut out);
        out
    }

    /// Bytes occupied by the slot array, its tag bytes, plus the heap data
    /// owned by the stored items (fillers own none, by contract).
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.slots.capacity() * std::mem::size_of::<T>() + self.tags.capacity();
        for item in self.iter() {
            bytes += item.heap_bytes();
        }
        bytes
    }

    /// Internal consistency check used by the property tests: every occupied
    /// slot carries its key's tag, every empty slot a zero tag and no heap
    /// bytes (the filler contract), and the cached count matches the tags.
    #[doc(hidden)]
    pub fn assert_tags_consistent(&self) {
        assert_eq!(self.slots.len(), self.tags.len());
        assert_eq!(self.slots.len(), self.capacity(), "flat layout geometry");
        let mut stored = 0usize;
        for (slot, &tag) in self.slots.iter().zip(self.tags.iter()) {
            if tag & 0x80 != 0 {
                stored += 1;
                assert_eq!(tag, tag_of(slot.key_hash()), "stale tag byte");
            } else {
                assert_eq!(tag, 0, "ghost tag on empty slot");
                assert_eq!(slot.heap_bytes(), 0, "vacant slot owns heap");
            }
        }
        assert_eq!(stored, self.count, "cached count out of sync");
    }
}

/// Compile-time proof that the cuckoo table is `Send + Sync`, as the sharded
/// engine's thread fan-out requires.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CuckooTable<NodeId>>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn table(len: usize, d: usize) -> CuckooTable<NodeId> {
        CuckooTable::new(len, d, 0x1234)
    }

    fn kh(v: NodeId) -> KeyHash {
        KeyHash::new(v)
    }

    #[test]
    fn geometry_follows_two_to_one_ratio() {
        let t = table(8, 4);
        assert_eq!(t.len_buckets(), 8);
        assert_eq!(t.capacity(), (8 + 4) * 4);
        assert_eq!(t.cells_per_bucket(), 4);
        // A length-1 table still has one bucket in each array.
        let t1 = table(1, 2);
        assert_eq!(t1.capacity(), 4);
    }

    #[test]
    fn insert_then_get_roundtrip() {
        let mut t = table(8, 4);
        let mut rng = KickRng::new(1);
        let mut placements = 0;
        for v in 1..=20u64 {
            t.insert(v, kh(v), &mut rng, 50, &mut placements).unwrap();
        }
        assert_eq!(t.count(), 20);
        for v in 1..=20u64 {
            assert_eq!(t.get(kh(v)), Some(&v));
            assert!(t.contains(kh(v)));
            assert!(t.contains_unmemoized(v));
        }
        assert!(!t.contains(kh(99)));
        assert!(!t.contains_unmemoized(99));
        assert!(placements >= 20);
        t.assert_tags_consistent();
    }

    /// The filler value (0 for `NodeId`) is a perfectly ordinary key: vacant
    /// slots holding fillers must never alias a stored key 0.
    #[test]
    fn filler_key_is_storable_and_distinct_from_vacancy() {
        let mut t = table(8, 4);
        let mut rng = KickRng::new(12);
        let mut p = 0;
        assert!(!t.contains(kh(0)), "empty table must not report key 0");
        assert!(!t.contains_unmemoized(0));
        t.insert(0, kh(0), &mut rng, 50, &mut p).unwrap();
        assert_eq!(t.get(kh(0)), Some(&0));
        assert_eq!(t.count(), 1);
        assert_eq!(t.remove(kh(0)), Some(0));
        assert!(!t.contains(kh(0)));
        t.assert_tags_consistent();
    }

    #[test]
    fn remove_frees_slots() {
        let mut t = table(4, 4);
        let mut rng = KickRng::new(2);
        let mut p = 0;
        for v in 0..10u64 {
            t.insert(v, kh(v), &mut rng, 50, &mut p).unwrap();
        }
        assert_eq!(t.remove(kh(3)), Some(3));
        assert_eq!(t.remove(kh(3)), None);
        assert!(!t.contains(kh(3)));
        assert_eq!(t.count(), 9);
        // The freed slot is reusable.
        t.insert(100, kh(100), &mut rng, 50, &mut p).unwrap();
        assert!(t.contains(kh(100)));
        t.assert_tags_consistent();
    }

    #[test]
    fn loading_rate_tracks_count() {
        let mut t = table(4, 2);
        let mut rng = KickRng::new(3);
        let mut p = 0;
        assert_eq!(t.loading_rate(), 0.0);
        t.insert(1, kh(1), &mut rng, 50, &mut p).unwrap();
        assert!((t.loading_rate() - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn insertion_failure_returns_homeless_item() {
        // Tiny table (len=1, d=1 => capacity 2) filled beyond capacity must
        // eventually fail and hand an item back.
        let mut t = table(1, 1);
        let mut rng = KickRng::new(4);
        let mut p = 0;
        let mut failed = Vec::new();
        for v in 0..10u64 {
            if let Err(item) = t.insert(v, kh(v), &mut rng, 8, &mut p) {
                failed.push(item);
            }
        }
        assert_eq!(t.count() + failed.len(), 10);
        assert!(!failed.is_empty());
        // Everything that did not fail is still retrievable.
        let stored: Vec<_> = t.iter().copied().collect();
        for v in stored {
            assert!(t.contains(kh(v)));
        }
        t.assert_tags_consistent();
    }

    #[test]
    fn kick_out_preserves_all_settled_items() {
        // Fill to a high load factor; every successfully inserted key must
        // remain findable even after many evictions.
        let mut t = table(16, 4);
        let mut rng = KickRng::new(5);
        let mut p = 0;
        let mut ok = Vec::new();
        for v in 0..90u64 {
            if t.insert(v, kh(v), &mut rng, 200, &mut p).is_ok() {
                ok.push(v);
            }
        }
        for v in &ok {
            assert!(t.contains(kh(*v)), "lost key {v} after kick-outs");
        }
        assert_eq!(t.count(), ok.len());
        t.assert_tags_consistent();
    }

    #[test]
    fn drain_empties_the_table() {
        let mut t = table(8, 4);
        let mut rng = KickRng::new(6);
        let mut p = 0;
        for v in 0..30u64 {
            t.insert(v, kh(v), &mut rng, 100, &mut p).unwrap();
        }
        let mut items = t.drain();
        items.sort_unstable();
        assert_eq!(items, (0..30u64).collect::<Vec<_>>());
        assert_eq!(t.count(), 0);
        assert!(t.is_empty());
        assert!(!t.contains(kh(5)));
        t.assert_tags_consistent();
    }

    #[test]
    fn memory_bytes_reflects_capacity() {
        // Option-free layout: one payload byte-for-byte per slot, one tag.
        let t = table(8, 4);
        let slots = 8 * 4 + 4 * 4;
        let expected = slots * std::mem::size_of::<NodeId>() + slots;
        assert_eq!(t.memory_bytes(), expected);
    }

    #[test]
    fn pooled_rebirth_reuses_buffers_and_stays_exact() {
        let mut pool: TablePool<NodeId> = TablePool::enabled();
        let mut t = CuckooTable::new_in(8, 4, 0x9999, &mut pool);
        let mut rng = KickRng::new(13);
        let mut p = 0;
        for v in 0..30u64 {
            t.insert(v, kh(v), &mut rng, 100, &mut p).unwrap();
        }
        let mut out = Vec::new();
        t.drain_into(&mut out);
        t.retire(&mut pool);
        assert_eq!(pool.stats().retired, 1);

        // Rebirth from the pool: different geometry, same correctness.
        let mut t2: CuckooTable<NodeId> = CuckooTable::new_in(4, 4, 0x4242, &mut pool);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(t2.capacity(), (4 + 2) * 4);
        t2.assert_tags_consistent();
        for v in 40..60u64 {
            t2.insert(v, kh(v), &mut rng, 100, &mut p).unwrap();
        }
        for v in 40..60u64 {
            assert_eq!(t2.get(kh(v)), Some(&v));
        }
        assert!(!t2.contains(kh(5)), "stale key visible after rebirth");
        t2.assert_tags_consistent();
    }

    #[test]
    fn for_each_visits_every_item() {
        let mut t = table(8, 4);
        let mut rng = KickRng::new(7);
        let mut p = 0;
        for v in 0..25u64 {
            t.insert(v, kh(v), &mut rng, 100, &mut p).unwrap();
        }
        let mut sum = 0u64;
        let mut n = 0;
        t.for_each(|&v| {
            sum += v;
            n += 1;
        });
        assert_eq!(n, 25);
        assert_eq!(sum, (0..25).sum());
        // The scalar walk and the mutable walk agree with the SWAR pass.
        let mut scalar = 0u64;
        t.for_each_scalar(|&v| scalar += v);
        assert_eq!(scalar, sum);
        let mut muts = 0u64;
        t.for_each_mut(|v| muts += *v);
        assert_eq!(muts, sum);
    }

    #[test]
    fn high_load_factor_is_achievable_with_d8() {
        // With d = 8 (the paper's default) a cuckoo table sustains > 90% load.
        let mut t = table(16, 8);
        let mut rng = KickRng::new(8);
        let mut p = 0;
        let capacity = t.capacity();
        let target = (capacity as f64 * 0.95) as u64;
        let mut inserted = 0;
        for v in 0..target {
            if t.insert(v, kh(v), &mut rng, 250, &mut p).is_ok() {
                inserted += 1;
            }
        }
        assert!(
            inserted as f64 >= capacity as f64 * 0.9,
            "only reached {} of {capacity}",
            inserted
        );
        t.assert_tags_consistent();
    }

    #[test]
    fn prefetch_is_a_safe_no_op_semantically() {
        let mut t = table(8, 4);
        let mut rng = KickRng::new(9);
        let mut p = 0;
        for v in 0..10u64 {
            t.insert(v, kh(v), &mut rng, 50, &mut p).unwrap();
        }
        // Prefetching present and absent keys must not disturb anything.
        for v in 0..20u64 {
            t.prefetch(kh(v));
        }
        assert_eq!(t.count(), 10);
        for v in 0..10u64 {
            assert!(t.contains(kh(v)));
        }
    }
}
