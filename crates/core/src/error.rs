//! Error types for the CuckooGraph crate.

use std::fmt;

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, CuckooGraphError>;

/// Errors surfaced by CuckooGraph's fallible APIs.
///
/// The graph operations themselves (insert / query / delete) are total: an
/// insertion that loses every kick-out loop lands in a denylist, and a full
/// denylist forces an expansion, so user-visible operations never fail.
/// Errors are reserved for configuration problems and persistence helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CuckooGraphError {
    /// The supplied [`crate::CuckooGraphConfig`] violates a structural
    /// constraint; the message names the offending field.
    InvalidConfig(&'static str),
    /// A serialized snapshot could not be decoded.
    CorruptSnapshot(String),
}

impl fmt::Display for CuckooGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CuckooGraphError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            CuckooGraphError::CorruptSnapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for CuckooGraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_cause() {
        let e = CuckooGraphError::InvalidConfig("r must be > 0");
        assert!(e.to_string().contains("r must be > 0"));
        let e = CuckooGraphError::CorruptSnapshot("truncated".into());
        assert!(e.to_string().contains("truncated"));
    }
}
