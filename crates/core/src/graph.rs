//! The basic version of CuckooGraph (§ III-A): distinct directed edges.

use crate::config::CuckooGraphConfig;
use crate::engine::Engine;
use crate::stats::StructureStats;
use graph_api::{
    DynamicGraph, EdgeExport, EdgeImport, EdgeRecord, GraphScheme, MemoryFootprint, NodeId,
};

/// CuckooGraph, basic version: stores each directed edge `⟨u, v⟩` at most once.
///
/// ```
/// use cuckoograph::CuckooGraph;
/// use graph_api::DynamicGraph;
///
/// let mut g = CuckooGraph::new();
/// assert!(g.insert_edge(1, 2));
/// assert!(!g.insert_edge(1, 2)); // duplicates are ignored (§ III-A3, Step 1)
/// assert!(g.has_edge(1, 2));
/// assert_eq!(g.successors(1), vec![2]);
/// assert!(g.delete_edge(1, 2));
/// assert!(!g.has_edge(1, 2));
/// ```
#[derive(Debug, Clone)]
pub struct CuckooGraph {
    engine: Engine<NodeId>,
}

impl CuckooGraph {
    /// Creates a graph with the paper's default parameters
    /// (`d = 8`, `R = 3`, `G = 0.9`, `T = 250`).
    pub fn new() -> Self {
        Self::with_config(CuckooGraphConfig::default())
    }

    /// Creates a graph with a custom configuration (used by the parameter
    /// studies of Figures 2–4 and the ablation of Figure 5).
    pub fn with_config(config: CuckooGraphConfig) -> Self {
        let small_slots = config.basic_small_slots();
        Self {
            engine: Engine::new(config, small_slots),
        }
    }

    /// The configuration this graph runs with.
    pub fn config(&self) -> &CuckooGraphConfig {
        self.engine.config()
    }

    /// Structural statistics and instrumentation counters (Theorem 1 and
    /// Figure 9 reproductions).
    pub fn stats(&self) -> StructureStats {
        self.engine.stats()
    }

    /// Calls `f` for every stored edge `⟨u, v⟩`.
    pub fn for_each_edge(&self, mut f: impl FnMut(NodeId, NodeId)) {
        self.engine.for_each_edge(|u, v| f(u, *v));
    }

    /// Collects every stored edge. Order is unspecified.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.engine.edge_count());
        self.for_each_edge(|u, v| out.push((u, v)));
        out
    }

    /// Pre-change reference query: re-hashes the key once per table and
    /// bucket array and compares full payload keys, ignoring the tag bytes —
    /// the probe path [`DynamicGraph::has_edge`] had before PR 4. Kept as the
    /// live baseline the `perf_smoke` probe-path guard and the `point_query`
    /// criterion group measure the tagged path against.
    pub fn has_edge_unmemoized(&self, u: NodeId, v: NodeId) -> bool {
        self.engine.contains_unmemoized(u, v)
    }

    /// Pre-SWAR successor scan: same node resolution as
    /// [`DynamicGraph::for_each_successor`], but the neighbour tables are
    /// walked slot by slot instead of tag word by tag word — the scan path
    /// this graph had before PR 5. Kept as the scalar oracle for
    /// `tests/swar_scan_model.rs` and the live baseline the `perf_smoke`
    /// scan-path guard measures the SWAR scan against.
    pub fn for_each_successor_scalar(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        self.engine.for_each_payload_scalar(u, |p| f(*p));
    }

    /// Compacts the engine's slot arena, reclaiming blocks freed by node
    /// TRANSFORMATIONS (see [`crate::engine::Engine::compact_arena`]).
    /// Returns the number of freed blocks reclaimed.
    pub fn compact_arena(&mut self) -> usize {
        self.engine.compact_arena()
    }
}

impl Default for CuckooGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl crate::epoch::ConcurrentEngine for CuckooGraph {
    fn begin_concurrent_write(&mut self, epoch: u64) {
        self.engine.begin_concurrent_write(epoch);
    }

    fn end_concurrent_write(&mut self, safe_epoch: u64) -> usize {
        self.engine.end_concurrent_write(safe_epoch)
    }
}

impl MemoryFootprint for CuckooGraph {
    fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }
}

impl EdgeExport for CuckooGraph {
    fn for_each_edge_record(&self, f: &mut dyn FnMut(EdgeRecord)) {
        self.engine
            .for_each_edge(|u, &v| f(EdgeRecord::unweighted(u, v)));
    }

    fn edge_record_count(&self) -> usize {
        self.engine.edge_count()
    }
}

impl EdgeImport for CuckooGraph {
    fn import_edge_records(&mut self, records: &[EdgeRecord]) {
        // Weight and multiplicity collapse to edge existence here; the batch
        // path keeps a restore as fast as a native bulk load.
        self.engine
            .insert_batch(records, |r| (r.source, r.target), |r| r.target, |_, _| {});
    }
}

impl DynamicGraph for CuckooGraph {
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        // Step 1 of the insertion procedure: query first; an existing edge is
        // not inserted again. `upsert` folds the query and the insert into a
        // single resolution of the `u` cell, hashing `u` once and `v` at most
        // once (not at all when the cell is still inline).
        self.engine.upsert(u, v, || v, |_| {})
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.engine.contains(u, v)
    }

    fn delete_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.engine.remove(u, v).is_some()
    }

    fn successors(&self, u: NodeId) -> Vec<NodeId> {
        self.engine.successors(u)
    }

    fn for_each_successor(&self, u: NodeId, f: &mut dyn FnMut(NodeId)) {
        // Transformed cells walk their contiguous scan segment (one dense,
        // append-ordered run) instead of the chain's scattered buckets; the
        // table walk remains live behind `with_scan_segments(false)`.
        self.engine.for_each_successor_id(u, f);
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId)) {
        self.engine.for_each_node(f);
    }

    fn out_degree(&self, u: NodeId) -> usize {
        self.engine.out_degree(u)
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        self.engine
            .insert_batch(edges, |&e| e, |&(_, v)| v, |_, _| {})
    }

    fn remove_edges(&mut self, edges: &[(NodeId, NodeId)]) -> usize {
        self.engine.remove_batch(edges)
    }

    fn edge_count(&self) -> usize {
        self.engine.edge_count()
    }

    fn node_count(&self) -> usize {
        self.engine.node_count()
    }

    fn nodes(&self) -> Vec<NodeId> {
        self.engine.nodes()
    }

    fn scheme(&self) -> GraphScheme {
        GraphScheme::CuckooGraph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_insertions_are_ignored() {
        let mut g = CuckooGraph::new();
        assert!(g.insert_edge(1, 2));
        assert!(!g.insert_edge(1, 2));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn scheme_and_defaults() {
        let g = CuckooGraph::new();
        assert_eq!(g.scheme(), GraphScheme::CuckooGraph);
        assert_eq!(g.config().cells_per_bucket, 8);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 0);
        assert!(g.nodes().is_empty());
    }

    #[test]
    fn power_law_like_workload_round_trips() {
        // A few hub nodes with large degree plus many low-degree nodes, the
        // shape § I calls out for real graphs.
        let mut g = CuckooGraph::new();
        let mut expected = Vec::new();
        for hub in 0..3u64 {
            for v in 0..500u64 {
                g.insert_edge(hub, 10_000 + v);
                expected.push((hub, 10_000 + v));
            }
        }
        for u in 100..1_100u64 {
            g.insert_edge(u, u + 1);
            expected.push((u, u + 1));
        }
        assert_eq!(g.edge_count(), expected.len());
        for &(u, v) in &expected {
            assert!(g.has_edge(u, v), "missing edge ({u}, {v})");
        }
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.out_degree(0), 500);
        assert_eq!(g.out_degree(100), 1);
        let mut edges = g.edges();
        edges.sort_unstable();
        expected.sort_unstable();
        assert_eq!(edges, expected);
    }

    #[test]
    fn deletion_then_reinsertion_works() {
        let mut g = CuckooGraph::new();
        for v in 0..100u64 {
            g.insert_edge(5, v);
        }
        for v in 0..100u64 {
            assert!(g.delete_edge(5, v));
        }
        assert!(!g.delete_edge(5, 0));
        assert_eq!(g.edge_count(), 0);
        for v in 0..100u64 {
            assert!(g.insert_edge(5, v));
        }
        assert_eq!(g.out_degree(5), 100);
    }

    #[test]
    fn for_each_successor_matches_successors() {
        let mut g = CuckooGraph::new();
        for v in 0..50u64 {
            g.insert_edge(1, v * 2);
        }
        let mut via_callback = Vec::new();
        g.for_each_successor(1, &mut |v| via_callback.push(v));
        via_callback.sort_unstable();
        let mut via_vec = g.successors(1);
        via_vec.sort_unstable();
        assert_eq!(via_callback, via_vec);
    }

    #[test]
    fn batched_deletion_shrinks_scht_and_keeps_lookups_exact() {
        // Public-API version of the deletion → S-CHT shrink path: grow a node
        // past several expansion thresholds, batch-delete back down, and check
        // the reverse TRANSFORMATION plus exact membership of what remains.
        let mut g = CuckooGraph::new();
        let keep: Vec<(NodeId, NodeId)> = (0..5u64).map(|v| (1, v)).collect();
        let drop: Vec<(NodeId, NodeId)> = (5..1_200u64).map(|v| (1, v)).collect();
        g.insert_edges(&keep);
        g.insert_edges(&drop);
        let grown = g.stats();
        assert!(grown.scht_slots >= 1_000, "expansions never happened");

        assert_eq!(g.remove_edges(&drop), drop.len());
        let shrunk = g.stats();
        assert!(shrunk.contractions > grown.contractions);
        assert_eq!(shrunk.scht_slots, 0, "chain did not collapse");
        assert_eq!(g.out_degree(1), keep.len());
        for &(u, v) in &keep {
            assert!(g.has_edge(u, v));
        }
        assert!(!g.has_edge(1, 5));
        // Removed edges can be re-inserted cleanly after the collapse.
        assert_eq!(g.insert_edges(&drop), drop.len());
        assert_eq!(g.edge_count(), keep.len() + drop.len());
    }

    #[test]
    fn memory_reporting_is_monotone_under_growth() {
        let mut g = CuckooGraph::new();
        let start = g.memory_bytes();
        for u in 0..200u64 {
            for v in 0..20u64 {
                g.insert_edge(u, v);
            }
        }
        assert!(g.memory_bytes() > start);
        assert!(g.memory_mb() > 0.0);
    }

    #[test]
    fn stats_reflect_graph_shape() {
        let mut g = CuckooGraph::new();
        for u in 0..100u64 {
            for v in 0..10u64 {
                g.insert_edge(u, v);
            }
        }
        let s = g.stats();
        assert_eq!(s.nodes, 100);
        assert_eq!(s.edges, 1_000);
        // Degree 10 > 2R = 6, so every cell transformed into an S-CHT chain.
        assert!(s.scht_tables >= 100);
    }
}
