//! SWAR (SIMD-within-a-register) primitives for the tag-byte fast path.
//!
//! Since PR 4 every cuckoo table keeps one tag byte per slot (`0` = empty,
//! `0x80 | fingerprint` = occupied). PR 5 turns those dense byte arrays into
//! the engine's universal scan medium: instead of inspecting tags one byte at
//! a time, the probe and iteration paths load **eight tags as one `u64` word**
//! and answer the three questions every hot loop asks with a handful of ALU
//! operations:
//!
//! * *which slots carry this fingerprint?* — broadcast-XOR the wanted tag
//!   across the word, then locate the zero bytes ([`eq_mask`]);
//! * *where is the first empty slot?* — the same zero-byte search against the
//!   raw word ([`eq_mask`] with tag `0`);
//! * *which slots are occupied at all?* — every occupied tag has bit 7 set,
//!   so `word & 0x8080…` is the occupancy bitmap ([`occupied_mask`]), and
//!   `trailing_zeros / 8` walks it one occupied slot at a time, skipping empty
//!   regions in whole-word jumps.
//!
//! Everything here is safe Rust over [`u64::from_le_bytes`] — no intrinsics,
//! no `unsafe`. Little-endian byte order is used *explicitly* (free on LE
//! hardware, a byte swap on BE) so that byte `i` of a loaded chunk always
//! lives in bits `8i..8i+8` and `trailing_zeros` maps back to slice indices
//! on every architecture.
//!
//! The zero-byte detector is the **exact** variant
//! (`!((((x & !MSB) + !MSB) | x) | !MSB)`) rather than the cheaper
//! `(x - LSB) & !x & MSB` folklore trick: the latter can flag non-zero bytes
//! above a genuine zero via borrow propagation, which would make the SWAR scan
//! disagree with the scalar oracle on adversarial patterns. The exact form
//! costs one extra ALU op and produces `0x80` in precisely the zero bytes, so
//! the property tests in `tests/swar_scan_model.rs` can demand bit-for-bit
//! agreement with the scalar reference scans kept in this module.

/// `0x01` in every byte lane.
pub const LSB: u64 = 0x0101_0101_0101_0101;

/// `0x80` in every byte lane — the occupancy bit of the tag format.
pub const MSB: u64 = 0x8080_8080_8080_8080;

/// `0x7f` in every byte lane.
const LOW7: u64 = !MSB;

/// Broadcasts one byte across all eight lanes of a word.
#[inline(always)]
pub fn broadcast(b: u8) -> u64 {
    u64::from(b) * LSB
}

/// Loads up to eight tag bytes as one little-endian word, zero-padding the
/// missing high lanes. Callers scanning for the empty tag (`0`) must guard
/// returned indices against `tags.len()`, because the padding is
/// indistinguishable from empty slots; occupied tags (`>= 0x80`) can never
/// collide with the padding.
#[inline(always)]
pub fn load_word(tags: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = tags.len().min(8);
    buf[..n].copy_from_slice(&tags[..n]);
    u64::from_le_bytes(buf)
}

/// Exact byte-equality mask: `0x80` in every lane where the corresponding
/// byte of `w` equals `b`, `0x00` everywhere else. No false positives, no
/// false negatives (see the module docs for why the exact form is used).
#[inline(always)]
pub fn eq_mask(w: u64, b: u8) -> u64 {
    let x = w ^ broadcast(b);
    // Per-lane: bit 7 of `((x & 0x7f) + 0x7f) | x` is set iff the lane is
    // non-zero; the addition cannot carry across lanes (max 0x7f + 0x7f).
    !((((x & LOW7) + LOW7) | x) | LOW7)
}

/// Occupancy mask: `0x80` in every lane whose tag has the occupancy bit set.
#[inline(always)]
pub fn occupied_mask(w: u64) -> u64 {
    w & MSB
}

/// Lane index of the lowest set flag in a mask produced by [`eq_mask`] or
/// [`occupied_mask`]. The mask must be non-zero.
#[inline(always)]
pub fn first_index(mask: u64) -> usize {
    debug_assert_ne!(mask, 0, "first_index of an empty mask");
    (mask.trailing_zeros() >> 3) as usize
}

/// Visits the index of every byte in `tags` equal to `tag`, eight bytes per
/// step, in ascending order; `visit` returns `true` to stop early. Returns
/// whether the scan was stopped.
///
/// This is the generic form behind the probe paths: fingerprint candidates
/// (`tag = 0x80 | fp`, visit confirms the full key) and first-empty-slot
/// searches (`tag = 0`, visit stores the index and stops).
#[inline(always)]
pub fn scan_eq(tags: &[u8], tag: u8, mut visit: impl FnMut(usize) -> bool) -> bool {
    let mut base = 0usize;
    let mut chunks = tags.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        let mut mask = eq_mask(word, tag);
        while mask != 0 {
            if visit(base + first_index(mask)) {
                return true;
            }
            mask &= mask - 1;
        }
        base += 8;
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        let mut mask = eq_mask(load_word(tail), tag);
        while mask != 0 {
            let i = first_index(mask);
            if i >= tail.len() {
                // Everything past here is zero padding (only reachable when
                // scanning for the empty tag).
                break;
            }
            if visit(base + i) {
                return true;
            }
            mask &= mask - 1;
        }
    }
    false
}

/// Visits the index of every occupied tag (`bit 7` set) in ascending order —
/// the word-skipping iteration kernel behind `for_each`, drains and neighbour
/// scans. Whole words of empty slots cost one load and one test.
#[inline(always)]
pub fn scan_occupied(tags: &[u8], mut visit: impl FnMut(usize)) {
    let mut base = 0usize;
    let mut chunks = tags.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
        let mut mask = occupied_mask(word);
        while mask != 0 {
            visit(base + first_index(mask));
            mask &= mask - 1;
        }
        base += 8;
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        // Zero padding has bit 7 clear, so it never enters the mask.
        let mut mask = occupied_mask(load_word(tail));
        while mask != 0 {
            visit(base + first_index(mask));
            mask &= mask - 1;
        }
    }
}

/// First index whose tag equals `tag`, or `None`. SWAR counterpart of
/// `tags.iter().position(|&t| t == tag)`.
#[inline(always)]
pub fn find_eq(tags: &[u8], tag: u8) -> Option<usize> {
    let mut found = None;
    scan_eq(tags, tag, |i| {
        found = Some(i);
        true
    });
    found
}

// ---------------------------------------------------------------------------
// Scalar oracles
// ---------------------------------------------------------------------------
//
// The pre-SWAR byte-at-a-time scans, retained verbatim as the correctness
// oracle: the property tests drive both paths over random tag patterns
// (including the `0x80` zero-fingerprint edge case) and demand identical
// results, and `perf_smoke` measures the SWAR path against these as the live
// pre-change baseline.

/// Scalar counterpart of [`scan_eq`].
pub fn scan_eq_scalar(tags: &[u8], tag: u8, mut visit: impl FnMut(usize) -> bool) -> bool {
    for (i, &t) in tags.iter().enumerate() {
        if t == tag && visit(i) {
            return true;
        }
    }
    false
}

/// Scalar counterpart of [`scan_occupied`].
pub fn scan_occupied_scalar(tags: &[u8], mut visit: impl FnMut(usize)) {
    for (i, &t) in tags.iter().enumerate() {
        if t & 0x80 != 0 {
            visit(i);
        }
    }
}

/// Scalar counterpart of [`find_eq`].
pub fn find_eq_scalar(tags: &[u8], tag: u8) -> Option<usize> {
    tags.iter().position(|&t| t == tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(tags: &[u8], tag: u8) -> Vec<usize> {
        let mut out = Vec::new();
        scan_eq(tags, tag, |i| {
            out.push(i);
            false
        });
        out
    }

    fn positions_scalar(tags: &[u8], tag: u8) -> Vec<usize> {
        let mut out = Vec::new();
        scan_eq_scalar(tags, tag, |i| {
            out.push(i);
            false
        });
        out
    }

    #[test]
    fn eq_mask_is_exact_per_lane() {
        // Borrow-chain adversarial pattern: a zero byte followed by 0x01
        // bytes, which the folklore `(x - LSB) & !x & MSB` trick over-flags.
        let w = u64::from_le_bytes([0x00, 0x01, 0x01, 0x01, 0x80, 0xff, 0x00, 0x7f]);
        let m = eq_mask(w, 0);
        assert_eq!(m, 0x0080_0000_0000_0080, "exact zero lanes only");
        assert_eq!(first_index(m), 0);
    }

    #[test]
    fn eq_mask_finds_every_tag_value() {
        for tag in [0u8, 0x01, 0x7f, 0x80, 0x81, 0xaa, 0xff] {
            let mut bytes = [0u8; 8];
            bytes[3] = tag;
            bytes[6] = tag;
            let w = u64::from_le_bytes(bytes);
            let mut m = eq_mask(w, tag);
            if tag == 0 {
                // Lanes 3 and 6 hold the tag, but so do all the other zeros.
                assert_eq!(m, MSB);
            } else {
                assert_eq!(first_index(m), 3);
                m &= m - 1;
                assert_eq!(first_index(m), 6);
                m &= m - 1;
                assert_eq!(m, 0);
            }
        }
    }

    #[test]
    fn occupied_mask_tracks_bit_seven() {
        let w = u64::from_le_bytes([0x80, 0x00, 0xff, 0x7f, 0x81, 0x00, 0x00, 0xc3]);
        let mut seen = Vec::new();
        let mut m = occupied_mask(w);
        while m != 0 {
            seen.push(first_index(m));
            m &= m - 1;
        }
        assert_eq!(seen, vec![0, 2, 4, 7]);
    }

    #[test]
    fn partial_loads_zero_pad_high_lanes() {
        let tags = [0x81u8, 0x92, 0xff];
        assert_eq!(load_word(&tags), 0x00ff_9281);
        // Padding looks empty: an empty-tag scan must not report index 3+.
        assert_eq!(find_eq(&tags, 0), None);
        // Occupied scans ignore the padding entirely.
        let mut seen = Vec::new();
        scan_occupied(&tags, |i| seen.push(i));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn swar_and_scalar_agree_on_dense_patterns() {
        // Every length 0..=19 (exercising exact chunks and tails), a pattern
        // mixing empties, the 0x80 zero-fingerprint tag, and arbitrary tags.
        let pattern = [
            0x80u8, 0x00, 0x81, 0x80, 0xff, 0x00, 0x00, 0x80, 0x91, 0x00, 0x80, 0x80, 0x7f, 0x01,
            0x00, 0xfe, 0x80, 0x00, 0xaa,
        ];
        for len in 0..=pattern.len() {
            let tags = &pattern[..len];
            for tag in [0u8, 0x80, 0x81, 0xaa, 0x33] {
                assert_eq!(
                    positions(tags, tag),
                    positions_scalar(tags, tag),
                    "len {len} tag {tag:#x}"
                );
                assert_eq!(
                    find_eq(tags, tag),
                    find_eq_scalar(tags, tag),
                    "len {len} tag {tag:#x}"
                );
            }
            let mut swar = Vec::new();
            scan_occupied(tags, |i| swar.push(i));
            let mut scalar = Vec::new();
            scan_occupied_scalar(tags, |i| scalar.push(i));
            assert_eq!(swar, scalar, "occupied scan at len {len}");
        }
    }

    #[test]
    fn scan_eq_early_exit_stops_the_walk() {
        let tags = [0x90u8, 0x90, 0x90, 0x90];
        let mut visits = 0;
        let stopped = scan_eq(&tags, 0x90, |_| {
            visits += 1;
            visits == 2
        });
        assert!(stopped);
        assert_eq!(visits, 2);
    }
}
