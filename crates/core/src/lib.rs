//! # CuckooGraph
//!
//! A from-scratch Rust implementation of **CuckooGraph** (ICDE 2025), a
//! space-time efficient data structure for large-scale dynamic graphs.
//!
//! Instead of adjacency lists or CSR, CuckooGraph stores the graph in a
//! hierarchy of cuckoo hash tables:
//!
//! * a **large cuckoo hash table** (L-CHT) keyed by source nodes `u`, whose
//!   cells hold the node plus a *transformable* Part 2;
//! * Part 2 starts as `2R` inline **small slots** holding neighbours `v`
//!   directly, and transforms into `R` pointer slots referencing a chain of
//!   **small cuckoo hash tables** (S-CHTs) once the degree exceeds `2R`;
//! * the S-CHT chain (and the L-CHT itself) grows and shrinks following the
//!   **TRANSFORMATION** rule (Table II of the paper), doubling geometry so that
//!   lookups touch a small constant number of buckets in the worst case;
//! * insertion failures caused by cuckoo kick-out loops are absorbed by the
//!   bounded **DENYLIST** vectors (S-DL for neighbour entries, L-DL for whole
//!   cells), which are drained back into the tables on every expansion.
//!
//! Three public graph types are provided:
//!
//! * [`CuckooGraph`] — the basic version (§ III-A): distinct directed edges.
//! * [`WeightedCuckooGraph`] — the extended version (§ III-B): duplicate edges
//!   folded into weights, for streaming scenarios.
//! * [`MultiEdgeCuckooGraph`] — the Neo4j adaptation (§ V-G): parallel edges
//!   kept as identifier lists, query returns an iterator.
//!
//! For parallel ingest, [`ShardedCuckooGraph`] (and
//! [`ShardedWeightedCuckooGraph`]) partition the source-node space across N
//! independent engines and fan batched mutations out on scoped threads — see
//! [`shard`].
//!
//! ```
//! use cuckoograph::CuckooGraph;
//! use graph_api::DynamicGraph;
//!
//! let mut g = CuckooGraph::new();
//! g.insert_edge(1, 2);
//! g.insert_edge(1, 3);
//! assert!(g.has_edge(1, 2));
//! assert_eq!(g.out_degree(1), 2);
//! g.delete_edge(1, 2);
//! assert!(!g.has_edge(1, 2));
//! ```

pub mod arena;
pub mod cell;
pub mod chain;
pub mod config;
pub mod denylist;
pub mod engine;
pub mod epoch;
pub mod error;
pub mod graph;
pub mod hash;
pub mod lcht;
pub mod multi;
pub mod payload;
pub mod pool;
pub mod rng;
pub mod scht;
pub mod scratch;
pub mod segment;
pub mod shard;
pub mod stats;
pub mod swar;
pub mod weighted;

pub use arena::{SlotArena, NO_BLOCK};
pub use config::CuckooGraphConfig;
pub use epoch::{ConcurrentEngine, ReadCoordinator, ReadCounters, MAX_READERS};
pub use error::{CuckooGraphError, Result};
pub use graph::CuckooGraph;
pub use multi::{EdgeId, MultiEdgeCuckooGraph};
pub use pool::{PoolStats, TablePool};
pub use scratch::RebuildScratch;
pub use segment::{ScanArena, NO_SEG};
pub use shard::{ShardReadView, Sharded, ShardedCuckooGraph, ShardedWeightedCuckooGraph};
pub use stats::StructureStats;
pub use weighted::WeightedCuckooGraph;

pub use graph_api::{
    DynamicGraph, Edge, MemoryFootprint, NodeId, ShardedGraph, WeightedDynamicGraph,
};
