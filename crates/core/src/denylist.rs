//! DENYLIST (§ III-A2): bounded vectors that absorb cuckoo insertion failures.
//!
//! CuckooGraph keeps two denylists:
//!
//! * **S-DL** — each unit is a complete graph item `⟨u, v⟩` (the payload keeps
//!   whatever the variant stores for `v`). It receives neighbour entries whose
//!   S-CHT insertion exceeded the kick-out budget `T`.
//! * **L-DL** — each unit mirrors an L-CHT *cell* (node `u` plus its entire
//!   Part 2), so that when a node is evicted past the budget its S-CHT chain
//!   never has to be copied or moved.
//!
//! Whenever a table expands, the matching entries are drained back into the
//! fresh (and therefore lightly loaded) table.

use crate::payload::Payload;
use graph_api::NodeId;

/// The small denylist (S-DL): failed `⟨u, v⟩` insertions.
#[derive(Debug, Clone)]
pub struct SmallDenylist<P> {
    entries: Vec<(NodeId, P)>,
    capacity: usize,
}

impl<P: Payload> SmallDenylist<P> {
    /// Creates an S-DL with the given capacity limit (0 disables it).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Attempts to record a failed insertion. When the size limit has been
    /// reached the payload is handed back so the caller can fall back to
    /// expanding the table instead.
    pub fn push(&mut self, u: NodeId, payload: P) -> Result<(), P> {
        if self.entries.len() >= self.capacity {
            return Err(payload);
        }
        self.entries.push((u, payload));
        Ok(())
    }

    /// Records an entry unconditionally, ignoring the capacity limit. Used as
    /// a last-resort safety valve on internal redistribution paths so no item
    /// is ever lost; in practice it is hit only under adversarial geometry.
    pub fn push_forced(&mut self, u: NodeId, payload: P) {
        self.entries.push((u, payload));
    }

    /// Looks up the payload stored for `⟨u, v⟩`.
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<&P> {
        self.entries
            .iter()
            .find(|(eu, p)| *eu == u && p.key() == v)
            .map(|(_, p)| p)
    }

    /// Mutable lookup of the payload stored for `⟨u, v⟩`.
    pub fn get_mut(&mut self, u: NodeId, v: NodeId) -> Option<&mut P> {
        self.entries
            .iter_mut()
            .find(|(eu, p)| *eu == u && p.key() == v)
            .map(|(_, p)| p)
    }

    /// Removes and returns the payload stored for `⟨u, v⟩`.
    pub fn remove(&mut self, u: NodeId, v: NodeId) -> Option<P> {
        let idx = self
            .entries
            .iter()
            .position(|(eu, p)| *eu == u && p.key() == v)?;
        Some(self.entries.swap_remove(idx).1)
    }

    /// Drains every entry whose source node is `u` into `out` — called when
    /// `u`'s S-CHT chain expands so the "qualified v" can move into the new
    /// table. The engine passes a reusable buffer, keeping the per-expansion
    /// denylist drain allocation-free.
    pub fn drain_for_into(&mut self, u: NodeId, out: &mut Vec<P>) {
        let mut i = 0;
        while i < self.entries.len() {
            if self.entries[i].0 == u {
                out.push(self.entries.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
    }

    /// Calls `f` for every entry whose source node is `u`.
    pub fn for_each_of(&self, u: NodeId, mut f: impl FnMut(&P)) {
        for (eu, p) in &self.entries {
            if *eu == u {
                f(p);
            }
        }
    }

    /// Number of entries whose source node is `u`.
    pub fn count_for(&self, u: NodeId) -> usize {
        self.entries.iter().filter(|(eu, _)| *eu == u).count()
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(u, payload)` entries.
    pub fn iter(&self) -> impl Iterator<Item = &(NodeId, P)> {
        self.entries.iter()
    }

    /// Bytes occupied by the denylist buffer and its payload heap data.
    pub fn memory_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(NodeId, P)>()
            + self
                .entries
                .iter()
                .map(|(_, p)| p.heap_bytes())
                .sum::<usize>()
    }
}

/// The large denylist (L-DL): whole evicted cells. Generic over the cell type
/// to avoid a dependency cycle with the `cell` module.
#[derive(Debug, Clone)]
pub struct LargeDenylist<C> {
    cells: Vec<C>,
    capacity: usize,
}

impl<C> LargeDenylist<C> {
    /// Creates an L-DL with the given capacity limit.
    pub fn new(capacity: usize) -> Self {
        Self {
            cells: Vec::new(),
            capacity,
        }
    }

    /// Attempts to record an evicted cell; on overflow the cell is handed back
    /// so the caller can expand the L-CHT instead.
    pub fn push(&mut self, cell: C) -> Result<(), C> {
        if self.cells.len() >= self.capacity {
            return Err(cell);
        }
        self.cells.push(cell);
        Ok(())
    }

    /// Records a cell unconditionally, ignoring the capacity limit (last-resort
    /// safety valve so no node is ever lost).
    pub fn push_forced(&mut self, cell: C) {
        self.cells.push(cell);
    }

    /// Finds a cell by predicate.
    pub fn find(&self, mut pred: impl FnMut(&C) -> bool) -> Option<&C> {
        self.cells.iter().find(|c| pred(c))
    }

    /// Finds a cell mutably by predicate.
    pub fn find_mut(&mut self, mut pred: impl FnMut(&C) -> bool) -> Option<&mut C> {
        self.cells.iter_mut().find(|c| pred(c))
    }

    /// Index of the first cell matching the predicate. Paired with
    /// [`LargeDenylist::cell_at_mut`] so "find or insert" flows can resolve a
    /// cell once and re-borrow it in O(1) instead of scanning twice.
    pub fn position(&self, pred: impl FnMut(&C) -> bool) -> Option<usize> {
        self.cells.iter().position(pred)
    }

    /// Direct access to a cell located by [`LargeDenylist::position`]. The
    /// index is valid only until the next mutation of the denylist.
    #[inline]
    pub fn cell_at_mut(&mut self, idx: usize) -> &mut C {
        &mut self.cells[idx]
    }

    /// Removes and returns the first cell matching the predicate.
    pub fn remove_if(&mut self, pred: impl FnMut(&C) -> bool) -> Option<C> {
        let idx = self.cells.iter().position(pred)?;
        Some(self.cells.swap_remove(idx))
    }

    /// Moves every stored cell into `out` (used when the L-CHT expands),
    /// keeping this denylist's buffer capacity for the re-parks that may
    /// follow — allocation-free on both sides once the caller's buffer is
    /// warm.
    pub fn drain_all_into(&mut self, out: &mut Vec<C>) {
        out.append(&mut self.cells);
    }

    /// Number of stored cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are stored.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates over stored cells.
    pub fn iter(&self) -> impl Iterator<Item = &C> {
        self.cells.iter()
    }

    /// Mutable iteration over stored cells (the arena compaction remap walks
    /// parked cells too — their inline blocks live in the same arena).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut C> {
        self.cells.iter_mut()
    }

    /// Bytes occupied by the vector buffer (per-cell heap data is added by the
    /// caller, which knows the cell layout).
    pub fn buffer_bytes(&self) -> usize {
        self.cells.capacity() * std::mem::size_of::<C>()
    }
}

/// Compile-time proof that both denylists are `Send + Sync`, as the sharded
/// engine's thread fan-out requires.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SmallDenylist<NodeId>>();
    assert_send_sync::<LargeDenylist<NodeId>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::WeightedSlot;

    #[test]
    fn small_denylist_push_get_remove() {
        let mut dl: SmallDenylist<NodeId> = SmallDenylist::new(4);
        assert!(dl.push(1, 10).is_ok());
        assert!(dl.push(1, 11).is_ok());
        assert!(dl.push(2, 20).is_ok());
        assert_eq!(dl.len(), 3);
        assert_eq!(dl.get(1, 10), Some(&10));
        assert_eq!(dl.get(1, 99), None);
        assert_eq!(dl.remove(1, 11), Some(11));
        assert_eq!(dl.len(), 2);
        assert_eq!(dl.remove(1, 11), None);
    }

    #[test]
    fn small_denylist_respects_capacity() {
        let mut dl: SmallDenylist<NodeId> = SmallDenylist::new(2);
        assert!(dl.push(1, 1).is_ok());
        assert!(dl.push(1, 2).is_ok());
        assert_eq!(dl.push(1, 3), Err(3), "third push must be rejected");
        assert_eq!(dl.len(), 2);
        dl.push_forced(1, 3);
        assert_eq!(dl.len(), 3);
    }

    #[test]
    fn drain_for_extracts_only_matching_source() {
        let mut dl: SmallDenylist<NodeId> = SmallDenylist::new(16);
        dl.push(7, 1).unwrap();
        dl.push(8, 2).unwrap();
        dl.push(7, 3).unwrap();
        let mut drained = Vec::new();
        dl.drain_for_into(7, &mut drained);
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 3]);
        assert_eq!(dl.len(), 1);
        assert_eq!(dl.count_for(8), 1);
    }

    #[test]
    fn small_denylist_get_mut_updates_in_place() {
        let mut dl: SmallDenylist<WeightedSlot> = SmallDenylist::new(8);
        dl.push(1, WeightedSlot { v: 5, w: 1 }).unwrap();
        dl.get_mut(1, 5).unwrap().w += 3;
        assert_eq!(dl.get(1, 5).unwrap().w, 4);
    }

    #[test]
    fn large_denylist_basic_flow() {
        let mut dl: LargeDenylist<(NodeId, Vec<NodeId>)> = LargeDenylist::new(2);
        assert!(dl.push((1, vec![10, 11])).is_ok());
        assert!(dl.push((2, vec![])).is_ok());
        assert!(dl.push((3, vec![])).is_err());
        assert!(dl.find(|c| c.0 == 2).is_some());
        dl.find_mut(|c| c.0 == 1).unwrap().1.push(12);
        assert_eq!(dl.remove_if(|c| c.0 == 1).unwrap().1, vec![10, 11, 12]);
        let mut drained = Vec::new();
        dl.drain_all_into(&mut drained);
        assert_eq!(drained.len(), 1);
        assert!(dl.is_empty());
    }

    #[test]
    fn memory_is_tracked() {
        let mut dl: SmallDenylist<NodeId> = SmallDenylist::new(128);
        for i in 0..10 {
            dl.push(1, i).unwrap();
        }
        assert!(dl.memory_bytes() >= 10 * std::mem::size_of::<(NodeId, NodeId)>());
    }
}
