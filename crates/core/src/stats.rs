//! Structural statistics and instrumentation counters.
//!
//! Besides memory accounting (Figure 9), the paper validates Theorem 1 by
//! measuring the *average number of placements per inserted item* — about
//! 1.017 for the L-CHT and 1.006 for S-CHTs on the NotreDame dataset (§ IV-A).
//! [`StructureStats`] collects exactly those counters so the `reproduce
//! theorem1` harness can regenerate the experiment.

/// Counters describing the work done and the space occupied by a CuckooGraph
/// instance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StructureStats {
    /// Distinct source nodes currently stored (cells in the L-CHT chain plus
    /// cells parked in the L-DL).
    pub nodes: usize,
    /// Distinct edges currently stored.
    pub edges: usize,
    /// Number of L-CHT tables currently in the chain.
    pub lcht_tables: usize,
    /// Total number of cells allocated across all L-CHT tables.
    pub lcht_cells: usize,
    /// Number of S-CHT tables across all cells.
    pub scht_tables: usize,
    /// Total number of slots allocated across all S-CHTs.
    pub scht_slots: usize,
    /// Entries currently parked in the L-DL.
    pub l_denylist_len: usize,
    /// Entries currently parked in the S-DL.
    pub s_denylist_len: usize,
    /// Cumulative number of cell placements performed in L-CHTs (initial
    /// placements, kick-out re-placements, and expansion re-insertions).
    pub lcht_placements: u64,
    /// Cumulative number of node insertions requested (distinct `u` arrivals).
    pub lcht_items: u64,
    /// Cumulative number of slot placements performed in S-CHTs.
    pub scht_placements: u64,
    /// Cumulative number of neighbour insertions that went through an S-CHT.
    pub scht_items: u64,
    /// Number of insertions that exhausted the kick budget and fell back to a
    /// denylist (or forced an expansion when denylists are disabled).
    pub insertion_failures: u64,
    /// Number of chain/table expansions performed.
    pub expansions: u64,
    /// Number of chain/table contractions performed.
    pub contractions: u64,
    /// Table-pool acquisitions served from a recycled buffer (no allocation).
    pub pool_hits: u64,
    /// Table-pool acquisitions that had to allocate fresh buffers.
    pub pool_misses: u64,
    /// Tables whose buffers were returned to the pool on retirement.
    pub pool_retired: u64,
    /// Retirements quarantined behind an epoch stamp inside concurrent write
    /// sections instead of entering the free list directly (cumulative).
    pub pool_deferred: u64,
    /// Quarantined buffers released back into circulation after their epoch
    /// cleared the reclaim bound (cumulative).
    pub pool_reclaimed: u64,
    /// Buffers still parked in pool quarantines, awaiting an epoch advance.
    pub pool_deferred_pending: usize,
    /// Bytes currently parked in pool free lists awaiting reuse.
    pub pool_retained_bytes: usize,
    /// Concurrent-read pins that observed an open write window (or a torn
    /// sequence word) and had to back off and retry. Counted by the shard
    /// layer's read coordinators; always 0 for a serial engine.
    pub reader_retries: u64,
    /// Successful concurrent-read pins granted by the shard layer's read
    /// coordinators; always 0 for a serial engine.
    pub read_pins: u64,
    /// Epoch advances published by shard write sections (each one may free
    /// quarantined table buffers for reclamation); always 0 for a serial
    /// engine.
    pub epoch_advances: u64,
    /// Threshold-triggered in-place compactions of scan segments (cumulative;
    /// tombstone waste exceeded 1/4 of a segment's appended length).
    pub segment_compactions: u64,
    /// Tombstones punched into scan segments by edge deletions (cumulative).
    pub segment_tombstones: u64,
    /// Bytes currently held by the scan-segment arena: segment buffers,
    /// bookkeeping, and buffers parked in its recycling pool.
    pub segment_bytes: usize,
    /// Blocks carved out of the slot arena (live + freed).
    pub arena_blocks: usize,
    /// Arena blocks currently on the free list (reclaimable by
    /// `compact_arena`).
    pub arena_free_blocks: usize,
}

impl StructureStats {
    /// Accumulates another snapshot into this one. Every field is additive
    /// across disjoint structures, so [`crate::Sharded`] merges per-shard
    /// snapshots — each taken under that shard's own read protocol — without
    /// ever needing exclusive access to the whole graph.
    pub fn merge(&mut self, o: &StructureStats) {
        self.nodes += o.nodes;
        self.edges += o.edges;
        self.lcht_tables += o.lcht_tables;
        self.lcht_cells += o.lcht_cells;
        self.scht_tables += o.scht_tables;
        self.scht_slots += o.scht_slots;
        self.l_denylist_len += o.l_denylist_len;
        self.s_denylist_len += o.s_denylist_len;
        self.lcht_placements += o.lcht_placements;
        self.lcht_items += o.lcht_items;
        self.scht_placements += o.scht_placements;
        self.scht_items += o.scht_items;
        self.insertion_failures += o.insertion_failures;
        self.expansions += o.expansions;
        self.contractions += o.contractions;
        self.pool_hits += o.pool_hits;
        self.pool_misses += o.pool_misses;
        self.pool_retired += o.pool_retired;
        self.pool_deferred += o.pool_deferred;
        self.pool_reclaimed += o.pool_reclaimed;
        self.pool_deferred_pending += o.pool_deferred_pending;
        self.pool_retained_bytes += o.pool_retained_bytes;
        self.reader_retries += o.reader_retries;
        self.read_pins += o.read_pins;
        self.epoch_advances += o.epoch_advances;
        self.segment_compactions += o.segment_compactions;
        self.segment_tombstones += o.segment_tombstones;
        self.segment_bytes += o.segment_bytes;
        self.arena_blocks += o.arena_blocks;
        self.arena_free_blocks += o.arena_free_blocks;
    }

    /// Average number of L-CHT placements per inserted node — the paper
    /// reports ≈1.017 on NotreDame, far below the kick budget `T`.
    pub fn avg_lcht_placements_per_item(&self) -> f64 {
        if self.lcht_items == 0 {
            0.0
        } else {
            self.lcht_placements as f64 / self.lcht_items as f64
        }
    }

    /// Average number of S-CHT placements per neighbour routed to an S-CHT —
    /// the paper reports ≈1.006.
    pub fn avg_scht_placements_per_item(&self) -> f64 {
        if self.scht_items == 0 {
            0.0
        } else {
            self.scht_placements as f64 / self.scht_items as f64
        }
    }

    /// Overall loading rate of the L-CHT chain (stored nodes over allocated
    /// cells).
    pub fn lcht_loading_rate(&self) -> f64 {
        if self.lcht_cells == 0 {
            0.0
        } else {
            self.nodes as f64 / self.lcht_cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_zero_items() {
        let s = StructureStats::default();
        assert_eq!(s.avg_lcht_placements_per_item(), 0.0);
        assert_eq!(s.avg_scht_placements_per_item(), 0.0);
        assert_eq!(s.lcht_loading_rate(), 0.0);
    }

    #[test]
    fn averages_divide_counters() {
        let s = StructureStats {
            lcht_placements: 1017,
            lcht_items: 1000,
            scht_placements: 1006,
            scht_items: 1000,
            nodes: 90,
            lcht_cells: 100,
            ..Default::default()
        };
        assert!((s.avg_lcht_placements_per_item() - 1.017).abs() < 1e-9);
        assert!((s.avg_scht_placements_per_item() - 1.006).abs() < 1e-9);
        assert!((s.lcht_loading_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn merge_is_field_wise_addition() {
        let a = StructureStats {
            nodes: 3,
            edges: 5,
            pool_deferred: 2,
            reader_retries: 7,
            read_pins: 11,
            epoch_advances: 1,
            ..Default::default()
        };
        let b = StructureStats {
            nodes: 4,
            edges: 6,
            pool_deferred: 1,
            pool_reclaimed: 1,
            reader_retries: 3,
            read_pins: 9,
            epoch_advances: 2,
            ..Default::default()
        };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.nodes, 7);
        assert_eq!(m.edges, 11);
        assert_eq!(m.pool_deferred, 3);
        assert_eq!(m.pool_reclaimed, 1);
        assert_eq!(m.reader_retries, 10);
        assert_eq!(m.read_pins, 20);
        assert_eq!(m.epoch_advances, 3);
    }
}
