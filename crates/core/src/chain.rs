//! Table chains implementing the TRANSFORMATION rule (Table II).
//!
//! A [`TableChain`] is an ordered group of cuckoo hash tables that expands and
//! contracts following the rule illustrated by Table II of the paper:
//!
//! * the chain starts with a single table of length `n`;
//! * whenever the loading rate of the most recently enabled table reaches the
//!   threshold `G` and fewer than `R` tables exist, an **extra** table is
//!   enabled (length `n/2` in round 0, `2^(k-1)·n` in round `k`);
//! * when the `R`-th table also reaches `G`, all tables are **merged** into a
//!   new first table of length `2^(k+1)·n` and a fresh second table of length
//!   `2^k·n` is enabled;
//! * after a deletion that drops the chain's **overall** loading rate below
//!   `Λ`, the chain removes its last table (redistributing its contents) or,
//!   when only one table is left, halves that table.
//!
//! The same chain type backs both the S-CHT chains hanging off an L-CHT cell
//! and the L-CHT chain itself (whose payloads are whole cells), as described
//! in § III-A1: "such rules can also be applied to L-CHT".
//!
//! Every key-addressed operation takes the caller's memoized [`KeyHash`], so
//! probing all `R` tables of a chain costs one Bob pass total (each table
//! derives its buckets from the lanes with its own cheap seed mix). The chain
//! also caches its aggregate `count` and `capacity` — maintained incrementally
//! at every mutation — so `overall_loading_rate`, consulted after every single
//! deletion, no longer sums over all tables.
//!
//! Every transformation (expansion merge, contraction, and any insert that
//! may trigger one) runs through a caller-supplied [`RebuildScratch`]: tables
//! drain into the scratch via the tag-word scan, the displaced items' hashes
//! are cached in one pass, and the re-place loop pops `(item, hash)` pairs —
//! so steady-state resizes allocate nothing (see [`crate::scratch`]).
//!
//! Since PR 6 the tables themselves recycle too: every table a transformation
//! drops is drained and then **retired** into the scratch's embedded
//! [`TablePool`], and every table a transformation creates is born out of that
//! pool — so a steady-state merge or contraction reuses the previous shape's
//! slot/tag buffers instead of round-tripping the allocator (see
//! [`crate::pool`]).

use crate::hash::KeyHash;
use crate::payload::Payload;
use crate::pool::TablePool;
use crate::rng::KickRng;
use crate::scht::CuckooTable;
use crate::scratch::RebuildScratch;

/// Parameters a chain needs to drive the transformation rule. A borrowed view
/// of [`crate::CuckooGraphConfig`] so the chain does not own a config copy.
#[derive(Debug, Clone, Copy)]
pub struct ChainParams {
    /// `d` — cells per bucket in every table of the chain.
    pub cells_per_bucket: usize,
    /// `R` — maximum number of tables in the chain.
    pub r: usize,
    /// `G` — per-table loading-rate threshold that enables the next table.
    pub expand_threshold: f64,
    /// `Λ` — overall loading-rate threshold that triggers contraction.
    pub contract_threshold: f64,
    /// `T` — kick-out budget per insertion.
    pub max_kicks: usize,
    /// `n` — length of the first table in round 0.
    pub base_len: usize,
}

/// What happened while placing an item into the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainInsert<T> {
    /// The item found a slot.
    Stored,
    /// The kick-out walk exceeded `T`; the homeless item is handed back so the
    /// caller can park it in a denylist or force an expansion.
    Failed(T),
}

/// An expandable/contractible group of cuckoo tables (an "S-CHT chain", or the
/// L-CHT chain when `T` is a cell type).
#[derive(Debug, Clone)]
pub struct TableChain<T> {
    tables: Vec<CuckooTable<T>>,
    /// Number of merges performed so far (the `k` in `2^k · n`).
    round: u32,
    params: ChainParams,
    /// Seed stream for newly created tables, advanced on every allocation so
    /// re-built tables pick fresh hash functions.
    seed: u64,
    /// Cumulative expansions (extra tables enabled or merges performed).
    expansions: u64,
    /// Cumulative contractions (tables removed or halved).
    contractions: u64,
    /// Cached total item count across the chain, maintained incrementally.
    count: usize,
    /// Cached total slot capacity, refreshed on every shape change.
    capacity: usize,
}

impl<T: Payload> TableChain<T> {
    /// Creates a chain with a single table of length `params.base_len`,
    /// allocating its buffers fresh (tests and cold paths; the engine paths
    /// use [`TableChain::new_in`]).
    pub fn new(params: ChainParams, seed: u64) -> Self {
        Self::new_in(params, seed, &mut TablePool::disabled())
    }

    /// Creates a chain whose first table's buffers come from `pool` —
    /// the birth path of every chain a TRANSFORMATION creates.
    pub fn new_in(params: ChainParams, seed: u64, pool: &mut TablePool<T>) -> Self {
        let mut chain = Self {
            tables: Vec::with_capacity(params.r),
            round: 0,
            params,
            seed,
            expansions: 0,
            contractions: 0,
            count: 0,
            capacity: 0,
        };
        let t = chain.alloc_table(params.base_len.max(1), pool);
        chain.tables.push(t);
        chain.refresh_capacity();
        chain
    }

    fn alloc_table(&mut self, len: usize, pool: &mut TablePool<T>) -> CuckooTable<T> {
        self.seed = crate::hash::splitmix64(self.seed ^ 0xa5a5_5a5a_dead_beef);
        CuckooTable::new_in(len, self.params.cells_per_bucket, self.seed, pool)
    }

    /// Re-derives the cached capacity after a shape change (O(R), only run
    /// when tables are added, removed, or resized).
    fn refresh_capacity(&mut self) {
        self.capacity = self.tables.iter().map(CuckooTable::capacity).sum();
    }

    /// Length the first table has in the current round.
    fn first_len(&self) -> usize {
        self.params.base_len.max(1) << self.round
    }

    /// Length a newly enabled extra table has in the current round
    /// (`n/2` in round 0, `2^(k-1)·n` afterwards).
    fn extra_len(&self) -> usize {
        if self.round == 0 {
            (self.params.base_len / 2).max(1)
        } else {
            (self.params.base_len << (self.round - 1)).max(1)
        }
    }

    /// Number of tables currently enabled.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Lengths (bucket counts of the larger array) of every enabled table, in
    /// chain order — used by the Table II reproduction test and harness.
    pub fn table_lengths(&self) -> Vec<usize> {
        self.tables.iter().map(|t| t.len_buckets()).collect()
    }

    /// Total number of stored items across the chain (cached).
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total slot capacity across the chain (cached).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True if the chain stores nothing.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Overall loading rate of the chain. Reads the two cached aggregates —
    /// no per-table summation, although the engine consults this after every
    /// deletion.
    pub fn overall_loading_rate(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.count as f64 / self.capacity as f64
        }
    }

    /// Loading rate of the most recently enabled table — the quantity the
    /// expansion rule watches.
    pub fn last_loading_rate(&self) -> f64 {
        self.tables
            .last()
            .map(CuckooTable::loading_rate)
            .unwrap_or(0.0)
    }

    /// Number of expansions performed (extra tables enabled plus merges).
    pub fn expansions(&self) -> u64 {
        self.expansions
    }

    /// Number of contractions performed.
    pub fn contractions(&self) -> u64 {
        self.contractions
    }

    /// Looks up the item keyed by `kh.key()` anywhere in the chain.
    pub fn get(&self, kh: KeyHash) -> Option<&T> {
        self.tables.iter().find_map(|t| t.get(kh))
    }

    /// Mutable lookup across the chain.
    pub fn get_mut(&mut self, kh: KeyHash) -> Option<&mut T> {
        self.tables.iter_mut().find_map(|t| t.get_mut(kh))
    }

    /// True if an item keyed by `kh.key()` is stored in any table.
    pub fn contains(&self, kh: KeyHash) -> bool {
        self.tables.iter().any(|t| t.contains(kh))
    }

    /// Locates the item keyed by `kh.key()`, returning opaque coordinates for
    /// [`TableChain::item_at_mut`]. Lets callers resolve a key once and then
    /// take a mutable borrow in O(1), avoiding the probe-twice shape the
    /// borrow checker otherwise forces on "find or insert" flows.
    pub(crate) fn find_index(&self, kh: KeyHash) -> Option<(usize, (usize, usize))> {
        self.tables
            .iter()
            .enumerate()
            .find_map(|(i, t)| t.locate(kh).map(|pos| (i, pos)))
    }

    /// Direct access to an item located by [`TableChain::find_index`].
    #[inline]
    pub(crate) fn item_at_mut(&mut self, pos: (usize, (usize, usize))) -> &mut T {
        self.tables[pos.0].slot_at_mut(pos.1)
    }

    /// Pre-change reference probe (full re-hash per table and array, payload
    /// key compares, no tags) — the oracle/baseline counterpart of
    /// [`TableChain::contains`].
    pub fn contains_unmemoized(&self, key: graph_api::NodeId) -> bool {
        self.tables.iter().any(|t| t.contains_unmemoized(key))
    }

    /// Reference counterpart of [`TableChain::get`] with the pre-change cost
    /// shape (two Bob passes per table, payload key compares, no tags).
    pub fn get_unmemoized(&self, key: graph_api::NodeId) -> Option<&T> {
        self.tables.iter().find_map(|t| t.get_unmemoized(key))
    }

    /// Prefetches the candidate tag lines for `kh` in every enabled table.
    #[inline]
    pub fn prefetch(&self, kh: KeyHash) {
        for t in &self.tables {
            t.prefetch(kh);
        }
    }

    /// Removes and returns the item keyed by `kh.key()`.
    pub fn remove(&mut self, kh: KeyHash) -> Option<T> {
        let removed = self.tables.iter_mut().find_map(|t| t.remove(kh));
        if removed.is_some() {
            self.count -= 1;
        }
        removed
    }

    /// Calls `f` for every stored item (tag-word scan per table).
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        for t in &self.tables {
            t.for_each(&mut f);
        }
    }

    /// Pre-SWAR iteration over every stored item — the scalar oracle and scan
    /// guard baseline, mirroring [`TableChain::for_each`].
    pub fn for_each_scalar(&self, mut f: impl FnMut(&T)) {
        for t in &self.tables {
            t.for_each_scalar(&mut f);
        }
    }

    /// Iterates over every stored item.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.tables.iter().flat_map(|t| t.iter())
    }

    /// Mutable walk over every stored item. Callers must not change an item's
    /// key; used by the arena compaction remap.
    pub(crate) fn for_each_mut(&mut self, mut f: impl FnMut(&mut T)) {
        for t in &mut self.tables {
            t.for_each_mut(&mut f);
        }
    }

    /// Tears the chain down: drains every stored item into `out` (tag-word
    /// scans) and retires every table's buffers into `pool`. Afterwards the
    /// chain holds zero tables and zero capacity — callers drop it right away
    /// (the cell collapse path, where the items become the cell's inline
    /// storage and the buffers seed the next TRANSFORMATION's tables).
    pub fn dismantle(&mut self, out: &mut Vec<T>, pool: &mut TablePool<T>) {
        out.reserve(self.count);
        for mut t in self.tables.drain(..) {
            t.drain_into(out);
            t.retire(pool);
        }
        self.round = 0;
        self.count = 0;
        self.capacity = 0;
    }

    /// Bytes occupied by every table of the chain (slot arrays, tag bytes,
    /// plus stored items' heap data).
    pub fn memory_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.memory_bytes()).sum()
    }

    /// Applies the expansion rule if the most recently enabled table has
    /// reached the threshold `G`. Returns `true` if the chain changed shape.
    ///
    /// `placements` counts slot writes performed while re-distributing items
    /// during a merge (feeding the Theorem 1 counters).
    pub fn maybe_expand(
        &mut self,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<T>,
    ) -> bool {
        if self.last_loading_rate() < self.params.expand_threshold {
            return false;
        }
        self.expand(rng, placements, scratch);
        true
    }

    /// Unconditionally performs one expansion step: enable an extra table, or
    /// merge everything into the next round when `R` tables already exist.
    /// Returns items that could not be re-placed during a merge (extremely
    /// rare; the caller parks them in a denylist).
    ///
    /// A merge drains every table into `scratch` (tag-word scans), caches the
    /// displaced items' hashes in one pass, and re-places from the scratch —
    /// no allocation when the scratch is persistent and warm.
    pub fn expand(
        &mut self,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<T>,
    ) -> Vec<T> {
        self.expansions += 1;
        if self.tables.len() < self.params.r {
            let len = self.extra_len();
            let t = self.alloc_table(len, &mut scratch.pool);
            self.tables.push(t);
            self.refresh_capacity();
            return Vec::new();
        }

        // Merge: gather everything, retire the old tables' buffers, rebuild as
        // round k+1 with two tables born out of the pool (the just-retired
        // buffers, in steady state).
        debug_assert!(scratch.is_empty(), "scratch carried items into a merge");
        for mut t in self.tables.drain(..) {
            t.drain_into(&mut scratch.items);
            t.retire(&mut scratch.pool);
        }
        self.count = 0;
        self.round += 1;
        let first = self.alloc_table(self.first_len(), &mut scratch.pool);
        let second = self.alloc_table(self.extra_len(), &mut scratch.pool);
        self.tables.push(first);
        self.tables.push(second);
        self.refresh_capacity();
        self.replace_from_scratch(rng, placements, scratch)
    }

    /// Applies the reverse-transformation rule after a deletion: when the
    /// overall loading rate of the chain drops below `Λ`, the last table is
    /// removed (its items redistributed) or — if it is the only one — halved.
    /// Returns items that could not be re-placed (parked by the caller).
    pub fn maybe_contract(
        &mut self,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<T>,
    ) -> Vec<T> {
        if self.overall_loading_rate() >= self.params.contract_threshold {
            return Vec::new();
        }
        // Never shrink below the base geometry.
        if self.tables.len() == 1 && self.tables[0].len_buckets() <= self.params.base_len.max(1) {
            return Vec::new();
        }
        self.contract(rng, placements, scratch)
    }

    /// Unconditionally performs one contraction step.
    pub fn contract(
        &mut self,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<T>,
    ) -> Vec<T> {
        self.contractions += 1;
        debug_assert!(scratch.is_empty(), "scratch carried items into a contract");
        if self.tables.len() >= 2 {
            // Delete the last table and move its residents into the others.
            let mut removed = self.tables.pop().expect("len >= 2");
            self.count -= removed.count();
            self.refresh_capacity();
            // Dropping back to a single table from round k means the chain
            // re-enters the "k, no extras" row of Table II; the round value is
            // unchanged because the first table keeps its length.
            removed.drain_into(&mut scratch.items);
            removed.retire(&mut scratch.pool);
        } else {
            // Single table: compress towards half of the current length, but
            // never below the base geometry. (`base > old_len` cannot arise
            // through normal operation — tables are born at base length and
            // only ever halve back towards it — but the clamp keeps a
            // hand-built chain safe and is pinned by a regression test.)
            let old_len = self.tables[0].len_buckets();
            let base = self.params.base_len.max(1);
            let new_len = (old_len / 2).max(base);
            if new_len >= old_len {
                return Vec::new();
            }
            if self.round > 0 {
                self.round -= 1;
            }
            let mut old = self.tables.pop().expect("len == 1");
            old.drain_into(&mut scratch.items);
            old.retire(&mut scratch.pool);
            self.count = 0;
            let fresh = self.alloc_table(new_len, &mut scratch.pool);
            self.tables.push(fresh);
            self.refresh_capacity();
        }
        self.replace_from_scratch(rng, placements, scratch)
    }

    /// Shared tail of the rebuild paths: hash everything buffered in `scratch`
    /// in one pass, re-place each `(item, hash)` pair across the tables, and
    /// close the scratch event. Items that exceed the kick budget everywhere
    /// come back as the (almost always empty) homeless `Vec`.
    fn replace_from_scratch(
        &mut self,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<T>,
    ) -> Vec<T> {
        scratch.cache_hashes();
        let mut homeless = Vec::new();
        while let Some((item, kh)) = scratch.pop_pair() {
            if let ChainInsert::Failed(item) = self.insert_rebuild(item, kh, rng, placements) {
                homeless.push(item);
            }
        }
        scratch.finish_event();
        homeless
    }

    /// Inserts `item` (whose memoized hash is `kh`), expanding beforehand if
    /// the most recently enabled table has reached `G` (the paper checks the
    /// threshold "before the current v arrives"). On kick-out failure the
    /// homeless item is handed back.
    pub fn insert(
        &mut self,
        item: T,
        kh: KeyHash,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<T>,
    ) -> ChainInsert<T> {
        // The expansion rule is checked first, so a table is never pushed past
        // its threshold by the incoming item.
        if self.last_loading_rate() >= self.params.expand_threshold {
            let mut leftovers = self.expand(rng, placements, scratch);
            // Items displaced by a merge must never be lost. With realistic
            // parameters the freshly merged tables absorb them immediately;
            // under adversarial settings (tiny d, tiny kick budget) keep
            // expanding until every displaced item finds a slot — capacity
            // grows on every round, so this terminates.
            while !leftovers.is_empty() {
                let mut still_homeless = Vec::new();
                for left in leftovers {
                    let left_kh = left.key_hash();
                    if let ChainInsert::Failed(l) =
                        self.insert_rebuild(left, left_kh, rng, placements)
                    {
                        still_homeless.push(l);
                    }
                }
                if still_homeless.is_empty() {
                    break;
                }
                leftovers = self.expand(rng, placements, scratch);
                leftovers.append(&mut still_homeless);
            }
        }
        self.insert_no_expand(item, kh, rng, placements)
    }

    /// Inserts without consulting the expansion rule. Following the paper's
    /// Example 2, new items are placed in the **most recently enabled** table
    /// only (older tables sit at their threshold and are not disturbed). When
    /// the kick-out walk fails there, the homeless item is retried — full
    /// kick-out walk — in each older table before the failure is reported.
    /// The placement policy governs where items go while the chain is
    /// healthy; once the newest table rejects an item, salvaging it anywhere
    /// in the chain always beats parking it in a denylist, whose entries tax
    /// every subsequent probe with a linear scan.
    pub fn insert_no_expand(
        &mut self,
        item: T,
        kh: KeyHash,
        rng: &mut KickRng,
        placements: &mut u64,
    ) -> ChainInsert<T> {
        let max_kicks = self.params.max_kicks;
        let last = self.tables.len() - 1;
        match self.tables[last].insert(item, kh, rng, max_kicks, placements) {
            Ok(()) => {
                self.count += 1;
                ChainInsert::Stored
            }
            Err(mut bounced) => {
                for t in &mut self.tables[..last] {
                    // Each walk may hand back a *displaced resident*, not the
                    // item it was given — the hash material must be its own.
                    let bkh = bounced.key_hash();
                    match t.insert(bounced, bkh, rng, max_kicks, placements) {
                        Ok(()) => {
                            self.count += 1;
                            return ChainInsert::Stored;
                        }
                        Err(b) => bounced = b,
                    }
                }
                ChainInsert::Failed(bounced)
            }
        }
    }

    /// Stores `item` unconditionally, expanding the chain as many times as it
    /// takes (each round strictly grows capacity, so the loop terminates).
    /// Used on internal redistribution paths where losing an item is not an
    /// option and no denylist is available.
    pub fn insert_forced(
        &mut self,
        item: T,
        rng: &mut KickRng,
        placements: &mut u64,
        scratch: &mut RebuildScratch<T>,
    ) {
        let kh = item.key_hash();
        // The hot path (transformation re-homing its inline slots) settles
        // here without touching the heap at all.
        let mut pending = match self.insert_rebuild(item, kh, rng, placements) {
            ChainInsert::Stored => return,
            ChainInsert::Failed(f) => vec![f],
        };
        // Kick budget exhausted in every table: grow until the homeless item
        // (and anything a merge displaces) settles. Reached only under
        // adversarial geometry, so the Vec above is cold.
        loop {
            let mut displaced = self.expand(rng, placements, scratch);
            pending.append(&mut displaced);
            let mut still_homeless = Vec::new();
            for it in pending {
                let kh = it.key_hash();
                if let ChainInsert::Failed(f) = self.insert_rebuild(it, kh, rng, placements) {
                    still_homeless.push(f);
                }
            }
            if still_homeless.is_empty() {
                return;
            }
            pending = still_homeless;
        }
    }

    /// Insertion path used while redistributing items during a merge or a
    /// contraction: the largest (first) table is tried first so the bulk of
    /// the items land there, then the later tables. The memoized `kh` is
    /// reused across every table; only kick-walk victims are re-hashed (the
    /// homeless item handed back may be such a victim, so its hash is
    /// re-derived by the caller when needed).
    fn insert_rebuild(
        &mut self,
        item: T,
        kh: KeyHash,
        rng: &mut KickRng,
        placements: &mut u64,
    ) -> ChainInsert<T> {
        let max_kicks = self.params.max_kicks;
        let mut pending = item;
        let mut pending_kh = kh;
        for idx in 0..self.tables.len() {
            match self.tables[idx].insert(pending, pending_kh, rng, max_kicks, placements) {
                Ok(()) => {
                    self.count += 1;
                    return ChainInsert::Stored;
                }
                Err(bounced) => {
                    pending_kh = bounced.key_hash();
                    pending = bounced;
                }
            }
        }
        ChainInsert::Failed(pending)
    }

    /// Internal consistency check for the property tests: the cached
    /// aggregates must match a full recomputation, and every table's tag
    /// bytes must match its slots.
    #[doc(hidden)]
    pub fn assert_cached_consistent(&self) {
        let count: usize = self.tables.iter().map(CuckooTable::count).sum();
        let capacity: usize = self.tables.iter().map(CuckooTable::capacity).sum();
        assert_eq!(self.count, count, "cached chain count out of sync");
        assert_eq!(self.capacity, capacity, "cached chain capacity out of sync");
        for t in &self.tables {
            t.assert_tags_consistent();
        }
    }
}

/// Compile-time proof that table chains are `Send + Sync`, as the sharded
/// engine's thread fan-out requires.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TableChain<graph_api::NodeId>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use graph_api::NodeId;

    fn params() -> ChainParams {
        ChainParams {
            cells_per_bucket: 4,
            r: 3,
            expand_threshold: 0.9,
            contract_threshold: 0.5,
            max_kicks: 100,
            base_len: 8,
        }
    }

    fn chain() -> TableChain<NodeId> {
        TableChain::new(params(), 0x1111)
    }

    fn kh(v: NodeId) -> KeyHash {
        KeyHash::new(v)
    }

    fn scratch() -> RebuildScratch<NodeId> {
        RebuildScratch::persistent()
    }

    #[test]
    fn starts_with_single_base_table() {
        let c = chain();
        assert_eq!(c.table_count(), 1);
        assert_eq!(c.table_lengths(), vec![8]);
        assert!(c.is_empty());
        assert_eq!(c.overall_loading_rate(), 0.0);
        c.assert_cached_consistent();
    }

    /// Reproduces the length sequence of Table II for R = 3: the lengths of
    /// the enabled tables after each expansion follow
    /// `[n] → [n, n/2] → [n, n/2, n/2] → [2n, n] → [2n, n, n] → [4n, 2n] → ...`
    #[test]
    fn table_ii_rule() {
        let mut c = chain();
        let mut rng = KickRng::new(1);
        let mut p = 0;
        let n = 8usize;
        let expected: Vec<Vec<usize>> = vec![
            vec![n],
            vec![n, n / 2],
            vec![n, n / 2, n / 2],
            vec![2 * n, n],
            vec![2 * n, n, n],
            vec![4 * n, 2 * n],
            vec![4 * n, 2 * n, 2 * n],
            vec![8 * n, 4 * n],
        ];
        assert_eq!(c.table_lengths(), expected[0]);
        let mut s = scratch();
        for (step, lengths) in expected.iter().enumerate().skip(1) {
            c.expand(&mut rng, &mut p, &mut s);
            assert_eq!(&c.table_lengths(), lengths, "after {step} expansions");
            c.assert_cached_consistent();
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut c = chain();
        let mut rng = KickRng::new(2);
        let mut p = 0;
        let mut s = scratch();
        for v in 0..200u64 {
            assert_eq!(
                c.insert(v, kh(v), &mut rng, &mut p, &mut s),
                ChainInsert::Stored
            );
        }
        assert_eq!(c.count(), 200);
        for v in 0..200u64 {
            assert!(c.contains(kh(v)));
            assert_eq!(c.get(kh(v)), Some(&v));
            assert!(c.contains_unmemoized(v));
        }
        assert!(!c.contains(kh(999)));
        assert_eq!(c.remove(kh(13)), Some(13));
        assert_eq!(c.remove(kh(13)), None);
        assert_eq!(c.count(), 199);
        c.assert_cached_consistent();
    }

    #[test]
    fn expansion_is_triggered_by_loading_rate() {
        let mut c = chain();
        let mut rng = KickRng::new(3);
        let mut p = 0;
        let mut s = scratch();
        // Insert far more items than one base table holds; the chain must have
        // expanded at least once and kept everything reachable.
        for v in 0..1000u64 {
            assert_eq!(
                c.insert(v, kh(v), &mut rng, &mut p, &mut s),
                ChainInsert::Stored
            );
        }
        assert!(c.expansions() > 0);
        assert!(c.table_count() >= 1);
        for v in 0..1000u64 {
            assert!(c.contains(kh(v)), "lost {v} across expansions");
        }
        // No table is loaded beyond the threshold by more than one item's
        // worth of slack (the incoming item itself).
        assert!(c.last_loading_rate() <= 0.95);
        c.assert_cached_consistent();
    }

    #[test]
    fn contraction_removes_or_halves_tables() {
        let mut c = chain();
        let mut rng = KickRng::new(4);
        let mut p = 0;
        let mut s = scratch();
        for v in 0..1000u64 {
            c.insert(v, kh(v), &mut rng, &mut p, &mut s);
        }
        let grown_capacity = c.capacity();
        // Delete most items, invoking the reverse-transformation rule after
        // each deletion as the engine does.
        for v in 0..950u64 {
            assert!(c.remove(kh(v)).is_some());
            let homeless = c.maybe_contract(&mut rng, &mut p, &mut s);
            for item in homeless {
                // Re-inserting leftovers must succeed eventually.
                let item_kh = kh(item);
                assert_eq!(
                    c.insert(item, item_kh, &mut rng, &mut p, &mut s),
                    ChainInsert::Stored
                );
            }
        }
        assert!(c.contractions() > 0, "chain never contracted");
        assert!(c.capacity() < grown_capacity, "capacity did not shrink");
        for v in 950..1000u64 {
            assert!(c.contains(kh(v)), "lost survivor {v} during contraction");
        }
        c.assert_cached_consistent();
    }

    #[test]
    fn contraction_stops_at_base_geometry() {
        let mut c = chain();
        let mut rng = KickRng::new(5);
        let mut p = 0;
        let mut s = scratch();
        // Empty chain: repeated contraction attempts must be no-ops once the
        // base geometry is reached.
        for _ in 0..10 {
            let homeless = c.maybe_contract(&mut rng, &mut p, &mut s);
            assert!(homeless.is_empty());
        }
        assert_eq!(c.table_lengths(), vec![8]);
    }

    /// Regression pin for the single-table contract clamp: a base length
    /// *larger* than the current table (impossible through the public API,
    /// where tables are born at base length, but the clamp defends against
    /// hand-built geometry) must make the contraction a structural no-op.
    #[test]
    fn contract_never_shrinks_below_an_oversized_base_len() {
        let mut c = chain();
        let mut rng = KickRng::new(51);
        let mut p = 0;
        let mut s = scratch();
        for v in 0..20u64 {
            c.insert(v, kh(v), &mut rng, &mut p, &mut s);
        }
        // Force the pathological geometry directly (same-module access).
        c.params.base_len = 1000;
        assert!(c.table_count() == 1 && c.tables[0].len_buckets() < 1000);
        let before = c.table_lengths();
        let homeless = c.contract(&mut rng, &mut p, &mut s);
        assert!(homeless.is_empty());
        assert_eq!(c.table_lengths(), before, "oversized base must be a no-op");
        for v in 0..20u64 {
            assert!(c.contains(kh(v)), "no-op contract lost item {v}");
        }
        c.assert_cached_consistent();

        // And the regular direction still halves down towards the base
        // geometry (thin the load first so the halved table absorbs it).
        for v in 10..20u64 {
            assert!(c.remove(kh(v)).is_some());
        }
        c.params.base_len = 2;
        let homeless = c.contract(&mut rng, &mut p, &mut s);
        assert!(homeless.is_empty(), "halved table rejected items");
        assert_eq!(c.table_lengths(), vec![4]);
        for v in 0..10u64 {
            assert!(c.contains(kh(v)), "halving contract lost item {v}");
        }
        c.assert_cached_consistent();
    }

    #[test]
    fn dismantle_returns_everything_and_retires_tables() {
        let mut c = chain();
        let mut rng = KickRng::new(6);
        let mut p = 0;
        let mut s = scratch();
        for v in 0..500u64 {
            c.insert(v, kh(v), &mut rng, &mut p, &mut s);
        }
        let tables = c.table_count() as u64;
        let retired_before = s.pool_stats().retired;
        let mut items = Vec::new();
        let mut pool = TablePool::enabled();
        c.dismantle(&mut items, &mut pool);
        items.sort_unstable();
        assert_eq!(items, (0..500u64).collect::<Vec<_>>());
        assert_eq!(c.table_count(), 0);
        assert_eq!(c.capacity(), 0);
        assert!(c.is_empty());
        assert_eq!(pool.stats().retired, tables, "every table retired");
        assert!(pool.retained_bytes() > 0, "buffers kept for recycling");
        assert_eq!(s.pool_stats().retired, retired_before);
        c.assert_cached_consistent();
    }

    /// Steady-state resize churn must recycle table buffers through the
    /// scratch pool: after the warm-up misses, expand/contract cycles are
    /// served from retired buffers.
    #[test]
    fn transformations_recycle_buffers_through_the_pool() {
        let mut c = chain();
        let mut rng = KickRng::new(61);
        let mut p = 0;
        let mut s = scratch();
        for v in 0..2_000u64 {
            c.insert(v, kh(v), &mut rng, &mut p, &mut s);
        }
        for v in 0..1_990u64 {
            c.remove(kh(v));
            for item in c.maybe_contract(&mut rng, &mut p, &mut s) {
                c.insert_forced(item, &mut rng, &mut p, &mut s);
            }
        }
        let stats = s.pool_stats();
        assert!(c.expansions() > 0 && c.contractions() > 0);
        assert!(stats.retired > 0, "transformations never retired a table");
        assert!(
            stats.hits > stats.misses,
            "steady-state churn mostly missed the pool ({stats:?})"
        );
        c.assert_cached_consistent();
    }

    #[test]
    fn failed_insert_hands_back_item() {
        // A chain with r = 1 and a minuscule kick budget cannot absorb many
        // colliding items without expanding; insert_no_expand must hand the
        // homeless item back instead of losing it.
        let p = ChainParams {
            r: 1,
            max_kicks: 1,
            base_len: 1,
            ..params()
        };
        let mut c: TableChain<NodeId> = TableChain::new(p, 7);
        let mut rng = KickRng::new(7);
        let mut pl = 0;
        let mut failed = 0;
        for v in 0..64u64 {
            if let ChainInsert::Failed(_homeless) = c.insert_no_expand(v, kh(v), &mut rng, &mut pl)
            {
                // The homeless item is not necessarily `v` itself: a resident
                // evicted during the walk can end up without a slot instead.
                failed += 1;
            }
        }
        assert!(failed > 0);
        assert_eq!(c.count() + failed, 64);
        c.assert_cached_consistent();
    }

    #[test]
    fn memory_grows_with_expansion() {
        let mut c = chain();
        let mut rng = KickRng::new(8);
        let mut p = 0;
        let mut s = scratch();
        let before = c.memory_bytes();
        for v in 0..500u64 {
            c.insert(v, kh(v), &mut rng, &mut p, &mut s);
        }
        assert!(c.memory_bytes() > before);
    }

    #[test]
    fn iter_for_each_and_scalar_for_each_agree() {
        let mut c = chain();
        let mut rng = KickRng::new(9);
        let mut p = 0;
        let mut s = scratch();
        for v in 0..100u64 {
            c.insert(v, kh(v), &mut rng, &mut p, &mut s);
        }
        let from_iter: u64 = c.iter().copied().sum();
        let mut from_each = 0u64;
        c.for_each(|&v| from_each += v);
        let mut from_scalar = 0u64;
        c.for_each_scalar(|&v| from_scalar += v);
        assert_eq!(from_iter, from_each);
        assert_eq!(from_iter, from_scalar);
        assert_eq!(from_iter, (0..100u64).sum());
    }

    /// The persistent scratch must end every rebuild empty and keep its
    /// buffer capacity across events — the allocation-free steady state.
    #[test]
    fn rebuild_scratch_is_reused_across_resizes() {
        let mut c = chain();
        let mut rng = KickRng::new(11);
        let mut p = 0;
        let mut s = scratch();
        for v in 0..2_000u64 {
            c.insert(v, kh(v), &mut rng, &mut p, &mut s);
        }
        assert!(c.expansions() > 0);
        assert!(s.is_empty(), "scratch must be empty between events");
        let warm = s.retained_capacity();
        assert!(warm > 0, "merges never warmed the scratch");
        for v in 0..1_950u64 {
            c.remove(kh(v));
            for item in c.maybe_contract(&mut rng, &mut p, &mut s) {
                c.insert_forced(item, &mut rng, &mut p, &mut s);
            }
        }
        assert!(c.contractions() > 0);
        assert!(s.is_empty());
        assert!(
            s.retained_capacity() >= warm.min(1),
            "persistent scratch dropped its buffers"
        );
        c.assert_cached_consistent();
    }

    #[test]
    fn find_index_resolves_once_and_allows_in_place_mutation() {
        use crate::payload::WeightedSlot;
        let mut c: TableChain<WeightedSlot> = TableChain::new(params(), 0x2222);
        let mut rng = KickRng::new(10);
        let mut p = 0;
        let mut s: RebuildScratch<WeightedSlot> = RebuildScratch::persistent();
        for v in 0..50u64 {
            c.insert(WeightedSlot { v, w: 1 }, kh(v), &mut rng, &mut p, &mut s);
        }
        let pos = c.find_index(kh(17)).expect("key 17 stored");
        c.item_at_mut(pos).w += 9;
        assert_eq!(c.get(kh(17)).unwrap().w, 10);
        assert!(c.find_index(kh(9999)).is_none());
    }
}
