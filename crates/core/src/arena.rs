//! Slab arena for the cells' inline neighbour storage.
//!
//! Before PR 6 every L-CHT cell below the TRANSFORMATION threshold owned a
//! private `Vec<P>` for its up-to-`small_slots` neighbours: one heap
//! allocation per node, a 24-byte `Vec` header per cell, and — on the
//! successor-scan hot path — one pointer chase per visited cell into wherever
//! the allocator happened to place that node's slots.
//!
//! A [`SlotArena`] replaces all of those with one engine-level slab: a single
//! `Vec<P>` carved into fixed-size **blocks** of `small_slots` payloads each.
//! A cell stores a `u32` block index (plus an inline length byte) instead of a
//! `Vec`, so
//!
//! * the per-cell overhead drops from a 24-byte header + allocator bookkeeping
//!   to 5 bytes inline,
//! * neighbour slots of different nodes are densely packed in one allocation,
//!   giving sequential scans locality the general-purpose allocator never
//!   guarantees, and
//! * freeing a cell's storage is pushing an index on a free list — no
//!   allocator round-trip on the insert/delete churn path.
//!
//! Vacant arena slots (freed blocks, and the tail of a partially filled
//! block) hold [`Payload::filler`], mirroring the `Option`-free cuckoo table
//! layout: the cell's length byte is the only discriminant, fillers own no
//! heap, and slots are written before they are read.
//!
//! Deletion-heavy histories can leave the slab fragmented (long free list,
//! high-water `data` length). [`SlotArena::compact`] rebuilds density in one
//! pass: live blocks slide down over freed ones and the caller patches each
//! cell's block index through the returned remap table (the engine's
//! `compact_arena`, which walks every cell via `for_each_cell_mut`).

use crate::payload::Payload;

/// Block index marking "no block" — the block field of an empty cell.
pub const NO_BLOCK: u32 = u32::MAX;

/// A fixed-block slab allocator for neighbour payload storage.
#[derive(Debug, Clone)]
pub struct SlotArena<P> {
    /// Slab storage: `block_size` consecutive payloads per block.
    data: Vec<P>,
    /// Slots per block (= the engine's `small_slots`).
    block_size: usize,
    /// Indices of freed blocks, reused LIFO before the slab grows.
    free: Vec<u32>,
}

impl<P: Payload> SlotArena<P> {
    /// An empty arena handing out blocks of `block_size` slots.
    pub fn new(block_size: usize) -> Self {
        Self {
            data: Vec::new(),
            block_size: block_size.max(1),
            free: Vec::new(),
        }
    }

    /// Slots per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks currently carved out of the slab (live + freed).
    pub fn block_count(&self) -> usize {
        self.data.len() / self.block_size
    }

    /// Number of blocks sitting on the free list.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Hands out a block of `block_size` filler-initialised slots, reusing a
    /// freed block when one exists (freed blocks are already re-fillered) and
    /// growing the slab otherwise.
    pub fn alloc_block(&mut self) -> u32 {
        if let Some(block) = self.free.pop() {
            debug_assert!(
                self.slots(block).iter().all(|s| s.heap_bytes() == 0),
                "freed block owns heap"
            );
            return block;
        }
        let block = self.block_count();
        assert!(block < NO_BLOCK as usize, "slot arena block index overflow");
        if self.data.len() + self.block_size > self.data.capacity() {
            // Grow in bounded exact chunks instead of `Vec`'s doubling: the
            // slab's capacity is charged to `memory_bytes`, and a freshly
            // doubled slab would report up to 2× its live size. Chunks of
            // len/8 (at least 16 blocks) keep the worst-case slack at 12.5%
            // while still amortising the grow-copy over many allocations.
            let chunk = (self.data.len() / 8).max(16 * self.block_size);
            self.data.reserve_exact(chunk);
        }
        self.data
            .resize(self.data.len() + self.block_size, P::filler());
        block as u32
    }

    /// Returns a block to the free list, overwriting its slots with fillers
    /// so any payload heap data (e.g. multi-edge lists) is released now and
    /// the block is handed out clean next time.
    pub fn free_block(&mut self, block: u32) {
        for slot in self.slots_mut(block) {
            *slot = P::filler();
        }
        debug_assert!(!self.free.contains(&block), "double free of arena block");
        self.free.push(block);
    }

    /// The slots of `block`.
    #[inline]
    pub fn slots(&self, block: u32) -> &[P] {
        let start = block as usize * self.block_size;
        &self.data[start..start + self.block_size]
    }

    /// Mutable view of the slots of `block`.
    #[inline]
    pub fn slots_mut(&mut self, block: u32) -> &mut [P] {
        let start = block as usize * self.block_size;
        &mut self.data[start..start + self.block_size]
    }

    /// Compacts the slab: live blocks slide down over freed ones, the slab
    /// truncates to exactly the live block count, and the free list empties.
    /// Returns the remap table `old block index → new block index`
    /// ([`NO_BLOCK`] for blocks that were on the free list); the caller must
    /// rewrite every cell's block field through it before touching the arena
    /// again.
    pub fn compact(&mut self) -> Vec<u32> {
        let blocks = self.block_count();
        let mut remap = vec![0u32; blocks];
        for &f in &self.free {
            remap[f as usize] = NO_BLOCK;
        }
        let mut next = 0u32;
        #[allow(clippy::needless_range_loop)] // `old` also indexes the slab below
        for old in 0..blocks {
            if remap[old] == NO_BLOCK {
                continue;
            }
            remap[old] = next;
            if old as u32 != next {
                let from = old * self.block_size;
                let to = next as usize * self.block_size;
                for i in 0..self.block_size {
                    self.data[to + i] = std::mem::replace(&mut self.data[from + i], P::filler());
                }
            }
            next += 1;
        }
        self.data.truncate(next as usize * self.block_size);
        self.data.shrink_to_fit();
        self.free = Vec::new();
        remap
    }

    /// Bytes occupied by the slab plus heap data owned by stored payloads.
    /// Fillers own no heap by contract, so summing over the whole slab counts
    /// live payloads exactly while still reporting the slab's real footprint
    /// (including freed blocks until the next [`SlotArena::compact`]).
    pub fn memory_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<P>()
            + self.free.capacity() * std::mem::size_of::<u32>()
            + self.data.iter().map(Payload::heap_bytes).sum::<usize>()
    }

    /// Internal consistency check for the property tests: free-listed blocks
    /// must be fully fillered and in range.
    #[doc(hidden)]
    pub fn assert_free_blocks_clean(&self) {
        for &f in &self.free {
            assert!((f as usize) < self.block_count(), "free index out of range");
            for slot in self.slots(f) {
                assert_eq!(slot.heap_bytes(), 0, "freed block owns heap");
            }
        }
    }
}

/// Compile-time proof the arena can cross the sharded fan-out's thread
/// boundaries inside an engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SlotArena<graph_api::NodeId>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use graph_api::NodeId;

    #[test]
    fn alloc_write_free_reuse_roundtrip() {
        let mut a: SlotArena<NodeId> = SlotArena::new(4);
        let b0 = a.alloc_block();
        let b1 = a.alloc_block();
        assert_ne!(b0, b1);
        assert_eq!(a.block_count(), 2);
        a.slots_mut(b0).copy_from_slice(&[1, 2, 3, 4]);
        a.slots_mut(b1)[0] = 9;
        assert_eq!(a.slots(b0), &[1, 2, 3, 4]);

        a.free_block(b0);
        assert_eq!(a.free_count(), 1);
        let b2 = a.alloc_block();
        assert_eq!(b2, b0, "free list is reused before the slab grows");
        assert_eq!(a.slots(b2), &[0, 0, 0, 0], "reused block arrives clean");
        assert_eq!(a.slots(b1)[0], 9, "unrelated block untouched");
        a.assert_free_blocks_clean();
    }

    #[test]
    fn compact_slides_live_blocks_down() {
        let mut a: SlotArena<NodeId> = SlotArena::new(2);
        let blocks: Vec<u32> = (0..5).map(|_| a.alloc_block()).collect();
        for (i, &b) in blocks.iter().enumerate() {
            a.slots_mut(b)
                .copy_from_slice(&[i as u64 * 10, i as u64 * 10 + 1]);
        }
        a.free_block(blocks[1]);
        a.free_block(blocks[3]);

        let remap = a.compact();
        assert_eq!(remap.len(), 5);
        assert_eq!(remap[1], NO_BLOCK);
        assert_eq!(remap[3], NO_BLOCK);
        assert_eq!(a.block_count(), 3);
        assert_eq!(a.free_count(), 0);
        for (i, &b) in blocks.iter().enumerate() {
            if i == 1 || i == 3 {
                continue;
            }
            let new = remap[b as usize];
            assert_eq!(a.slots(new), &[i as u64 * 10, i as u64 * 10 + 1]);
        }
        // Relative order of survivors is preserved and indices are dense.
        assert_eq!(remap[0], 0);
        assert_eq!(remap[2], 1);
        assert_eq!(remap[4], 2);
    }

    #[test]
    fn compact_of_empty_and_all_free_arenas() {
        let mut a: SlotArena<NodeId> = SlotArena::new(3);
        assert!(a.compact().is_empty());
        let b = a.alloc_block();
        a.free_block(b);
        let remap = a.compact();
        assert_eq!(remap, vec![NO_BLOCK]);
        assert_eq!(a.block_count(), 0);
        assert_eq!(a.memory_bytes(), 0);
    }

    #[test]
    fn memory_bytes_shrinks_after_compaction() {
        let mut a: SlotArena<NodeId> = SlotArena::new(8);
        let blocks: Vec<u32> = (0..16).map(|_| a.alloc_block()).collect();
        let full = a.memory_bytes();
        for &b in &blocks[..12] {
            a.free_block(b);
        }
        assert!(a.memory_bytes() >= full, "freeing alone releases nothing");
        a.compact();
        assert!(a.memory_bytes() < full, "compaction must shrink the slab");
        assert_eq!(a.block_count(), 4);
    }

    #[test]
    fn free_block_releases_payload_heap() {
        use crate::payload::MultiSlot;
        let mut a: SlotArena<MultiSlot> = SlotArena::new(2);
        let b = a.alloc_block();
        a.slots_mut(b)[0] = MultiSlot {
            v: 1,
            edges: vec![10, 11, 12],
        };
        assert!(a.memory_bytes() > 2 * std::mem::size_of::<MultiSlot>());
        a.free_block(b);
        a.assert_free_blocks_clean();
        let base = a.data.capacity() * std::mem::size_of::<MultiSlot>()
            + a.free.capacity() * std::mem::size_of::<u32>();
        assert_eq!(a.memory_bytes(), base, "freed heap still counted");
    }
}
