//! Reusable rebuild buffers for the TRANSFORMATION machinery.
//!
//! Before PR 5, every chain expansion, contraction, and reset drained the
//! affected tables into a freshly allocated `Vec` before re-inserting — one
//! (or several) heap allocations per resize *event*, on a path that fires
//! thousands of times under churn-heavy workloads. A [`RebuildScratch`] is an
//! engine-level pair of buffers (displaced items plus their memoized
//! [`KeyHash`]es) threaded through `TableChain::expand` / `contract` and every
//! engine rebuild path, so steady-state resizes reuse the same capacity
//! forever and the drain → hash → re-place pipeline runs allocation-free.
//!
//! The hash cache matters independently of the allocations: the drain pass
//! fills `items`, a second tight pass computes every item's Bob hash into
//! `hashes`, and the re-place loop then pops `(item, hash)` pairs — keeping
//! the hashing out of the cuckoo placement loop (whose kick-walk has its own
//! re-hash discipline) and touching each drained item's bytes exactly once
//! per rebuild.
//!
//! The pre-change cost shape survives as a first-class reference:
//! [`RebuildScratch::alloc_per_event`] builds a scratch that releases its
//! buffers after every rebuild event, reproducing the one-allocation-per-event
//! behaviour the persistent scratch replaces.
//! [`crate::CuckooGraphConfig::with_resize_scratch`]`(false)` routes a whole
//! engine through it, which is what the `perf_smoke` resize guard and the
//! `resize_churn` criterion group measure the live path against.

use crate::hash::KeyHash;
use crate::payload::Payload;
use crate::pool::{PoolStats, TablePool};

/// Reusable drain/re-place buffers for one chain's rebuild events.
///
/// One scratch serves every chain of an engine level (all S-CHT chains share
/// the engine's payload scratch; the L-CHT chain has its own cell scratch):
/// rebuild events are strictly sequential within an engine, and each event
/// leaves the buffers empty again.
#[derive(Debug, Clone)]
pub struct RebuildScratch<T> {
    /// Items drained out of the tables being rebuilt.
    pub(crate) items: Vec<T>,
    /// Memoized hash material parallel to `items` (filled by
    /// [`RebuildScratch::cache_hashes`], popped in lock-step).
    pub(crate) hashes: Vec<KeyHash>,
    /// When false, the buffers are dropped after every event — the
    /// alloc-per-event reference cost shape.
    persistent: bool,
    /// Recycled table buffers for the chains rebuilt through this scratch
    /// (see [`crate::pool`]). Lives here because the scratch is already
    /// threaded through every resize path, so the pool reaches each
    /// TRANSFORMATION without new plumbing. The pool outlives rebuild events
    /// regardless of `persistent` — the two oracles (`with_resize_scratch`,
    /// `with_table_pool`) stay independent.
    pub(crate) pool: TablePool<T>,
}

impl<T: Payload> RebuildScratch<T> {
    /// A persistent scratch: buffers grow to the high-water mark of the
    /// largest rebuild and are reused forever. The production configuration.
    pub fn persistent() -> Self {
        Self {
            items: Vec::new(),
            hashes: Vec::new(),
            persistent: true,
            pool: TablePool::enabled(),
        }
    }

    /// A reference scratch reproducing the pre-change allocation behaviour:
    /// every rebuild event allocates fresh buffers and releases them at the
    /// end. Selected via
    /// [`crate::CuckooGraphConfig::with_resize_scratch`]`(false)`.
    pub fn alloc_per_event() -> Self {
        Self {
            items: Vec::new(),
            hashes: Vec::new(),
            persistent: false,
            pool: TablePool::enabled(),
        }
    }

    /// Builder-style switch for the embedded table pool: `false` selects the
    /// allocate-per-table reference behaviour
    /// ([`crate::CuckooGraphConfig::with_table_pool`]`(false)`).
    pub fn with_table_pool(mut self, enabled: bool) -> Self {
        self.pool.set_enabled(enabled);
        self
    }

    /// Counter snapshot of the embedded table pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Bytes held by idle pooled table buffers.
    pub fn pool_retained_bytes(&self) -> usize {
        self.pool.retained_bytes()
    }

    /// Puts the embedded pool into epoch-stamped deferred-retire mode for a
    /// concurrent mutation window (see [`crate::epoch`]).
    pub(crate) fn begin_deferred_retires(&mut self, epoch: u64) {
        self.pool.begin_deferred(epoch);
    }

    /// Closes the deferred-retire window, releasing quarantined buffers whose
    /// stamp cleared `safe_epoch`. Returns how many were released.
    pub(crate) fn end_deferred_retires(&mut self, safe_epoch: u64) -> usize {
        self.pool.end_deferred(safe_epoch)
    }

    /// Number of items currently buffered (non-zero only mid-rebuild).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True outside of a rebuild event.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Item capacity currently retained — what a persistent scratch carries
    /// from one rebuild to the next (observable in tests).
    pub fn retained_capacity(&self) -> usize {
        self.items.capacity()
    }

    /// Computes the memoized hash of every buffered item into the parallel
    /// hash cache — one tight pass, so the re-place loop never hashes.
    pub(crate) fn cache_hashes(&mut self) {
        self.hashes.clear();
        self.hashes.extend(self.items.iter().map(Payload::key_hash));
    }

    /// Pops the next `(item, memoized hash)` pair, in reverse drain order
    /// (order is irrelevant to cuckoo placement).
    pub(crate) fn pop_pair(&mut self) -> Option<(T, KeyHash)> {
        let item = self.items.pop()?;
        let kh = self.hashes.pop().expect("hash cache tracks items");
        Some((item, kh))
    }

    /// Ends a rebuild event: a persistent scratch keeps its capacity, the
    /// alloc-per-event reference drops it (matching the old per-event `Vec`).
    pub(crate) fn finish_event(&mut self) {
        debug_assert!(self.items.is_empty(), "rebuild left items in the scratch");
        self.hashes.clear();
        if !self.persistent {
            self.items = Vec::new();
            self.hashes = Vec::new();
        }
    }
}

impl<T: Payload> Default for RebuildScratch<T> {
    fn default() -> Self {
        Self::persistent()
    }
}

/// Compile-time proof the scratch can cross the sharded fan-out's thread
/// boundaries inside an engine.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RebuildScratch<graph_api::NodeId>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use graph_api::NodeId;

    #[test]
    fn persistent_scratch_retains_capacity_across_events() {
        let mut s: RebuildScratch<NodeId> = RebuildScratch::persistent();
        s.items.extend(0..100u64);
        s.cache_hashes();
        while let Some((item, kh)) = s.pop_pair() {
            assert_eq!(kh, KeyHash::new(item));
        }
        s.finish_event();
        assert!(s.is_empty());
        assert!(s.retained_capacity() >= 100, "capacity was released");
    }

    #[test]
    fn alloc_per_event_scratch_releases_buffers() {
        let mut s: RebuildScratch<NodeId> = RebuildScratch::alloc_per_event();
        s.items.extend(0..100u64);
        s.cache_hashes();
        while s.pop_pair().is_some() {}
        s.finish_event();
        assert_eq!(
            s.retained_capacity(),
            0,
            "reference scratch must not retain"
        );
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn hash_cache_is_parallel_to_items() {
        let mut s: RebuildScratch<NodeId> = RebuildScratch::default();
        s.items.extend([9u64, 4, 7]);
        s.cache_hashes();
        assert_eq!(s.len(), 3);
        let (item, kh) = s.pop_pair().unwrap();
        assert_eq!(item, 7);
        assert_eq!(kh, KeyHash::new(7));
    }
}
