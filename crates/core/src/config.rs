//! Configuration of a CuckooGraph instance.
//!
//! The defaults follow the parameter study in § V-B of the paper:
//! `d = 8`, `R = 3`, `G = 0.9`, `T = 250`, bucket-array ratio 2:1, and a
//! contraction threshold `Λ ≤ 2G/3` (we default to 0.5).

use crate::error::{CuckooGraphError, Result};

/// Tunable parameters of CuckooGraph (Table I of the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct CuckooGraphConfig {
    /// `d` — number of cells per bucket in both L-CHT and S-CHT. Paper default 8.
    pub cells_per_bucket: usize,
    /// `R` — number of large (pointer) slots in Part 2 of each L-CHT cell;
    /// also the maximum number of S-CHTs in a chain and of L-CHTs overall.
    /// Paper default 3.
    pub r: usize,
    /// `G` — loading-rate threshold that triggers expansion. Paper default 0.9.
    pub expand_threshold: f64,
    /// `Λ` — overall loading-rate threshold that triggers contraction after a
    /// deletion. The analysis (§ IV-B) assumes `Λ ≤ 2G/3`; default 0.5.
    pub contract_threshold: f64,
    /// `T` — maximum number of kick-out loops before an insertion is declared
    /// failed and routed to a denylist. Paper default 250.
    pub max_kicks: usize,
    /// `n` — length (number of buckets in the larger array) of the 1st S-CHT
    /// when a cell first transforms. Default 8.
    pub scht_base_len: usize,
    /// Initial length of the 1st L-CHT. Default 16; the structure grows from
    /// there, so no prior knowledge of the graph is needed.
    pub lcht_base_len: usize,
    /// Capacity limit of each denylist (the paper describes DL as "a vector
    /// with a size limit" and measures ≈4 KB of extra memory). Default 512
    /// entries per denylist.
    pub denylist_capacity: usize,
    /// Enables the DENYLIST optimisation (§ III-A2). When disabled, every
    /// insertion failure forces an immediate expansion instead — the ablation
    /// baseline of Figure 5.
    pub use_denylist: bool,
    /// Routes every TRANSFORMATION (expand/contract/merge) through the
    /// engine's persistent [`crate::scratch::RebuildScratch`] buffers. When
    /// disabled, each resize event allocates and releases fresh buffers — the
    /// pre-PR-5 cost shape, kept as the live reference the `perf_smoke`
    /// resize guard and the `resize_churn` criterion group measure against.
    pub resize_scratch: bool,
    /// Recycles the backing buffers of tables dropped by TRANSFORMATION
    /// events through a shard-local [`crate::pool::TablePool`]. When disabled,
    /// every expand/contract/merge allocates fresh tables and drops the old
    /// ones — the pre-PR-6 cost shape, kept as the live reference the
    /// `perf_smoke` pool guard and the property tests compare against.
    pub table_pool: bool,
    /// Routes the sharded wrapper's `&self` query and ingest surface through
    /// the seqlock/epoch read coordinator ([`crate::epoch`]), so queries
    /// proceed concurrently with a shard's ingesting writer. When disabled,
    /// [`crate::Sharded`] falls back to the exclusive path — every query and
    /// write section takes the shard's mutex, so queries wait out a whole
    /// batch — which is the pre-PR-7 behaviour, kept as the live oracle the
    /// `concurrent_read_model` property tests and the `perf_smoke`
    /// read-under-ingest guard compare against. Serial (unsharded) engines
    /// ignore the flag.
    pub concurrent_reads: bool,
    /// Maintains a contiguous **scan segment** (dense, append-ordered
    /// successor ids carved from a [`crate::segment::ScanArena`]) alongside
    /// the S-CHT chain of every transformed cell, and routes
    /// `for_each_successor` through it — one cache-friendly run per cell
    /// instead of a scattered table walk. Point ops keep the tag-word probe
    /// path either way. When disabled, the scan falls back to the table-walk
    /// iterator — the pre-PR-8 behaviour, kept as the live oracle the
    /// `segment_scan_model` property tests and the `perf_smoke`
    /// `scan_segments` guard compare against.
    pub scan_segments: bool,
    /// Seed for hash-function seeds and kick-victim selection. Fixed default
    /// so runs are reproducible; randomise it for adversarial workloads.
    pub seed: u64,
}

impl Default for CuckooGraphConfig {
    fn default() -> Self {
        Self {
            cells_per_bucket: 8,
            r: 3,
            expand_threshold: 0.9,
            contract_threshold: 0.5,
            max_kicks: 250,
            scht_base_len: 8,
            lcht_base_len: 16,
            denylist_capacity: 512,
            use_denylist: true,
            resize_scratch: true,
            table_pool: true,
            concurrent_reads: true,
            scan_segments: true,
            seed: 0x5eed_cafe_f00d_0001,
        }
    }
}

impl CuckooGraphConfig {
    /// Validates the configuration, returning an error describing the first
    /// violated constraint.
    pub fn validate(&self) -> Result<()> {
        if self.cells_per_bucket == 0 {
            return Err(CuckooGraphError::InvalidConfig(
                "cells_per_bucket must be > 0",
            ));
        }
        if self.r == 0 {
            return Err(CuckooGraphError::InvalidConfig("r must be > 0"));
        }
        if !(self.expand_threshold > 0.0 && self.expand_threshold <= 1.0) {
            return Err(CuckooGraphError::InvalidConfig(
                "expand_threshold must be in (0, 1]",
            ));
        }
        if !(self.contract_threshold >= 0.0 && self.contract_threshold < self.expand_threshold) {
            return Err(CuckooGraphError::InvalidConfig(
                "contract_threshold must be in [0, expand_threshold)",
            ));
        }
        if self.max_kicks == 0 {
            return Err(CuckooGraphError::InvalidConfig("max_kicks must be > 0"));
        }
        if self.scht_base_len == 0 || self.lcht_base_len == 0 {
            return Err(CuckooGraphError::InvalidConfig(
                "table base lengths must be > 0",
            ));
        }
        Ok(())
    }

    /// Number of inline small slots in Part 2 for the *basic* version
    /// (`2R`, § III-A1).
    pub fn basic_small_slots(&self) -> usize {
        2 * self.r
    }

    /// Number of inline small slots for the *extended* (weighted) version
    /// (`R`, § III-B: two small slots are fused to hold `⟨v, w⟩`).
    pub fn weighted_small_slots(&self) -> usize {
        self.r
    }

    /// Builder-style setter for `d`.
    pub fn with_cells_per_bucket(mut self, d: usize) -> Self {
        self.cells_per_bucket = d;
        self
    }

    /// Builder-style setter for `R`.
    pub fn with_r(mut self, r: usize) -> Self {
        self.r = r;
        self
    }

    /// Builder-style setter for `G`.
    pub fn with_expand_threshold(mut self, g: f64) -> Self {
        self.expand_threshold = g;
        self
    }

    /// Builder-style setter for `Λ`.
    pub fn with_contract_threshold(mut self, lambda: f64) -> Self {
        self.contract_threshold = lambda;
        self
    }

    /// Builder-style setter for `T`.
    pub fn with_max_kicks(mut self, t: usize) -> Self {
        self.max_kicks = t;
        self
    }

    /// Builder-style setter for the DENYLIST switch (ablation of Figure 5).
    pub fn with_denylist(mut self, enabled: bool) -> Self {
        self.use_denylist = enabled;
        self
    }

    /// Builder-style setter for the resize-scratch switch: `false` selects the
    /// alloc-per-event reference rebuild path (perf-guard baseline).
    pub fn with_resize_scratch(mut self, enabled: bool) -> Self {
        self.resize_scratch = enabled;
        self
    }

    /// Builder-style setter for the table-pool switch: `false` selects the
    /// alloc-and-drop reference transformation path (perf-guard baseline).
    pub fn with_table_pool(mut self, enabled: bool) -> Self {
        self.table_pool = enabled;
        self
    }

    /// Builder-style setter for the concurrent-read switch: `false` selects
    /// the exclusive sharded read path (queries wait for the writer's batch —
    /// the pre-change behaviour, kept as the live oracle).
    pub fn with_concurrent_reads(mut self, enabled: bool) -> Self {
        self.concurrent_reads = enabled;
        self
    }

    /// Builder-style setter for the scan-segment switch: `false` selects the
    /// table-walk successor iterator (the pre-change behaviour, kept as the
    /// live oracle the segment property tests and perf guard compare
    /// against).
    pub fn with_scan_segments(mut self, enabled: bool) -> Self {
        self.scan_segments = enabled;
        self
    }

    /// Builder-style setter for the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style setter for the initial S-CHT length `n`.
    pub fn with_scht_base_len(mut self, n: usize) -> Self {
        self.scht_base_len = n;
        self
    }

    /// Builder-style setter for the initial L-CHT length.
    pub fn with_lcht_base_len(mut self, n: usize) -> Self {
        self.lcht_base_len = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = CuckooGraphConfig::default();
        assert_eq!(c.cells_per_bucket, 8);
        assert_eq!(c.r, 3);
        assert!((c.expand_threshold - 0.9).abs() < 1e-12);
        assert_eq!(c.max_kicks, 250);
        assert!(c.use_denylist);
        assert!(c.resize_scratch, "persistent scratch is the default");
        assert!(c.table_pool, "table pooling is the default");
        assert!(c.concurrent_reads, "concurrent reads are the default");
        assert!(c.scan_segments, "scan segments are the default");
        assert!(c.validate().is_ok());
        // Λ ≤ 2G/3 as assumed by the memory analysis.
        assert!(c.contract_threshold <= 2.0 * c.expand_threshold / 3.0);
    }

    #[test]
    fn slot_counts_follow_r() {
        let c = CuckooGraphConfig::default().with_r(4);
        assert_eq!(c.basic_small_slots(), 8);
        assert_eq!(c.weighted_small_slots(), 4);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(CuckooGraphConfig::default()
            .with_cells_per_bucket(0)
            .validate()
            .is_err());
        assert!(CuckooGraphConfig::default().with_r(0).validate().is_err());
        assert!(CuckooGraphConfig::default()
            .with_expand_threshold(0.0)
            .validate()
            .is_err());
        assert!(CuckooGraphConfig::default()
            .with_expand_threshold(1.5)
            .validate()
            .is_err());
        assert!(CuckooGraphConfig::default()
            .with_contract_threshold(0.95)
            .validate()
            .is_err());
        assert!(CuckooGraphConfig::default()
            .with_max_kicks(0)
            .validate()
            .is_err());
        assert!(CuckooGraphConfig::default()
            .with_scht_base_len(0)
            .validate()
            .is_err());
        assert!(CuckooGraphConfig::default()
            .with_lcht_base_len(0)
            .validate()
            .is_err());
    }

    #[test]
    fn builders_chain() {
        let c = CuckooGraphConfig::default()
            .with_cells_per_bucket(4)
            .with_r(2)
            .with_expand_threshold(0.85)
            .with_contract_threshold(0.4)
            .with_max_kicks(50)
            .with_denylist(false)
            .with_resize_scratch(false)
            .with_table_pool(false)
            .with_concurrent_reads(false)
            .with_scan_segments(false)
            .with_seed(7)
            .with_scht_base_len(4)
            .with_lcht_base_len(8);
        assert_eq!(c.cells_per_bucket, 4);
        assert_eq!(c.r, 2);
        assert!(!c.use_denylist);
        assert!(!c.resize_scratch);
        assert!(!c.table_pool);
        assert!(!c.concurrent_reads);
        assert!(!c.scan_segments);
        assert_eq!(c.seed, 7);
        assert!(c.validate().is_ok());
    }
}
